// Ablation study: what each Happy Eyeballs design choice buys, measured as
// user-visible time-to-connect on a fixed set of impairment scenarios.
//
//   (a) Resolution Delay on/off under a slow AAAA answer
//   (b) wait-for-A on/off under a slow A answer (the §5.2 deviation)
//   (c) CAD value sweep under broken IPv6 (fallback latency)
//   (d) address interlacing under partially dead address sets
#include <cstdio>

#include "dns/auth_server.h"
#include "dns/test_params.h"
#include "he/engine.h"
#include "simnet/network.h"
#include "util/table.h"

using namespace lazyeye;

namespace {

struct World {
  simnet::Network net{77};
  simnet::Host* client = nullptr;
  simnet::Host* server = nullptr;
  std::unique_ptr<transport::TcpStack> server_tcp;
  std::unique_ptr<dns::AuthServer> auth;
  dns::Zone* zone = nullptr;
};

std::unique_ptr<World> make_world() {
  auto w = std::make_unique<World>();
  w->client = &w->net.add_host("client");
  w->client->add_address(simnet::IpAddress::must_parse("10.0.0.2"));
  w->client->add_address(simnet::IpAddress::must_parse("2001:db8::2"));
  w->server = &w->net.add_host("server");
  w->server->add_address(simnet::IpAddress::must_parse("10.0.0.80"));
  w->server->add_address(simnet::IpAddress::must_parse("2001:db8::80"));
  w->server_tcp = std::make_unique<transport::TcpStack>(*w->server);
  w->server_tcp->listen(443);
  w->auth = std::make_unique<dns::AuthServer>(*w->server);
  w->zone = &w->auth->add_zone(dns::DnsName::must_parse("ab.lab"));
  return w;
}

/// Runs one session; returns (ok, elapsed).
std::pair<bool, SimTime> run(World& w, const dns::DnsName& name,
                             const he::HeOptions& options) {
  dns::StubOptions stub_options;
  stub_options.servers = {{simnet::IpAddress::must_parse("10.0.0.80"), 53}};
  dns::StubResolver stub{*w.client, stub_options};
  transport::TcpStack client_tcp{*w.client};
  he::HappyEyeballsEngine engine{*w.client, stub, client_tcp};
  engine.set_options(options);
  bool ok = false;
  SimTime elapsed{0};
  engine.connect(name, 443, [&](const he::HeResult& r) {
    ok = r.ok;
    elapsed = r.elapsed();
  });
  w.net.loop().run();
  return {ok, elapsed};
}

std::string cell(std::pair<bool, SimTime> outcome) {
  if (!outcome.first) return "FAIL";
  return format_duration(outcome.second);
}

}  // namespace

int main() {
  std::printf("Ablation: time-to-connect under impairments\n");
  std::printf("===========================================\n\n");

  // (a) Resolution Delay under slow AAAA (400 ms), healthy server.
  {
    TextTable t{{"AAAA delay", "RD = 50 ms", "no RD (resolver timeout 5 s)"}};
    for (const int d : {100, 400, 1000, 3000}) {
      auto w = make_world();
      const auto name = dns::make_test_name(
          dns::DnsName::must_parse("a.ab.lab"), "x",
          {{dns::RrType::kAaaa, ms(d)}});
      w->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
      w->zone->add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));
      he::HeOptions with_rd = he::HeOptions::rfc8305();
      he::HeOptions no_rd = he::HeOptions::rfc8305();
      no_rd.resolution_delay = std::nullopt;
      const auto r1 = run(*w, name, with_rd);
      auto w2 = make_world();
      w2->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
      w2->zone->add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));
      const auto r2 = run(*w2, name, no_rd);
      t.add_row({format_duration(ms(d)), cell(r1), cell(r2)});
    }
    std::printf("(a) Resolution Delay vs slow AAAA answers\n%s\n",
                t.render().c_str());
  }

  // (b) wait-for-A under slow A (the §5.2 deviation), healthy IPv6.
  {
    TextTable t{{"A delay", "RFC behaviour", "wait-for-A (Chromium)"}};
    for (const int d : {100, 800, 2000}) {
      const auto name = dns::make_test_name(
          dns::DnsName::must_parse("b.ab.lab"), "x",
          {{dns::RrType::kA, ms(d)}});
      he::HeOptions rfc = he::HeOptions::rfc8305();
      he::HeOptions wait = he::HeOptions::rfc8305();
      wait.wait_for_a_record = true;
      auto w1 = make_world();
      w1->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
      w1->zone->add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));
      const auto r1 = run(*w1, name, rfc);
      auto w2 = make_world();
      w2->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
      w2->zone->add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));
      const auto r2 = run(*w2, name, wait);
      t.add_row({format_duration(ms(d)), cell(r1), cell(r2)});
    }
    std::printf("(b) wait-for-A deviation vs slow A answers (IPv6 healthy)\n%s\n",
                t.render().c_str());
  }

  // (c) CAD value vs fallback latency with blackholed IPv6.
  {
    TextTable t{{"CAD", "time-to-connect (IPv6 dead)"}};
    for (const int cad : {100, 250, 300, 2000}) {
      auto w = make_world();
      const auto name = dns::DnsName::must_parse("c.ab.lab");
      w->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
      w->zone->add_aaaa(name,
                        *simnet::Ipv6Address::parse("2001:db8:dead::1"));
      he::HeOptions o = he::HeOptions::rfc8305();
      o.connection_attempt_delay = ms(cad);
      t.add_row({format_duration(ms(cad)), cell(run(*w, name, o))});
    }
    std::printf("(c) CAD choice vs fallback latency (IPv6 blackholed)\n%s\n",
                t.render().c_str());
  }

  // (d) Interlacing when the first half of the v6 set is dead.
  {
    TextTable t{{"interlace mode", "time-to-connect (3 dead v6, 1 live v4)"}};
    for (const auto mode :
         {he::InterlaceMode::kNone, he::InterlaceMode::kAlternate,
          he::InterlaceMode::kFirstOtherThenRest}) {
      auto w = make_world();
      const auto name = dns::DnsName::must_parse("d.ab.lab");
      for (int i = 1; i <= 3; ++i) {
        w->zone->add_aaaa(name, *simnet::Ipv6Address::parse(
                                    "2001:db8:dead::" + std::to_string(i)));
      }
      w->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
      he::HeOptions o = he::HeOptions::rfc8305();
      o.interlace = mode;
      o.max_addresses_per_family = 10;
      o.connection_attempt_delay = ms(250);
      o.tcp.syn_rto = sec(2);
      const char* label =
          mode == he::InterlaceMode::kNone
              ? "none (v6 then v4)"
              : mode == he::InterlaceMode::kAlternate ? "alternate (RFC 8305)"
                                                      : "Safari-style";
      t.add_row({label, cell(run(*w, name, o))});
    }
    std::printf("(d) interlacing vs a dead IPv6 address set\n%s\n",
                t.render().c_str());
  }

  std::printf(
      "Takeaways: RD bounds the AAAA wait at 50 ms; wait-for-A couples\n"
      "IPv6 latency to the A lookup; a smaller CAD cuts fallback latency\n"
      "linearly; interlacing reaches the working family after one CAD\n"
      "regardless of how many preferred-family addresses are dead.\n");
  return 0;
}
