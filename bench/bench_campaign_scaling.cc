// Campaign scaling bench: runs the Figure 2 CAD sweep workload (one
// Chromium profile over the fine 0..400 ms / 5 ms grid, 2 repetitions =
// 162 isolated simnet worlds) through the CampaignRunner at 1, 2, 4, and 8
// workers — all on ONE persistent WorkerPool, so every count after the
// first reuses parked threads — and reports runs/sec plus speedup vs the
// serial baseline. A second section measures the EventLoop hot path:
// events/sec and a heap-allocations-per-event proxy (global operator new
// counting), which the InlineCallback small-buffer path should keep near 0.
//
// It also cross-checks the determinism contract on the way: every worker
// count must produce byte-identical records — and the v2 streaming path
// must deliver cells in spec order (the serialised bytes double as the
// order check).
//
// Machine-readable output: writes BENCH_campaign_scaling.json (override
// with --json <path>) so CI can archive the perf trajectory.
//
// `--smoke` runs a drastically reduced grid at 1 and 2 workers — a CI-fast
// API regression check for the bench driver itself, not a measurement.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/sink.h"
#include "campaign/sketch.h"
#include "campaign/worker_pool.h"
#include "clients/profiles.h"
#include "simnet/event_loop.h"
#include "simnet/udp_echo.h"
#include "testbed/testbed.h"

using namespace lazyeye;

// ---- allocation counting (proxy for per-event heap traffic) ---------------
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

void serialize(const testbed::RunRecord& r, std::string& out) {
  out += r.client;
  out += '|';
  out += std::to_string(r.configured_delay.count());
  out += '|';
  out += r.established_family
             ? std::to_string(static_cast<int>(*r.established_family))
             : "-";
  out += '|';
  out += r.observed_cad ? std::to_string(r.observed_cad->count()) : "-";
  out += '|';
  out += std::to_string(r.completion_time.count());
  out += '\n';
}

struct WorkerPoint {
  int workers = 0;
  double wall_ms = 0.0;
  double runs_per_sec = 0.0;
  double cells_per_sec_per_core = 0.0;  // runs_per_sec / workers
  double speedup = 1.0;
  // Fault-isolation counters (runner.h RunStats): all zero on this clean
  // workload, surfaced so the perf archive records the health of every run.
  std::size_t cells_failed = 0;
  std::size_t cells_retried = 0;
  std::size_t cells_quarantined = 0;
};

struct CellCostPoint {
  std::uint64_t cells = 0;
  double cells_per_sec_per_core = 0.0;  // serial, so per-core by definition
  double allocs_per_cell = 0.0;         // setup+run+teardown, warm pool
};

struct EventLoopPoint {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

struct DataPathPoint {
  std::uint64_t packets = 0;        // delivered in the measured section
  double packets_per_sec = 0.0;
  std::uint64_t steady_allocs = 0;  // heap allocations in that section
  double allocs_per_packet = 0.0;
};

/// Steady-state per-packet data path: a UDP echo pair exchanging pooled
/// 64-byte payloads. After warm-up (pool blocks, flight slots, timer-wheel
/// nodes at their high-water marks) the measured section must perform ZERO
/// heap allocations — the CI smoke gate fails on any regression. The gate is
/// count-based, not timing-based, so it is deterministic on 1-core runners.
DataPathPoint measure_datapath(std::uint64_t packets) {
  simnet::Network net{1};
  simnet::UdpEchoHarness echo{net};

  echo.run_rounds(512);  // warm-up

  const std::uint64_t rounds = packets / 2;  // 2 deliveries per round trip
  const std::uint64_t alloc_before =
      g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t delivered_before = net.stats().packets_delivered;
  const auto start = std::chrono::steady_clock::now();
  echo.run_rounds(rounds);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::uint64_t alloc_after =
      g_allocations.load(std::memory_order_relaxed);

  DataPathPoint point;
  point.packets = net.stats().packets_delivered - delivered_before;
  const double seconds = std::chrono::duration<double>(elapsed).count();
  point.packets_per_sec =
      seconds > 0 ? static_cast<double>(point.packets) / seconds : 0.0;
  point.steady_allocs = alloc_after - alloc_before;
  point.allocs_per_packet =
      point.packets > 0 ? static_cast<double>(point.steady_allocs) /
                              static_cast<double>(point.packets)
                        : 0.0;
  return point;
}

/// Per-cell lifecycle cost on the small-cell CAD grid: build one world,
/// run one fetch, tear the world down — repeatedly, on one thread, after a
/// warm-up that fills the thread's scenario pool (arena chunks, buffer
/// pools, message pools at their high-water marks). Reports allocations
/// per cell (the count-based CI gate) and serial cells/sec, which on one
/// thread IS cells/sec-per-core.
CellCostPoint measure_cell_cost(testbed::LocalTestbed& bed,
                                const clients::ClientProfile& profile,
                                std::uint64_t cells) {
  constexpr std::uint64_t kWarmup = 16;
  for (std::uint64_t i = 0; i < kWarmup; ++i) {
    bed.run_cad_case(profile, ms(50), static_cast<int>(i));
  }

  const std::uint64_t alloc_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < cells; ++i) {
    bed.run_cad_case(profile, ms(50), static_cast<int>(kWarmup + i));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::uint64_t alloc_after =
      g_allocations.load(std::memory_order_relaxed);

  CellCostPoint point;
  point.cells = cells;
  const double seconds = std::chrono::duration<double>(elapsed).count();
  point.cells_per_sec_per_core =
      seconds > 0 ? static_cast<double>(cells) / seconds : 0.0;
  point.allocs_per_cell =
      static_cast<double>(alloc_after - alloc_before) /
      static_cast<double>(cells);
  return point;
}

/// Schedule/run churn matching the simulation profile (timer chains: each
/// callback schedules a successor, like retransmit/HE-attempt timers).
EventLoopPoint measure_eventloop(std::uint64_t events) {
  simnet::EventLoop loop;
  struct Chain {
    simnet::EventLoop* loop;
    std::uint64_t* remaining;
    void operator()() const {
      if (--*remaining == 0) return;
      loop->schedule_after(ms(1), *this);
    }
  };
  // Seed 64 concurrent chains so the wheel stays realistically populated.
  constexpr std::uint64_t chains = 64;
  std::uint64_t budgets[chains];
  const std::uint64_t spread = events / chains;
  for (std::uint64_t c = 0; c < chains; ++c) {
    budgets[c] = spread;
  }
  budgets[0] += events - spread * chains;

  const std::uint64_t alloc_before =
      g_allocations.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 0; c < chains; ++c) {
    if (budgets[c] == 0) continue;
    loop.schedule_after(ms(c), Chain{&loop, &budgets[c]});
  }
  loop.run();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::uint64_t alloc_after =
      g_allocations.load(std::memory_order_relaxed);

  EventLoopPoint point;
  point.events = loop.processed();
  const double seconds = std::chrono::duration<double>(elapsed).count();
  point.events_per_sec = seconds > 0 ? point.events / seconds : 0.0;
  point.allocs_per_event =
      point.events > 0
          ? static_cast<double>(alloc_after - alloc_before) / point.events
          : 0.0;
  return point;
}

void write_json(const std::string& path, bool smoke, std::size_t cells,
                const std::vector<WorkerPoint>& points,
                const EventLoopPoint& ev, const DataPathPoint& dp,
                const CellCostPoint& cc, int pool_threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"campaign_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"cells\": %zu,\n", cells);
  std::fprintf(f, "  \"pool_threads_started\": %d,\n", pool_threads);
  std::fprintf(f, "  \"workers\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const WorkerPoint& p = points[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"wall_ms\": %.3f, "
                 "\"runs_per_sec\": %.3f, \"cells_per_sec_per_core\": %.3f, "
                 "\"speedup\": %.3f, \"cells_failed\": %zu, "
                 "\"cells_retried\": %zu, \"cells_quarantined\": %zu}%s\n",
                 p.workers, p.wall_ms, p.runs_per_sec,
                 p.cells_per_sec_per_core, p.speedup, p.cells_failed,
                 p.cells_retried, p.cells_quarantined,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cell_cost\": {\"cells\": %llu, "
               "\"cells_per_sec_per_core\": %.1f, "
               "\"allocs_per_cell\": %.2f},\n",
               static_cast<unsigned long long>(cc.cells),
               cc.cells_per_sec_per_core, cc.allocs_per_cell);
  std::fprintf(f,
               "  \"eventloop\": {\"events\": %llu, \"events_per_sec\": %.1f, "
               "\"allocs_per_event\": %.4f},\n",
               static_cast<unsigned long long>(ev.events), ev.events_per_sec,
               ev.allocs_per_event);
  std::fprintf(f,
               "  \"datapath\": {\"packets\": %llu, "
               "\"packets_per_sec\": %.1f, \"steady_state_allocs\": %llu, "
               "\"allocs_per_packet\": %.6f}\n",
               static_cast<unsigned long long>(dp.packets),
               dp.packets_per_sec,
               static_cast<unsigned long long>(dp.steady_allocs),
               dp.allocs_per_packet);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nWrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_campaign_scaling.json";
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    }
  }

  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep =
      smoke ? testbed::SweepSpec{ms(0), ms(400), ms(100)}
            : testbed::SweepSpec::fine_cad();
  const int repetitions = smoke ? 1 : 2;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, repetitions);

  // v2 path: the testbed's executors plug into a registry, and the bench
  // streams records through a callback sink (spec-order delivery), folding
  // them straight into the determinism fingerprint. Every worker count runs
  // on the same persistent pool — counts after the first reuse its threads.
  campaign::Registry<testbed::RunRecord> registry;
  testbed::register_executors(registry, bed, {profile});
  campaign::WorkerPool& pool = campaign::WorkerPool::shared();

  std::printf("Campaign scaling%s: figure2 CAD sweep workload, %zu cells "
              "(%zu delays x %d reps), hardware threads: %u\n\n",
              smoke ? " (smoke mode)" : "", specs.size(),
              sweep.values().size(), repetitions,
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s %16s %10s %14s\n", "workers", "wall [ms]",
              "runs/sec", "cells/s/core", "speedup", "faults f/r/q");

  std::vector<WorkerPoint> points;
  double serial_seconds = 0.0;
  std::string serial_bytes;
  std::string serial_sketch;
  for (const int workers : worker_counts) {
    campaign::RunnerOptions options;
    options.workers = workers;
    options.pool = &pool;
    const campaign::CampaignRunner runner{options};

    std::string bytes;
    bytes.reserve(specs.size() * 48);
    campaign::CallbackSink<testbed::RunRecord> record_sink{
        [&bytes](const campaign::ScenarioSpec&, testbed::RunRecord record) {
          serialize(record, bytes);
        }};
    // The streaming sketch folds alongside the byte serialisation in the
    // same pass; its state doubles as a second determinism witness (bit-
    // identical P² marker state required at every worker count).
    campaign::SketchSink<testbed::RunRecord> sketch;
    sketch.add_metric(
        "completion_ms",
        [](const campaign::ScenarioSpec&, const testbed::RunRecord& r) {
          return std::optional<double>{static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  r.completion_time)
                  .count()) /
                                       1000.0};
        });
    campaign::TeeSink<testbed::RunRecord> sink{record_sink, sketch};

    const auto start = std::chrono::steady_clock::now();
    registry.run(runner, specs, sink);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double seconds =
        std::chrono::duration<double>(elapsed).count();

    if (workers == 1) {
      serial_seconds = seconds;
      serial_bytes = bytes;
      serial_sketch = sketch.fingerprint();
    } else if (bytes != serial_bytes) {
      std::printf("DETERMINISM VIOLATION at %d workers!\n", workers);
      return 1;
    } else if (sketch.fingerprint() != serial_sketch) {
      std::printf("SKETCH DETERMINISM VIOLATION at %d workers!\n", workers);
      return 1;
    }

    WorkerPoint point;
    point.workers = workers;
    point.wall_ms = seconds * 1e3;
    point.runs_per_sec = specs.size() / seconds;
    point.cells_per_sec_per_core = point.runs_per_sec / workers;
    point.speedup = serial_seconds / seconds;
    const campaign::CampaignRunner::RunStats stats = runner.last_run_stats();
    point.cells_failed = stats.cells_failed;
    point.cells_retried = stats.cells_retried;
    point.cells_quarantined = stats.cells_quarantined;
    points.push_back(point);
    std::printf("%8d %12.1f %12.1f %16.1f %9.2fx %6zu/%zu/%zu\n", workers,
                point.wall_ms, point.runs_per_sec,
                point.cells_per_sec_per_core, point.speedup,
                point.cells_failed, point.cells_retried,
                point.cells_quarantined);
  }

  std::printf("\nAll worker counts produced byte-identical records and "
              "bit-identical sketches "
              "(pool threads started: %d, campaigns served: %llu).\n",
              pool.threads_started(),
              static_cast<unsigned long long>(pool.jobs_run()));

  const EventLoopPoint ev = measure_eventloop(smoke ? 200'000 : 2'000'000);
  std::printf("\nEventLoop: %llu events, %.0f events/sec, "
              "%.4f heap allocations/event (InlineCallback inline path)\n",
              static_cast<unsigned long long>(ev.events), ev.events_per_sec,
              ev.allocs_per_event);

  const DataPathPoint dp = measure_datapath(smoke ? 100'000 : 1'000'000);
  std::printf("\nData path: %llu UDP packets delivered, %.0f packets/sec, "
              "%llu steady-state heap allocations (%.6f per packet)\n",
              static_cast<unsigned long long>(dp.packets),
              dp.packets_per_sec,
              static_cast<unsigned long long>(dp.steady_allocs),
              dp.allocs_per_packet);

  const CellCostPoint cc = measure_cell_cost(bed, profile, smoke ? 64 : 256);
  std::printf("\nCell lifecycle: %llu warm cells, %.0f cells/sec/core, "
              "%.1f heap allocations per cell (arena + pooled worlds)\n",
              static_cast<unsigned long long>(cc.cells),
              cc.cells_per_sec_per_core, cc.allocs_per_cell);

  write_json(json_path, smoke, specs.size(), points, ev, dp, cc,
             pool.threads_started());

  // Deterministic smoke gate: the pooled per-packet path must not allocate
  // in steady state. Counting allocations (not timing) keeps this stable on
  // 1-core CI runners.
  if (dp.steady_allocs > 0) {
    std::fprintf(stderr,
                 "DATA-PATH ALLOCATION REGRESSION: %llu heap allocations "
                 "over %llu delivered packets (expected 0)\n",
                 static_cast<unsigned long long>(dp.steady_allocs),
                 static_cast<unsigned long long>(dp.packets));
    return 1;
  }

  // Per-cell budget: the arena/pool overhaul brought a warm small cell from
  // ~406 heap allocations down to ~80; the gate holds the 5x win. Count-
  // based, so 1-core runners and ASan builds gate identically.
  constexpr double kCellAllocBudget = 96.0;
  if (cc.allocs_per_cell > kCellAllocBudget) {
    std::fprintf(stderr,
                 "PER-CELL ALLOCATION REGRESSION: %.1f heap allocations per "
                 "warm cell (budget %.0f)\n",
                 cc.allocs_per_cell, kCellAllocBudget);
    return 1;
  }
  return 0;
}
