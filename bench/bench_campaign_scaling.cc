// Campaign scaling micro-bench: runs the Figure 2 CAD sweep workload (one
// Chromium profile over the fine 0..400 ms / 5 ms grid, 2 repetitions =
// 162 isolated simnet worlds) through the CampaignRunner at 1, 2, and 4
// workers, and reports runs/sec plus speedup vs the serial baseline.
//
// It also cross-checks the determinism contract on the way: every worker
// count must produce byte-identical records.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "campaign/runner.h"
#include "clients/profiles.h"
#include "testbed/testbed.h"

using namespace lazyeye;

namespace {

std::string serialize(const std::vector<testbed::RunRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += r.client;
    out += '|';
    out += std::to_string(r.configured_delay.count());
    out += '|';
    out += r.established_family
               ? std::to_string(static_cast<int>(*r.established_family))
               : "-";
    out += '|';
    out += r.observed_cad ? std::to_string(r.observed_cad->count()) : "-";
    out += '|';
    out += std::to_string(r.completion_time.count());
    out += '\n';
  }
  return out;
}

}  // namespace

int main() {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep = testbed::SweepSpec::fine_cad();
  const int repetitions = 2;

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, repetitions);
  std::printf("Campaign scaling: figure2 CAD sweep workload, %zu cells "
              "(%zu delays x %d reps), hardware threads: %u\n\n",
              specs.size(), sweep.values().size(), repetitions,
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s %10s\n", "workers", "wall [ms]", "runs/sec",
              "speedup");

  double serial_seconds = 0.0;
  std::string serial_bytes;
  for (const int workers : {1, 2, 4}) {
    campaign::RunnerOptions options;
    options.workers = workers;
    const campaign::CampaignRunner runner{options};

    const auto start = std::chrono::steady_clock::now();
    const auto records = bed.run_campaign(profile, specs, runner);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double seconds =
        std::chrono::duration<double>(elapsed).count();

    const std::string bytes = serialize(records);
    if (workers == 1) {
      serial_seconds = seconds;
      serial_bytes = bytes;
    } else if (bytes != serial_bytes) {
      std::printf("DETERMINISM VIOLATION at %d workers!\n", workers);
      return 1;
    }

    std::printf("%8d %12.1f %12.1f %9.2fx\n", workers, seconds * 1e3,
                specs.size() / seconds, serial_seconds / seconds);
  }

  std::printf("\nAll worker counts produced byte-identical records.\n");
  return 0;
}
