// Campaign scaling micro-bench: runs the Figure 2 CAD sweep workload (one
// Chromium profile over the fine 0..400 ms / 5 ms grid, 2 repetitions =
// 162 isolated simnet worlds) through the CampaignRunner at 1, 2, and 4
// workers, and reports runs/sec plus speedup vs the serial baseline.
//
// It also cross-checks the determinism contract on the way: every worker
// count must produce byte-identical records — and the v2 streaming path
// must deliver cells in spec order (the serialised bytes double as the
// order check).
//
// `--smoke` runs a drastically reduced grid at 1 and 2 workers — a CI-fast
// API regression check for the bench driver itself, not a measurement.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/sink.h"
#include "clients/profiles.h"
#include "testbed/testbed.h"

using namespace lazyeye;

namespace {

void serialize(const testbed::RunRecord& r, std::string& out) {
  out += r.client;
  out += '|';
  out += std::to_string(r.configured_delay.count());
  out += '|';
  out += r.established_family
             ? std::to_string(static_cast<int>(*r.established_family))
             : "-";
  out += '|';
  out += r.observed_cad ? std::to_string(r.observed_cad->count()) : "-";
  out += '|';
  out += std::to_string(r.completion_time.count());
  out += '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep =
      smoke ? testbed::SweepSpec{ms(0), ms(400), ms(100)}
            : testbed::SweepSpec::fine_cad();
  const int repetitions = smoke ? 1 : 2;
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, repetitions);

  // v2 path: the testbed's executors plug into a registry, and the bench
  // streams records through a callback sink (spec-order delivery), folding
  // them straight into the determinism fingerprint.
  campaign::Registry<testbed::RunRecord> registry;
  testbed::register_executors(registry, bed, {profile});

  std::printf("Campaign scaling%s: figure2 CAD sweep workload, %zu cells "
              "(%zu delays x %d reps), hardware threads: %u\n\n",
              smoke ? " (smoke mode)" : "", specs.size(),
              sweep.values().size(), repetitions,
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s %10s\n", "workers", "wall [ms]", "runs/sec",
              "speedup");

  double serial_seconds = 0.0;
  std::string serial_bytes;
  for (const int workers : worker_counts) {
    campaign::RunnerOptions options;
    options.workers = workers;
    const campaign::CampaignRunner runner{options};

    std::string bytes;
    bytes.reserve(specs.size() * 48);
    campaign::CallbackSink<testbed::RunRecord> sink{
        [&bytes](const campaign::ScenarioSpec&, testbed::RunRecord record) {
          serialize(record, bytes);
        }};

    const auto start = std::chrono::steady_clock::now();
    registry.run(runner, specs, sink);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double seconds =
        std::chrono::duration<double>(elapsed).count();

    if (workers == 1) {
      serial_seconds = seconds;
      serial_bytes = bytes;
    } else if (bytes != serial_bytes) {
      std::printf("DETERMINISM VIOLATION at %d workers!\n", workers);
      return 1;
    }

    std::printf("%8d %12.1f %12.1f %9.2fx\n", workers, seconds * 1e3,
                specs.size() / seconds, serial_seconds / seconds);
  }

  std::printf("\nAll worker counts produced byte-identical records.\n");
  return 0;
}
