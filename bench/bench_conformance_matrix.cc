// Conformance matrix bench: the differential RFC 8305 campaign — every
// fault kind (control cell first) against every local-testbed client
// profile, two fetches per cell — run through the campaign worker pool at
// 1, 2, 4, and 8 workers. The verdict table each count streams out must be
// BYTE-IDENTICAL: the table doubles as the determinism fingerprint, and the
// bench exits non-zero on the first mismatch.
//
// `--table <path>` writes the 1-worker verdict table (the CI artifact
// uploaded next to perf-smoke-json). `--smoke` shrinks the matrix to three
// profiles and worker counts 1 and 2 — an API/determinism gate, not a
// measurement.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/worker_pool.h"
#include "clients/profiles.h"
#include "conformance/checker.h"
#include "conformance/schedule.h"

using namespace lazyeye;

int main(int argc, char** argv) {
  bool smoke = false;
  std::string table_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[a], "--table") == 0 && a + 1 < argc) {
      table_path = argv[++a];
    }
  }

  std::vector<clients::ClientProfile> profiles =
      clients::local_testbed_profiles();
  if (smoke) profiles.resize(3);
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  const conformance::ConformanceHarness harness{{.seed = 1}};
  const auto specs = harness.differential_specs(profiles);

  campaign::Registry<conformance::ConformanceRecord> registry;
  conformance::register_conformance_executor(registry, harness, profiles);
  campaign::WorkerPool& pool = campaign::WorkerPool::shared();

  std::printf("Conformance matrix%s: %zu fault kinds x %zu clients = %zu "
              "cells (2 fetches each)\n\n",
              smoke ? " (smoke mode)" : "",
              conformance::all_fault_kinds().size(), profiles.size(),
              specs.size());
  std::printf("%8s %12s %12s %12s\n", "workers", "wall [ms]", "cells/sec",
              "violations");

  std::string baseline_table;
  int baseline_violations = 0;
  for (const int workers : worker_counts) {
    campaign::RunnerOptions options;
    options.workers = workers;
    options.pool = &pool;
    const campaign::CampaignRunner runner{options};

    conformance::VerdictTableSink sink;
    const auto start = std::chrono::steady_clock::now();
    registry.run(runner, specs, sink);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double seconds = std::chrono::duration<double>(elapsed).count();

    if (workers == worker_counts.front()) {
      baseline_table = sink.text();
      baseline_violations = sink.total_violations();
    } else if (sink.text() != baseline_table) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: verdict table at %d workers "
                   "differs from %d-worker baseline\n",
                   workers, worker_counts.front());
      return 1;
    }

    std::printf("%8d %12.1f %12.1f %12d\n", workers, seconds * 1e3,
                specs.size() / seconds, sink.total_violations());
  }

  std::printf("\nAll worker counts produced a byte-identical verdict table "
              "(%d violations across %zu cells).\n",
              baseline_violations, specs.size());

  // Compound-schedule cells through the same pool: generated FaultSchedules
  // (multi-entry, windowed, triggered) against every profile, with the same
  // byte-identity requirement across worker counts.
  const std::size_t schedule_count = smoke ? 8 : 24;
  std::vector<campaign::ScenarioSpec> schedule_specs;
  schedule_specs.reserve(schedule_count * profiles.size());
  for (std::uint32_t index = 0; index < schedule_count; ++index) {
    const conformance::FaultSchedule schedule =
        conformance::FaultSchedule::generate(1, 0xFA, index);
    for (const auto& profile : profiles) {
      schedule_specs.push_back(harness.schedule_spec(profile, schedule, 2));
      schedule_specs.back().id = schedule_specs.size() - 1;
    }
  }

  std::printf("\nSchedule cells: %zu generated schedules x %zu clients = %zu "
              "cells (2 fetches each)\n\n",
              schedule_count, profiles.size(), schedule_specs.size());
  std::printf("%8s %12s %12s %12s\n", "workers", "wall [ms]", "cells/sec",
              "violations");

  std::string schedule_baseline;
  int schedule_violations = 0;
  for (const int workers : worker_counts) {
    campaign::RunnerOptions options;
    options.workers = workers;
    options.pool = &pool;
    const campaign::CampaignRunner runner{options};

    conformance::VerdictTableSink sink;
    const auto start = std::chrono::steady_clock::now();
    registry.run(runner, schedule_specs, sink);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double seconds = std::chrono::duration<double>(elapsed).count();

    if (workers == worker_counts.front()) {
      schedule_baseline = sink.text();
      schedule_violations = sink.total_violations();
    } else if (sink.text() != schedule_baseline) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: schedule-cell verdict table at %d "
                   "workers differs from %d-worker baseline\n",
                   workers, worker_counts.front());
      return 1;
    }

    std::printf("%8d %12.1f %12.1f %12d\n", workers, seconds * 1e3,
                schedule_specs.size() / seconds, sink.total_violations());
  }

  std::printf("\nAll worker counts produced a byte-identical schedule-cell "
              "table (%d violations across %zu cells).\n",
              schedule_violations, schedule_specs.size());

  if (!table_path.empty()) {
    std::FILE* f = std::fopen(table_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", table_path.c_str());
      return 1;
    }
    std::fwrite(baseline_table.data(), 1, baseline_table.size(), f);
    std::fclose(f);
    std::printf("Wrote %s\n", table_path.c_str());
  }
  return 0;
}
