// Figure 2: IP address family of the established connection vs configured
// IPv6 delay, measured on the local testbed for every client/version row.
//
// The paper sweeps 0..400 ms in 5 ms steps; Safari (CAD 2 s) is plotted
// separately. Output: one row per client; '6' = IPv6 established,
// '4' = IPv4 established, 'x' = failure; plus the observed CAD from the
// packet capture.
//
// Campaign API v2: ALL client rows ride in ONE multi-client matrix — every
// (client, delay) cell shares a single CampaignRunner pool via the executor
// registry, and the collecting sink hands back records in spec order
// (profile-major), so each row prints exactly what a per-client sweep
// produced.
#include <cstdio>
#include <map>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/sink.h"
#include "clients/profiles.h"
#include "testbed/testbed.h"
#include "util/table.h"

using namespace lazyeye;

int main() {
  // Coarser grid than the paper's 5 ms (25 ms keeps the output readable;
  // pass the fine grid through LocalTestbed::sweep_cad for full runs).
  const testbed::SweepSpec sweep{ms(0), ms(400), ms(25)};
  testbed::LocalTestbed bed;

  // One joint matrix: every Figure 2 client × the whole delay grid, executed
  // by one pool through the registry. The matrix is a lazy SpecStream —
  // cells are generated as workers claim them, never materialised.
  const auto profiles = clients::local_testbed_profiles();
  const auto specs = bed.multi_client_cad_stream(profiles, sweep);

  const campaign::CampaignRunner runner;
  std::printf("Figure 2: established address family vs configured IPv6 "
              "delay (local testbed)\n");
  std::printf("Sweep: 0..400 ms step 25 ms. '6' IPv6, '4' IPv4, 'x' "
              "failure. Campaign workers: %d.\n\n",
              runner.resolved_workers(specs.size()));

  std::printf("%-28s", "delay [ms]:");
  for (const SimTime d : sweep.values()) {
    std::printf("%4lld", static_cast<long long>(to_ms(d)));
  }
  std::printf("\n");
  campaign::Registry<testbed::RunRecord> registry;
  testbed::register_executors(registry, bed, profiles);
  const auto result = registry.run_collect(runner, specs);

  const std::size_t cells_per_client = sweep.values().size();
  std::map<std::string, SimTime> observed_cads;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    std::printf("%-28s", profiles[p].figure_label().c_str());
    std::optional<SimTime> cad;
    for (std::size_t i = 0; i < cells_per_client; ++i) {
      const auto& rec = result.outcomes[p * cells_per_client + i];
      char symbol = 'x';
      if (rec.established_family == simnet::Family::kIpv6) symbol = '6';
      if (rec.established_family == simnet::Family::kIpv4) symbol = '4';
      std::printf("%4c", symbol);
      if (rec.observed_cad && !cad) cad = rec.observed_cad;
    }
    if (cad) {
      observed_cads[profiles[p].figure_label()] = *cad;
      std::printf("   CAD=%s", format_duration(*cad).c_str());
    } else {
      std::printf("   CAD=-");
    }
    std::printf("\n");
  }

  // Safari row (omitted from the paper's plot for its 2 s CAD).
  const auto safari = clients::safari_profile("17.6");
  const auto below = bed.run_cad_case(safari, ms(1800));
  const auto above = bed.run_cad_case(safari, ms(2300));
  std::printf("\nSafari (17.6) [omitted from the figure, CAD 2 s]: "
              "1800 ms -> %s, 2300 ms -> %s, observed CAD=%s\n",
              below.established_family == simnet::Family::kIpv6 ? "IPv6" : "IPv4",
              above.established_family == simnet::Family::kIpv6 ? "IPv6" : "IPv4",
              above.observed_cad ? format_duration(*above.observed_cad).c_str()
                                 : "-");

  std::printf("\nPaper ground truth: Chromium family 300 ms, Firefox 250 ms, "
              "curl 200 ms, wget none (stays on IPv6), Safari 2 s.\n");
  return 0;
}
