// Figure 4: web-based testing tool results — (a) CAD test and (b) RD test —
// per delay bucket, for a representative browser set including Safari's
// dynamic behaviour and the iCloud Private Relay egress operators.
#include <cstdio>

#include "clients/profiles.h"
#include "util/strings.h"
#include "util/table.h"
#include "webtool/webtool.h"

using namespace lazyeye;

namespace {

void print_report(const webtool::WebToolReport& report) {
  std::printf("%s  [UA: %s %s on %s %s]\n", report.client.c_str(),
              report.parsed_agent.browser.c_str(),
              report.parsed_agent.browser_version.c_str(),
              report.parsed_agent.os_name.empty()
                  ? "?"
                  : report.parsed_agent.os_name.c_str(),
              report.parsed_agent.os_version.c_str());
  std::printf("  %-10s", "delay:");
  for (const auto& obs : report.per_delay) {
    std::printf("%7s", format_duration(obs.delay).c_str());
  }
  std::printf("\n  %-10s", "v6/v4:");
  for (const auto& obs : report.per_delay) {
    std::printf("%7s",
                str_format("%d/%d", obs.v6_used, obs.v4_used).c_str());
  }
  std::printf("\n");
  if (report.interval_low && report.interval_high) {
    std::printf("  CAD interval: (%s, %s]",
                format_duration(*report.interval_low).c_str(),
                format_duration(*report.interval_high).c_str());
  } else if (report.interval_low) {
    std::printf("  CAD interval: > %s",
                format_duration(*report.interval_low).c_str());
  } else {
    std::printf("  CAD interval: (unbounded)");
  }
  std::printf("   inconsistent repetitions: %d/%d\n\n",
              report.inconsistent_repetitions, report.total_repetitions);
}

}  // namespace

int main() {
  webtool::WebToolConfig config = webtool::WebToolConfig::paper_default();
  config.repetitions = 10;
  config.workers = 0;  // shard repetitions across all hardware threads
  webtool::WebTool tool{config};

  std::printf("Figure 4a: web-based CAD test (18 delays, 0..5 s, 10 reps, "
              "repetitions sharded across workers)\n");
  std::printf("================================================================\n\n");
  print_report(tool.run_cad_test(
      clients::chromium_profile("Chrome", "130.0", "10-2024"), "Windows 10", ""));
  print_report(tool.run_cad_test(clients::firefox_profile("132.0", "10-2024"),
                                 "Linux", ""));
  print_report(
      tool.run_cad_test(clients::safari_profile("17.6"), "Mac OS X", "10.15.7"));
  print_report(tool.run_cad_test(clients::mobile_safari_profile("17.6"), "iOS",
                                 "17.6"));
  print_report(tool.run_cad_test(clients::icpr_egress_profile("Akamai"),
                                 "Mac OS X", "10.15.7"));
  print_report(tool.run_cad_test(clients::icpr_egress_profile("Cloudflare"),
                                 "Mac OS X", "10.15.7"));

  std::printf("Figure 4b: web-based RD test (AAAA answer delayed per bucket)\n");
  std::printf("================================================================\n\n");
  print_report(tool.run_rd_test(clients::safari_profile("17.6"),
                                dns::RrType::kAaaa, "Mac OS X", "10.15.7"));
  print_report(tool.run_rd_test(
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      dns::RrType::kAaaa, "Windows 10", ""));
  print_report(tool.run_rd_test(clients::icpr_egress_profile("Akamai"),
                                dns::RrType::kAaaa, "Mac OS X", "10.15.7"));
  print_report(tool.run_rd_test(clients::icpr_egress_profile("Cloudflare"),
                                dns::RrType::kAaaa, "Mac OS X", "10.15.7"));

  std::printf(
      "Paper ground truth: Safari web CAD ranges 50 ms..5 s with 6-10/10\n"
      "inconsistent repetitions (Mobile Safari capped at 1 s); other\n"
      "browsers show a sharp transition at their fixed CAD with <=2/10\n"
      "inconsistencies. iCPR egress: Akamai CAD 150 ms / DNS timeout 400 ms,\n"
      "Cloudflare CAD 200 ms / DNS timeout 1.75 s.\n");
  return 0;
}
