// Figure 5: address family used at the n-th connection attempt when a
// domain resolves to 10 IPv6 + 10 IPv4 unresponsive addresses.
#include <cstdio>

#include "clients/profiles.h"
#include "testbed/testbed.h"

using namespace lazyeye;

int main() {
  testbed::LocalTestbed bed;

  std::printf("Figure 5: address family at the n-th connection attempt "
              "(10 + 10 unresponsive addresses)\n\n");
  std::printf("%-24s", "n-th attempt:");
  for (int i = 1; i <= 20; ++i) std::printf("%3d", i);
  std::printf("\n");

  std::vector<clients::ClientProfile> roster{
      clients::chromium_profile("Chrome", "130.0", ""),
      clients::chromium_profile("Chromium", "130.0", ""),
      clients::chromium_profile("Edge", "130.0", ""),
      clients::firefox_profile("132.0", ""),
      clients::safari_profile("17.5"),
      clients::curl_profile(),
      clients::wget_profile(),
  };

  for (const auto& profile : roster) {
    const auto rec = bed.run_address_selection_case(profile, 10);
    std::printf("%-24s", profile.figure_label().c_str());
    for (const auto family : rec.attempt_sequence) {
      std::printf("%3c", family == simnet::Family::kIpv6 ? '6' : '4');
    }
    std::printf("   (%d v6, %d v4 addresses used)\n", rec.v6_addresses_used,
                rec.v4_addresses_used);
  }

  std::printf(
      "\nPaper ground truth: only Safari walks all 20 addresses with the\n"
      "pattern 6 6 4 6x8 4x9 (FAFC=2, one IPv4 interleaved, rest IPv6,\n"
      "then rest IPv4); every other client tries one address per family\n"
      "(HEv1 behaviour); wget tries IPv6 only.\n");
  return 0;
}
