// Core micro-benchmarks (google-benchmark): DNS wire codec, event loop,
// netem processing, TCP handshake simulation, full HE session — plus the
// bench_eventloop_micro section covering the allocation-lean scheduling
// path (InlineCallback dispatch, schedule/cancel churn with generation-
// tagged timer slots) and the bench_datapath section covering the pooled
// per-packet path (UDP echo packets/sec with an allocations-per-delivered-
// packet counter that must stay at 0 in steady state, plus reuse-friendly
// DNS codec entry points). Run sections with
// --benchmark_filter='EventLoop|InlineCallback' or
// --benchmark_filter='UdpEcho|DnsEncodeInto|DnsDecodeInto'.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>

#include "capture/capture.h"
#include "dns/auth_server.h"
#include "dns/message.h"
#include "he/address_selection.h"
#include "he/engine.h"
#include "simnet/inline_callback.h"
#include "simnet/network.h"
#include "simnet/udp_echo.h"

using namespace lazyeye;

// ---- allocation counting (global operator-new proxy) -----------------------
// The datapath benchmarks report heap allocations per delivered packet; the
// pooled-buffer + flight-slot + timer-wheel path keeps it at exactly 0.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

dns::DnsMessage sample_message() {
  dns::DnsMessage msg;
  msg.header.id = 0x4242;
  msg.header.qr = true;
  const auto name = dns::DnsName::must_parse("www.he-test.lab");
  msg.questions.push_back({name, dns::RrType::kAaaa});
  msg.answers.push_back(dns::ResourceRecord::aaaa(
      name, *simnet::Ipv6Address::parse("2001:db8::80")));
  msg.answers.push_back(dns::ResourceRecord::aaaa(
      name, *simnet::Ipv6Address::parse("2001:db8::81")));
  msg.authorities.push_back(dns::ResourceRecord::ns(
      dns::DnsName::must_parse("he-test.lab"),
      dns::DnsName::must_parse("ns1.he-test.lab")));
  return msg;
}

void BM_DnsEncode(benchmark::State& state) {
  const auto msg = sample_message();
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_DnsEncode);

void BM_DnsDecode(benchmark::State& state) {
  const auto wire = sample_message().encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DnsMessage::decode(wire));
  }
}
BENCHMARK(BM_DnsDecode);

// ---- bench_datapath: reusable codec + pooled packet path -------------------

void BM_DnsEncodeInto(benchmark::State& state) {
  // Reuse-friendly entry point: pooled output buffer + retained compressor
  // (the DnsClient/AuthServer hot path), vs BM_DnsEncode's fresh buffers.
  const auto msg = sample_message();
  lazyeye::BufferPool pool;
  lazyeye::Buffer wire{&pool};
  dns::NameCompressor compressor;
  const std::uint64_t alloc_before =
      g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    msg.encode_into(wire, compressor);
    benchmark::DoNotOptimize(wire.size());
  }
  const double allocs = static_cast<double>(
      g_allocations.load(std::memory_order_relaxed) - alloc_before);
  state.counters["allocs_per_encode"] =
      benchmark::Counter(allocs / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_DnsEncodeInto);

void BM_DnsDecodeInto(benchmark::State& state) {
  // Scratch-message decode (section vectors keep their capacity).
  const auto wire = sample_message().encode();
  dns::DnsMessage scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::DnsMessage::decode_into(wire, scratch));
  }
}
BENCHMARK(BM_DnsDecodeInto);

void BM_UdpEchoSteadyState(benchmark::State& state) {
  // The per-packet data path end to end: pooled payload -> flight slot ->
  // timer wheel -> flat dispatch -> pooled echo reply (the shared
  // simnet::UdpEchoHarness workload). Reports packets/sec
  // (items_per_second) and allocations per delivered packet, which the
  // pooled path keeps at exactly 0 after warm-up.
  simnet::Network net{1};
  simnet::UdpEchoHarness echo{net};

  echo.run_rounds(256);  // warm-up: pool, flight slots, wheel nodes

  const std::uint64_t alloc_before =
      g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t delivered_before = net.stats().packets_delivered;
  for (auto _ : state) {
    echo.run_rounds(1024);
  }
  const std::uint64_t delivered =
      net.stats().packets_delivered - delivered_before;
  const double allocs = static_cast<double>(
      g_allocations.load(std::memory_order_relaxed) - alloc_before);

  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
  state.counters["packets_per_sec"] = benchmark::Counter(
      static_cast<double>(delivered), benchmark::Counter::kIsRate);
  state.counters["allocs_per_delivered_packet"] = benchmark::Counter(
      delivered > 0 ? allocs / static_cast<double>(delivered) : 0.0);
}
BENCHMARK(BM_UdpEchoSteadyState);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simnet::EventLoop loop;
    int counter = 0;
    for (int i = 0; i < n; ++i) {
      loop.schedule_at(ms(i % 100), [&counter] { ++counter; });
    }
    loop.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventLoopScheduleRun)->Arg(100)->Arg(1000)->Arg(10000);

// ---- bench_eventloop_micro -------------------------------------------------
// The campaign hot path schedules DNS-timeout / TCP-retransmit / HE-attempt
// timers constantly; these isolate that path.

void BM_EventLoopScheduleCancelChurn(benchmark::State& state) {
  // Retransmit-timer profile: arm a timer, cancel it before it fires, arm
  // the next. Exercises slot recycling + generation bumping, with no event
  // ever executing.
  simnet::EventLoop loop;
  int armed = 0;
  for (auto _ : state) {
    const simnet::TimerId keep = loop.schedule_after(ms(5), [&armed] { ++armed; });
    const simnet::TimerId drop = loop.schedule_after(ms(10), [&armed] { ++armed; });
    benchmark::DoNotOptimize(loop.cancel(drop));
    benchmark::DoNotOptimize(loop.cancel(keep));
    loop.run_for(ms(0));  // prune the two dead heap nodes
  }
  benchmark::DoNotOptimize(armed);
}
BENCHMARK(BM_EventLoopScheduleCancelChurn);

void BM_EventLoopTimerChain(benchmark::State& state) {
  // Each callback schedules its successor — the self-sustaining pattern of
  // HE attempt timers. Measures steady-state schedule+dispatch cost.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simnet::EventLoop loop;
    int remaining = n;
    struct Chain {
      simnet::EventLoop* loop;
      int* remaining;
      void operator()() const {
        if (--*remaining > 0) loop->schedule_after(ms(1), *this);
      }
    };
    loop.schedule_after(ms(0), Chain{&loop, &remaining});
    loop.run();
    benchmark::DoNotOptimize(remaining);
  }
}
BENCHMARK(BM_EventLoopTimerChain)->Arg(1000)->Arg(10000);

void BM_InlineCallbackSmall(benchmark::State& state) {
  // Construction + dispatch of a capture that fits the inline buffer (the
  // common timer lambda shape: a couple of pointers).
  std::uint64_t counter = 0;
  std::uint64_t* p = &counter;
  for (auto _ : state) {
    simnet::InlineCallback cb{[p] { ++*p; }};
    cb();
    benchmark::DoNotOptimize(cb.is_inline());
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_InlineCallbackSmall);

void BM_StdFunctionSmall(benchmark::State& state) {
  // Same callable through std::function, for the comparison row.
  std::uint64_t counter = 0;
  std::uint64_t* p = &counter;
  for (auto _ : state) {
    std::function<void()> cb{[p] { ++*p; }};
    cb();
    benchmark::DoNotOptimize(&cb);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_StdFunctionSmall);

void BM_NetemProcess(benchmark::State& state) {
  simnet::NetemQdisc qdisc;
  qdisc.add_rule(simnet::PacketFilter::for_family(simnet::Family::kIpv6),
                 simnet::NetemSpec{ms(100), ms(10), 0.01});
  Rng rng{1};
  simnet::Packet packet;
  packet.src = {simnet::IpAddress::must_parse("2001:db8::1"), 1};
  packet.dst = {simnet::IpAddress::must_parse("2001:db8::2"), 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(qdisc.process(packet, rng));
  }
}
BENCHMARK(BM_NetemProcess);

void BM_AddressSelection(benchmark::State& state) {
  he::SelectionInput input;
  for (int i = 1; i <= 10; ++i) {
    input.ipv6.push_back({simnet::IpAddress::must_parse(
        "2001:db8::" + std::to_string(i)), std::nullopt, false});
    input.ipv4.push_back({simnet::IpAddress::must_parse(
        "10.0.0." + std::to_string(i)), std::nullopt, false});
  }
  he::HeOptions options;
  options.first_address_family_count = 2;
  options.interlace = he::InterlaceMode::kFirstOtherThenRest;
  for (auto _ : state) {
    benchmark::DoNotOptimize(he::select_addresses(input, options));
  }
}
BENCHMARK(BM_AddressSelection);

void BM_FullHappyEyeballsSession(benchmark::State& state) {
  for (auto _ : state) {
    simnet::Network net{1};
    simnet::Host& client_host = net.add_host("client");
    client_host.add_address(simnet::IpAddress::must_parse("10.0.0.2"));
    client_host.add_address(simnet::IpAddress::must_parse("2001:db8::2"));
    simnet::Host& server_host = net.add_host("server");
    server_host.add_address(simnet::IpAddress::must_parse("10.0.0.80"));
    server_host.add_address(simnet::IpAddress::must_parse("2001:db8::80"));

    transport::TcpStack server_tcp{server_host};
    server_tcp.listen(443);
    dns::AuthServer auth{server_host};
    dns::Zone& zone = auth.add_zone(dns::DnsName::must_parse("he.lab"));
    const auto name = dns::DnsName::must_parse("www.he.lab");
    zone.add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
    zone.add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));

    dns::StubOptions stub_options;
    stub_options.servers = {{simnet::IpAddress::must_parse("10.0.0.80"), 53}};
    dns::StubResolver stub{client_host, stub_options};
    transport::TcpStack client_tcp{client_host};
    he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
    engine.set_options(he::HeOptions::rfc8305());

    bool ok = false;
    engine.connect(name, 443, [&ok](const he::HeResult& r) { ok = r.ok; });
    net.loop().run();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FullHappyEyeballsSession);

}  // namespace

BENCHMARK_MAIN();
