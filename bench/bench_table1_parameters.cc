// Table 1: Comparison of parameters defined for HEv1, HEv2 and the HEv3
// draft — regenerated from the library's presets so that documentation and
// implementation cannot drift apart.
#include <cstdio>

#include "he/options.h"
#include "util/table.h"
#include "util/time.h"

using namespace lazyeye;

int main() {
  const he::HeOptions v1 = he::HeOptions::rfc6555();
  const he::HeOptions v2 = he::HeOptions::rfc8305();
  const he::HeOptions v3 = he::HeOptions::v3_draft();

  TextTable table{{"Parameter", "HEv1 (2012)", "HEv2 (2017)",
                   "HEv3 (draft)"}};
  table.add_row({"Considered protocols", "IPv4, IPv6", "IPv4, IPv6, DNS",
                 "IPv4, IPv6, DNS, QUIC"});
  table.add_row({"DNS Records", "-", "AAAA, A", "SVCB, HTTPS, AAAA, A"});

  auto rd = [](const he::HeOptions& o) {
    return o.resolution_delay ? format_duration(*o.resolution_delay)
                              : std::string{"-"};
  };
  table.add_row({"Resolution Delay", rd(v1), rd(v2), rd(v3)});

  table.add_row({"Address selection", "IPv6 once, then IPv4",
                 "alternating IP family",
                 "alternating IP family and L4 protocol"});
  table.add_row({"Fixed Conn. Attempt Delay",
                 "150-250 ms (rec. " +
                     format_duration(v1.connection_attempt_delay) + ")",
                 format_duration(v2.connection_attempt_delay),
                 format_duration(v3.connection_attempt_delay)});

  auto dyn = [](const he::HeOptions& o) {
    return format_duration(o.dynamic_cad.minimum) + " / " +
           format_duration(o.dynamic_cad.recommended_minimum) + " / " +
           format_duration(o.dynamic_cad.maximum);
  };
  table.add_row({"  Min/Rec./Max when dynamic", "-", dyn(v2), dyn(v3)});
  table.add_row({"Outcome cache TTL", format_duration(v1.cache_ttl),
                 format_duration(v2.cache_ttl), format_duration(v3.cache_ttl)});
  table.add_row({"SVCB / QUIC racing / ECH preference", "-", "-",
                 std::string{v3.use_svcb ? "yes" : "no"} + " / " +
                     (v3.race_quic ? "yes" : "no") + " / " +
                     (v3.prefer_ech ? "yes" : "no")});

  std::printf("Table 1: Happy Eyeballs parameters per version "
              "(from library presets)\n\n%s\n",
              table.render().c_str());
  std::printf("Paper reference: RD 50 ms (v2/v3); fixed CAD 250 ms; dynamic "
              "CAD 10 ms / 100 ms / 2 s.\n");
  return 0;
}
