// Table 3: resolver IPv6 usage as observed on the authoritative name
// server — AAAA query order, IPv6 share, maximum IPv6 delay tolerated, and
// IPv6 packets per resolution, for the local resolver software and every
// IPv6-capable open service.
#include <cstdio>
#include <vector>

#include "resolverlab/lab.h"
#include "resolvers/service_profiles.h"
#include "util/strings.h"
#include "util/table.h"

using namespace lazyeye;

int main() {
  resolverlab::LabConfig config = resolverlab::LabConfig::paper_grid();
  // More repetitions than the paper's 9: services with a ~10 % IPv6 share
  // need enough IPv6-choosing runs per delay bucket for the max-delay
  // estimate to stabilise (the simulation is cheap).
  config.repetitions = 40;
  // Cross-service campaign (v2): ALL Table 3 rows share one worker pool —
  // every (service, delay, repetition) cell lands in a single matrix, so
  // fast services' leftover capacity drains slow services' cells. Rows are
  // identical to per-service serial runs.
  config.workers = 0;

  TextTable table{{"Service", "AAAA Query", "IPv6 Share", "Max. IPv6 Delay",
                   "# IPv6 Pkts", "| paper:", "Share", "Delay", "Pkts"}};
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  table.set_align(4, TextTable::Align::kRight);
  table.set_align(6, TextTable::Align::kRight);
  table.set_align(7, TextTable::Align::kRight);
  table.set_align(8, TextTable::Align::kRight);

  std::vector<resolvers::ServiceProfile> services;
  for (const auto& service : resolvers::all_service_profiles()) {
    if (!service.ipv6_resolution_capable) continue;  // Table 4 exclusion
    services.push_back(service);
  }
  const auto rows = resolverlab::measure_services(services, config);

  bool separated = false;
  for (std::size_t s = 0; s < services.size(); ++s) {
    const auto& service = services[s];
    const auto& metrics = rows[s];
    if (!service.local_software && !separated) {
      table.add_separator();
      separated = true;
    }

    std::string order = metrics.aaaa_order_known
                            ? resolvers::aaaa_order_symbol(metrics.aaaa_order)
                            : "-";
    std::string delay = metrics.max_ipv6_delay
                            ? format_duration(*metrics.max_ipv6_delay)
                            : "-";
    if (metrics.delay_unmeasurable) delay += " (parallel)";

    table.add_row(
        {service.service, order,
         str_format("%.1f %%", metrics.ipv6_share * 100.0), delay,
         metrics.max_ipv6_packets > 0 ? std::to_string(metrics.max_ipv6_packets)
                                      : "-",
         "|", str_format("%.1f %%", service.expected_ipv6_share * 100.0),
         service.expected_max_delay
             ? format_duration(*service.expected_max_delay)
             : "-",
         service.expected_ipv6_packets
             ? std::to_string(*service.expected_ipv6_packets)
             : "-"});
  }

  std::printf("Table 3: resolver IPv6 usage observed at the authoritative "
              "name server\n");
  std::printf("(measured columns from this run's auth-side query logs; "
              "paper columns from Table 3)\n\n%s\n",
              table.render().c_str());
  std::printf(
      "Notes: measured max delay is quantised to the sweep grid (one\n"
      "millisecond below each distinctive timeout). Unbound additionally\n"
      "retries IPv6 in ~44%% of runs with its timeout backed off 3x\n"
      "(376 ms -> 1128 ms), visible as the second IPv6 packet.\n");
  return 0;
}
