// Table 4: tested open resolver services — address inventory and whether
// they can resolve domains with IPv6-only authoritative name servers
// (the four that cannot are excluded from Table 3).
#include <cstdio>

#include "resolverlab/lab.h"
#include "resolvers/service_profiles.h"
#include "util/table.h"

using namespace lazyeye;

int main() {
  TextTable table{{"Service", "# IPv4 Addrs", "# IPv6 Addrs",
                   "IPv6-only resolution", "In Table 3"}};
  table.set_align(1, TextTable::Align::kRight);
  table.set_align(2, TextTable::Align::kRight);

  int total = 0;
  int capable = 0;
  for (const auto& service : resolvers::open_service_profiles()) {
    ++total;
    const bool measured = resolverlab::check_ipv6_only_capability(service);
    if (measured) ++capable;
    table.add_row({service.service, std::to_string(service.ipv4_addresses),
                   std::to_string(service.ipv6_addresses),
                   measured ? "yes" : "NO", measured ? "yes" : "excluded"});
    // Cross-check the measurement against the published classification.
    if (measured != service.ipv6_resolution_capable) {
      std::printf("MISMATCH for %s: measured %d, paper %d\n",
                  service.service.c_str(), measured,
                  service.ipv6_resolution_capable);
    }
  }

  std::printf("Table 4: open resolver services (measured IPv6-only "
              "delegation capability)\n\n%s\n",
              table.render().c_str());
  std::printf("%d of %d open services resolve IPv6-only delegations "
              "(paper: 13 of 17; Hurricane Electric, Lumen, Dyn and G-Core "
              "cannot).\n",
              capable, total);
  return 0;
}
