// Table 5: operating systems and browsers of the web-based measurement
// campaign, extracted from the user agents reported by each simulated
// client session (Linux/Ubuntu UAs carry no OS version — same gap as the
// paper notes).
#include <cstdio>
#include <set>

#include "clients/profiles.h"
#include "clients/user_agent.h"
#include "util/table.h"
#include "webtool/webtool.h"

using namespace lazyeye;

int main() {
  // The simulated campaign: browser/OS combinations mirroring Table 5.
  struct Session {
    const char* browser;
    const char* version;
    const char* os;
    const char* os_version;
  };
  const std::vector<Session> campaign{
      {"Chrome Mobile", "127.0.0", "Android", "10"},
      {"Chrome Mobile", "130.0.0", "Android", "10"},
      {"Firefox Mobile", "131.0", "Android", "10"},
      {"Samsung Internet", "26.0", "Android", "10"},
      {"Firefox Mobile", "125.0", "Android", "14"},
      {"Firefox Mobile", "128.0", "Android", "14"},
      {"Firefox Mobile", "131.0", "Android", "14"},
      {"Chrome", "129.0.0", "Chrome OS", "14541.0.0"},
      {"Chrome", "130.0.0", "Linux", ""},
      {"Firefox", "128.0", "Linux", ""},
      {"Firefox", "130.0", "Linux", ""},
      {"Firefox", "131.0", "Linux", ""},
      {"Firefox", "132.0", "Linux", ""},
      {"Firefox", "128.0", "Mac OS X", "10.15"},
      {"Firefox", "131.0", "Mac OS X", "10.15"},
      {"Firefox", "132.0", "Mac OS X", "10.15"},
      {"Chrome", "127.0.0", "Mac OS X", "10.15.7"},
      {"Chrome", "129.0.0", "Mac OS X", "10.15.7"},
      {"Chrome", "130.0.0", "Mac OS X", "10.15.7"},
      {"Opera", "114.0.0", "Mac OS X", "10.15.7"},
      {"Safari", "17.4.1", "Mac OS X", "10.15.7"},
      {"Safari", "17.5", "Mac OS X", "10.15.7"},
      {"Safari", "17.6", "Mac OS X", "10.15.7"},
      {"Safari", "18.0.1", "Mac OS X", "10.15.7"},
      {"Firefox", "128.0", "Ubuntu", ""},
      {"Firefox", "131.0", "Ubuntu", ""},
      {"Chrome", "127.0.0", "Windows 10", ""},
      {"Edge", "130.0.0", "Windows 10", ""},
      {"Firefox", "130.0", "Windows 10", ""},
      {"Mobile Safari", "17.5", "iOS", "17.5.1"},
      {"Mobile Safari", "17.6", "iOS", "17.6"},
      {"Mobile Safari", "17.6", "iOS", "17.6.1"},
      {"Mobile Safari", "18.1", "iOS", "18.1"},
  };

  TextTable table{{"OS Name", "OS Version", "Browser", "Browser Version"}};
  std::set<std::string> distinct;
  for (const auto& session : campaign) {
    // Build the UA the browser would send, then extract OS/browser from it
    // (the paper's methodology — the UA is all the web tool gets).
    const std::string ua = clients::make_user_agent(
        session.browser, session.version, session.os, session.os_version);
    const auto info = clients::parse_user_agent(ua);
    table.add_row({info.os_name, info.os_version, info.browser,
                   info.browser_version});
    distinct.insert(info.os_name + "|" + info.browser + "|" +
                    info.browser_version);
  }

  std::printf("Table 5: OS / browser combinations in the web campaign "
              "(extracted from user agents)\n\n%s\n",
              table.render().c_str());
  std::printf("%zu sessions, %zu distinct OS+browser-version combinations "
              "(paper: 33 rows across 9 browsers, 22 versions, 7 OSes).\n",
              campaign.size(), distinct.size());
  return 0;
}
