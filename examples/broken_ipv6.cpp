// The paper's §5.2 headline finding, reproduced end to end:
//
//   "Problems with the DNS A record lookup can even delay and interrupt
//    the network connectivity despite a fully functional IPv6 setup with
//    Chrome and Firefox."
//
// We delay only the *A* (IPv4!) DNS answer and watch three clients:
//   * Chrome  — waits for the A answer; fails completely when it times out
//   * Chrome with the HEv3 feature flag — fixed (Resolution Delay)
//   * Safari  — connects via IPv6 immediately, unaffected
#include <cstdio>

#include "clients/profiles.h"
#include "testbed/testbed.h"

using namespace lazyeye;

namespace {

void show(const char* label, const testbed::RunRecord& rec) {
  std::printf("%-28s -> %s", label,
              rec.fetch_ok ? "connected" : "FAILED   ");
  if (rec.established_family) {
    std::printf(" via %s", simnet::family_name(*rec.established_family));
  }
  std::printf(" after %s\n", format_duration(rec.completion_time).c_str());
}

}  // namespace

int main() {
  std::printf("Scenario: IPv6 fully healthy; the DNS *A* answer is slow.\n");
  std::printf("Resolver timeout: 1 s. A-record delay: 3 s.\n\n");

  testbed::TestbedOptions options;
  options.dns_timeout_override = sec(1);
  testbed::LocalTestbed bed{options};

  show("Chrome 130 (default)",
       bed.run_rd_case(clients::chromium_profile("Chrome", "130.0", ""),
                       dns::RrType::kA, sec(3)));
  show("Firefox 132",
       bed.run_rd_case(clients::firefox_profile("132.0", ""),
                       dns::RrType::kA, sec(3)));
  show("Chrome 130 (HEv3 flag)",
       bed.run_rd_case(
           clients::chromium_profile("Chrome", "130.0", "", /*hev3=*/true),
           dns::RrType::kA, sec(3)));
  show("Safari 17.6",
       bed.run_rd_case(clients::safari_profile("17.6"), dns::RrType::kA,
                       sec(3)));
  show("curl 7.88.1",
       bed.run_rd_case(clients::curl_profile(), dns::RrType::kA, sec(3)));

  std::printf(
      "\nWith a moderate A delay (800 ms, below the resolver timeout) the\n"
      "browsers do connect via IPv6 — but only after the A answer arrives:\n\n");
  show("Chrome 130 (default)",
       bed.run_rd_case(clients::chromium_profile("Chrome", "130.0", ""),
                       dns::RrType::kA, ms(800)));
  show("Safari 17.6",
       bed.run_rd_case(clients::safari_profile("17.6"), dns::RrType::kA,
                       ms(800)));
  return 0;
}
