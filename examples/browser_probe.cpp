// Probe a single client's Happy Eyeballs behaviour on the local testbed:
// binary-search its CAD, then run the RD and address-selection cases.
//
//   $ ./examples/browser_probe "Chrome 130.0"
//   $ ./examples/browser_probe "Safari 17.6"
//   $ ./examples/browser_probe            # lists available clients
#include <cstdio>

#include "clients/profiles.h"
#include "testbed/features.h"
#include "testbed/testbed.h"

using namespace lazyeye;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s \"<client display name>\"\n\navailable clients:\n",
                argv[0]);
    for (const auto& p : clients::all_client_profiles()) {
      std::printf("  %s\n", p.display_name().c_str());
    }
    return 1;
  }

  const auto profile = clients::find_client_profile(argv[1]);
  if (!profile) {
    std::fprintf(stderr, "unknown client: %s (run without arguments for the "
                         "list)\n", argv[1]);
    return 1;
  }

  testbed::LocalTestbed bed;
  std::printf("Probing %s (%s)\n\n", profile->display_name().c_str(),
              clients::client_kind_name(profile->kind));

  // Binary-search the CAD between 0 and 6 s (millisecond resolution).
  SimTime lo = ms(0);
  SimTime hi = sec(6);
  bool any_fallback = false;
  {
    const auto probe = bed.run_cad_case(*profile, hi);
    any_fallback = probe.established_family == simnet::Family::kIpv4;
  }
  if (any_fallback) {
    while (hi - lo > ms(1)) {
      const SimTime mid = (lo + hi) / 2;
      const auto rec = bed.run_cad_case(*profile, mid);
      if (rec.established_family == simnet::Family::kIpv6) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    std::printf("Connection Attempt Delay: ~%s (IPv6 up to %s, IPv4 from "
                "%s)\n",
                format_duration(hi).c_str(), format_duration(lo).c_str(),
                format_duration(hi).c_str());
  } else {
    std::printf("Connection Attempt Delay: none observed (no IPv4 fallback "
                "within 6 s)\n");
  }

  const auto row = testbed::detect_features(*profile, bed);
  std::printf("Prefers IPv6:             %s\n",
              testbed::feature_symbol(row.prefers_ipv6));
  std::printf("AAAA query first:         %s\n",
              testbed::feature_symbol(row.aaaa_first));
  std::printf("Resolution Delay:         %s\n",
              testbed::feature_symbol(row.rd_impl));
  std::printf("Address selection:        %s\n",
              testbed::feature_symbol(row.addr_selection));
  std::printf("Addresses used (v6/v4):   %d / %d\n", row.ipv6_addrs_used,
              row.ipv4_addrs_used);
  std::printf("\n(* observed, ~ deviation, o not observed)\n");
  return 0;
}
