// Replay one conformance cell from its one-line repro — the single
// documented command every verdict-table violation points back to:
//
//   $ ./build/example_conformance_probe "Chrome 130.0" tcp-reset 1 7 3
//   $ ./build/example_conformance_probe "wget 1.21" none 1 0 0
//   $ ./build/example_conformance_probe "curl 7.88.1" --schedule 1 250 4
//   $ ./build/example_conformance_probe "Edge 130.0" --schedule-hex 0000...01
//   $ ./build/example_conformance_probe            # lists clients and faults
//
// Single-fault cells replay from the plan's (seed, stream, index) triple;
// compound-schedule cells replay either from the schedule's generation
// triple (--schedule) or from the exact schedule bytes (--schedule-hex, the
// form the fault hunt's corpus and the verdict table print for mutated
// schedules). Either way the cell's whole world derives from the handle, so
// the verdicts printed here match the campaign's bit for bit.
//
// Argument handling is strict: unknown clients or fault names, non-numeric
// or out-of-range numbers, and undecodable hex all fail with usage text and
// a non-zero exit — a repro line that cannot run exactly must never half-run.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "clients/profiles.h"
#include "conformance/checker.h"
#include "conformance/schedule.h"

using namespace lazyeye;

namespace {

int usage(const char* argv0) {
  std::printf(
      "usage: %s \"<client>\" <fault> <seed> <stream> <index> [fetches]\n"
      "       %s \"<client>\" --schedule <seed> <stream> <index> [fetches]\n"
      "       %s \"<client>\" --schedule-hex <hex> [fetches]\n"
      "\navailable clients:\n",
      argv0, argv0, argv0);
  for (const auto& p : clients::local_testbed_profiles()) {
    std::printf("  %s\n", p.display_name().c_str());
  }
  std::printf("\nfault kinds:\n");
  for (const auto kind : conformance::all_fault_kinds()) {
    std::printf("  %s\n", conformance::fault_kind_name(kind));
  }
  return 2;
}

/// Strict base-10 parse: the whole token, no sign, no overflow — else false.
bool parse_u64(const char* s, std::uint64_t& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' ||
      std::strchr(s, '-') != nullptr) {
    return false;
  }
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_u32(const char* s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xFFFFFFFFULL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_fetches(const char* s, int& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v < 1 || v > 16) return false;
  out = static_cast<int>(v);
  return true;
}

void print_record(const conformance::ConformanceRecord& record,
                  const char* against) {
  std::printf("%s vs %s  (fetches=%d)\n", record.client.c_str(), against,
              record.fetches);
  std::printf("fetch: first=%s final=%s\n",
              record.first_fetch_ok ? "ok" : "fail",
              record.fetch_ok ? "ok" : "fail");
  for (const auto& v : record.verdicts) {
    std::printf("  [%c] %-18s %s\n",
                conformance::rule_outcome_symbol(v.outcome), v.rule.c_str(),
                v.evidence.c_str());
  }
  std::printf("violations: %d\n", record.violations());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);

  const auto profile = clients::find_client_profile(argv[1]);
  if (!profile) {
    std::fprintf(stderr, "unknown client: %s (run without arguments for the "
                         "list)\n", argv[1]);
    return 1;
  }

  if (std::strcmp(argv[2], "--schedule") == 0) {
    if (argc < 6 || argc > 7) return usage(argv[0]);
    std::uint64_t seed = 0;
    std::uint32_t stream = 0;
    std::uint32_t index = 0;
    int fetches = 2;
    if (!parse_u64(argv[3], seed) || !parse_u32(argv[4], stream) ||
        !parse_u32(argv[5], index) ||
        (argc == 7 && !parse_fetches(argv[6], fetches))) {
      std::fprintf(stderr, "bad --schedule arguments (want numeric seed, "
                           "stream, index, [fetches 1..16])\n");
      return usage(argv[0]);
    }
    const conformance::FaultSchedule schedule =
        conformance::FaultSchedule::generate(seed, stream, index);
    conformance::ConformanceOptions options;
    options.seed = seed;
    const conformance::ConformanceHarness harness{options};
    const auto record = harness.replay_schedule(*profile, schedule, fetches);
    std::printf("# %s (%zu entries)\n", schedule.repro().c_str(),
                schedule.entries.size());
    print_record(record, "compound schedule");
    return 0;
  }

  if (std::strcmp(argv[2], "--schedule-hex") == 0) {
    if (argc < 4 || argc > 5) return usage(argv[0]);
    int fetches = 2;
    if (argc == 5 && !parse_fetches(argv[4], fetches)) {
      std::fprintf(stderr, "bad fetches: %s (want 1..16)\n", argv[4]);
      return usage(argv[0]);
    }
    const auto schedule = conformance::schedule_from_hex(argv[3]);
    if (!schedule) {
      std::fprintf(stderr, "undecodable schedule hex (truncated or corrupt "
                           "repro line?)\n");
      return 1;
    }
    conformance::ConformanceOptions options;
    options.seed = schedule->seed;
    const conformance::ConformanceHarness harness{options};
    const auto record = harness.replay_schedule(*profile, *schedule, fetches);
    std::printf("# schedule seed=%llu stream=%u index=%u (%zu entries)\n",
                static_cast<unsigned long long>(schedule->seed),
                schedule->stream, schedule->index, schedule->entries.size());
    print_record(record, "compound schedule");
    return 0;
  }

  if (argc < 6 || argc > 7) return usage(argv[0]);
  const auto kind = conformance::fault_kind_from_name(argv[2]);
  if (!kind) {
    std::fprintf(stderr, "unknown fault kind: %s (run without arguments for "
                         "the list)\n", argv[2]);
    return 1;
  }

  conformance::FaultPlan plan;
  plan.kind = *kind;
  int fetches = 2;
  if (!parse_u64(argv[3], plan.seed) || !parse_u32(argv[4], plan.stream) ||
      !parse_u32(argv[5], plan.index) ||
      (argc == 7 && !parse_fetches(argv[6], fetches))) {
    std::fprintf(stderr, "bad plan arguments (want numeric seed, stream, "
                         "index, [fetches 1..16])\n");
    return usage(argv[0]);
  }

  // The differential campaign derives every cell plan from its own seed, so
  // matching its harness options means matching its worlds.
  conformance::ConformanceOptions options;
  options.seed = plan.seed;
  const conformance::ConformanceHarness harness{options};
  const auto record = harness.replay(*profile, plan, fetches);

  std::printf("# %s\n", record.fault.repro().c_str());
  print_record(record, conformance::fault_kind_name(record.fault.kind));
  return 0;
}
