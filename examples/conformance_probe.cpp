// Replay one conformance cell from its one-line repro — the single
// documented command every verdict-table violation points back to:
//
//   $ ./build/example_conformance_probe "Chrome 130.0" tcp-reset 1 7 3
//   $ ./build/example_conformance_probe "wget 1.21" none 1 0 0
//   $ ./build/example_conformance_probe            # lists clients and faults
//
// Arguments: "<client display name>" <fault> <seed> <stream> <index>
// [fetches]. The fault plan's (seed, stream, index) triple pins the cell's
// whole world, so the verdicts printed here match the campaign's bit for
// bit.
#include <cstdio>
#include <cstdlib>

#include "clients/profiles.h"
#include "conformance/checker.h"

using namespace lazyeye;

int main(int argc, char** argv) {
  if (argc < 6) {
    std::printf("usage: %s \"<client>\" <fault> <seed> <stream> <index> "
                "[fetches]\n\navailable clients:\n", argv[0]);
    for (const auto& p : clients::local_testbed_profiles()) {
      std::printf("  %s\n", p.display_name().c_str());
    }
    std::printf("\nfault kinds:\n");
    for (const auto kind : conformance::all_fault_kinds()) {
      std::printf("  %s\n", conformance::fault_kind_name(kind));
    }
    return 1;
  }

  const auto profile = clients::find_client_profile(argv[1]);
  if (!profile) {
    std::fprintf(stderr, "unknown client: %s (run without arguments for the "
                         "list)\n", argv[1]);
    return 1;
  }
  const auto kind = conformance::fault_kind_from_name(argv[2]);
  if (!kind) {
    std::fprintf(stderr, "unknown fault kind: %s (run without arguments for "
                         "the list)\n", argv[2]);
    return 1;
  }

  conformance::FaultPlan plan;
  plan.kind = *kind;
  plan.seed = std::strtoull(argv[3], nullptr, 10);
  plan.stream = static_cast<std::uint32_t>(std::strtoul(argv[4], nullptr, 10));
  plan.index = static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10));
  const int fetches = argc > 6 ? std::atoi(argv[6]) : 2;

  // The differential campaign derives every cell plan from its own seed, so
  // matching its harness options means matching its worlds.
  conformance::ConformanceOptions options;
  options.seed = plan.seed;
  const conformance::ConformanceHarness harness{options};
  const auto record = harness.replay(*profile, plan, fetches);

  std::printf("%s vs %s  (%s, fetches=%d)\n", record.client.c_str(),
              conformance::fault_kind_name(record.fault.kind),
              record.fault.repro().c_str(), record.fetches);
  std::printf("fetch: first=%s final=%s\n",
              record.first_fetch_ok ? "ok" : "fail",
              record.fetch_ok ? "ok" : "fail");
  for (const auto& v : record.verdicts) {
    std::printf("  [%c] %-18s %s\n",
                conformance::rule_outcome_symbol(v.outcome), v.rule.c_str(),
                v.evidence.c_str());
  }
  std::printf("violations: %d\n", record.violations());
  return 0;
}
