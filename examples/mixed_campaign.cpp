// Campaign API v2 showcase: one worker pool, three measurement layers.
//
// Builds a single mixed-kind matrix — a multi-client testbed CAD batch
// (Chrome + Firefox + curl), a web-tool repetition, and resolver-lab cells
// for two Table 3 services — registers each layer's executor in one
// campaign::Registry, and streams the cells through a ResultSink in spec
// order. The same matrix is byte-identical at any worker count.
//
//   $ ./example_mixed_campaign
#include <cstdio>
#include <variant>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/sink.h"
#include "clients/profiles.h"
#include "resolverlab/lab.h"
#include "testbed/testbed.h"
#include "util/strings.h"
#include "webtool/webtool.h"

using namespace lazyeye;

using MixedOutcome = std::variant<testbed::RunRecord,
                                  webtool::RepetitionOutcome,
                                  resolverlab::RunObservation>;

int main() {
  // ---- Assemble the matrix -------------------------------------------------
  const std::vector<clients::ClientProfile> clients_pool{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::firefox_profile("132.0", "10-2024"),
      clients::curl_profile(),
  };

  testbed::LocalTestbed bed;
  std::vector<campaign::ScenarioSpec> specs = bed.multi_client_cad_specs(
      clients_pool, testbed::SweepSpec{ms(0), ms(400), ms(200)});

  webtool::WebToolConfig web_config = webtool::WebToolConfig::paper_default();
  web_config.repetitions = 1;
  webtool::WebTool tool{web_config};
  for (auto& spec :
       tool.campaign_specs(clients_pool[0], /*rd_mode=*/false,
                           dns::RrType::kAaaa)) {
    specs.push_back(std::move(spec));
  }

  resolverlab::LabConfig lab_config;
  lab_config.delay_grid = {ms(0), ms(375)};
  lab_config.repetitions = 2;
  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  if (!unbound || !bind) {
    std::fprintf(stderr, "service profiles missing\n");
    return 1;
  }
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};
  for (auto& spec :
       resolverlab::cross_service_cell_specs(services, lab_config)) {
    specs.push_back(std::move(spec));
  }

  // Re-number the joint matrix densely (ids double as result slots).
  for (std::size_t i = 0; i < specs.size(); ++i) specs[i].id = i;

  // ---- Register executors, run once, stream results ------------------------
  campaign::Registry<MixedOutcome> registry;
  testbed::register_executors(registry, bed, clients_pool);
  webtool::register_executor(registry, tool, clients_pool);
  resolverlab::register_executor(registry, services);

  std::printf("Mixed-kind campaign: %zu cells (testbed CAD x %zu clients, "
              "webtool, resolver lab x %zu services) in one pool\n\n",
              specs.size(), clients_pool.size(), services.size());
  std::printf("%-6s %-14s %-34s %s\n", "cell", "case", "label", "outcome");

  campaign::RunnerOptions options;
  options.workers = 0;  // one per hardware thread
  campaign::CallbackSink<MixedOutcome> sink{[](const campaign::ScenarioSpec& spec,
                                               MixedOutcome outcome) {
    std::string summary = std::visit(
        [](const auto& o) -> std::string {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, testbed::RunRecord>) {
            return str_format(
                "established=%s cad=%s",
                o.established_family
                    ? (*o.established_family == simnet::Family::kIpv6 ? "v6"
                                                                      : "v4")
                    : "-",
                o.observed_cad ? format_duration(*o.observed_cad).c_str()
                               : "-");
          } else if constexpr (std::is_same_v<T, webtool::RepetitionOutcome>) {
            int v6 = 0;
            int v4 = 0;
            for (const auto& family : o.families) {
              if (!family) continue;
              (*family == simnet::Family::kIpv6 ? v6 : v4) += 1;
            }
            return str_format("buckets v6=%d v4=%d inconsistent=%s", v6, v4,
                              o.inconsistent ? "yes" : "no");
          } else {
            return str_format("resolved=%s first-query=%s v6-main=%d",
                              o.resolved ? "yes" : "no",
                              o.first_query_v6 ? "v6" : "v4",
                              o.v6_main_queries);
          }
        },
        outcome);
    std::printf("%-6llu %-14s %-34s %s\n",
                static_cast<unsigned long long>(spec.id),
                campaign::case_name(spec.payload), spec.label.c_str(),
                summary.c_str());
  }};
  registry.run(campaign::CampaignRunner{options}, specs, sink);

  std::printf("\nCells streamed in spec order; rerun with any worker count "
              "for byte-identical output.\n");
  return 0;
}
