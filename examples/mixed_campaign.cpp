// Campaign fast-path showcase: one persistent worker pool, three
// measurement layers, a lazy mixed-kind matrix, streaming delivery.
//
// Builds a single mixed-kind matrix — a multi-client testbed CAD batch
// (Chrome + Firefox + curl), a web-tool repetition, and resolver-lab cells
// for two Table 3 services — as a lazy SpecStream (no spec vector is ever
// materialised), registers each layer's executor in one campaign::Registry,
// and streams the cells through a ResultSink in spec order with claim-
// cursor backpressure bounding the reorder buffer. Both campaigns below run
// on the process-wide WorkerPool, so the second one reuses the first one's
// parked threads. The same matrix is byte-identical at any worker count and
// any max_reorder_ahead.
//
//   $ ./example_mixed_campaign
#include <cstdio>
#include <variant>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/sink.h"
#include "campaign/spec_stream.h"
#include "campaign/worker_pool.h"
#include "clients/profiles.h"
#include "resolverlab/lab.h"
#include "testbed/testbed.h"
#include "util/strings.h"
#include "webtool/webtool.h"

using namespace lazyeye;

using MixedOutcome = std::variant<testbed::RunRecord,
                                  webtool::RepetitionOutcome,
                                  resolverlab::RunObservation>;

int main() {
  // ---- Describe the matrix lazily ------------------------------------------
  const std::vector<clients::ClientProfile> clients_pool{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::firefox_profile("132.0", "10-2024"),
      clients::curl_profile(),
  };

  testbed::LocalTestbed bed;
  const campaign::SpecStream testbed_cells = bed.multi_client_cad_stream(
      clients_pool, testbed::SweepSpec{ms(0), ms(400), ms(200)});

  webtool::WebToolConfig web_config = webtool::WebToolConfig::paper_default();
  web_config.repetitions = 1;
  web_config.workers = 2;  // force the pool path even on 1-core boxes
  webtool::WebTool tool{web_config};
  const campaign::SpecStream web_cells = tool.campaign_spec_stream(
      clients_pool[0], /*rd_mode=*/false, dns::RrType::kAaaa);

  resolverlab::LabConfig lab_config;
  lab_config.delay_grid = {ms(0), ms(375)};
  lab_config.repetitions = 2;
  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  if (!unbound || !bind) {
    std::fprintf(stderr, "service profiles missing\n");
    return 1;
  }
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};
  const campaign::SpecStream resolver_cells =
      resolverlab::cross_service_cell_spec_stream(services, lab_config);

  // Concatenate the three layer streams into one lazy joint matrix: cells
  // are generated only when a worker claims them, and ids are re-numbered
  // densely on the fly (ids double as result slots).
  const std::size_t n_testbed = testbed_cells.size();
  const std::size_t n_web = web_cells.size();
  const std::size_t total = n_testbed + n_web + resolver_cells.size();
  const campaign::SpecStream specs{
      total, [&](std::size_t i) {
        campaign::ScenarioSpec spec =
            i < n_testbed ? testbed_cells.at(i)
            : i < n_testbed + n_web
                ? web_cells.at(i - n_testbed)
                : resolver_cells.at(i - n_testbed - n_web);
        spec.id = i;
        return spec;
      }};

  // ---- Register executors, run once, stream results ------------------------
  campaign::Registry<MixedOutcome> registry;
  testbed::register_executors(registry, bed, clients_pool);
  webtool::register_executor(registry, tool, clients_pool);
  resolverlab::register_executor(registry, services);

  std::printf("Mixed-kind campaign: %zu lazily-generated cells (testbed CAD "
              "x %zu clients, webtool, resolver lab x %zu services) in one "
              "persistent pool\n\n",
              total, clients_pool.size(), services.size());
  std::printf("%-6s %-14s %-34s %s\n", "cell", "case", "label", "outcome");

  campaign::RunnerOptions options;
  options.workers = 4;            // explicit: pool path even on 1-core boxes
  options.max_reorder_ahead = 8;  // bound the reorder buffer at 8 cells
  options.pool = &campaign::WorkerPool::shared();
  campaign::CallbackSink<MixedOutcome> sink{[](const campaign::ScenarioSpec& spec,
                                               MixedOutcome outcome) {
    std::string summary = std::visit(
        [](const auto& o) -> std::string {
          using T = std::decay_t<decltype(o)>;
          if constexpr (std::is_same_v<T, testbed::RunRecord>) {
            return str_format(
                "established=%s cad=%s",
                o.established_family
                    ? (*o.established_family == simnet::Family::kIpv6 ? "v6"
                                                                      : "v4")
                    : "-",
                o.observed_cad ? format_duration(*o.observed_cad).c_str()
                               : "-");
          } else if constexpr (std::is_same_v<T, webtool::RepetitionOutcome>) {
            int v6 = 0;
            int v4 = 0;
            for (const auto& family : o.families) {
              if (!family) continue;
              (*family == simnet::Family::kIpv6 ? v6 : v4) += 1;
            }
            return str_format("buckets v6=%d v4=%d inconsistent=%s", v6, v4,
                              o.inconsistent ? "yes" : "no");
          } else {
            return str_format("resolved=%s first-query=%s v6-main=%d",
                              o.resolved ? "yes" : "no",
                              o.first_query_v6 ? "v6" : "v4",
                              o.v6_main_queries);
          }
        },
        outcome);
    std::printf("%-6llu %-14s %-34s %s\n",
                static_cast<unsigned long long>(spec.id),
                campaign::case_name(spec.payload), spec.label.c_str(),
                summary.c_str());
  }};
  const campaign::CampaignRunner runner{options};
  registry.run(runner, specs, sink);

  // ---- Second campaign on the same (already warm) pool ---------------------
  webtool::WebToolConfig second_config = webtool::WebToolConfig::paper_default();
  second_config.repetitions = 4;  // 4 repetition cells shard across the pool
  second_config.workers = 2;
  const auto report = webtool::WebTool{second_config}.run_cad_test(clients_pool[0]);
  std::printf("\nSecond campaign on the warm pool: webtool CAD interval for "
              "%s = (%s, %s]\n",
              report.client.c_str(),
              report.interval_low ? format_duration(*report.interval_low).c_str()
                                  : "-",
              report.interval_high
                  ? format_duration(*report.interval_high).c_str()
                  : "-");

  const campaign::WorkerPool& pool = campaign::WorkerPool::shared();
  std::printf("\nShared pool: %d threads started once, %llu campaigns "
              "served; reorder buffer high-water %zu (cap %zu). Rerun with "
              "any worker count or cap for byte-identical output.\n",
              pool.threads_started(),
              static_cast<unsigned long long>(pool.jobs_run()),
              runner.last_run_stats().reorder_high_water,
              options.max_reorder_ahead);
  return 0;
}
