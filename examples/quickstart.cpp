// Quickstart: build a tiny dual-stack world, run one Happy Eyeballs
// connection with RFC 8305 defaults, and print the engine's event trace.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "dns/auth_server.h"
#include "he/engine.h"
#include "simnet/network.h"

using namespace lazyeye;

int main() {
  // 1. A simulated network with a client, a dual-stack web server, and a
  //    DNS server (all virtual time; the run takes microseconds of CPU).
  simnet::Network net{/*seed=*/1};
  simnet::Host& client_host = net.add_host("client");
  client_host.add_address(simnet::IpAddress::must_parse("10.0.0.2"));
  client_host.add_address(simnet::IpAddress::must_parse("2001:db8::2"));
  simnet::Host& server_host = net.add_host("server");
  server_host.add_address(simnet::IpAddress::must_parse("10.0.0.80"));
  server_host.add_address(simnet::IpAddress::must_parse("2001:db8::80"));

  // 2. Services: a TCP listener on :443 and an authoritative DNS zone.
  transport::TcpStack server_tcp{server_host};
  server_tcp.listen(443);
  dns::AuthServer auth{server_host};
  dns::Zone& zone = auth.add_zone(dns::DnsName::must_parse("example.lab"));
  const auto host = dns::DnsName::must_parse("www.example.lab");
  zone.add_a(host, *simnet::Ipv4Address::parse("10.0.0.80"));
  zone.add_aaaa(host, *simnet::Ipv6Address::parse("2001:db8::80"));

  // 3. Make IPv6 a bit painful: 400 ms extra delay on the server's v6 path.
  server_host.egress().add_rule(
      simnet::PacketFilter::for_family(simnet::Family::kIpv6),
      simnet::NetemSpec::delay_only(ms(400)), "broken-ish v6");

  // 4. A Happy Eyeballs client with RFC 8305 defaults (CAD 250 ms, RD 50 ms).
  dns::StubOptions stub_options;
  stub_options.servers = {{simnet::IpAddress::must_parse("10.0.0.80"), 53}};
  dns::StubResolver stub{client_host, stub_options};
  transport::TcpStack client_tcp{client_host};
  he::HappyEyeballsEngine engine{client_host, stub, client_tcp};
  engine.set_options(he::HeOptions::rfc8305());

  engine.connect(host, 443, [](const he::HeResult& result) {
    std::printf("connected: %s via %s after %s\n\n",
                result.ok ? "yes" : "no",
                result.ok ? result.remote.to_string().c_str() : "-",
                format_duration(result.elapsed()).c_str());
    std::printf("%-12s %-18s %s\n", "time", "event", "detail");
    for (const auto& event : result.trace) {
      std::printf("%-12s %-18s %s\n", format_duration(event.time).c_str(),
                  he::he_event_type_name(event.type), event.detail.c_str());
    }
  });

  net.loop().run();
  return 0;
}
