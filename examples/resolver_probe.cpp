// Measure one recursive resolver service in the resolver lab and print its
// Table-3-style row plus the raw per-delay observations.
//
//   $ ./examples/resolver_probe Unbound
//   $ ./examples/resolver_probe "Quad9 DNS"
//   $ ./examples/resolver_probe            # lists available services
#include <cstdio>

#include "resolverlab/lab.h"
#include "resolvers/service_profiles.h"
#include "util/strings.h"

using namespace lazyeye;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: %s \"<service>\"\n\navailable services:\n", argv[0]);
    for (const auto& s : resolvers::all_service_profiles()) {
      std::printf("  %-18s %s\n", s.service.c_str(),
                  s.ipv6_resolution_capable ? "" : "(no IPv6-only resolution)");
    }
    return 1;
  }

  const auto service = resolvers::find_service_profile(argv[1]);
  if (!service) {
    std::fprintf(stderr, "unknown service: %s\n", argv[1]);
    return 1;
  }

  std::printf("Service: %s (%s)\n", service->service.c_str(),
              service->local_software ? "local software" : "open service");
  std::printf("IPv6-only delegation resolvable: %s\n\n",
              resolverlab::check_ipv6_only_capability(*service) ? "yes" : "NO");
  if (!service->ipv6_resolution_capable) {
    std::printf("Excluded from the Table 3 measurement (paper §5.3).\n");
    return 0;
  }

  resolverlab::LabConfig config = resolverlab::LabConfig::paper_grid();
  config.repetitions = 20;
  const auto metrics = resolverlab::measure_service(*service, config);

  std::printf("AAAA query order:   %s\n",
              metrics.aaaa_order_known
                  ? resolvers::aaaa_order_symbol(metrics.aaaa_order)
                  : "(no NS-name queries seen)");
  std::printf("IPv6 share:         %.1f %%  (paper: %.1f %%)\n",
              metrics.ipv6_share * 100.0,
              service->expected_ipv6_share * 100.0);
  std::printf("Max IPv6 delay:     %s  (paper: %s)%s\n",
              metrics.max_ipv6_delay
                  ? format_duration(*metrics.max_ipv6_delay).c_str()
                  : "-",
              service->expected_max_delay
                  ? format_duration(*service->expected_max_delay).c_str()
                  : "-",
              metrics.delay_unmeasurable ? "  [parallel NS queries]" : "");
  std::printf("Max IPv6 packets:   %d  (paper: %s)\n\n",
              metrics.max_ipv6_packets,
              service->expected_ipv6_packets
                  ? std::to_string(*service->expected_ipv6_packets).c_str()
                  : "-");

  std::printf("%-12s %-10s %-10s\n", "delay", "v6-answers", "runs-choosing-v6");
  for (const SimTime delay : config.delay_grid) {
    int v6_answers = 0;
    int v6_chosen = 0;
    for (const auto& run : metrics.runs) {
      if (run.configured_delay != delay) continue;
      if (run.first_query_v6) ++v6_chosen;
      if (run.answer_via_v6) ++v6_answers;
    }
    std::printf("%-12s %-10d %-10d\n", format_duration(delay).c_str(),
                v6_answers, v6_chosen);
  }
  return 0;
}
