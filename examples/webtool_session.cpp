// Emulate a visit to the web-based testing tool (happy-eyeballs.net) with a
// chosen browser: run the 18-bucket CAD test and the RD test, print what
// the website would show the user.
//
//   $ ./examples/webtool_session "Safari 17.6"
//   $ ./examples/webtool_session "Chrome 130.0"
#include <cstdio>

#include "clients/profiles.h"
#include "webtool/webtool.h"

using namespace lazyeye;

int main(int argc, char** argv) {
  const std::string wanted = argc > 1 ? argv[1] : "Safari 17.6";
  const auto profile = clients::find_client_profile(wanted);
  if (!profile) {
    std::fprintf(stderr, "unknown client: %s\n", wanted.c_str());
    return 1;
  }

  webtool::WebToolConfig config = webtool::WebToolConfig::paper_default();
  config.repetitions = 10;
  webtool::WebTool tool{config};

  std::printf("www.happy-eyeballs.net — connection attempt delay test\n");
  std::printf("======================================================\n");
  const auto cad = tool.run_cad_test(*profile, "Mac OS X", "10.15.7");
  std::printf("Your browser: %s %s on %s %s\n\n",
              cad.parsed_agent.browser.c_str(),
              cad.parsed_agent.browser_version.c_str(),
              cad.parsed_agent.os_name.c_str(),
              cad.parsed_agent.os_version.c_str());
  std::printf("%-10s %-14s %s\n", "delay", "IPv6 / IPv4", "");
  for (const auto& obs : cad.per_delay) {
    std::string bar;
    for (int i = 0; i < obs.v6_used; ++i) bar += '6';
    for (int i = 0; i < obs.v4_used; ++i) bar += '4';
    for (int i = 0; i < obs.failures; ++i) bar += 'x';
    std::printf("%-10s %2d / %-2d        %s\n",
                format_duration(obs.delay).c_str(), obs.v6_used, obs.v4_used,
                bar.c_str());
  }
  if (cad.interval_low && cad.interval_high) {
    std::printf("\nYour browser's Connection Attempt Delay is in (%s, %s].\n",
                format_duration(*cad.interval_low).c_str(),
                format_duration(*cad.interval_high).c_str());
  } else {
    std::printf("\nNo IPv4 fallback observed up to 5 s.\n");
  }
  if (cad.inconsistent_repetitions > 2) {
    std::printf("Behaviour was inconsistent in %d of %d repetitions — your "
                "browser appears to use a dynamic delay.\n",
                cad.inconsistent_repetitions, cad.total_repetitions);
  }

  std::printf("\nwww.happy-eyeballs.net — resolution delay test\n");
  std::printf("==============================================\n");
  const auto rd = tool.run_rd_test(*profile, dns::RrType::kAaaa,
                                   "Mac OS X", "10.15.7");
  std::printf("%-10s %s\n", "AAAA delay", "IPv6 / IPv4 / failed");
  for (const auto& obs : rd.per_delay) {
    std::printf("%-10s %2d / %-2d / %d\n", format_duration(obs.delay).c_str(),
                obs.v6_used, obs.v4_used, obs.failures);
  }
  if (rd.interval_high) {
    std::printf("\nYour browser abandons a slow AAAA lookup after ~%s.\n",
                format_duration(*rd.interval_high).c_str());
  } else {
    std::printf("\nYour browser waits for the resolver's own timeout "
                "(no Resolution Delay).\n");
  }
  return 0;
}
