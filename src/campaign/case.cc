#include "campaign/case.h"

namespace lazyeye::campaign {

const char* case_kind_name(CaseKind kind) {
  // Adding a CasePayload alternative bumps kCaseKindCount and breaks this
  // assert; the switch below has no default, so -Wswitch flags the missing
  // enumerator too. Both fire at compile time — no stale names at runtime.
  static_assert(kCaseKindCount == 7,
                "new case kind: extend case_kind_name and CaseTraits");
  switch (kind) {
    case CaseKind::kCad: return CaseTraits<CadCase>::kName;
    case CaseKind::kResolutionDelay:
      return CaseTraits<ResolutionDelayCase>::kName;
    case CaseKind::kAddressSelection:
      return CaseTraits<AddressSelectionCase>::kName;
    case CaseKind::kWebRepetition: return CaseTraits<WebRepetitionCase>::kName;
    case CaseKind::kResolverCell: return CaseTraits<ResolverCellCase>::kName;
    case CaseKind::kConformance: return CaseTraits<ConformanceCase>::kName;
    case CaseKind::kSchedule: return CaseTraits<ScheduleCase>::kName;
  }
  return "?";  // unreachable for in-range values; keeps UB away for casts
}

}  // namespace lazyeye::campaign
