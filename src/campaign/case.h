// Typed measurement-case payloads (campaign API v2).
//
// Every experiment in this repo is a matrix of heterogeneous cells: the
// testbed's CAD/RD/address-selection runs (Figure 2), the web tool's
// repetition passes (Figure 4), the resolver lab's (delay, repetition)
// cells (Table 3). v1 flattened them into one struct of knobs interpreted
// per kind; v2 gives each case its own payload struct held in a
// std::variant, so a cell carries exactly the parameters its executor
// reads — and a matrix can mix kinds freely (a multi-client testbed batch
// next to all Table 3 services in one worker pool).
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <variant>

#include "conformance/fault.h"
#include "conformance/schedule.h"
#include "dns/rr.h"
#include "util/time.h"

namespace lazyeye::campaign {

/// Dual-stack target, IPv6 path delayed at the server's egress
/// (tc-netem equivalent; Figure 2 sweeps).
struct CadCase {
  SimTime v6_delay{0};
};

/// The authoritative server delays the DNS answer of `delayed_type` by
/// `dns_delay` (qname-encoded, like the paper's server; §5.2).
struct ResolutionDelayCase {
  dns::RrType delayed_type = dns::RrType::kAaaa;
  SimTime dns_delay{0};
};

/// `per_family` unresponsive addresses per family (paper: 10 + 10).
struct AddressSelectionCase {
  int per_family = 0;
};

/// One web-tool repetition: a full pass over the 18-bucket delay grid with
/// a persistent client. `rd_mode` shapes the DNS answer of `delayed_type`
/// per bucket instead of the IPv6 path.
struct WebRepetitionCase {
  bool rd_mode = false;
  dns::RrType delayed_type = dns::RrType::kAaaa;
};

/// One resolver-lab (delay, repetition) cell against `service`'s engine.
struct ResolverCellCase {
  std::string service;
  SimTime v6_delay{0};
};

/// One adversarial conformance cell: a seeded fault plan run against the
/// envelope's client, with the RFC 8305 rule set evaluated over the
/// client-side capture. `fetches` = 2 also exercises the cache-respecting
/// restart rule (the second fetch reuses the session's winner cache).
struct ConformanceCase {
  conformance::FaultPlan fault;
  int fetches = 1;
};

/// One compound-schedule conformance cell: several windowed/triggered
/// faults (conformance/schedule.h) against the envelope's client, rules
/// evaluated like a ConformanceCase. Generated schedules replay from their
/// (seed, stream, index) triple; mutated ones through the schedule codec.
struct ScheduleCase {
  conformance::FaultSchedule schedule;
  int fetches = 1;
};

/// The closed set of case payloads a ScenarioSpec can carry. Adding an
/// alternative here is the *only* step that opens a new case kind; every
/// switch/name table below is tied to this list at compile time.
using CasePayload = std::variant<CadCase, ResolutionDelayCase,
                                 AddressSelectionCase, WebRepetitionCase,
                                 ResolverCellCase, ConformanceCase,
                                 ScheduleCase>;

/// Discriminator mirroring CasePayload's alternative order (executor
/// registries index their tables by it).
enum class CaseKind {
  kCad = 0,
  kResolutionDelay,
  kAddressSelection,
  kWebRepetition,
  kResolverCell,
  kConformance,
  kSchedule,
};

inline constexpr std::size_t kCaseKindCount = std::variant_size_v<CasePayload>;

namespace detail {

template <typename C, typename V>
struct IndexOf;
template <typename C, typename... Rest>
struct IndexOf<C, std::variant<C, Rest...>>
    : std::integral_constant<std::size_t, 0> {};
template <typename C, typename Head, typename... Rest>
struct IndexOf<C, std::variant<Head, Rest...>>
    : std::integral_constant<std::size_t,
                             1 + IndexOf<C, std::variant<Rest...>>::value> {};

}  // namespace detail

/// CasePayload alternative index of case type C (compile error for types
/// that are not alternatives).
template <typename C>
inline constexpr std::size_t case_index = detail::IndexOf<C, CasePayload>::value;

/// Per-case compile-time metadata. A payload type without a specialisation
/// cannot be named or registered — adding a CasePayload alternative without
/// extending this table fails to compile instead of reporting stale data.
template <typename C>
struct CaseTraits;

template <>
struct CaseTraits<CadCase> {
  static constexpr CaseKind kKind = CaseKind::kCad;
  static constexpr const char* kName = "cad";
};
template <>
struct CaseTraits<ResolutionDelayCase> {
  static constexpr CaseKind kKind = CaseKind::kResolutionDelay;
  static constexpr const char* kName = "rd";
};
template <>
struct CaseTraits<AddressSelectionCase> {
  static constexpr CaseKind kKind = CaseKind::kAddressSelection;
  static constexpr const char* kName = "addr-selection";
};
template <>
struct CaseTraits<WebRepetitionCase> {
  static constexpr CaseKind kKind = CaseKind::kWebRepetition;
  static constexpr const char* kName = "webtool-rep";
};
template <>
struct CaseTraits<ResolverCellCase> {
  static constexpr CaseKind kKind = CaseKind::kResolverCell;
  static constexpr const char* kName = "resolver-cell";
};
template <>
struct CaseTraits<ConformanceCase> {
  static constexpr CaseKind kKind = CaseKind::kConformance;
  static constexpr const char* kName = "conformance";
};
template <>
struct CaseTraits<ScheduleCase> {
  static constexpr CaseKind kKind = CaseKind::kSchedule;
  static constexpr const char* kName = "schedule";
};

// CaseKind values, variant indices, and trait kinds must stay aligned:
// kind_of() below is a plain index cast.
static_assert(case_index<CadCase> ==
              static_cast<std::size_t>(CaseTraits<CadCase>::kKind));
static_assert(case_index<ResolutionDelayCase> ==
              static_cast<std::size_t>(CaseTraits<ResolutionDelayCase>::kKind));
static_assert(case_index<AddressSelectionCase> ==
              static_cast<std::size_t>(CaseTraits<AddressSelectionCase>::kKind));
static_assert(case_index<WebRepetitionCase> ==
              static_cast<std::size_t>(CaseTraits<WebRepetitionCase>::kKind));
static_assert(case_index<ResolverCellCase> ==
              static_cast<std::size_t>(CaseTraits<ResolverCellCase>::kKind));
static_assert(case_index<ConformanceCase> ==
              static_cast<std::size_t>(CaseTraits<ConformanceCase>::kKind));
static_assert(case_index<ScheduleCase> ==
              static_cast<std::size_t>(CaseTraits<ScheduleCase>::kKind));

inline CaseKind kind_of(const CasePayload& payload) {
  return static_cast<CaseKind>(payload.index());
}

/// Case name via the traits table: a CasePayload alternative lacking a
/// CaseTraits specialisation makes this visit fail to compile, so names can
/// never go stale.
inline const char* case_name(const CasePayload& payload) {
  return std::visit(
      [](const auto& c) {
        return CaseTraits<std::decay_t<decltype(c)>>::kName;
      },
      payload);
}

/// Name for a bare discriminator (no payload at hand). Exhaustive: the
/// switch has no default and the static_assert in the implementation ties
/// it to kCaseKindCount.
const char* case_kind_name(CaseKind kind);

}  // namespace lazyeye::campaign
