// FailureReport: the replayable record of a quarantined campaign cell.
//
// Per-cell fault isolation (runner.h) turns "one bad cell aborts the whole
// matrix" into "the bad cell is retried with bounded backoff, then
// quarantined into this report while the campaign finishes". Because every
// cell's world derives from its spec alone, the report's (seed, id, label)
// triple is a complete replay handle: re-running the executor on
// specs.at(index) reproduces the failure bit-for-bit.
#pragma once

#include <cstdint>
#include <string>

namespace lazyeye::campaign {

struct FailureReport {
  /// Cell index in the spec stream (== spec position; resume-safe handle).
  std::uint64_t index = 0;
  /// The spec's envelope fields, copied so the report outlives the stream.
  std::uint64_t spec_id = 0;
  std::uint64_t seed = 0;
  std::string label;
  std::string client;
  /// Executor attempts made (1 + retries performed for this cell).
  int attempts = 0;
  /// True when the cell was quarantined for exceeding cell_timeout rather
  /// than throwing.
  bool timed_out = false;
  /// what() of the final failure (or the timeout description).
  std::string error;

  /// The one-line replay: everything needed to re-run this exact cell.
  std::string replay_line() const {
    std::string out;
    out.append("replay: index=");
    out.append(std::to_string(index));
    out.append(" seed=");
    out.append(std::to_string(seed));
    out.append(" label='");
    out.append(label);
    out.append("' attempts=");
    out.append(std::to_string(attempts));
    out.append(timed_out ? " (timeout): " : ": ");
    out.append(error);
    return out;
  }
};

}  // namespace lazyeye::campaign
