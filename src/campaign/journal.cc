#include "campaign/journal.h"

#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/rng.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define LAZYEYE_HAVE_FSYNC 1
#endif

namespace lazyeye::campaign {

namespace {

constexpr char kMagic[4] = {'L', 'Z', 'Y', 'J'};
constexpr std::uint16_t kVersion = 1;
// magic(4) + version(2) + identity(8) + begin(8) + end(8) + crc(4)
constexpr std::size_t kHeaderSize = 34;
// type(1) + len(4) + crc(4)
constexpr std::size_t kRecordOverhead = 9;
constexpr std::uint32_t kMaxRecordPayload = 1u << 28;  // 256 MiB sanity cap

enum RecordType : std::uint8_t {
  kCell = 1,
  kQuarantine = 2,
  kSnapshot = 3,
  kComplete = 4,
};

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

std::uint16_t get_u16(std::string_view s, std::size_t at) {
  return static_cast<std::uint16_t>(
      (static_cast<unsigned char>(s[at]) << 8) |
      static_cast<unsigned char>(s[at + 1]));
}

std::uint32_t get_u32(std::string_view s, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[at + i]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view s, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[at + i]);
  }
  return v;
}

std::string cat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const std::string_view part : parts) out.append(part);
  return out;
}

[[noreturn]] void fail(const std::string& path, std::uint64_t offset,
                       std::string_view what) {
  throw JournalError(cat({"journal '", path, "' at offset ",
                          std::to_string(offset), ": ", what}));
}

std::string read_whole_file(const std::string& path, bool& exists) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    exists = false;
    return {};
  }
  exists = true;
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  std::fclose(f);
  return data;
}

}  // namespace

std::uint64_t journal_identity(std::string_view stream_id, std::uint64_t cells,
                               std::uint64_t seed) {
  // FNV-1a over the stream id, then SplitMix64 folds in shape and seed so
  // any single-field change flips the identity.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : stream_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  SplitMix64 mix{h ^ (cells * 0x9e3779b97f4a7c15ULL)};
  const std::uint64_t a = mix.next();
  SplitMix64 mix2{a ^ (seed * 0xd6e8feb86659fd93ULL)};
  return mix2.next();
}

JournalLoad load_journal(const std::string& path) {
  JournalLoad load;
  std::string data = read_whole_file(path, load.exists);
  if (!load.exists) return load;
  const std::string_view view{data};

  if (view.size() < kHeaderSize) {
    fail(path, 0, "truncated header (file smaller than the header frame)");
  }
  if (std::memcmp(view.data(), kMagic, sizeof kMagic) != 0) {
    fail(path, 0, "bad magic (not a campaign journal)");
  }
  if (get_u16(view, 4) != kVersion) {
    fail(path, 4, "unsupported journal version");
  }
  const std::uint32_t header_crc = get_u32(view, kHeaderSize - 4);
  if (util::crc32(view.substr(0, kHeaderSize - 4)) != header_crc) {
    fail(path, 0, "header CRC mismatch");
  }
  load.identity = get_u64(view, 6);
  load.cell_begin = get_u64(view, 14);
  load.cell_end = get_u64(view, 22);
  if (load.cell_end < load.cell_begin) {
    fail(path, 14, "header cell range is inverted");
  }

  std::size_t pos = kHeaderSize;
  load.valid_bytes = pos;
  load.snapshot_valid_bytes = pos;
  while (pos < view.size()) {
    // A record that does not fully fit — length frame or declared payload
    // running past EOF — can only be the torn tail of a crashed append.
    const bool frame_fits = view.size() - pos >= kRecordOverhead;
    std::uint32_t len = 0;
    bool body_fits = false;
    if (frame_fits) {
      len = get_u32(view, pos + 1);
      body_fits = len <= kMaxRecordPayload &&
                  view.size() - pos - kRecordOverhead >= len;
    }
    if (!frame_fits || !body_fits) {
      load.torn_tail = true;
      break;
    }
    const std::string_view framed = view.substr(pos, 5 + len);
    const std::uint32_t want_crc = get_u32(view, pos + 5 + len);
    if (util::crc32(framed) != want_crc) {
      // Only the FINAL record may be damaged (torn mid-write). A bad CRC
      // with more records behind it means real corruption: refuse.
      if (pos + kRecordOverhead + len < view.size()) {
        fail(path, pos, "record CRC mismatch before end of file (corrupt "
                        "journal; refusing to resume)");
      }
      load.torn_tail = true;
      break;
    }
    const std::uint8_t type = static_cast<unsigned char>(view[pos]);
    const std::string_view payload = view.substr(pos + 5, len);
    switch (type) {
      case kCell: {
        if (len < 8) fail(path, pos, "cell record shorter than its index");
        JournalLoad::Cell cell;
        cell.index = get_u64(payload, 0);
        cell.payload.assign(payload.substr(8));
        if (cell.index != load.resume_index()) {
          fail(path, pos,
               "cell record out of order (journal must be an in-order "
               "prefix; refusing to resume)");
        }
        load.cells.push_back(std::move(cell));
        break;
      }
      case kQuarantine: {
        if (len < 13) fail(path, pos, "quarantine record too short");
        JournalLoad::Cell cell;
        cell.index = get_u64(payload, 0);
        cell.quarantined = true;
        cell.attempts = static_cast<int>(get_u32(payload, 8));
        cell.timed_out = payload[12] != 0;
        cell.payload.assign(payload.substr(13));  // error text
        if (cell.index != load.resume_index()) {
          fail(path, pos, "quarantine record out of order");
        }
        load.cells.push_back(std::move(cell));
        break;
      }
      case kSnapshot: {
        if (len < 8) fail(path, pos, "snapshot record too short");
        load.snapshot_cells = get_u64(payload, 0);
        load.snapshot_state.assign(payload.substr(8));
        if (load.snapshot_cells > load.cells.size()) {
          fail(path, pos, "snapshot claims more cells than journaled");
        }
        load.snapshot_valid_bytes = pos + kRecordOverhead + len;
        break;
      }
      case kComplete: {
        if (len != 8) fail(path, pos, "complete record malformed");
        if (get_u64(payload, 0) != load.cells.size() ||
            load.resume_index() != load.cell_end) {
          fail(path, pos, "complete record disagrees with journaled cells");
        }
        load.complete = true;
        break;
      }
      default:
        fail(path, pos, "unknown record type");
    }
    pos += kRecordOverhead + len;
    load.valid_bytes = pos;
  }
  if (load.resume_index() > load.cell_end) {
    fail(path, load.valid_bytes, "journal holds cells past its declared range");
  }
  return load;
}

// ---- JournalWriter ---------------------------------------------------------

JournalWriter JournalWriter::create(const std::string& path,
                                    std::uint64_t identity,
                                    std::uint64_t cell_begin,
                                    std::uint64_t cell_end,
                                    JournalFsync fsync) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw JournalError(cat({"cannot create journal '", path, "'"}));
  }
  std::string header;
  header.reserve(kHeaderSize);
  header.append(kMagic, sizeof kMagic);
  put_u16(header, kVersion);
  put_u64(header, identity);
  put_u64(header, cell_begin);
  put_u64(header, cell_end);
  put_u32(header, util::crc32(header));
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    throw JournalError(cat({"cannot write journal header to '", path, "'"}));
  }
  JournalWriter writer{f, fsync};
  writer.sync();  // the header must be durable before any cell runs
  return writer;
}

JournalWriter JournalWriter::append(const std::string& path,
                                    std::uint64_t valid_bytes,
                                    JournalFsync fsync) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    throw JournalError(cat({"cannot reopen journal '", path, "'"}));
  }
#if LAZYEYE_HAVE_FSYNC
  // Drop a torn tail before appending: new records must start exactly at
  // the end of the last intact one.
  if (ftruncate(fileno(f), static_cast<off_t>(valid_bytes)) != 0) {
    std::fclose(f);
    throw JournalError(cat({"cannot truncate torn tail of '", path, "'"}));
  }
#endif
  if (std::fseek(f, static_cast<long>(valid_bytes), SEEK_SET) != 0) {
    std::fclose(f);
    throw JournalError(cat({"cannot seek to append position in '", path, "'"}));
  }
  return JournalWriter{f, fsync};
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fsync_{other.fsync_} {
  util::MutexLock lock{other.mutex_};
  file_ = other.file_;
  other.file_ = nullptr;
}

JournalWriter::~JournalWriter() {
  util::MutexLock lock{mutex_};
  if (file_ != nullptr) {
    flush_locked(fsync_ != JournalFsync::kNone);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void JournalWriter::append_record(std::uint8_t type, std::string_view payload,
                                  bool force_sync) {
  std::string framed;
  framed.reserve(kRecordOverhead + payload.size());
  framed.push_back(static_cast<char>(type));
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  framed.append(payload);
  put_u32(framed, util::crc32(framed));

  util::MutexLock lock{mutex_};
  if (file_ == nullptr) throw JournalError("journal writer already closed");
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    throw JournalError("journal append failed (disk full?)");
  }
  flush_locked(force_sync || fsync_ == JournalFsync::kEveryRecord);
}

void JournalWriter::flush_locked(bool want_fsync) {
  std::fflush(file_);
#if LAZYEYE_HAVE_FSYNC
  if (want_fsync) fsync(fileno(file_));
#else
  (void)want_fsync;
#endif
}

void JournalWriter::append_cell(std::uint64_t index, std::string_view payload) {
  std::string body;
  body.reserve(8 + payload.size());
  put_u64(body, index);
  body.append(payload);
  append_record(kCell, body, /*force_sync=*/false);
}

void JournalWriter::append_quarantine(std::uint64_t index, int attempts,
                                      bool timed_out, std::string_view error) {
  std::string body;
  body.reserve(13 + error.size());
  put_u64(body, index);
  put_u32(body, static_cast<std::uint32_t>(attempts));
  body.push_back(timed_out ? '\1' : '\0');
  body.append(error);
  append_record(kQuarantine, body, /*force_sync=*/false);
}

void JournalWriter::append_snapshot(std::uint64_t cells_delivered,
                                    std::string_view state) {
  std::string body;
  body.reserve(8 + state.size());
  put_u64(body, cells_delivered);
  body.append(state);
  append_record(kSnapshot, body,
                /*force_sync=*/fsync_ == JournalFsync::kSnapshot);
}

void JournalWriter::append_complete(std::uint64_t cells_delivered) {
  std::string body;
  put_u64(body, cells_delivered);
  append_record(kComplete, body,
                /*force_sync=*/fsync_ != JournalFsync::kNone);
}

void JournalWriter::sync() {
  util::MutexLock lock{mutex_};
  if (file_ != nullptr) flush_locked(true);
}

}  // namespace lazyeye::campaign
