// CellJournal: crash-safe, append-only record of campaign progress.
//
// A journaled campaign writes one CRC-framed record per *delivered* cell,
// through the ordered delivery path (reorder.h): the record for cell i is
// appended only after cells [begin, i] have all been emitted to the sink,
// so the journal is always an in-order prefix of the cell range it covers.
// That single invariant is what makes resume trivial and exact — on
// restart, the journal IS the set of finished cells, and the remaining work
// is a contiguous tail.
//
// File layout (all integers big-endian, matching util/bytes.h):
//
//   header:  magic "LZYJ" | u16 version | u64 identity
//          | u64 cell_begin | u64 cell_end | u32 crc(header bytes)
//   record:  u8 type | u32 payload_len | payload | u32 crc(type|len|payload)
//
// Record types:
//   kCell        u64 index | result bytes   (empty in snapshot-only mode)
//   kQuarantine  u64 index | u32 attempts | u8 timed_out | error text
//   kSnapshot    u64 cells_delivered | opaque sink-state blob
//   kComplete    u64 cells_delivered       (the range finished cleanly)
//
// `identity` fingerprints the spec stream (journal_identity() hashes the
// stream id, grid shape, and seed); a journal is only ever resumed against
// the stream that wrote it — mismatches refuse loudly (JournalError).
//
// Recovery semantics (tested by tests/journal_test.cc):
//   - torn final record (partial append at the crash point): dropped; the
//     cell re-runs on resume. Recoverable by construction.
//   - CRC-corrupt or malformed record that is NOT the final one: the file
//     is damaged, not torn — load_journal throws. Never silently skipped.
//   - truncated/corrupt header: throws. A journal that cannot prove its
//     identity cannot be trusted to skip work.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lazyeye::campaign {

class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

/// Fingerprints a spec stream for the journal header: a pure hash of the
/// stream's name, its grid shape (cell count), and the campaign seed.
std::uint64_t journal_identity(std::string_view stream_id, std::uint64_t cells,
                               std::uint64_t seed);

enum class JournalFsync : std::uint8_t {
  kNone,      // fflush only: survives process death (SIGKILL), not power loss
  kSnapshot,  // + fsync on snapshot/complete records (default)
  kEveryRecord,
};

/// Parsed journal contents (load_journal).
struct JournalLoad {
  bool exists = false;  // false: no file — fresh campaign, nothing else set
  std::uint64_t identity = 0;
  std::uint64_t cell_begin = 0;
  std::uint64_t cell_end = 0;

  struct Cell {
    std::uint64_t index = 0;
    std::string payload;  // encoded result ("" in snapshot-only mode)
    bool quarantined = false;
    int attempts = 0;      // quarantine records only
    bool timed_out = false;
  };
  /// In journal order == spec order; indices are contiguous from cell_begin.
  std::vector<Cell> cells;

  /// Latest snapshot record, if any.
  std::string snapshot_state;
  std::uint64_t snapshot_cells = 0;
  /// File offset just past the last snapshot record (== end of header when
  /// none). Snapshot-mode resume truncates here: cell records past the
  /// snapshot carry no payload, so their cells re-run from restored state.
  std::uint64_t snapshot_valid_bytes = 0;

  bool complete = false;   // a kComplete record was present
  bool torn_tail = false;  // a partial/corrupt FINAL record was dropped
  std::uint64_t valid_bytes = 0;  // file offset after the last intact record

  /// First cell that still has to run: cell_begin + cells.size().
  std::uint64_t resume_index() const {
    return cell_begin + static_cast<std::uint64_t>(cells.size());
  }
};

/// Reads and validates a journal. Missing file -> exists=false. A torn
/// final record is dropped (recoverable); any other damage throws
/// JournalError with the offending offset.
JournalLoad load_journal(const std::string& path);

/// Appends CRC-framed records to a journal file. Writes are serialised by
/// an internal mutex (the ordered delivery path already serialises callers,
/// but the annotation makes the contract checkable and TSan-visible).
class JournalWriter {
 public:
  /// Creates/truncates `path` and writes a fresh header.
  static JournalWriter create(const std::string& path, std::uint64_t identity,
                              std::uint64_t cell_begin, std::uint64_t cell_end,
                              JournalFsync fsync = JournalFsync::kSnapshot);

  /// Reopens an existing journal for appending, truncating a torn tail
  /// first (`valid_bytes` from load_journal).
  static JournalWriter append(const std::string& path,
                              std::uint64_t valid_bytes,
                              JournalFsync fsync = JournalFsync::kSnapshot);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&&) = delete;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  void append_cell(std::uint64_t index, std::string_view payload)
      EXCLUDES(mutex_);
  void append_quarantine(std::uint64_t index, int attempts, bool timed_out,
                         std::string_view error) EXCLUDES(mutex_);
  void append_snapshot(std::uint64_t cells_delivered, std::string_view state)
      EXCLUDES(mutex_);
  void append_complete(std::uint64_t cells_delivered) EXCLUDES(mutex_);

  /// Flushes to the OS and fsyncs regardless of policy.
  void sync() EXCLUDES(mutex_);

 private:
  JournalWriter(std::FILE* file, JournalFsync fsync)
      : fsync_{fsync}, file_{file} {}

  void append_record(std::uint8_t type, std::string_view payload,
                     bool force_sync) EXCLUDES(mutex_);
  void flush_locked(bool want_fsync) REQUIRES(mutex_);

  const JournalFsync fsync_;
  mutable util::Mutex mutex_;
  std::FILE* file_ GUARDED_BY(mutex_) = nullptr;
};

}  // namespace lazyeye::campaign
