// Journaled campaign execution: crash-safe runs that resume exactly.
//
// run_journaled() wraps any CampaignRunner campaign in a CellJournal
// (journal.h): every delivered cell appends one record through the ordered
// delivery path, so the journal is always an in-order prefix of the cell
// range and a crashed run resumes from "first unjournaled cell". Two resume
// modes, picked by whether a codec is supplied:
//
//   codec mode    cell records carry the encoded result; resume replays the
//                 decoded results into a fresh sink before running the tail.
//                 Exact for every sink (the sink sees the same cell stream
//                 an uninterrupted run would deliver).
//   snapshot mode no codec; cell records are empty markers and the sink's
//                 save_state() blob is journaled every snapshot_every cells.
//                 Resume restores the latest snapshot and re-runs the cells
//                 after it (deterministic executors make this exact too).
//                 Right for sinks whose state is tiny next to the results —
//                 SketchSink journals O(metrics) bytes per snapshot instead
//                 of O(cells) result records.
//
// Either way the aggregate output — CollectingSink bytes, SketchSink
// fingerprint — is identical to an uninterrupted run at any worker count:
// delivery order is spec order regardless of where the crash fell.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "campaign/journal.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "campaign/spec_stream.h"

namespace lazyeye::campaign {

/// Result byte codec for codec-mode journaling. encode() must be a pure
/// function of (spec, outcome); decode() returns nullopt on malformed bytes
/// (which fails the resume loudly — never silently skips a cell).
template <typename R>
struct JournalCodec {
  std::function<std::string(const ScenarioSpec&, const R&)> encode;
  std::function<std::optional<R>(std::string_view)> decode;
};

struct JournalOptions {
  std::string path;
  /// journal_identity() of the spec stream; a resumed journal must match.
  std::uint64_t identity = 0;
  /// Cell range [cell_begin, cell_end) this journal covers — the whole
  /// stream by default (cell_end 0 means specs.size()); shards set a
  /// sub-range (shard.h).
  std::uint64_t cell_begin = 0;
  std::uint64_t cell_end = 0;
  /// Snapshot cadence in delivered cells (snapshot mode); 0 disables
  /// periodic snapshots (a final one is still written before kComplete).
  std::uint64_t snapshot_every = 0;
  JournalFsync fsync = JournalFsync::kSnapshot;
};

/// What a journaled run did.
struct JournaledRun {
  bool resumed = false;           // an intact journal was found
  bool already_complete = false;  // journal had kComplete: nothing ran
  std::uint64_t cells_replayed = 0;  // delivered from the journal
  std::uint64_t cells_run = 0;       // executed by this process
};

/// Sink wrapper that appends one journal record per delivered cell, AFTER
/// forwarding to the wrapped sink — a record therefore proves its cell was
/// emitted (the in-order-prefix invariant). Calls arrive serialised under
/// the reorder mutex like any sink's; the writer has its own lock for the
/// thread-safety analysis (journal.h).
template <typename R>
class JournalingSink final : public ResultSink<R> {
 public:
  JournalingSink(ResultSink<R>& inner, JournalWriter& writer,
                 const JournalCodec<R>* codec, std::uint64_t cell_begin,
                 std::uint64_t next_index, std::uint64_t snapshot_every)
      : inner_{inner},
        writer_{writer},
        codec_{codec},
        cell_begin_{cell_begin},
        next_index_{next_index},
        snapshot_every_{snapshot_every} {}

  /// begin()/end() are driven by run_journaled on the wrapped sink directly
  /// (replay happens between begin() and the tail run).
  void begin(std::size_t) override {}
  void end() override {}

  void cell(const ScenarioSpec& spec, R outcome) override {
    std::string payload;  // empty in snapshot mode
    if (codec_ != nullptr) payload = codec_->encode(spec, outcome);
    inner_.cell(spec, std::move(outcome));
    writer_.append_cell(next_index_++, payload);
    maybe_snapshot();
  }

  void cell_failed(const ScenarioSpec& spec,
                   const FailureReport& report) override {
    inner_.cell_failed(spec, report);
    writer_.append_quarantine(next_index_++, report.attempts,
                              report.timed_out, report.error);
    maybe_snapshot();
  }

 private:
  void maybe_snapshot() {
    if (snapshot_every_ == 0) return;
    const std::uint64_t cells = next_index_ - cell_begin_;
    if (cells % snapshot_every_ != 0) return;
    std::string state;
    if (inner_.save_state(state)) writer_.append_snapshot(cells, state);
  }

  ResultSink<R>& inner_;
  JournalWriter& writer_;
  const JournalCodec<R>* codec_;
  const std::uint64_t cell_begin_;
  std::uint64_t next_index_;
  const std::uint64_t snapshot_every_;
};

namespace journal_detail {

template <typename R>
FailureReport report_from(const JournalLoad::Cell& cell,
                          const ScenarioSpec& spec) {
  FailureReport report;
  report.index = cell.index;
  report.spec_id = spec.id;
  report.seed = spec.seed;
  report.label = spec.label;
  report.client = spec.client;
  report.attempts = cell.attempts;
  report.timed_out = cell.timed_out;
  report.error = cell.payload;
  return report;
}

/// Codec-mode replay: re-delivers every journaled cell to the sink, exactly
/// as the original run did. Throws JournalError on undecodable bytes.
template <typename R>
std::uint64_t replay_journal(const JournalLoad& load, const SpecStream& specs,
                             ResultSink<R>& sink,
                             const JournalCodec<R>& codec) {
  const std::vector<ScenarioSpec>* backed = specs.backing();
  std::uint64_t replayed = 0;
  for (const JournalLoad::Cell& cell : load.cells) {
    ScenarioSpec generated;
    if (backed == nullptr) generated = specs.at(cell.index);
    const ScenarioSpec& spec =
        backed != nullptr ? (*backed)[cell.index] : generated;
    if (cell.quarantined) {
      sink.cell_failed(spec, report_from<R>(cell, spec));
    } else {
      std::optional<R> outcome = codec.decode(cell.payload);
      if (!outcome.has_value()) {
        throw JournalError(
            "journal cell record failed to decode (result schema changed?); "
            "refusing to resume");
      }
      sink.cell(spec, std::move(*outcome));
    }
    ++replayed;
  }
  return replayed;
}

}  // namespace journal_detail

/// Runs cells [cell_begin, cell_end) of the stream with a crash journal at
/// options.path, resuming any intact journal found there. See the header
/// comment for the two resume modes. The wrapped sink receives the full
/// begin / cells-in-order / end lifecycle whether or not a resume happened.
template <typename R>
JournaledRun run_journaled(const CampaignRunner& runner,
                           const SpecStream& specs,
                           const std::function<R(const ScenarioSpec&)>& executor,
                           ResultSink<R>& sink, const JournalOptions& options,
                           const JournalCodec<R>* codec = nullptr) {
  const std::uint64_t cell_begin = options.cell_begin;
  const std::uint64_t cell_end =
      options.cell_end == 0 ? specs.size() : options.cell_end;
  if (cell_begin > cell_end || cell_end > specs.size()) {
    throw JournalError("journal cell range outside the spec stream");
  }
  const std::uint64_t range = cell_end - cell_begin;

  JournaledRun out;
  JournalLoad load = load_journal(options.path);
  if (load.exists) {
    if (load.identity != options.identity) {
      throw JournalError(
          "journal identity mismatch: this journal was written by a "
          "different spec stream (id/shape/seed changed); refusing to skip "
          "cells it cannot vouch for");
    }
    if (load.cell_begin != cell_begin || load.cell_end != cell_end) {
      throw JournalError(
          "journal covers a different cell range than this run");
    }
    out.resumed = true;
  }

  sink.begin(static_cast<std::size_t>(range));

  std::uint64_t resume = cell_begin;
  std::uint64_t keep_bytes = load.valid_bytes;
  if (load.exists) {
    if (codec != nullptr) {
      out.cells_replayed =
          journal_detail::replay_journal<R>(load, specs, sink, *codec);
      resume = load.resume_index();
    } else {
      // Snapshot mode: cells past the latest snapshot have no payload to
      // replay, so restore the snapshot and re-run everything after it
      // (truncating their marker records keeps the prefix invariant).
      if (load.snapshot_cells > 0 || !load.snapshot_state.empty()) {
        if (!sink.restore_state(load.snapshot_state)) {
          throw JournalError(
              "sink rejected the journal snapshot (sink configuration "
              "changed?); refusing to resume");
        }
        out.cells_replayed = load.snapshot_cells;
      }
      resume = cell_begin + out.cells_replayed;
      keep_bytes = load.snapshot_valid_bytes;
    }
  }

  if (load.complete) {
    // Codec mode replayed everything above; snapshot mode wrote a final
    // full-state snapshot just before kComplete, so resume == cell_end.
    if (resume != cell_end) {
      throw JournalError(
          "journal marked complete but its cells cannot be reproduced "
          "(snapshot-mode journal without a full-state snapshot); refusing "
          "to hand back partial output");
    }
    out.already_complete = true;
    sink.end();
    return out;
  }

  JournalWriter writer =
      load.exists
          ? JournalWriter::append(options.path, keep_bytes, options.fsync)
          : JournalWriter::create(options.path, options.identity, cell_begin,
                                  cell_end, options.fsync);

  if (resume < cell_end) {
    JournalingSink<R> journaling{sink,   writer, codec,
                                 cell_begin, resume, options.snapshot_every};
    runner.run_range<R>(specs, static_cast<std::size_t>(resume),
                        static_cast<std::size_t>(cell_end), executor,
                        journaling);
    out.cells_run = cell_end - resume;
  }

  if (codec == nullptr) {
    // Final snapshot: makes a completed snapshot-mode journal replayable
    // without re-running anything (merge/inspect tooling, and the
    // already_complete path above).
    std::string state;
    if (sink.save_state(state)) {
      writer.append_snapshot(range, state);
    }
  }
  writer.append_complete(range);
  sink.end();
  return out;
}

}  // namespace lazyeye::campaign
