// campaign::Registry — pluggable executor table keyed by case payload type.
//
// v1 gave every measurement layer its own bespoke run loop (the testbed,
// web tool and resolver lab each owned a runner.run<...> call that only
// understood its own cells). v2 inverts this: layers *register* a typed
// executor per case payload, and one Registry drives any matrix — including
// mixed-kind matrices such as all Table 3 resolver services in one worker
// pool, or a multi-client testbed batch next to resolver cells.
//
// The Outcome parameter is what executors return. Single-layer campaigns
// use the layer's record type directly (Registry<RunRecord>); mixed-kind
// campaigns use a variant of the record types involved (executors'
// return values convert implicitly into the variant).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "campaign/case.h"
#include "campaign/result.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"

namespace lazyeye::campaign {

/// Linear-scans a registered pool (client profiles, service profiles, ...)
/// for the element whose `name(elem)` equals `wanted`. Executors resolve
/// spec-carried names against the pool their layer registered with; an
/// unknown name is a campaign configuration error.
template <typename Pool, typename NameFn>
const typename Pool::value_type& find_registered(const Pool& pool,
                                                 const std::string& wanted,
                                                 NameFn name,
                                                 const char* what) {
  for (const auto& element : pool) {
    if (name(element) == wanted) return element;
  }
  throw std::invalid_argument(std::string{what} + " executor: '" + wanted +
                              "' is not in the registered pool");
}

template <typename Outcome>
class Registry {
 public:
  using Executor = std::function<Outcome(const ScenarioSpec&)>;

  /// Registers the executor for case payload type C. `fn` is invoked as
  /// fn(spec, c) where c is the spec's C payload; it must be stateless per
  /// call (it may run concurrently on *different* specs) and its return
  /// value must convert to Outcome. Re-registering a type replaces the
  /// previous executor.
  template <typename C, typename Fn>
  void add(Fn fn) {
    executors_[case_index<C>] =
        [fn = std::move(fn)](const ScenarioSpec& spec) -> Outcome {
      return fn(spec, std::get<C>(spec.payload));
    };
  }

  bool has(CaseKind kind) const {
    const auto i = static_cast<std::size_t>(kind);
    return i < executors_.size() && static_cast<bool>(executors_[i]);
  }

  /// Executes one cell by dispatching on its payload type. Throws
  /// std::invalid_argument when no executor is registered for the kind.
  Outcome execute(const ScenarioSpec& spec) const {
    const Executor& executor = executors_[spec.payload.index()];
    if (!executor) {
      throw std::invalid_argument(
          std::string{"campaign::Registry: no executor registered for case '"} +
          case_name(spec.payload) + "'");
    }
    return executor(spec);
  }

  /// Streams the whole matrix through `runner` into `sink` (spec-order
  /// delivery; see sink.h). Every kind present in `specs` is checked for a
  /// registered executor *before* the pool launches, so a misconfigured
  /// campaign fails fast on the calling thread instead of mid-run.
  void run(const CampaignRunner& runner, const std::vector<ScenarioSpec>& specs,
           ResultSink<Outcome>& sink) const {
    for (const ScenarioSpec& spec : specs) {
      if (!has(spec.kind())) {
        throw std::invalid_argument(
            std::string{"campaign::Registry: matrix contains case '"} +
            case_name(spec.payload) + "' but no executor is registered");
      }
    }
    runner.run_streaming<Outcome>(
        specs, [this](const ScenarioSpec& spec) { return execute(spec); },
        sink);
  }

  /// Streams a lazy matrix through `runner` into `sink`. Unlike the vector
  /// overload there is no pre-launch executor check (enumerating the stream
  /// would defeat its point): a cell whose kind has no registered executor
  /// fails mid-run via execute()'s std::invalid_argument.
  void run(const CampaignRunner& runner, const SpecStream& specs,
           ResultSink<Outcome>& sink) const {
    runner.run_streaming<Outcome>(
        specs, [this](const ScenarioSpec& spec) { return execute(spec); },
        sink);
  }

  /// Convenience: runs the matrix into a CollectingSink and returns the
  /// materialised CampaignResult.
  CampaignResult<Outcome> run_collect(const CampaignRunner& runner,
                                      const std::vector<ScenarioSpec>& specs) const {
    CollectingSink<Outcome> sink;
    run(runner, specs, sink);
    return std::move(sink).take();
  }

  /// Stream-input variant: the matrix stays lazy on the way in, only the
  /// outcomes are materialised.
  CampaignResult<Outcome> run_collect(const CampaignRunner& runner,
                                      const SpecStream& specs) const {
    CollectingSink<Outcome> sink;
    run(runner, specs, sink);
    return std::move(sink).take();
  }

 private:
  std::array<Executor, kCaseKindCount> executors_{};
};

}  // namespace lazyeye::campaign
