// ReorderBuffer: spec-order delivery of out-of-order cell completions.
//
// Workers finish cells in arbitrary order; the sink contract (sink.h)
// promises delivery in spec order, serialised. This class owns that
// invariant: complete() parks the finished cell, then drains every
// consecutively-ready cell to the sink while holding the buffer mutex — so
// the mutex doubles as the sink's serialisation capability. Sinks
// (SketchSink, CollectingSink, ...) stay lock-free because every cell()
// call happens under this one lock.
//
// Extracted from CampaignRunner::run_streaming so the pending map, emit
// cursor, and failure latch are GUARDED_BY a named mutex that clang
// -Wthread-safety can check, instead of loose locals captured by lambdas
// (which the analysis cannot follow).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "campaign/failure.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "util/mutex.h"

namespace lazyeye::campaign {

/// Reorders completed cells into spec order and streams them to a sink.
/// Thread-safe: complete() may be called concurrently from any worker.
template <typename R>
class ReorderBuffer {
 public:
  /// `backed` is the materialised spec vector for view()/of() streams (specs
  /// are delivered straight out of it, no per-cell copy), or nullptr for
  /// lazy streams (each completion carries its own generated spec).
  /// `first` is the index delivery starts at — 0 for a fresh campaign, the
  /// journal's resume_index() for a resumed one (earlier cells were
  /// delivered by a previous process and must not be re-emitted).
  explicit ReorderBuffer(const std::vector<ScenarioSpec>* backed,
                         std::size_t first = 0)
      : backed_{backed}, next_to_emit_{first} {}

  /// Records cell `index` as complete and delivers it — and every later
  /// cell already parked behind it — to `sink` in spec order. Returns the
  /// new next-undelivered index for claim-gate pacing. If the sink throws,
  /// delivery latches off (the campaign is failing; no worker may deliver a
  /// moved-from cell) and the exception propagates to the caller.
  std::size_t complete(std::size_t index, ScenarioSpec spec, R outcome,
                       ResultSink<R>& sink) EXCLUDES(mutex_) {
    return park(index,
                PendingCell{std::move(spec), std::move(outcome), std::nullopt},
                sink);
  }

  /// Quarantine variant: cell `index` produced no outcome; the sink sees
  /// cell_failed(spec, report) in its spec-order slot instead of cell().
  std::size_t complete_failed(std::size_t index, ScenarioSpec spec,
                              FailureReport report, ResultSink<R>& sink)
      EXCLUDES(mutex_) {
    return park(index,
                PendingCell{std::move(spec), std::nullopt, std::move(report)},
                sink);
  }

  /// Max completed cells ever parked awaiting an earlier one. Call after
  /// the campaign drained (it reads under the lock, but the interesting
  /// value is the final one).
  std::size_t high_water() const EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    return high_water_;
  }

 private:
  struct PendingCell {
    ScenarioSpec spec;         // empty for backed streams
    std::optional<R> outcome;  // nullopt: quarantined, report is set
    std::optional<FailureReport> report;
  };

  std::size_t park(std::size_t index, PendingCell parked, ResultSink<R>& sink)
      EXCLUDES(mutex_) {
    util::MutexLock lock{mutex_};
    pending_.emplace(index, std::move(parked));
    while (!delivery_failed_) {
      const auto ready = pending_.find(next_to_emit_);
      if (ready == pending_.end()) break;
      PendingCell cell = std::move(ready->second);
      pending_.erase(ready);
      const std::size_t i = next_to_emit_++;
      const ScenarioSpec& spec =
          backed_ != nullptr ? (*backed_)[i] : cell.spec;
      try {
        if (cell.outcome.has_value()) {
          sink.cell(spec, std::move(*cell.outcome));
        } else {
          sink.cell_failed(spec, *cell.report);
        }
      } catch (...) {
        delivery_failed_ = true;
        throw;
      }
    }
    if (pending_.size() > high_water_) high_water_ = pending_.size();
    return next_to_emit_;
  }

  const std::vector<ScenarioSpec>* const backed_;
  mutable util::Mutex mutex_;
  /// Finished cells awaiting an earlier cell's delivery, keyed by index.
  std::map<std::size_t, PendingCell> pending_ GUARDED_BY(mutex_);
  /// Next index the sink has not seen yet (cell_begin + cells delivered).
  std::size_t next_to_emit_ GUARDED_BY(mutex_);
  /// Latched on the first sink throw; stops all further delivery.
  bool delivery_failed_ GUARDED_BY(mutex_) = false;
  std::size_t high_water_ GUARDED_BY(mutex_) = 0;
};

}  // namespace lazyeye::campaign
