// CampaignResult: a completed scenario matrix — specs plus their outcomes,
// index-aligned — and its aggregation into the util::Table machinery.
//
// The runner delivers outcomes in spec order regardless of worker count
// (see runner.h), so everything here is deterministic by construction. The
// materialised form is produced by a CollectingSink (sink.h); campaigns
// that aggregate on the fly stream through a ResultSink instead and never
// build one of these.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "campaign/scenario.h"
#include "util/table.h"

namespace lazyeye::campaign {

template <typename R>
struct CampaignResult {
  std::vector<ScenarioSpec> specs;
  std::vector<R> outcomes;  // outcomes[i] belongs to specs[i]

  std::size_t size() const { return specs.size(); }

  /// Groups cell indices by an arbitrary key (e.g. delay, client), in
  /// first-seen order of the key.
  template <typename K>
  std::vector<std::pair<K, std::vector<std::size_t>>> group_by(
      const std::function<K(const ScenarioSpec&)>& key) const {
    std::vector<std::pair<K, std::vector<std::size_t>>> groups;
    std::map<K, std::size_t> slot;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const K k = key(specs[i]);
      auto it = slot.find(k);
      if (it == slot.end()) {
        slot.emplace(k, groups.size());
        groups.push_back({k, {i}});
      } else {
        groups[it->second].second.push_back(i);
      }
    }
    return groups;
  }
};

/// One rendered table column: header, alignment, and the cell formatter.
template <typename R>
struct TableColumn {
  std::string header;
  TextTable::Align align = TextTable::Align::kLeft;
  std::function<std::string(const ScenarioSpec&, const R&)> cell;
};

/// Renders one row per cell (specs in matrix order) into a TextTable.
template <typename R>
TextTable to_table(const CampaignResult<R>& result,
                   const std::vector<TableColumn<R>>& columns) {
  std::vector<std::string> headers;
  headers.reserve(columns.size());
  for (const auto& c : columns) headers.push_back(c.header);
  TextTable table{std::move(headers)};
  for (std::size_t c = 0; c < columns.size(); ++c) {
    table.set_align(c, columns[c].align);
  }
  for (std::size_t i = 0; i < result.size(); ++i) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const auto& c : columns) {
      row.push_back(c.cell(result.specs[i], result.outcomes[i]));
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace lazyeye::campaign
