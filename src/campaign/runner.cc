#include "campaign/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace lazyeye::campaign {

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_{std::move(options)} {}

int CampaignRunner::resolved_workers(std::size_t jobs) const {
  int workers = options_.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (static_cast<std::size_t>(workers) > jobs) {
    workers = jobs == 0 ? 1 : static_cast<int>(jobs);
  }
  return workers;
}

void CampaignRunner::run_indexed(
    std::size_t count, const std::function<void(std::size_t)>& job) const {
  if (count == 0) return;
  const int workers = resolved_workers(count);

  std::mutex progress_mutex;
  std::size_t done = 0;
  auto report_progress = [&] {
    if (!options_.progress) return;
    std::lock_guard<std::mutex> lock{progress_mutex};
    options_.progress(++done, count);
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      job(i);
      report_progress();
    }
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker_body = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mutex};
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      report_progress();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(worker_body);
  worker_body();  // the calling thread is worker 0
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace lazyeye::campaign
