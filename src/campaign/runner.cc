#include "campaign/runner.h"

#include <atomic>
#include <exception>
#include <thread>

#include "util/mutex.h"

namespace lazyeye::campaign {

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_{std::move(options)} {}

int CampaignRunner::resolved_workers(std::size_t jobs) const {
  int workers = options_.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (static_cast<std::size_t>(workers) > jobs) {
    workers = jobs == 0 ? 1 : static_cast<int>(jobs);
  }
  return workers;
}

int CampaignRunner::run_indexed(std::size_t count,
                                const std::function<void(std::size_t)>& job,
                                ClaimGate* gate) const {
  if (count == 0) return 0;
  const int workers = resolved_workers(count);

  // Cells completing with no hook installed touch neither the counter nor
  // the mutex. With a hook, the count is claimed and the hook invoked under
  // one lock: the contract promises serialised, monotonically increasing
  // (done, total) calls, so the claim cannot move outside it — which also
  // means a plain counter under the mutex is all the synchronisation left.
  std::size_t done = 0;
  util::Mutex progress_mutex;
  const bool report = static_cast<bool>(options_.progress);
  auto report_progress = [&] {
    util::MutexLock lock{progress_mutex};
    options_.progress(++done, count);
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      job(i);
      if (report) report_progress();
    }
    return workers;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  util::Mutex error_mutex;

  auto worker_body = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      // Claims are handed out in index order, so every index below a gated
      // one is already owned by some worker — the wait always resolves.
      if (gate != nullptr && !gate->wait_for_claim(i)) return;
      try {
        job(i);
        // Inside the try: a throwing user hook must fail the campaign, not
        // unwind through the pool while other workers still run.
        if (report) report_progress();
      } catch (...) {
        {
          util::MutexLock lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        // Release claimers parked behind the (now dead) emit cursor.
        if (gate != nullptr) gate->abort();
        return;
      }
    }
  };

  WorkerPool& pool = options_.pool != nullptr ? *options_.pool
                                              : WorkerPool::shared();
  pool.run_job(workers - 1, worker_body);

  if (first_error) std::rethrow_exception(first_error);
  return workers;
}

}  // namespace lazyeye::campaign
