// CampaignRunner: shards ScenarioSpec cells across a persistent worker pool.
//
// Each worker claims cells off a shared atomic cursor and executes them in a
// fully isolated simnet world (the executor builds the world from the spec's
// seed). Completed cells are re-ordered into spec order and streamed to a
// ResultSink — the sink sees cell i only after cells 0..i-1, regardless of
// which worker finished first, so aggregated output is byte-identical for
// 1 worker and N workers. Worker count is purely a wall-clock knob.
//
// Hot-path properties:
//   - Threads come from a persistent WorkerPool (the process-wide shared
//     pool by default), parked between campaigns instead of re-spawned.
//   - The claim cursor honours `max_reorder_ahead` backpressure: workers
//     stop claiming cells that would run further ahead of the next
//     undelivered cell than the cap allows, so a pathologically slow head
//     cell bounds the pending reorder buffer instead of parking the whole
//     matrix behind it.
//   - Matrices can be lazy (SpecStream): specs are generated per claimed
//     cell, so matrix size never dictates memory high-water.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "campaign/failure.h"
#include "campaign/reorder.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "campaign/spec_stream.h"
#include "campaign/worker_pool.h"
#include "util/clock.h"
#include "util/mutex.h"

namespace lazyeye::campaign {

struct RunnerOptions {
  /// Worker threads; 0 means "one per hardware thread". The pool is clamped
  /// to the matrix size; an effective count of 1 runs inline on the calling
  /// thread (no pool).
  int workers = 0;

  /// Backpressure cap on the streaming reorder buffer: a worker only claims
  /// cell i once i <= (next undelivered cell) + max_reorder_ahead, so at
  /// most max_reorder_ahead completed cells are ever parked awaiting an
  /// earlier one. 0 = unbounded (claim as fast as workers drain the
  /// cursor). Effective parallelism is min(workers, max_reorder_ahead + 1);
  /// results are byte-identical for every setting.
  std::size_t max_reorder_ahead = 0;

  /// Pool to borrow threads from; nullptr = WorkerPool::shared(). The pool
  /// must outlive every run made with these options. Campaigns on one pool
  /// are serialised: two threads launching campaigns on the shared pool
  /// take turns (each still parallelises internally). Point workloads that
  /// must overlap — or whose executors block on anything outside their own
  /// cell — at private pools.
  WorkerPool* pool = nullptr;

  /// Optional progress hook, invoked after each completed cell with
  /// (cells_done, cells_total) in completion order. May be called from any
  /// worker; calls are serialised by the runner. A throwing hook fails the
  /// campaign like a throwing executor (first exception rethrown).
  std::function<void(std::size_t, std::size_t)> progress;

  // ---- Per-cell fault isolation -------------------------------------------
  // With all four knobs at their defaults the runner behaves exactly as
  // before: the first executor throw fails the whole campaign.

  /// Extra executor attempts per cell after the first failure. Retries pace
  /// out with exponential backoff (retry_backoff_ms * 2^attempt).
  int max_cell_retries = 0;

  /// When a cell exhausts its retries: true quarantines it into a
  /// FailureReport (delivered to the sink via cell_failed(); campaign keeps
  /// going), false rethrows the last error (fail-fast, the v2 behaviour).
  bool quarantine_failures = false;

  /// Base wall-clock backoff before retry k (doubles each time; capped at
  /// 20 doublings). 0 retries immediately.
  std::uint64_t retry_backoff_ms = 0;

  /// Soft per-cell wall-clock budget: a cell whose executor RETURNS after
  /// more than this many milliseconds is treated as a failed attempt
  /// (retried, then quarantined) instead of delivered — its world overran
  /// the host budget, so its result is suspect and the grid should record
  /// that loudly. 0 disables. NOTE: this cannot interrupt a cell that never
  /// returns; truly hung cells are the multi-process shard layer's problem
  /// (kill the shard, resume from its journal).
  std::uint64_t cell_timeout_ms = 0;
};

class CampaignRunner {
 public:
  /// Counters from the most recent completed run on this runner. Runs
  /// accumulate into locals and publish here under a lock, so concurrent
  /// runs on one (const) runner stay well-defined — the last run to finish
  /// wins. Campaigns already parallelise internally; prefer sharing the
  /// WorkerPool over sharing a runner.
  struct RunStats {
    /// Max completed cells parked in the reorder buffer awaiting an earlier
    /// cell. Bounded by max_reorder_ahead when that is non-zero.
    std::size_t reorder_high_water = 0;
    std::size_t cells = 0;
    int workers_used = 0;

    /// Fault-isolation counters (all zero with isolation off).
    std::size_t cells_failed = 0;       // failed executor attempts (incl. timeouts)
    std::size_t cells_retried = 0;      // retry attempts performed
    std::size_t cells_quarantined = 0;  // cells delivered as FailureReports
    /// One replayable report per quarantined cell, in spec order.
    std::vector<FailureReport> failures;
  };

  explicit CampaignRunner(RunnerOptions options = {});

  /// The worker count a matrix of `jobs` cells would actually use.
  int resolved_workers(std::size_t jobs) const;

  RunStats last_run_stats() const EXCLUDES(stats_mutex_) {
    util::MutexLock lock{stats_mutex_};
    return stats_;
  }

  /// Executes `executor` for every cell of the (possibly lazy) stream and
  /// delivers each outcome to `sink` in spec order (see sink.h for the
  /// delivery contract). The executor must be self-contained per call (it
  /// may run concurrently from several threads on *different* specs).
  /// Out-of-order completions are parked in a pending map and released as
  /// soon as every earlier cell has been delivered; with
  /// options.max_reorder_ahead set, the claim cursor stalls rather than let
  /// the parked set outgrow the cap, so a slow head cell can no longer park
  /// the whole matrix. If any executor or sink call throws, the first
  /// exception is rethrown on the calling thread after the pool drains
  /// (sink.end() is not called).
  template <typename R>
  void run_streaming(const SpecStream& specs,
                     const std::function<R(const ScenarioSpec&)>& executor,
                     ResultSink<R>& sink) const {
    sink.begin(specs.size());
    run_range<R>(specs, 0, specs.size(), executor, sink);
    sink.end();
  }

  /// Journal/resume building block: executes cells [first, last) of the
  /// stream, delivering them to `sink` in spec order starting at `first`.
  /// Does NOT call sink.begin()/end() — the caller owns the sink lifecycle
  /// (the journal layer replays already-finished cells between begin() and
  /// this call; see journal_sink.h). Stats are published to
  /// last_run_stats() and returned.
  template <typename R>
  RunStats run_range(const SpecStream& specs, std::size_t first,
                     std::size_t last,
                     const std::function<R(const ScenarioSpec&)>& executor,
                     ResultSink<R>& sink) const {
    if (first > last || last > specs.size()) {
      throw std::invalid_argument("run_range: cell range outside the stream");
    }
    // Streams backed by a materialised matrix (view()/of()) deliver specs
    // straight out of that vector — no per-cell ScenarioSpec copy on the
    // v1-style vector entry points. Only truly lazy streams generate and
    // carry a spec per cell.
    const std::vector<ScenarioSpec>* backed = specs.backing();
    ReorderBuffer<R> reorder{backed, first};
    ClaimGate gate{options_.max_reorder_ahead};
    FaultLedger ledger;
    RunStats run_stats;  // published to stats_ only when the run completes
    run_stats.cells = last - first;
    const bool isolate =
        options_.quarantine_failures || options_.max_cell_retries > 0 ||
        options_.cell_timeout_ms > 0;

    run_stats.workers_used = run_indexed(
        last - first,
        [&](std::size_t k) {
          // The claim gate and run_indexed work in 0-based claim
          // coordinates; the reorder buffer and sink see absolute indices.
          const std::size_t i = first + k;
          ScenarioSpec spec;  // generated per cell only for lazy streams
          if (backed == nullptr) spec = specs.at(i);
          const ScenarioSpec& cell_spec =
              backed != nullptr ? (*backed)[i] : spec;

          if (!isolate) {
            R outcome = executor(cell_spec);
            // complete() drains every ready cell to the sink under the
            // reorder mutex and hands back the new emit cursor. advance()
            // is monotonic, so pacing the gate with a value read outside
            // the reorder lock is safe — a stale (smaller) cursor is
            // ignored.
            gate.advance(reorder.complete(i, std::move(spec),
                                          std::move(outcome), sink) -
                         first);
            return;
          }

          // Fault-isolated path: bounded retries, then quarantine (or
          // rethrow when quarantine_failures is off).
          const int attempts_allowed = 1 + std::max(0, options_.max_cell_retries);
          std::exception_ptr last_error;
          std::string error_text;
          bool timed_out = false;
          int attempts = 0;
          while (attempts < attempts_allowed) {
            if (attempts > 0) {
              ledger.on_retry();
              if (options_.retry_backoff_ms > 0) {
                util::sleep_for_ms(options_.retry_backoff_ms
                                   << std::min(attempts - 1, 20));
              }
            }
            ++attempts;
            const std::uint64_t start_ns =
                options_.cell_timeout_ms > 0 ? util::monotonic_now_ns() : 0;
            try {
              R outcome = executor(cell_spec);
              if (options_.cell_timeout_ms > 0) {
                const std::uint64_t elapsed_ms =
                    (util::monotonic_now_ns() - start_ns) / 1000000u;
                if (elapsed_ms > options_.cell_timeout_ms) {
                  ledger.on_failed_attempt();
                  timed_out = true;
                  last_error = nullptr;
                  error_text = "cell overran cell_timeout_ms=";
                  error_text.append(
                      std::to_string(options_.cell_timeout_ms));
                  error_text.append(" (took ");
                  error_text.append(std::to_string(elapsed_ms));
                  error_text.append(" ms)");
                  continue;
                }
              }
              gate.advance(reorder.complete(i, std::move(spec),
                                            std::move(outcome), sink) -
                           first);
              return;
            } catch (const std::exception& e) {
              ledger.on_failed_attempt();
              timed_out = false;
              error_text = e.what();
              last_error = std::current_exception();
            } catch (...) {
              ledger.on_failed_attempt();
              timed_out = false;
              error_text = "non-standard exception";
              last_error = std::current_exception();
            }
          }

          if (!options_.quarantine_failures) {
            if (last_error) std::rethrow_exception(last_error);
            throw std::runtime_error(error_text);  // timeout, fail-fast mode
          }
          FailureReport report;
          report.index = i;
          report.spec_id = cell_spec.id;
          report.seed = cell_spec.seed;
          report.label = cell_spec.label;
          report.client = cell_spec.client;
          report.attempts = attempts;
          report.timed_out = timed_out;
          report.error = error_text;
          ledger.on_quarantine(report);
          gate.advance(reorder.complete_failed(i, std::move(spec),
                                               std::move(report), sink) -
                       first);
        },
        &gate);
    run_stats.reorder_high_water = reorder.high_water();
    ledger.fold_into(run_stats);
    {
      util::MutexLock lock{stats_mutex_};
      stats_ = run_stats;
    }
    return run_stats;
  }

  /// Materialised-matrix overload: streams over a non-owning view (specs
  /// are delivered by reference, never copied per cell).
  template <typename R>
  void run_streaming(const std::vector<ScenarioSpec>& specs,
                     const std::function<R(const ScenarioSpec&)>& executor,
                     ResultSink<R>& sink) const {
    run_streaming<R>(SpecStream::view(specs), executor, sink);
  }

  /// Convenience wrapper: collects the streamed outcomes into a vector in
  /// spec order. Prefer run_streaming with a sink when the aggregation can
  /// fold cells incrementally.
  template <typename R>
  std::vector<R> run(const SpecStream& specs,
                     const std::function<R(const ScenarioSpec&)>& executor) const {
    std::vector<R> results;
    results.reserve(specs.size());
    CallbackSink<R> sink{[&results](const ScenarioSpec&, R outcome) {
      results.push_back(std::move(outcome));
    }};
    run_streaming<R>(specs, executor, sink);
    return results;
  }

  template <typename R>
  std::vector<R> run(const std::vector<ScenarioSpec>& specs,
                     const std::function<R(const ScenarioSpec&)>& executor) const {
    return run<R>(SpecStream::view(specs), executor);
  }

 private:
  /// Aggregates fault-isolation counters and quarantine reports across
  /// workers. One mutex guards everything; contention is negligible (only
  /// failing cells touch it).
  class FaultLedger {
   public:
    void on_failed_attempt() EXCLUDES(mutex_) {
      util::MutexLock lock{mutex_};
      ++failed_;
    }

    void on_retry() EXCLUDES(mutex_) {
      util::MutexLock lock{mutex_};
      ++retried_;
    }

    void on_quarantine(FailureReport report) EXCLUDES(mutex_) {
      util::MutexLock lock{mutex_};
      ++quarantined_;
      failures_.push_back(std::move(report));
    }

    /// Copies the counters into `stats`, failure reports sorted into spec
    /// order (workers quarantine in completion order).
    void fold_into(RunStats& stats) EXCLUDES(mutex_) {
      util::MutexLock lock{mutex_};
      stats.cells_failed = failed_;
      stats.cells_retried = retried_;
      stats.cells_quarantined = quarantined_;
      std::sort(failures_.begin(), failures_.end(),
                [](const FailureReport& a, const FailureReport& b) {
                  return a.index < b.index;
                });
      stats.failures = failures_;
    }

   private:
    mutable util::Mutex mutex_;
    std::size_t failed_ GUARDED_BY(mutex_) = 0;
    std::size_t retried_ GUARDED_BY(mutex_) = 0;
    std::size_t quarantined_ GUARDED_BY(mutex_) = 0;
    std::vector<FailureReport> failures_ GUARDED_BY(mutex_);
  };

  /// Paces the claim cursor against the emit cursor. Workers claim cell
  /// indices in order, then wait here until their index enters the window
  /// [0, next_to_emit + max_ahead]; every emit advances the window. The
  /// head index is always admissible, so progress never stalls — and on a
  /// campaign failure the gate opens unconditionally so parked claimers
  /// drain out.
  class ClaimGate {
   public:
    explicit ClaimGate(std::size_t max_ahead) : max_ahead_{max_ahead} {}

    /// Blocks until index may run. Returns false when the campaign failed
    /// while waiting (the caller must not run the cell).
    bool wait_for_claim(std::size_t index) EXCLUDES(mutex_) {
      if (max_ahead_ == 0) return true;
      util::MutexLock lock{mutex_};
      // Saturating form of index <= window_base_ + max_ahead_ (a huge
      // cap like SIZE_MAX must mean "unbounded", not wrap to zero).
      while (!aborted_ && index > max_ahead_ &&
             index - max_ahead_ > window_base_) {
        cv_.wait(mutex_);
      }
      return !aborted_;
    }

    /// Monotonic: a next_to_emit at or below the current window base is a
    /// no-op, so callers may pass cursors read outside the emit lock.
    void advance(std::size_t next_to_emit) EXCLUDES(mutex_) {
      if (max_ahead_ == 0) return;
      {
        util::MutexLock lock{mutex_};
        if (next_to_emit <= window_base_) return;
        window_base_ = next_to_emit;
      }
      cv_.notify_all();
    }

    void abort() EXCLUDES(mutex_) {
      if (max_ahead_ == 0) return;
      {
        util::MutexLock lock{mutex_};
        aborted_ = true;
      }
      cv_.notify_all();
    }

   private:
    const std::size_t max_ahead_;  // 0 = unbounded, gate is a no-op
    util::Mutex mutex_;
    util::CondVar cv_;
    /// Next undelivered cell.
    std::size_t window_base_ GUARDED_BY(mutex_) = 0;
    bool aborted_ GUARDED_BY(mutex_) = false;
  };

  /// Non-template core: runs job(0..count-1) across the pool, pacing claims
  /// through `gate` (may be nullptr for ungated index runs). Returns the
  /// worker count the run actually used.
  int run_indexed(std::size_t count,
                  const std::function<void(std::size_t)>& job,
                  ClaimGate* gate) const;

  RunnerOptions options_;
  mutable util::Mutex stats_mutex_;
  /// See last_run_stats(): last completed run wins.
  mutable RunStats stats_ GUARDED_BY(stats_mutex_);
};

}  // namespace lazyeye::campaign
