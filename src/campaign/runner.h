// CampaignRunner: shards ScenarioSpec cells across a worker pool.
//
// Each worker claims cells off a shared atomic cursor and executes them in a
// fully isolated simnet world (the executor builds the world from the spec's
// seed). Results land in a pre-sized vector indexed by cell order, so the
// aggregated output is byte-identical for 1 worker and N workers — worker
// count is purely a wall-clock knob.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "campaign/scenario.h"

namespace lazyeye::campaign {

struct RunnerOptions {
  /// Worker threads; 0 means "one per hardware thread". The pool is clamped
  /// to the matrix size; an effective count of 1 runs inline on the calling
  /// thread (no pool).
  int workers = 0;

  /// Optional progress hook, invoked after each completed cell with
  /// (cells_done, cells_total). May be called from any worker; calls are
  /// serialised by the runner.
  std::function<void(std::size_t, std::size_t)> progress;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  /// The worker count a matrix of `jobs` cells would actually use.
  int resolved_workers(std::size_t jobs) const;

  /// Executes `executor` for every spec and returns the results in spec
  /// order. The executor must be self-contained per call (it may run
  /// concurrently from several threads on *different* specs). If any
  /// executor call throws, the first exception is rethrown on the calling
  /// thread after the pool drains.
  template <typename R>
  std::vector<R> run(const std::vector<ScenarioSpec>& specs,
                     const std::function<R(const ScenarioSpec&)>& executor) const {
    // Workers write distinct results[i] slots concurrently; vector<bool>
    // packs bits, so neighbouring slots would share a byte (a data race).
    static_assert(!std::is_same_v<R, bool>,
                  "use e.g. char or int instead of bool outcomes");
    std::vector<R> results(specs.size());
    run_indexed(specs.size(), [&](std::size_t i) {
      results[i] = executor(specs[i]);
    });
    return results;
  }

 private:
  /// Non-template core: runs job(0..count-1) across the pool.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& job) const;

  RunnerOptions options_;
};

}  // namespace lazyeye::campaign
