// CampaignRunner: shards ScenarioSpec cells across a worker pool.
//
// Each worker claims cells off a shared atomic cursor and executes them in a
// fully isolated simnet world (the executor builds the world from the spec's
// seed). Completed cells are re-ordered into spec order and streamed to a
// ResultSink — the sink sees cell i only after cells 0..i-1, regardless of
// which worker finished first, so aggregated output is byte-identical for
// 1 worker and N workers. Worker count is purely a wall-clock knob.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "campaign/scenario.h"
#include "campaign/sink.h"

namespace lazyeye::campaign {

struct RunnerOptions {
  /// Worker threads; 0 means "one per hardware thread". The pool is clamped
  /// to the matrix size; an effective count of 1 runs inline on the calling
  /// thread (no pool).
  int workers = 0;

  /// Optional progress hook, invoked after each completed cell with
  /// (cells_done, cells_total) in completion order. May be called from any
  /// worker; calls are serialised by the runner.
  std::function<void(std::size_t, std::size_t)> progress;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  /// The worker count a matrix of `jobs` cells would actually use.
  int resolved_workers(std::size_t jobs) const;

  /// Executes `executor` for every spec and streams each outcome to `sink`
  /// in spec order (see sink.h for the delivery contract). The executor
  /// must be self-contained per call (it may run concurrently from several
  /// threads on *different* specs). Out-of-order completions are parked in
  /// a pending map and released as soon as every earlier cell has been
  /// delivered, so memory high-water tracks how far completions run ahead
  /// of the slowest undelivered cell — typically a few cells on balanced
  /// matrices, but a pathologically slow head cell can park everything
  /// behind it (no backpressure on the claim cursor yet; see ROADMAP). If
  /// any executor or sink call throws, the first exception is rethrown on
  /// the calling thread after the pool drains (sink.end() is not called).
  template <typename R>
  void run_streaming(const std::vector<ScenarioSpec>& specs,
                     const std::function<R(const ScenarioSpec&)>& executor,
                     ResultSink<R>& sink) const {
    std::map<std::size_t, R> pending;  // finished cells awaiting delivery
    std::mutex emit_mutex;
    std::size_t next_to_emit = 0;
    bool delivery_failed = false;

    sink.begin(specs.size());
    run_indexed(specs.size(), [&](std::size_t i) {
      R outcome = executor(specs[i]);
      std::lock_guard<std::mutex> lock{emit_mutex};
      pending.emplace(i, std::move(outcome));
      while (!delivery_failed) {
        const auto ready = pending.find(next_to_emit);
        if (ready == pending.end()) break;
        // Claim the cell before delivering: if the sink throws, no other
        // worker's drain may re-deliver it (it would be moved-from), and
        // delivery stops for good — the exception surfaces as the
        // campaign's first error.
        R outcome_ready = std::move(ready->second);
        pending.erase(ready);
        const std::size_t cell = next_to_emit++;
        try {
          sink.cell(specs[cell], std::move(outcome_ready));
        } catch (...) {
          delivery_failed = true;
          throw;
        }
      }
    });
    sink.end();
  }

  /// Convenience wrapper: collects the streamed outcomes into a vector in
  /// spec order. Prefer run_streaming with a sink when the aggregation can
  /// fold cells incrementally.
  template <typename R>
  std::vector<R> run(const std::vector<ScenarioSpec>& specs,
                     const std::function<R(const ScenarioSpec&)>& executor) const {
    std::vector<R> results;
    results.reserve(specs.size());
    CallbackSink<R> sink{[&results](const ScenarioSpec&, R outcome) {
      results.push_back(std::move(outcome));
    }};
    run_streaming<R>(specs, executor, sink);
    return results;
  }

 private:
  /// Non-template core: runs job(0..count-1) across the pool.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& job) const;

  RunnerOptions options_;
};

}  // namespace lazyeye::campaign
