#include "campaign/scenario.h"

namespace lazyeye::campaign {

const char* case_kind_name(CaseKind kind) {
  switch (kind) {
    case CaseKind::kCad: return "cad";
    case CaseKind::kResolutionDelay: return "rd";
    case CaseKind::kAddressSelection: return "addr-selection";
    case CaseKind::kWebToolRepetition: return "webtool-rep";
    case CaseKind::kResolverCell: return "resolver-cell";
  }
  return "?";
}

}  // namespace lazyeye::campaign
