// Declarative description of one measurement run (one cell of a scenario
// matrix) — campaign API v2.
//
// A ScenarioSpec is the shared envelope every cell carries — dense id,
// per-cell seed, repetition, grid position, label, client — plus a typed
// payload (case.h) holding exactly the parameters of its measurement case.
// Because each cell owns its world and its seed, cells can run in any order
// on any number of workers and still produce byte-identical results; and
// because the payload is a closed variant, one matrix can mix case kinds
// (testbed CAD cells next to resolver-lab cells) and an executor registry
// can dispatch on the payload type alone.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "campaign/case.h"
#include "util/rng.h"
#include "util/time.h"

namespace lazyeye::campaign {

struct ScenarioSpec {
  /// Dense index of this cell in its campaign's matrix; doubles as the
  /// result slot, so aggregation order never depends on worker scheduling.
  std::uint64_t id = 0;

  /// Per-cell seed. The executor derives every RNG in the cell's world from
  /// this value (directly or through world_seed()/client_seed()), never from
  /// shared mutable state — that is what makes sharding deterministic.
  std::uint64_t seed = 1;

  int repetition = 0;
  int grid_index = 0;  // position in the delay grid / bucket list

  /// Human-readable cell name for tables and progress output.
  std::string label;

  /// Client profile display name ("" when the case has no client). Part of
  /// the envelope rather than a payload field so multi-client batches can
  /// mix profiles within one kind, and executors resolve the profile from
  /// their registered pool.
  std::string client;

  /// The measurement case this cell runs (typed; see case.h).
  CasePayload payload = CadCase{};

  /// Discriminator of the payload (registries index executor tables by it).
  CaseKind kind() const { return kind_of(payload); }

  /// Payload accessor: nullptr when the cell holds a different case type.
  template <typename C>
  const C* get_if() const {
    return std::get_if<C>(&payload);
  }

  /// Independent streams derived from `seed` for executors that need more
  /// than one generator per cell (world netem vs client behaviour).
  std::uint64_t world_seed() const { return derive(0x9e3779b9ULL); }
  std::uint64_t client_seed() const { return derive(0xc2b2ae35ULL); }

 private:
  std::uint64_t derive(std::uint64_t stream) const {
    SplitMix64 mix{seed ^ (stream * 0xd6e8feb86659fd93ULL)};
    return mix.next();
  }
};

}  // namespace lazyeye::campaign
