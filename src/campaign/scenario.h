// Declarative description of one measurement run (one cell of a scenario
// matrix).
//
// Every experiment in this repo — the testbed's CAD/RD/address-selection
// sweeps (Figure 2), the web tool's delay-bucket × repetition campaigns
// (Figure 4), the resolver lab's delay × repetition matrix (Table 3) — is a
// grid of independent (configuration × repetition) cells. A ScenarioSpec
// captures one cell as plain data: which client/service, which delay knob,
// which repetition, and crucially which *seed* the isolated simnet world is
// built from. Because each cell owns its world and its seed, cells can run
// in any order on any number of workers and still produce byte-identical
// results.
#pragma once

#include <cstdint>
#include <string>

#include "dns/rr.h"
#include "util/rng.h"
#include "util/time.h"

namespace lazyeye::campaign {

/// The measurement case a spec describes. Executors dispatch on this.
enum class CaseKind {
  kCad,               // dual-stack target, IPv6 path delayed
  kResolutionDelay,   // DNS answer of `delayed_type` delayed
  kAddressSelection,  // `per_family` unresponsive addresses per family
  kWebToolRepetition, // one web-tool repetition over the whole bucket grid
  kResolverCell,      // one resolver-lab (delay, repetition) cell
};

const char* case_kind_name(CaseKind kind);

struct ScenarioSpec {
  /// Dense index of this cell in its campaign's matrix; doubles as the
  /// result slot, so aggregation order never depends on worker scheduling.
  std::uint64_t id = 0;

  /// Per-cell seed. The executor derives every RNG in the cell's world from
  /// this value (directly or through world_seed()/client_seed()), never from
  /// shared mutable state — that is what makes sharding deterministic.
  std::uint64_t seed = 1;

  CaseKind kind = CaseKind::kCad;
  int repetition = 0;
  int grid_index = 0;  // position in the delay grid / bucket list

  /// Human-readable cell name for tables and progress output.
  std::string label;

  /// Knobs interpreted per kind.
  std::string client;   // client profile display name ("" when n/a)
  std::string service;  // resolver service name ("" when n/a)
  SimTime delay{0};     // IPv6 path delay (CAD) or DNS answer delay (RD)
  /// DNS behaviour: when true the delay knob shapes the answer of
  /// `delayed_type` instead of the IPv6 path (web-tool RD cells).
  bool delay_dns = false;
  dns::RrType delayed_type = dns::RrType::kAaaa;
  int per_family = 0;   // address-selection width

  /// Independent streams derived from `seed` for executors that need more
  /// than one generator per cell (world netem vs client behaviour).
  std::uint64_t world_seed() const { return derive(0x9e3779b9ULL); }
  std::uint64_t client_seed() const { return derive(0xc2b2ae35ULL); }

 private:
  std::uint64_t derive(std::uint64_t stream) const {
    SplitMix64 mix{seed ^ (stream * 0xd6e8feb86659fd93ULL)};
    return mix.next();
  }
};

}  // namespace lazyeye::campaign
