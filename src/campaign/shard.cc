#include "campaign/shard.h"

#include <initializer_list>

namespace lazyeye::campaign {

namespace {

std::string cat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const std::string_view part : parts) out.append(part);
  return out;
}

}  // namespace

std::vector<ShardRange> shard_plan(std::uint64_t cells, int shards) {
  if (shards < 1) shards = 1;
  const auto n = static_cast<std::uint64_t>(shards);
  const std::uint64_t base = cells / n;
  const std::uint64_t extra = cells % n;
  std::vector<ShardRange> plan;
  plan.reserve(n);
  std::uint64_t at = 0;
  for (int s = 0; s < shards; ++s) {
    ShardRange range;
    range.shard = s;
    range.begin = at;
    at += base + (static_cast<std::uint64_t>(s) < extra ? 1 : 0);
    range.end = at;
    plan.push_back(range);
  }
  return plan;
}

std::string shard_journal_path(std::string_view base, int shard) {
  return cat({base, ".shard", std::to_string(shard), ".journal"});
}

ShardMergeStats merge_shard_journals(
    std::string_view base, int shards, std::uint64_t identity,
    std::uint64_t cells,
    const std::function<void(std::uint64_t, std::string_view)>& on_cell,
    const std::function<void(std::uint64_t, const JournalLoad::Cell&)>&
        on_quarantine) {
  const std::vector<ShardRange> plan = shard_plan(cells, shards);
  ShardMergeStats stats;
  // Shards are contiguous ranges in plan order, and each journal's cells
  // are in-order and contiguous from its cell_begin (load_journal enforces
  // both), so walking the plan IS spec order.
  for (const ShardRange& range : plan) {
    const std::string path = shard_journal_path(base, range.shard);
    const JournalLoad load = load_journal(path);
    if (!load.exists) {
      throw JournalError(cat({"shard journal missing: ", path}));
    }
    if (load.identity != identity) {
      throw JournalError(
          cat({"shard journal identity mismatch (different spec stream): ",
               path}));
    }
    if (load.cell_begin != range.begin || load.cell_end != range.end) {
      throw JournalError(
          cat({"shard journal covers a different cell range than the plan: ",
               path}));
    }
    if (!load.complete) {
      throw JournalError(
          cat({"shard journal incomplete (shard still has cells to run; "
               "resume it before merging): ",
               path}));
    }
    for (const JournalLoad::Cell& cell : load.cells) {
      if (cell.quarantined) {
        if (!on_quarantine) {
          throw JournalError(
              cat({"shard journal holds a quarantined cell and the merge "
                   "accepts none: ",
                   path}));
        }
        on_quarantine(cell.index, cell);
        ++stats.quarantined;
      } else {
        on_cell(cell.index, cell.payload);
      }
      ++stats.cells;
    }
  }
  if (stats.cells != cells) {
    throw JournalError(
        "merged shard journals do not cover the full cell range");
  }
  return stats;
}

}  // namespace lazyeye::campaign
