// Multi-process campaign sharding: index-range partitioning plus journal
// merge.
//
// A shard is a contiguous cell range [begin, end) of one spec stream, run
// as its own journaled campaign (journal_sink.h) in its own OS process with
// its own WorkerPool — the isolation unit the in-process fault machinery
// cannot provide (a wedged or crashed cell takes down only its shard, and
// the shard resumes from its journal). Because every cell's world derives
// from its spec alone and delivery within a shard is in spec order, the
// concatenation of the shard journals in plan order reproduces exactly the
// cell stream a single-process run would deliver: merge then re-establishes
// spec order by walking the shards' (already in-order, contiguous) records.
//
// The driver lives in tools/lazyeye_shard; this header is the
// process-agnostic core (partitioning, paths, merge) so tests can exercise
// it without forking.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/journal.h"

namespace lazyeye::campaign {

struct ShardRange {
  int shard = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive

  std::uint64_t cells() const { return end - begin; }
};

/// Contiguous near-equal partition of [0, cells) into `shards` ranges (the
/// first cells % shards ranges get one extra cell). Deterministic; empty
/// ranges appear only when shards > cells.
std::vector<ShardRange> shard_plan(std::uint64_t cells, int shards);

/// Journal path for one shard: "<base>.shard<k>.journal".
std::string shard_journal_path(std::string_view base, int shard);

struct ShardMergeStats {
  std::uint64_t cells = 0;
  std::uint64_t quarantined = 0;
};

/// Validates and merges the per-shard journals of a completed sharded run,
/// emitting every cell in global spec order. Each journal must exist, be
/// complete, match `identity`, and cover exactly its planned range —
/// anything else throws JournalError (a merge must never fabricate or skip
/// cells). `on_cell(index, payload)` receives result bytes for delivered
/// cells; `on_quarantine(index, cell)` receives quarantined ones (may be
/// null to reject any quarantine as an error).
ShardMergeStats merge_shard_journals(
    std::string_view base, int shards, std::uint64_t identity,
    std::uint64_t cells,
    const std::function<void(std::uint64_t, std::string_view)>& on_cell,
    const std::function<void(std::uint64_t, const JournalLoad::Cell&)>&
        on_quarantine);

}  // namespace lazyeye::campaign
