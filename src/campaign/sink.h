// ResultSink: streaming per-cell delivery of campaign outcomes.
//
// v1's run() materialised every outcome vector before any aggregation could
// start; v2 pushes each cell to a sink *in spec order* as soon as it (and
// all cells before it) completed. Aggregations that fold cells into running
// counters (the web tool's per-bucket tallies, the resolver lab's Table 3
// rows) never hold the full record vector; campaigns that do want the
// materialised matrix use CollectingSink, which reproduces the v1
// CampaignResult byte-for-byte.
//
// Delivery contract (enforced by CampaignRunner::run_streaming):
//   - begin(n) once, on the calling thread, before any cell.
//   - cell(spec, outcome) exactly once per cell, in spec order, serialised
//     (never concurrently) — but possibly from different worker threads.
//   - end() once after the last cell; skipped when an executor throws.
//
// The serialisation is concrete, not just documented: every cell() call is
// made while holding the ReorderBuffer's mutex (reorder.h), so sink state
// (SketchSink's sketches, CollectingSink's vectors) needs no locking of its
// own — the reorder mutex is the sink's capability.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "campaign/failure.h"
#include "campaign/result.h"
#include "campaign/scenario.h"

namespace lazyeye::campaign {

template <typename R>
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once with the matrix size before the first cell.
  virtual void begin(std::size_t cells_total) { (void)cells_total; }

  /// Called once per cell, in spec order, calls serialised.
  virtual void cell(const ScenarioSpec& spec, R outcome) = 0;

  /// Called in place of cell() for a quarantined cell (fault isolation,
  /// runner.h), same order/serialisation guarantees. Default: drop.
  virtual void cell_failed(const ScenarioSpec& spec,
                           const FailureReport& report) {
    (void)spec;
    (void)report;
  }

  /// Snapshot hook for journaled campaigns (journal_sink.h): serialise all
  /// state accumulated by cell() calls so far into `out` and return true.
  /// Sinks without a compact state (or none at all) return false — the
  /// journal then resumes by replay instead of by restore. Called under the
  /// same serialisation as cell().
  virtual bool save_state(std::string& out) const {
    (void)out;
    return false;
  }

  /// Inverse of save_state: restore from a snapshot taken after the same
  /// number of cells. Returns false when the blob is not recognised.
  virtual bool restore_state(std::string_view state) {
    (void)state;
    return false;
  }

  /// Called once after the last cell (not called when the campaign throws).
  virtual void end() {}
};

/// Materialises the matrix into a CampaignResult — the v1 behaviour, now
/// just one sink among others.
template <typename R>
class CollectingSink final : public ResultSink<R> {
 public:
  void begin(std::size_t cells_total) override {
    result_.specs.reserve(cells_total);
    result_.outcomes.reserve(cells_total);
  }

  void cell(const ScenarioSpec& spec, R outcome) override {
    result_.specs.push_back(spec);
    result_.outcomes.push_back(std::move(outcome));
  }

  const CampaignResult<R>& result() const& { return result_; }
  CampaignResult<R> take() && { return std::move(result_); }

 private:
  CampaignResult<R> result_;
};

/// Adapts a callable into a sink for on-the-fly aggregation.
template <typename R>
class CallbackSink final : public ResultSink<R> {
 public:
  using CellFn = std::function<void(const ScenarioSpec&, R)>;

  explicit CallbackSink(CellFn on_cell) : on_cell_{std::move(on_cell)} {}

  void cell(const ScenarioSpec& spec, R outcome) override {
    on_cell_(spec, std::move(outcome));
  }

 private:
  CellFn on_cell_;
};

}  // namespace lazyeye::campaign
