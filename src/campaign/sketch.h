// Streaming-sketch result aggregation: O(1)-memory-per-metric summaries for
// campaigns too large to materialise (the ROADMAP's "million-cell grids never
// materialise" goal needs CDF-style outputs without per-cell records).
//
// Three pieces:
//   - P2Quantile: the Jain & Chlamtac P² online quantile estimator — five
//     markers updated per observation, no sample buffer after warm-up.
//   - MetricSketch: count/sum/min/max folded exactly, plus P² p50/p95/p99.
//   - SketchSink<R>: a ResultSink that folds named metrics extracted from
//     each outcome as it streams past, and TeeSink<R> to feed a Collecting-
//     Sink and a SketchSink from one campaign pass.
//
// Determinism: CampaignRunner delivers cells in spec order regardless of
// worker count (sink.h contract), and every update below is a fixed sequence
// of IEEE double operations on the delivered values — so the complete sketch
// state is bit-identical for 1 and N workers. fingerprint() exposes that
// state as hex-encoded bit patterns for exact comparison in tests.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/sink.h"

namespace lazyeye::campaign {

namespace sketch_detail {
struct StateReader;  // defined below (binary snapshot codec)
}

/// P² (piecewise-parabolic) online estimator for a single quantile
/// (Jain & Chlamtac, CACM 1985). Constant state: five marker heights and
/// positions. Until five observations arrive the raw samples are kept and
/// the estimate is read from the sorted warm-up buffer.
class P2Quantile {
 public:
  explicit P2Quantile(double p) : p_{p} {}

  void add(double x) {
    if (count_ < 5) {
      warmup_[count_++] = x;
      if (count_ == 5) {
        std::sort(warmup_.begin(), warmup_.end());
        for (int i = 0; i < 5; ++i) {
          q_[i] = warmup_[i];
          n_[i] = i + 1;
        }
        np_[0] = 1.0;
        np_[1] = 1.0 + 2.0 * p_;
        np_[2] = 1.0 + 4.0 * p_;
        np_[3] = 3.0 + 2.0 * p_;
        np_[4] = 5.0;
      }
      return;
    }
    ++count_;

    // Cell k such that q[k] <= x < q[k+1]; extremes widen the end markers.
    int k;
    if (x < q_[0]) {
      q_[0] = x;
      k = 0;
    } else if (x >= q_[4]) {
      q_[4] = x;
      k = 3;
    } else {
      k = 0;
      while (k < 3 && x >= q_[k + 1]) ++k;
    }

    for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
    np_[1] += p_ / 2.0;
    np_[2] += p_;
    np_[3] += (1.0 + p_) / 2.0;
    np_[4] += 1.0;

    for (int i = 1; i <= 3; ++i) {
      const double d = np_[i] - n_[i];
      if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
          (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
        const double s = d >= 0 ? 1.0 : -1.0;
        const double candidate = parabolic(i, s);
        if (q_[i - 1] < candidate && candidate < q_[i + 1]) {
          q_[i] = candidate;
        } else {
          q_[i] = linear(i, s);
        }
        n_[i] += s;
      }
    }
  }

  /// Current estimate; NaN with no observations.
  double estimate() const {
    if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
    if (count_ < 5) {
      // Nearest-rank on the sorted warm-up samples.
      std::array<double, 5> sorted = warmup_;
      std::sort(sorted.begin(), sorted.begin() + count_);
      const auto rank = static_cast<std::size_t>(
          std::ceil(p_ * static_cast<double>(count_)));
      return sorted[std::min(count_ - 1, rank > 0 ? rank - 1 : 0)];
    }
    return q_[2];
  }

  std::uint64_t count() const { return count_; }

  /// Appends the full internal state as hex bit patterns (see fingerprint
  /// rationale in the header comment).
  void append_state(std::string& out) const;

  /// Binary state for journal snapshots; load_binary is the exact inverse
  /// (bit-identical restore). p_ is NOT serialised — it is construction
  /// configuration, and restore must target an identically-built sketch.
  void save_binary(std::string& out) const;
  bool load_binary(sketch_detail::StateReader& in);

 private:
  double parabolic(int i, double s) const {
    return q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                       ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                            (n_[i + 1] - n_[i]) +
                        (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                            (n_[i] - n_[i - 1]));
  }

  double linear(int i, double s) const {
    const int j = i + static_cast<int>(s);
    return q_[i] + s * (q_[j] - q_[i]) / (n_[j] - n_[i]);
  }

  double p_;
  std::uint64_t count_ = 0;  // doubles as warm-up fill level below 5
  std::array<double, 5> warmup_{};
  std::array<double, 5> q_{};   // marker heights
  std::array<double, 5> n_{};   // marker positions (1-based, as in the paper)
  std::array<double, 5> np_{};  // desired marker positions
};

/// Online summary of one scalar metric: exact count/sum/min/max plus P²
/// estimates for the median and the tail. O(1) state per metric.
class MetricSketch {
 public:
  void add(double x) {
    ++count_;
    sum_ += x;
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
    p50_.add(x);
    p95_.add(x);
    p99_.add(x);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN()
                       : sum_ / static_cast<double>(count_);
  }
  double min() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  double p50() const { return p50_.estimate(); }
  double p95() const { return p95_.estimate(); }
  double p99() const { return p99_.estimate(); }

  /// Hex encoding of the complete state (count, sum, min, max, all three
  /// quantile sketches) — equal strings iff the states are bit-identical.
  std::string fingerprint() const;

  /// Binary state for journal snapshots (same coverage as fingerprint()).
  void save_binary(std::string& out) const;
  bool load_binary(sketch_detail::StateReader& in);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
};

namespace sketch_detail {

inline void append_hex_u64(std::string& out, std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHex[(v >> shift) & 0xF]);
  }
}

inline void append_hex_double(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  append_hex_u64(out, bits);
}

// Binary state codec for journal snapshots (sink.h save_state/restore_state).
// Big-endian like the rest of the wire formats; doubles travel as their IEEE
// bit patterns, so a restored sketch is bit-identical to the saved one.

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline void put_double(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked sequential reader with a sticky error flag, mirroring
/// util::ByteReader but over string_view and with u64/double reads.
struct StateReader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint64_t u64() {
    if (!ok || data.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v = (v << 8) | static_cast<unsigned char>(data[pos + i]);
    }
    pos += 8;
    return v;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string_view view(std::size_t n) {
    if (!ok || data.size() - pos < n) {
      ok = false;
      return {};
    }
    const std::string_view out = data.substr(pos, n);
    pos += n;
    return out;
  }
};

}  // namespace sketch_detail

inline void P2Quantile::append_state(std::string& out) const {
  sketch_detail::append_hex_u64(out, count_);
  for (double v : warmup_) sketch_detail::append_hex_double(out, v);
  for (double v : q_) sketch_detail::append_hex_double(out, v);
  for (double v : n_) sketch_detail::append_hex_double(out, v);
  for (double v : np_) sketch_detail::append_hex_double(out, v);
}

inline void P2Quantile::save_binary(std::string& out) const {
  sketch_detail::put_u64(out, count_);
  for (double v : warmup_) sketch_detail::put_double(out, v);
  for (double v : q_) sketch_detail::put_double(out, v);
  for (double v : n_) sketch_detail::put_double(out, v);
  for (double v : np_) sketch_detail::put_double(out, v);
}

inline bool P2Quantile::load_binary(sketch_detail::StateReader& in) {
  count_ = in.u64();
  for (double& v : warmup_) v = in.f64();
  for (double& v : q_) v = in.f64();
  for (double& v : n_) v = in.f64();
  for (double& v : np_) v = in.f64();
  return in.ok;
}

inline std::string MetricSketch::fingerprint() const {
  std::string out;
  out.reserve(16 * (4 + 3 * 21));
  sketch_detail::append_hex_u64(out, count_);
  sketch_detail::append_hex_double(out, sum_);
  sketch_detail::append_hex_double(out, min_);
  sketch_detail::append_hex_double(out, max_);
  p50_.append_state(out);
  p95_.append_state(out);
  p99_.append_state(out);
  return out;
}

inline void MetricSketch::save_binary(std::string& out) const {
  sketch_detail::put_u64(out, count_);
  sketch_detail::put_double(out, sum_);
  sketch_detail::put_double(out, min_);
  sketch_detail::put_double(out, max_);
  p50_.save_binary(out);
  p95_.save_binary(out);
  p99_.save_binary(out);
}

inline bool MetricSketch::load_binary(sketch_detail::StateReader& in) {
  count_ = in.u64();
  sum_ = in.f64();
  min_ = in.f64();
  max_ = in.f64();
  return p50_.load_binary(in) && p95_.load_binary(in) && p99_.load_binary(in);
}

/// Folds named metrics out of the result stream, one MetricSketch each.
/// Extractors returning nullopt skip the cell for that metric (e.g. a failed
/// fetch has no completion time). Memory is O(metrics), independent of the
/// matrix size.
template <typename R>
class SketchSink final : public ResultSink<R> {
 public:
  /// Pulls one scalar out of a delivered cell, or nullopt to skip it.
  using Extractor =
      std::function<std::optional<double>(const ScenarioSpec&, const R&)>;

  SketchSink& add_metric(std::string name, Extractor extract) {
    metrics_.push_back(Metric{std::move(name), std::move(extract), {}});
    return *this;
  }

  void cell(const ScenarioSpec& spec, R outcome) override {
    ++cells_seen_;
    for (Metric& m : metrics_) {
      if (const auto v = m.extract(spec, outcome)) m.sketch.add(*v);
    }
  }

  std::size_t cells_seen() const { return cells_seen_; }

  const MetricSketch* find(std::string_view name) const {
    for (const Metric& m : metrics_) {
      if (m.name == name) return &m.sketch;
    }
    return nullptr;
  }

  /// name:hex lines for every metric, in registration order; bit-identical
  /// across worker counts (see header comment).
  std::string fingerprint() const {
    std::string out;
    for (const Metric& m : metrics_) {
      out.append(m.name);
      out.push_back(':');
      out.append(m.sketch.fingerprint());
      out.push_back('\n');
    }
    return out;
  }

  /// Journal snapshot hook: the complete fold state (cells seen plus every
  /// metric's sketch, keyed by name so a drifted metric set is detected).
  bool save_state(std::string& out) const override {
    out.append("SKS1");
    sketch_detail::put_u64(out, cells_seen_);
    sketch_detail::put_u64(out, metrics_.size());
    for (const Metric& m : metrics_) {
      sketch_detail::put_u64(out, m.name.size());
      out.append(m.name);
      m.sketch.save_binary(out);
    }
    return true;
  }

  bool restore_state(std::string_view state) override {
    sketch_detail::StateReader in{state};
    if (in.view(4) != "SKS1") return false;
    const std::uint64_t cells = in.u64();
    if (in.u64() != metrics_.size()) return false;
    for (Metric& m : metrics_) {
      const std::uint64_t name_len = in.u64();
      if (in.view(static_cast<std::size_t>(name_len)) != m.name) return false;
      if (!m.sketch.load_binary(in)) return false;
    }
    if (!in.ok || in.pos != state.size()) return false;
    cells_seen_ = static_cast<std::size_t>(cells);
    return true;
  }

 private:
  struct Metric {
    std::string name;
    Extractor extract;
    MetricSketch sketch;
  };
  std::vector<Metric> metrics_;
  std::size_t cells_seen_ = 0;
};

/// Delivers every sink event to two sinks (first, then second) so one
/// campaign pass can materialise a matrix *and* fold sketches. The outcome
/// is copied for the first sink and moved into the second.
template <typename R>
class TeeSink final : public ResultSink<R> {
 public:
  TeeSink(ResultSink<R>& first, ResultSink<R>& second)
      : first_{first}, second_{second} {}

  void begin(std::size_t cells_total) override {
    first_.begin(cells_total);
    second_.begin(cells_total);
  }

  void cell(const ScenarioSpec& spec, R outcome) override {
    first_.cell(spec, outcome);
    second_.cell(spec, std::move(outcome));
  }

  void cell_failed(const ScenarioSpec& spec,
                   const FailureReport& report) override {
    first_.cell_failed(spec, report);
    second_.cell_failed(spec, report);
  }

  /// Snapshots both branches (length-prefixed); available only when both
  /// sinks have snapshot support.
  bool save_state(std::string& out) const override {
    std::string a, b;
    if (!first_.save_state(a) || !second_.save_state(b)) return false;
    sketch_detail::put_u64(out, a.size());
    out.append(a);
    sketch_detail::put_u64(out, b.size());
    out.append(b);
    return true;
  }

  bool restore_state(std::string_view state) override {
    sketch_detail::StateReader in{state};
    const std::string_view a = in.view(static_cast<std::size_t>(in.u64()));
    if (!in.ok || !first_.restore_state(a)) return false;
    const std::string_view b = in.view(static_cast<std::size_t>(in.u64()));
    return in.ok && in.pos == state.size() && second_.restore_state(b);
  }

  void end() override {
    first_.end();
    second_.end();
  }

 private:
  ResultSink<R>& first_;
  ResultSink<R>& second_;
};

}  // namespace lazyeye::campaign
