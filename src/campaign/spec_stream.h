// SpecStream: lazily-generated scenario matrices.
//
// A million-cell sweep does not need a million materialised ScenarioSpecs
// sitting in a vector before the first cell runs — every layer's spec
// generator is a pure function of the cell index (seed arithmetic + label
// formatting), so a campaign can carry just (count, index -> spec) and let
// each worker build the specs it claims on demand. The memory high-water of
// a streaming campaign then tracks the reorder window, not the matrix size.
//
// The generator MUST be pure and thread-safe: workers call at(i) from
// several threads, in claim order, and the reorder path may never re-derive
// a spec it already generated differently. All layer stream factories
// (testbed::LocalTestbed::cad_sweep_stream, webtool::WebTool::
// campaign_spec_stream, resolverlab::cell_spec_stream, ...) satisfy this by
// computing seeds from the index alone.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "campaign/scenario.h"

namespace lazyeye::campaign {

class SpecStream {
 public:
  using Generator = std::function<ScenarioSpec(std::size_t)>;

  SpecStream(std::size_t count, Generator generate)
      : count_{count}, generate_{std::move(generate)} {}

  /// Non-owning adapter over a materialised matrix (`specs` must outlive
  /// the stream). Lets the vector-based entry points share the streaming
  /// core without copying the matrix.
  static SpecStream view(const std::vector<ScenarioSpec>& specs) {
    SpecStream stream{specs.size(),
                      [&specs](std::size_t i) { return specs[i]; }};
    stream.backing_ = &specs;
    return stream;
  }

  /// Owning adapter: moves the matrix into the stream.
  static SpecStream of(std::vector<ScenarioSpec> specs) {
    auto owned = std::make_shared<const std::vector<ScenarioSpec>>(
        std::move(specs));
    SpecStream stream{owned->size(),
                      [owned](std::size_t i) { return (*owned)[i]; }};
    stream.backing_ = owned.get();
    return stream;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Generates cell i (thread-safe; see the purity contract above).
  ScenarioSpec at(std::size_t i) const { return generate_(i); }

  /// Non-null when the stream adapts a materialised matrix (view()/of()):
  /// consumers may then read cells by reference instead of generating
  /// copies. Lives exactly as long as at() stays valid.
  const std::vector<ScenarioSpec>* backing() const { return backing_; }

 private:
  std::size_t count_;
  Generator generate_;
  const std::vector<ScenarioSpec>* backing_ = nullptr;
};

}  // namespace lazyeye::campaign
