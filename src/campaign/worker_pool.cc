#include "campaign/worker_pool.h"

#include <algorithm>

namespace lazyeye::campaign {

namespace {

// Pools the current thread is (transitively) executing a job body for.
// run_job uses it to detect re-entry — a campaign launched from inside
// another campaign's executor/sink/hook that leads back to a pool already
// mid-job — and falls back to transient threads instead of self-deadlocking
// on that pool's job_mutex_. The set is propagated from the launching
// thread into every thread that runs the job's body, so the detection
// survives pool hops (campaign on A -> executor campaigns on B -> B's
// worker campaigns back on A).
thread_local std::vector<const WorkerPool*> t_running_pools;

bool running_inside(const WorkerPool* pool) {
  return std::find(t_running_pools.begin(), t_running_pools.end(), pool) !=
         t_running_pools.end();
}

// Installs `pools` as the thread's running-pool set for the body's scope.
class ScopedRunningPools {
 public:
  explicit ScopedRunningPools(std::vector<const WorkerPool*> pools)
      : prev_{std::move(t_running_pools)} {
    t_running_pools = std::move(pools);
  }
  ~ScopedRunningPools() { t_running_pools = std::move(prev_); }

 private:
  std::vector<const WorkerPool*> prev_;
};

}  // namespace

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  // Swap the thread table out under the lock (it is GUARDED_BY state_mutex_
  // and join must not hold it — workers re-acquire it on their way out).
  std::vector<std::thread> threads;
  {
    util::MutexLock lock{state_mutex_};
    stopping_ = true;
    threads.swap(threads_);
  }
  work_cv_.notify_all();
  for (std::thread& t : threads) t.join();
}

int WorkerPool::threads_started() const {
  util::MutexLock lock{state_mutex_};
  return static_cast<int>(threads_.size());
}

std::uint64_t WorkerPool::jobs_run() const {
  util::MutexLock lock{state_mutex_};
  return jobs_run_;
}

void WorkerPool::ensure_threads(int wanted) {
  while (static_cast<int>(threads_.size()) < wanted) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

void WorkerPool::run_job(int helpers, const std::function<void()>& body) {
  if (running_inside(this)) {
    // Nested campaign launched from inside one of this pool's own job
    // bodies: job_mutex_ is held (transitively) by the outer campaign, so
    // queueing would self-deadlock. Run the inner campaign on transient
    // threads instead — the pre-pool behaviour, paid only on recursion.
    {
      util::MutexLock lock{state_mutex_};
      ++jobs_run_;
    }
    std::vector<std::thread> transient;
    transient.reserve(helpers > 0 ? static_cast<std::size_t>(helpers) : 0);
    const std::vector<const WorkerPool*> inherited = t_running_pools;
    for (int i = 0; i < helpers; ++i) {
      transient.emplace_back([&body, inherited] {
        ScopedRunningPools scope{inherited};  // deeper nesting detected too
        body();
      });
    }
    body();  // the caller's set already contains this pool
    for (std::thread& t : transient) t.join();
    return;
  }
  // One campaign at a time per pool: a concurrent second campaign parks
  // here instead of interleaving with the first one's claim cursor.
  util::MutexLock job_lock{job_mutex_};
  std::vector<const WorkerPool*> job_pools = t_running_pools;
  job_pools.push_back(this);
  if (helpers <= 0) {
    {
      util::MutexLock lock{state_mutex_};
      ++jobs_run_;
    }
    ScopedRunningPools scope{std::move(job_pools)};
    body();
    return;
  }
  {
    util::MutexLock lock{state_mutex_};
    ensure_threads(helpers);
    body_ = &body;
    job_pools_ = &job_pools;  // outlives the job: run_job waits for active_==0
    open_slots_ = helpers;
    active_ = helpers;
    ++job_seq_;
    ++jobs_run_;
  }
  work_cv_.notify_all();
  {
    ScopedRunningPools scope{job_pools};
    body();  // the calling thread is participant 0
  }
  util::MutexLock lock{state_mutex_};
  while (active_ != 0) done_cv_.wait(state_mutex_);
  body_ = nullptr;
  job_pools_ = nullptr;
}

void WorkerPool::worker_main() {
  std::uint64_t seen_job = 0;
  state_mutex_.lock();
  for (;;) {
    while (!stopping_ && (job_seq_ == seen_job || open_slots_ <= 0)) {
      work_cv_.wait(state_mutex_);
    }
    if (stopping_) {
      state_mutex_.unlock();
      return;
    }
    // Claim one participant slot of the current campaign. Which threads end
    // up participating is irrelevant: results only depend on cell seeds.
    seen_job = job_seq_;
    --open_slots_;
    const std::function<void()>* body = body_;
    std::vector<const WorkerPool*> pools = *job_pools_;  // copied under lock
    state_mutex_.unlock();
    {
      ScopedRunningPools scope{std::move(pools)};
      (*body)();
    }
    state_mutex_.lock();
    if (--active_ == 0) done_cv_.notify_all();
  }
}

}  // namespace lazyeye::campaign
