// WorkerPool: persistent, lazily-started campaign worker threads.
//
// Every CampaignRunner::run / run_streaming used to spawn fresh
// std::threads and join them at the end — cheap for one big matrix, but a
// real tax on workloads that run many campaigns back to back (mixed
// testbed + webtool + resolverlab batches, bench sweeps at several worker
// counts, repeated CI grids). A WorkerPool keeps its threads parked on a
// condition variable between campaigns, so the second and every later
// campaign pays a wake-up instead of thread creation.
//
// Threads are started lazily: the pool spawns only when a campaign actually
// asks for helpers, and only as many as the widest campaign so far needed.
// One process-wide pool (WorkerPool::shared()) is the default for every
// runner, so testbed, webtool, and resolverlab campaigns all amortise the
// same threads; runners can be pointed at a private pool via RunnerOptions.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace lazyeye::campaign {

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// The process-wide pool every CampaignRunner uses unless its options
  /// name another one. Lives (parked) until process exit.
  static WorkerPool& shared();

  /// Runs `body` concurrently on `helpers` pool threads plus the calling
  /// thread, and returns when every participant finished. The pool grows on
  /// demand to `helpers` threads and keeps them for later campaigns.
  /// `body` must not throw (campaign workers trap their own exceptions).
  /// Campaigns are serialised: a second concurrent campaign on the same
  /// pool waits for the first to finish — determinism never depends on it.
  /// Re-entrant: a campaign launched from inside one of this pool's job
  /// bodies (an executor/sink/hook that itself runs a campaign) executes on
  /// transient threads instead of deadlocking on the serialisation lock.
  void run_job(int helpers, const std::function<void()>& body);

  /// Threads this pool has ever started (they persist until destruction).
  int threads_started() const;

  /// Campaigns served so far (observability for benches / examples).
  std::uint64_t jobs_run() const;

 private:
  void worker_main();
  void ensure_threads(int wanted) REQUIRES(state_mutex_);

  mutable util::Mutex state_mutex_;
  util::CondVar work_cv_;  // parked workers wait here
  util::CondVar done_cv_;  // the campaign thread waits here
  std::vector<std::thread> threads_ GUARDED_BY(state_mutex_);
  const std::function<void()>* body_ GUARDED_BY(state_mutex_) = nullptr;
  /// Running-pool set of the current job's launching thread (plus this
  /// pool); installed on every worker for the body's duration so nested
  /// campaigns are detected across pool hops (see worker_pool.cc).
  const std::vector<const WorkerPool*>* job_pools_ GUARDED_BY(state_mutex_) =
      nullptr;
  /// Bumped per campaign; workers track it.
  std::uint64_t job_seq_ GUARDED_BY(state_mutex_) = 0;
  /// Participants this campaign still wants.
  int open_slots_ GUARDED_BY(state_mutex_) = 0;
  /// Participants currently inside body.
  int active_ GUARDED_BY(state_mutex_) = 0;
  std::uint64_t jobs_run_ GUARDED_BY(state_mutex_) = 0;
  bool stopping_ GUARDED_BY(state_mutex_) = false;

  /// Serialises whole campaigns on this pool; always acquired before
  /// state_mutex_ when both are taken.
  util::Mutex job_mutex_ ACQUIRED_BEFORE(state_mutex_);
};

}  // namespace lazyeye::campaign
