#include "capture/analysis.h"

#include <utility>

#include "dns/message_pool.h"

namespace lazyeye::capture {

using simnet::Family;
using simnet::Protocol;

std::optional<SimTime> first_syn_time(const PacketCapture& capture,
                                      Family family) {
  for (const auto& cp : capture.packets()) {
    if (cp.egress() && cp.packet.is_syn() && cp.packet.family() == family) {
      return cp.time;
    }
  }
  return std::nullopt;
}

std::optional<SimTime> infer_cad(const PacketCapture& capture) {
  const auto v6 = first_syn_time(capture, Family::kIpv6);
  const auto v4 = first_syn_time(capture, Family::kIpv4);
  if (!v6 || !v4) return std::nullopt;
  return *v4 - *v6;
}

std::optional<Family> established_family(const PacketCapture& capture) {
  for (const auto& cp : capture.packets()) {
    if (!cp.egress() && cp.packet.is_syn_ack()) {
      return cp.packet.family();
    }
  }
  return std::nullopt;
}

std::optional<SimTime> first_established_time(const PacketCapture& capture) {
  for (const auto& cp : capture.packets()) {
    if (!cp.egress() && cp.packet.is_syn_ack()) {
      return cp.time;
    }
  }
  return std::nullopt;
}

std::vector<ConnectionAttempt> connection_attempts(
    const PacketCapture& capture) {
  std::vector<ConnectionAttempt> attempts;
  auto find = [&](const simnet::Endpoint& local,
                  const simnet::Endpoint& remote) -> ConnectionAttempt* {
    for (auto& a : attempts) {
      if (a.local == local && a.remote == remote) return &a;
    }
    return nullptr;
  };

  for (const auto& cp : capture.packets()) {
    if (cp.packet.proto != Protocol::kTcp) continue;
    if (cp.egress() && cp.packet.is_syn()) {
      if (ConnectionAttempt* existing = find(cp.packet.src, cp.packet.dst)) {
        ++existing->syn_count;
        existing->last_syn = cp.time;
        continue;
      }
      ConnectionAttempt attempt;
      attempt.first_syn = cp.time;
      attempt.last_syn = cp.time;
      attempt.local = cp.packet.src;
      attempt.remote = cp.packet.dst;
      attempt.syn_count = 1;
      attempts.push_back(attempt);
      continue;
    }
    if (!cp.egress() && (cp.packet.is_syn_ack() || cp.packet.is_rst())) {
      // Ingress packets have mirrored endpoints.
      if (ConnectionAttempt* existing = find(cp.packet.dst, cp.packet.src)) {
        if (cp.packet.is_syn_ack()) existing->established = true;
        if (cp.packet.is_rst()) existing->refused = true;
      }
    }
  }
  return attempts;
}

int distinct_destinations(const std::vector<ConnectionAttempt>& attempts,
                          Family family) {
  std::vector<simnet::IpAddress> seen;
  for (const auto& a : attempts) {
    if (a.family() != family) continue;
    bool found = false;
    for (const auto& addr : seen) {
      if (addr == a.remote.addr) {
        found = true;
        break;
      }
    }
    if (!found) seen.push_back(a.remote.addr);
  }
  return static_cast<int>(seen.size());
}

std::vector<DnsExchange> dns_exchanges(const PacketCapture& capture) {
  std::vector<DnsExchange> exchanges;
  // Key: (transaction id, qtype as int) -> index into exchanges. A capture
  // holds a handful of exchanges, so a linear-scanned flat vector beats a
  // node-per-entry map.
  struct OpenQuery {
    std::pair<std::uint16_t, std::uint16_t> key;
    std::size_t index;
  };
  std::vector<OpenQuery> open;
  const auto find_open =
      [&](const std::pair<std::uint16_t, std::uint16_t>& k) -> OpenQuery* {
    for (OpenQuery& o : open) {
      if (o.key == k) return &o;
    }
    return nullptr;
  };
  // One pooled scratch message reused across packets (and across captures,
  // via the thread-local MessagePool): decode_into recycles the section
  // vectors, so parsing N packets costs far fewer than N decodes' worth of
  // allocations.
  dns::PooledMessage pooled;
  dns::DnsMessage& msg = *pooled;

  for (const auto& cp : capture.packets()) {
    if (cp.packet.proto != Protocol::kUdp) continue;
    const bool to_dns = cp.egress() && cp.packet.dst.port == 53;
    const bool from_dns = !cp.egress() && cp.packet.src.port == 53;
    if (!to_dns && !from_dns) continue;
    if (!dns::DnsMessage::decode_into(cp.packet.payload.span(), msg)) continue;
    if (msg.questions.empty()) continue;
    const auto key = std::make_pair(
        msg.header.id,
        static_cast<std::uint16_t>(msg.questions.front().type));

    if (to_dns && !msg.header.qr) {
      DnsExchange ex;
      ex.query_time = cp.time;
      ex.qtype = msg.questions.front().type;
      ex.qname = msg.questions.front().name;
      ex.transport_family = cp.packet.family();
      // Re-queries with the same (id, qtype) repoint the entry at the
      // latest exchange (the old map's operator[] overwrite semantics).
      if (OpenQuery* existing = find_open(key)) {
        existing->index = exchanges.size();
      } else {
        open.push_back(OpenQuery{key, exchanges.size()});
      }
      exchanges.push_back(std::move(ex));
    } else if (from_dns && msg.header.qr) {
      const OpenQuery* it = find_open(key);
      if (it == nullptr) continue;
      DnsExchange& ex = exchanges[it->index];
      if (!ex.response_time) {
        ex.response_time = cp.time;
        ex.answer_count = msg.answers.size();
      }
    }
  }
  return exchanges;
}

std::optional<SimTime> first_response_time(
    const std::vector<DnsExchange>& exchanges, dns::RrType qtype) {
  for (const auto& ex : exchanges) {
    if (ex.qtype == qtype && ex.response_time) return ex.response_time;
  }
  return std::nullopt;
}

std::optional<SimTime> first_response_time(const PacketCapture& capture,
                                           dns::RrType qtype) {
  return first_response_time(dns_exchanges(capture), qtype);
}

std::optional<SimTime> a_response_to_v6_syn_gap(
    const PacketCapture& capture,
    const std::vector<DnsExchange>& exchanges) {
  const auto a_time = first_response_time(exchanges, dns::RrType::kA);
  const auto v6_syn = first_syn_time(capture, Family::kIpv6);
  if (!a_time || !v6_syn) return std::nullopt;
  if (*v6_syn < *a_time) return std::nullopt;  // v6 SYN did not wait for A
  return *v6_syn - *a_time;
}

std::optional<SimTime> a_response_to_v6_syn_gap(const PacketCapture& capture) {
  return a_response_to_v6_syn_gap(capture, dns_exchanges(capture));
}

std::optional<SimTime> infer_resolution_delay(
    const PacketCapture& capture,
    const std::vector<DnsExchange>& exchanges) {
  const auto a_time = first_response_time(exchanges, dns::RrType::kA);
  const auto aaaa_time = first_response_time(exchanges, dns::RrType::kAaaa);
  const auto v4_syn = first_syn_time(capture, Family::kIpv4);
  if (!a_time || !v4_syn) return std::nullopt;
  // Only meaningful when the v4 connection started before the AAAA answer
  // (i.e. the client gave up waiting for AAAA).
  if (aaaa_time && *aaaa_time <= *v4_syn) return std::nullopt;
  if (*v4_syn < *a_time) return std::nullopt;
  return *v4_syn - *a_time;
}

std::optional<SimTime> infer_resolution_delay(const PacketCapture& capture) {
  return infer_resolution_delay(capture, dns_exchanges(capture));
}

}  // namespace lazyeye::capture
