// Capture analysis: the inference rules the paper applies to client packet
// captures (§4.3):
//   * CAD  = time between the first IPv6 TCP SYN and the first IPv4 TCP SYN
//   * established family = family of the handshake that completed
//   * connection attempt sequence = egress SYNs in order (Figure 5)
//   * DNS timings (per record type) for Resolution Delay inference
#pragma once

#include <optional>
#include <vector>

#include "capture/capture.h"
#include "dns/message.h"

namespace lazyeye::capture {

/// One connection attempt (unique client port + destination).
struct ConnectionAttempt {
  SimTime first_syn{0};
  SimTime last_syn{0};  // latest egress SYN (== first_syn without retransmits)
  simnet::Endpoint local;
  simnet::Endpoint remote;
  int syn_count = 0;
  bool established = false;  // a SYN-ACK for this attempt arrived
  bool refused = false;      // an RST for this attempt arrived

  simnet::Family family() const { return remote.addr.family(); }
};

/// A DNS query/response pair seen on the wire (client side).
struct DnsExchange {
  SimTime query_time{0};
  std::optional<SimTime> response_time;
  dns::RrType qtype = dns::RrType::kA;
  dns::DnsName qname;
  simnet::Family transport_family = simnet::Family::kIpv4;
  std::size_t answer_count = 0;

  std::optional<SimTime> latency() const {
    if (!response_time) return std::nullopt;
    return *response_time - query_time;
  }
};

/// Timestamp of the first egress TCP SYN of `family`, if any.
std::optional<SimTime> first_syn_time(const PacketCapture& capture,
                                      simnet::Family family);

/// Paper CAD inference: t(first IPv4 SYN) - t(first IPv6 SYN).
/// nullopt when either family never attempted. Negative values indicate an
/// IPv4-first client.
std::optional<SimTime> infer_cad(const PacketCapture& capture);

/// Family of the first completed handshake (ingress SYN-ACK answered by this
/// host's ACK is approximated by: first ingress SYN-ACK).
std::optional<simnet::Family> established_family(const PacketCapture& capture);

/// Timestamp of the first ingress SYN-ACK — the client-side establishment
/// instant established_family() keys on. Used by the conformance rules to
/// bound "pre-establishment" attempt evidence.
std::optional<SimTime> first_established_time(const PacketCapture& capture);

/// Response time of the first answered DNS exchange of `qtype`.
std::optional<SimTime> first_response_time(const PacketCapture& capture,
                                           dns::RrType qtype);

/// Same, over a precomputed exchange list (see dns_exchanges). Analysis
/// passes that need several DNS-derived metrics decode the capture once and
/// reuse the list instead of re-parsing every packet per metric.
std::optional<SimTime> first_response_time(
    const std::vector<DnsExchange>& exchanges, dns::RrType qtype);

/// All egress connection attempts in start order (deduplicated by 4-tuple,
/// counting SYN retransmissions).
std::vector<ConnectionAttempt> connection_attempts(
    const PacketCapture& capture);

/// Distinct destination addresses attempted, per family.
int distinct_destinations(const std::vector<ConnectionAttempt>& attempts,
                          simnet::Family family);

/// Client-side DNS exchanges (queries on port 53 matched to responses by
/// transaction id + qtype).
std::vector<DnsExchange> dns_exchanges(const PacketCapture& capture);

/// Time between receiving the A response and sending the first IPv6 SYN —
/// non-null only when the A answer arrived before any v6 SYN. Used to detect
/// the "waits for A before connecting via IPv6" deviation (§5.2).
std::optional<SimTime> a_response_to_v6_syn_gap(const PacketCapture& capture);
std::optional<SimTime> a_response_to_v6_syn_gap(
    const PacketCapture& capture,
    const std::vector<DnsExchange>& exchanges);

/// Resolution Delay inference: gap between the A response arrival and the
/// first IPv4 SYN when the AAAA answer never arrived before it.
std::optional<SimTime> infer_resolution_delay(const PacketCapture& capture);
std::optional<SimTime> infer_resolution_delay(
    const PacketCapture& capture,
    const std::vector<DnsExchange>& exchanges);

}  // namespace lazyeye::capture
