#include "capture/capture.h"

#include "simnet/network.h"

namespace lazyeye::capture {

PacketCapture::PacketCapture(simnet::Host& host) : host_{host} {
  tap_id_ = host_.add_tap(
      [this](const simnet::Packet& packet, simnet::TapDirection dir) {
        if (!running_) return;
        packets_.push_back(
            CapturedPacket{host_.network().loop().now(), dir, packet});
      });
}

PacketCapture::~PacketCapture() { host_.remove_tap(tap_id_); }

std::vector<CapturedPacket> PacketCapture::filter(
    const std::function<bool(const CapturedPacket&)>& pred) const {
  std::vector<CapturedPacket> out;
  for (const auto& p : packets_) {
    if (pred(p)) out.push_back(p);
  }
  return out;
}

}  // namespace lazyeye::capture
