#include "capture/capture.h"

#include "simnet/network.h"

namespace lazyeye::capture {

PacketCapture::PacketCapture(simnet::Host& host)
    : host_{host}, packets_{host.network().memory()} {
  tap_id_ = host_.add_tap(
      [this](const simnet::Packet& packet, simnet::TapDirection dir) {
        if (!running_) return;
        // Field-by-field copy with a pooled payload block: a plain Packet
        // copy would deep-copy into an unpooled Buffer, costing one heap
        // allocation per captured packet with a >SBO payload.
        simnet::Packet copy;
        copy.id = packet.id;
        copy.proto = packet.proto;
        copy.src = packet.src;
        copy.dst = packet.dst;
        copy.tcp = packet.tcp;
        copy.payload = simnet::Buffer{&host_.network().buffer_pool()};
        copy.payload.append(packet.payload.span());
        packets_.push_back(CapturedPacket{host_.network().loop().now(), dir,
                                          std::move(copy)});
      });
}

PacketCapture::~PacketCapture() { host_.remove_tap(tap_id_); }

std::vector<CapturedPacket> PacketCapture::filter(
    const std::function<bool(const CapturedPacket&)>& pred) const {
  std::vector<CapturedPacket> out;
  for (const auto& p : packets_) {
    if (pred(p)) out.push_back(p);
  }
  return out;
}

}  // namespace lazyeye::capture
