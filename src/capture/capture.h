// Packet capture: a host tap that records every packet with its virtual
// timestamp (the simulated equivalent of tcpdump on the client node,
// paper §4.3 (i)).
//
// Recorded payload bytes are copied into blocks borrowed from the owning
// Network's BufferPool, and the packet list grows from the Network's memory
// resource — in an arena-backed cell world the whole capture costs nothing
// on the global heap once the lease is warm. Copies handed out (filter())
// are deep and unpooled, so they may outlive the world.
#pragma once

#include <functional>
#include <memory_resource>
#include <span>
#include <vector>

#include "simnet/host.h"

namespace lazyeye::capture {

struct CapturedPacket {
  SimTime time{0};
  simnet::TapDirection direction = simnet::TapDirection::kEgress;
  simnet::Packet packet;

  bool egress() const { return direction == simnet::TapDirection::kEgress; }
};

class PacketCapture {
 public:
  /// Attaches to the host and starts capturing immediately.
  explicit PacketCapture(simnet::Host& host);
  ~PacketCapture();

  PacketCapture(const PacketCapture&) = delete;
  PacketCapture& operator=(const PacketCapture&) = delete;

  void start() { running_ = true; }
  void stop() { running_ = false; }
  void clear() { packets_.clear(); }

  std::span<const CapturedPacket> packets() const { return packets_; }
  std::size_t size() const { return packets_.size(); }

  /// Returns packets matching a predicate (deep, unpooled copies).
  std::vector<CapturedPacket> filter(
      const std::function<bool(const CapturedPacket&)>& pred) const;

 private:
  simnet::Host& host_;
  int tap_id_ = 0;
  bool running_ = true;
  std::pmr::vector<CapturedPacket> packets_;
};

}  // namespace lazyeye::capture
