#include "clients/client.h"

#include <cmath>

namespace lazyeye::clients {

using transport::TransportProtocol;

namespace {

dns::StubOptions apply_profile(dns::StubOptions resolver,
                               const ClientProfile& profile) {
  resolver.timeout = profile.dns_timeout;
  resolver.attempts_per_server = profile.dns_attempts;
  return resolver;
}

}  // namespace

SimulatedClient::SimulatedClient(simnet::Host& host, ClientProfile profile,
                                 dns::StubOptions resolver, std::uint64_t seed)
    : host_{host},
      profile_{std::move(profile)},
      rng_{seed},
      tcp_{host},
      quic_{host},
      stub_{host, apply_profile(std::move(resolver), profile_)},
      engine_{host, stub_, tcp_, &quic_},
      pending_{host.network().memory()} {
  engine_.set_options(profile_.options);

  // Route response data back to the owning fetch.
  tcp_.set_data_handler(
      [this](std::uint64_t conn_id, std::span<const std::uint8_t> data) {
        const auto it = pending_.find(conn_id);
        if (it == pending_.end()) return;
        PendingFetch fetch = std::move(it->second);
        host_.network().loop().cancel(fetch.response_timer);
        pending_.erase(it);
        FetchResult result;
        result.connection = std::move(fetch.connection);
        result.response_received = true;
        result.response.assign(data.begin(), data.end());
        fetch.handler(std::move(result));
      });
  quic_.set_data_handler(
      [this](std::uint64_t conn_id, std::span<const std::uint8_t> data) {
        // QUIC connection ids share the key space via offset (see fetch()).
        const auto it = pending_.find(conn_id | (1ULL << 63));
        if (it == pending_.end()) return;
        PendingFetch fetch = std::move(it->second);
        host_.network().loop().cancel(fetch.response_timer);
        pending_.erase(it);
        FetchResult result;
        result.connection = std::move(fetch.connection);
        result.response_received = true;
        result.response.assign(data.begin(), data.end());
        fetch.handler(std::move(result));
      });
}

void SimulatedClient::reset_state() {
  engine_.cache().clear();
  engine_.set_smoothed_rtt(std::nullopt);
}

void SimulatedClient::configure_session_options() {
  he::HeOptions options = profile_.options;
  if (profile_.cad_outlier_prob > 0.0 &&
      rng_.chance(profile_.cad_outlier_prob)) {
    options.connection_attempt_delay += profile_.cad_outlier_extra;
  }
  if (profile_.dynamic_cad_in_web && web_conditions_) {
    // Safari's dynamic CAD in the wild is driven by opaque internal history
    // the paper could not pin to any external condition (§5.1: "Neither the
    // network context, nor the focus of the application window, nor the
    // power supply had any noticeable impact"). Model that hidden state as
    // a log-uniform smoothed-RTT sample per session; with the profile's
    // multiplier/caps the effective CAD spans the observed 50 ms .. 5 s.
    const double log_min = std::log(5.0);    // 5 ms
    const double log_max = std::log(500.0);  // 500 ms
    const double sample_ms =
        std::exp(log_min + (log_max - log_min) * rng_.next_double());
    engine_.set_smoothed_rtt(lazyeye::ms_f(sample_ms));
  }
  // In lab conditions the dynamic CAD stays configured, but reset_state()
  // cleared the history, so the no-history default (Safari: 2 s) applies.
  engine_.set_options(std::move(options));
}

void SimulatedClient::fetch(const dns::DnsName& hostname, std::uint16_t port,
                            FetchHandler handler) {
  configure_session_options();
  engine_.connect(
      hostname, port,
      [this, handler = std::move(handler)](he::HeResult result) {
        if (!result.ok) {
          FetchResult out;
          out.connection = std::move(result);
          handler(std::move(out));
          return;
        }
        // Issue the request over the winning transport; the response comes
        // back through the stack's data handler.
        const std::string request = "GET /";
        const auto proto = result.proto;
        const std::uint64_t conn_id = result.connection_id;
        const std::uint64_t key = proto == TransportProtocol::kQuic
                                      ? (conn_id | (1ULL << 63))
                                      : conn_id;
        PendingFetch fetch;
        fetch.handler = handler;
        fetch.connection = std::move(result);
        fetch.response_timer = host_.network().loop().schedule_after(
            lazyeye::sec(10), [this, key] {
              const auto it = pending_.find(key);
              if (it == pending_.end()) return;
              PendingFetch timed_out = std::move(it->second);
              pending_.erase(it);
              FetchResult out;
              out.connection = std::move(timed_out.connection);
              out.response_received = false;
              timed_out.handler(std::move(out));
            });
        pending_.emplace(key, std::move(fetch));

        std::vector<std::uint8_t> payload{request.begin(), request.end()};
        if (proto == TransportProtocol::kQuic) {
          quic_.send_data(conn_id, std::move(payload));
        } else {
          tcp_.send_data(conn_id, std::move(payload));
        }
      });
}

}  // namespace lazyeye::clients
