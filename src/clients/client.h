// SimulatedClient: binds a ClientProfile to a simulated host — owns the
// transport stacks, stub resolver and HE engine, and performs black-box
// "fetches" (connect + one request/response round trip), which is what the
// testbed and the web tool drive.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <memory_resource>

#include "clients/profiles.h"
#include "dns/stub_resolver.h"
#include "he/engine.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace lazyeye::clients {

struct FetchResult {
  he::HeResult connection;
  bool response_received = false;
  std::vector<std::uint8_t> response;  // e.g. the web tool's source-addr echo

  std::string response_text() const {
    return std::string{response.begin(), response.end()};
  }
};

class SimulatedClient {
 public:
  // By value so completed fetches move the result (trace included) to the
  // caller; handlers taking `const FetchResult&` still bind unchanged.
  using FetchHandler = std::function<void(FetchResult)>;

  /// `resolver` configures where the client's stub resolver points.
  SimulatedClient(simnet::Host& host, ClientProfile profile,
                  dns::StubOptions resolver, std::uint64_t seed = 1);

  const ClientProfile& profile() const { return profile_; }
  he::HappyEyeballsEngine& engine() { return engine_; }
  transport::TcpStack& tcp() { return tcp_; }

  /// Emulates real-world ("web") conditions: Safari's dynamic CAD engages
  /// via RTT history instead of the 2 s lab default.
  void set_web_conditions(bool web) { web_conditions_ = web; }

  /// Container-style reset between test runs (§4.3: fresh client state):
  /// clears the HE outcome cache and RTT history.
  void reset_state();

  /// Full fetch: Happy Eyeballs connect, then one request and one response
  /// over the winning transport. The handler runs once.
  void fetch(const dns::DnsName& hostname, std::uint16_t port,
             FetchHandler handler);

 private:
  void configure_session_options();

  simnet::Host& host_;
  ClientProfile profile_;
  Rng rng_;
  // Direct members (declaration order = construction order the engine
  // needs); an arena-created client carries them inline, so building one
  // costs no separate heap blocks.
  transport::TcpStack tcp_;
  transport::QuicStack quic_;
  dns::StubResolver stub_;
  he::HappyEyeballsEngine engine_;
  bool web_conditions_ = false;

  struct PendingFetch {
    FetchHandler handler;
    he::HeResult connection;
    simnet::TimerId response_timer;
  };
  // by connection id+proto key; nodes from the world's arena
  std::pmr::map<std::uint64_t, PendingFetch> pending_;
  std::uint64_t next_fetch_key_ = 1;
};

}  // namespace lazyeye::clients
