#include "clients/profiles.h"

namespace lazyeye::clients {

const char* client_kind_name(ClientKind kind) {
  switch (kind) {
    case ClientKind::kBrowser: return "browser";
    case ClientKind::kMobileBrowser: return "mobile browser";
    case ClientKind::kCliTool: return "cli tool";
    case ClientKind::kProxyEgress: return "proxy egress";
  }
  return "?";
}

std::string ClientProfile::figure_label() const {
  if (release.empty()) return name + " (" + version + ")";
  return name + " (" + version + " " + release + ")";
}

ClientProfile chromium_profile(const std::string& name,
                               const std::string& version,
                               const std::string& release, bool hev3_flag) {
  ClientProfile p;
  p.name = name;
  p.version = version;
  p.release = release;
  p.kind = ClientKind::kBrowser;

  he::HeOptions o;
  o.version = hev3_flag ? he::HeVersion::kV3 : he::HeVersion::kV1;
  // Chromium's TransportConnectJob uses a 300 ms fallback delay [paper §5.1,
  // chromium net/socket/transport_connect_job.h].
  o.connection_attempt_delay = lazyeye::ms(300);
  o.query_aaaa_first = true;  // own stub resolver, AAAA first
  if (hev3_flag) {
    // The EnableHappyEyeballsV3 feature flag adds a Resolution Delay and
    // removes the wait-for-A behaviour (§5.2).
    o.resolution_delay = lazyeye::ms(50);
    o.wait_for_a_record = false;
    o.fail_on_a_timeout = false;
  } else {
    o.resolution_delay = std::nullopt;  // no own DNS timeout
    o.wait_for_a_record = true;         // waits for the A answer (§5.2)
    o.fail_on_a_timeout = true;         // complete failures on slow A (§5.2)
  }
  // Table 2: one address per family used, no visible address selection.
  o.max_addresses_per_family = 1;
  o.interlace = he::InterlaceMode::kNone;
  o.prefer_ipv6 = true;
  p.options = o;
  return p;
}

ClientProfile firefox_profile(const std::string& version,
                              const std::string& release) {
  ClientProfile p;
  p.name = "Firefox";
  p.version = version;
  p.release = release;
  p.kind = ClientKind::kBrowser;

  he::HeOptions o;
  o.version = he::HeVersion::kV1;
  // Firefox follows the RFC recommendation of 250 ms (§5.1).
  o.connection_attempt_delay = lazyeye::ms(250);
  o.resolution_delay = std::nullopt;
  o.wait_for_a_record = true;
  o.fail_on_a_timeout = true;  // same complete-failure behaviour as Chrome
  o.max_addresses_per_family = 1;
  o.interlace = he::InterlaceMode::kNone;
  p.options = o;

  // "Only Firefox has a few outliers ... waits longer than 250 ms" (§5.1).
  p.cad_outlier_prob = 0.05;
  p.cad_outlier_extra = lazyeye::ms(40);
  return p;
}

ClientProfile safari_profile(const std::string& version) {
  ClientProfile p;
  p.name = "Safari";
  p.version = version;
  p.kind = ClientKind::kBrowser;

  he::HeOptions o;
  o.version = he::HeVersion::kV2;  // only client implementing HEv2 (Table 2)
  o.query_aaaa_first = true;
  o.resolution_delay = lazyeye::ms(50);  // RFC recommendation (§5.2)
  o.wait_for_a_record = false;
  // Dynamic CAD: 2 s without history (local testbed), RTT-driven on the web
  // where observed values ranged from 50 ms up to 5 s (§5.1).
  o.dynamic_cad.enabled = true;
  o.dynamic_cad.no_history_default = lazyeye::sec(2);
  o.dynamic_cad.minimum = lazyeye::ms(50);
  o.dynamic_cad.maximum = lazyeye::sec(5);
  o.dynamic_cad.rtt_multiplier = 10.0;
  // Address selection: FAFC 2, one IPv4 after the first two IPv6, then the
  // remaining IPv6, then the remaining IPv4 (App. D).
  o.first_address_family_count = 2;
  o.interlace = he::InterlaceMode::kFirstOtherThenRest;
  o.max_addresses_per_family = 10;
  o.sort_by_history = true;
  p.options = o;
  p.dynamic_cad_in_web = true;
  return p;
}

ClientProfile mobile_safari_profile(const std::string& version) {
  ClientProfile p = safari_profile(version);
  p.name = "Mobile Safari";
  p.kind = ClientKind::kMobileBrowser;
  // "the CAD never rose beyond 1 s ... on mobile phones with iOS" (§5.1).
  p.options.dynamic_cad.maximum = lazyeye::sec(1);
  p.options.dynamic_cad.no_history_default = lazyeye::sec(1);
  return p;
}

ClientProfile curl_profile() {
  ClientProfile p;
  p.name = "curl";
  p.version = "7.88.1";
  p.release = "02-2023";
  p.kind = ClientKind::kCliTool;

  he::HeOptions o;
  o.version = he::HeVersion::kV1;
  // curl uses the smallest CAD of 200 ms (--happy-eyeballs-timeout-ms
  // default, §5.1).
  o.connection_attempt_delay = lazyeye::ms(200);
  o.resolution_delay = std::nullopt;
  o.wait_for_a_record = true;  // getaddrinfo-style full resolution
  o.fail_on_a_timeout = false;  // proceeds with AAAA-only on A failure
  o.max_addresses_per_family = 1;
  o.interlace = he::InterlaceMode::kNone;
  p.options = o;
  return p;
}

ClientProfile wget_profile() {
  ClientProfile p;
  p.name = "wget";
  p.version = "1.21.3";
  p.release = "02-2022";
  p.kind = ClientKind::kCliTool;

  // wget does not implement any type of HE (Table 2 footnote 3): it
  // resolves, then works through the preferred family only and fails
  // without ever touching the IPv4 addresses.
  he::HeOptions o = he::HeOptions::none();
  // wget's connect timeout: SYN retransmissions for ~15 s in our model.
  o.tcp.syn_rto = lazyeye::sec(1);
  o.tcp.syn_retries = 3;
  o.overall_timeout = lazyeye::sec(60);
  p.options = o;
  return p;
}

ClientProfile icpr_egress_profile(const std::string& operator_name) {
  ClientProfile p;
  p.name = "Safari via iCPR (" + operator_name + ")";
  p.version = "17.6";
  p.kind = ClientKind::kProxyEgress;

  he::HeOptions o;
  o.version = he::HeVersion::kV1;
  o.wait_for_a_record = true;
  o.resolution_delay = std::nullopt;
  o.max_addresses_per_family = 1;
  o.interlace = he::InterlaceMode::kNone;
  if (operator_name == "Akamai") {
    // "Akamai and Cloudflare egress nodes use a CAD of 150 ms and 200 ms"
    // (§5.1); Akamai's resolver timeout is 400 ms for both A and AAAA
    // (§5.2).
    o.connection_attempt_delay = lazyeye::ms(150);
    p.dns_timeout = lazyeye::ms(400);
  } else {
    o.connection_attempt_delay = lazyeye::ms(200);
    // "Cloudflare egress nodes use IPv6 up until a delay of 1.75 s" (§5.2).
    p.dns_timeout = lazyeye::ms(1750);
  }
  p.dns_attempts = 1;  // egress operators give up after the single timeout
  p.options = o;
  return p;
}

std::vector<ClientProfile> local_testbed_profiles() {
  // Figure 2 rows, top to bottom.
  return {
      chromium_profile("Chrome", "130.0", "10-2024"),
      chromium_profile("Chrome", "120.0", "11-2023"),
      chromium_profile("Chrome", "108.0", "11-2022"),
      chromium_profile("Chrome", "96.0", "11-2021"),
      chromium_profile("Chrome", "88.0", "01-2021"),
      chromium_profile("Chromium", "130.0", "10-2024"),
      chromium_profile("Edge", "130.0", "10-2024"),
      chromium_profile("Edge", "120.0", "12-2023"),
      chromium_profile("Edge", "108.0", "12-2022"),
      chromium_profile("Edge", "96.0", "11-2021"),
      chromium_profile("Edge", "90.0", "04-2021"),
      firefox_profile("132.0", "10-2024"),
      firefox_profile("122.0", "01-2024"),
      firefox_profile("109.0", "01-2023"),
      firefox_profile("96.0", "01-2022"),
      curl_profile(),
      wget_profile(),
  };
}

std::vector<ClientProfile> apple_and_mobile_profiles() {
  std::vector<ClientProfile> out{
      safari_profile("17.6"),
      mobile_safari_profile("17.6"),
  };
  ClientProfile chrome_mobile = chromium_profile("Chrome Mobile", "130.0.0", "");
  chrome_mobile.kind = ClientKind::kMobileBrowser;
  out.push_back(std::move(chrome_mobile));
  return out;
}

std::vector<ClientProfile> icpr_egress_profiles() {
  return {icpr_egress_profile("Akamai"), icpr_egress_profile("Cloudflare")};
}

std::vector<ClientProfile> all_client_profiles() {
  auto out = local_testbed_profiles();
  for (auto& p : apple_and_mobile_profiles()) out.push_back(std::move(p));
  for (auto& p : icpr_egress_profiles()) out.push_back(std::move(p));
  return out;
}

std::optional<ClientProfile> find_client_profile(const std::string& display) {
  for (const auto& p : all_client_profiles()) {
    if (p.display_name() == display) return p;
  }
  return std::nullopt;
}

}  // namespace lazyeye::clients
