// Client behaviour profiles: one row per client/version the paper measures
// (Figure 2, Table 2, §5.1-5.2). Each profile is an HeOptions preset plus
// the deviations the parameter space cannot express.
//
// The profile constants are the *ground truth* the measurement pipeline is
// expected to rediscover — they come from the paper's published findings and
// the cited client sources (Chromium 300 ms, curl 200 ms, Firefox 250 ms,
// Safari dynamic / 2 s lab default, wget none).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/stub_resolver.h"
#include "he/options.h"

namespace lazyeye::clients {

enum class ClientKind {
  kBrowser,
  kMobileBrowser,
  kCliTool,
  kProxyEgress,  // iCloud Private Relay egress operators
};

const char* client_kind_name(ClientKind kind);

struct ClientProfile {
  std::string name;     // "Chrome"
  std::string version;  // "130.0"
  std::string release;  // "10-2024"
  ClientKind kind = ClientKind::kBrowser;

  he::HeOptions options;

  /// Stub resolver behaviour (per-query timeout = the "resolver timeout"
  /// browsers delegate to; iCPR egress nodes use 400 ms / 1.75 s).
  SimTime dns_timeout = lazyeye::sec(5);
  /// Query attempts per server (egress operators stop after one).
  int dns_attempts = 2;

  /// Firefox's observed occasional CAD outliers (§5.1): with this
  /// probability a session's CAD gets `cad_outlier_extra` added.
  double cad_outlier_prob = 0.0;
  SimTime cad_outlier_extra{0};

  /// Safari's dynamic web behaviour: when the client runs under "web"
  /// conditions (RTT history + noisy network), the dynamic CAD engages.
  bool dynamic_cad_in_web = false;

  std::string display_name() const { return name + " " + version; }
  /// Figure 2 row label, e.g. "Chrome (130.0 10-2024)".
  std::string figure_label() const;
};

/// All profiles of the local testbed study (Figure 2 order, oldest at the
/// bottom like the paper's plot): Chrome 88..130, Chromium 130, Edge
/// 90..130, Firefox 96..132, curl, wget.
std::vector<ClientProfile> local_testbed_profiles();

/// Safari (lab + web), Mobile Safari, Chrome Mobile.
std::vector<ClientProfile> apple_and_mobile_profiles();

/// iCloud Private Relay egress operator profiles (Akamai, Cloudflare).
std::vector<ClientProfile> icpr_egress_profiles();

/// Everything (local + apple/mobile + iCPR).
std::vector<ClientProfile> all_client_profiles();

/// Lookup by display name ("Chrome 130.0"); nullopt when unknown.
std::optional<ClientProfile> find_client_profile(const std::string& display);

// -- Individual constructors (used directly by tests/benches) ---------------
ClientProfile chromium_profile(const std::string& name,
                               const std::string& version,
                               const std::string& release,
                               bool hev3_flag = false);
ClientProfile firefox_profile(const std::string& version,
                              const std::string& release);
ClientProfile safari_profile(const std::string& version);
ClientProfile mobile_safari_profile(const std::string& version);
ClientProfile curl_profile();
ClientProfile wget_profile();
ClientProfile icpr_egress_profile(const std::string& operator_name);

}  // namespace lazyeye::clients
