#include "clients/user_agent.h"

#include "util/strings.h"

namespace lazyeye::clients {

namespace {

std::string underscored(const std::string& version) {
  std::string out = version;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

std::string dotted(const std::string& version) {
  std::string out = version;
  for (char& c : out) {
    if (c == '_') c = '.';
  }
  return out;
}

std::string os_token(const std::string& os_name,
                     const std::string& os_version) {
  if (os_name == "Windows 10" || (os_name == "Windows" && os_version == "10")) {
    return "Windows NT 10.0; Win64; x64";
  }
  if (os_name == "Mac OS X") {
    return "Macintosh; Intel Mac OS X " + underscored(os_version);
  }
  if (os_name == "iOS") {
    return "iPhone; CPU iPhone OS " + underscored(os_version) +
           " like Mac OS X";
  }
  if (os_name == "Android") return "Linux; Android " + os_version + "; K";
  if (os_name == "Chrome OS") return "X11; CrOS x86_64 " + os_version;
  if (os_name == "Ubuntu") return "X11; Ubuntu; Linux x86_64";
  return "X11; Linux x86_64";
}

}  // namespace

std::string make_user_agent(const std::string& browser,
                            const std::string& browser_version,
                            const std::string& os_name,
                            const std::string& os_version) {
  const std::string os = os_token(os_name, os_version);

  if (browser == "Firefox" || browser == "Firefox Mobile") {
    if (os_name == "Android") {
      return "Mozilla/5.0 (Android " + os_version + "; Mobile; rv:" +
             browser_version + ") Gecko/" + browser_version + " Firefox/" +
             browser_version;
    }
    return "Mozilla/5.0 (" + os + "; rv:" + browser_version +
           ") Gecko/20100101 Firefox/" + browser_version;
  }
  if (browser == "Safari") {
    return "Mozilla/5.0 (" + os +
           ") AppleWebKit/605.1.15 (KHTML, like Gecko) Version/" +
           browser_version + " Safari/605.1.15";
  }
  if (browser == "Mobile Safari") {
    return "Mozilla/5.0 (" + os +
           ") AppleWebKit/605.1.15 (KHTML, like Gecko) Version/" +
           browser_version + " Mobile/15E148 Safari/604.1";
  }

  // Chromium family.
  std::string ua = "Mozilla/5.0 (" + os +
                   ") AppleWebKit/537.36 (KHTML, like Gecko) Chrome/" +
                   browser_version;
  if (browser == "Chrome Mobile") {
    ua += " Mobile Safari/537.36";
  } else {
    ua += " Safari/537.36";
  }
  if (browser == "Edge") ua += " Edg/" + browser_version;
  if (browser == "Opera") ua += " OPR/" + browser_version;
  if (browser == "Samsung Internet") {
    // Samsung places its token before Chrome's in real UAs; keeping it
    // appended is fine for parsing purposes.
    ua += " SamsungBrowser/" + browser_version;
  }
  return ua;
}

namespace {

/// Returns the version following `token` (up to the next space/paren).
std::string version_after(const std::string& ua, const std::string& token) {
  const auto pos = ua.find(token);
  if (pos == std::string::npos) return {};
  std::size_t start = pos + token.size();
  std::size_t end = start;
  while (end < ua.size() && ua[end] != ' ' && ua[end] != ')' &&
         ua[end] != ';') {
    ++end;
  }
  return ua.substr(start, end - start);
}

}  // namespace

UserAgentInfo parse_user_agent(const std::string& ua) {
  UserAgentInfo info;

  // ---- Operating system ----------------------------------------------------
  if (ua.find("Windows NT 10.0") != std::string::npos) {
    info.os_name = "Windows";
    info.os_version = "10";
  } else if (ua.find("CrOS") != std::string::npos) {
    info.os_name = "Chrome OS";
    info.os_version = version_after(ua, "CrOS x86_64 ");
  } else if (ua.find("iPhone OS ") != std::string::npos) {
    info.os_name = "iOS";
    info.os_version = dotted(version_after(ua, "iPhone OS "));
  } else if (ua.find("Mac OS X ") != std::string::npos) {
    info.os_name = "Mac OS X";
    info.os_version = dotted(version_after(ua, "Mac OS X "));
  } else if (ua.find("Android ") != std::string::npos) {
    info.os_name = "Android";
    info.os_version = version_after(ua, "Android ");
  } else if (ua.find("Ubuntu") != std::string::npos) {
    info.os_name = "Ubuntu";  // no version in the UA (Table 5 note)
  } else if (ua.find("Linux") != std::string::npos ||
             ua.find("X11") != std::string::npos) {
    info.os_name = "Linux";  // no version in the UA (Table 5 note)
  }

  // ---- Browser ---------------------------------------------------------------
  if (ua.find("Edg/") != std::string::npos) {
    info.browser = "Edge";
    info.browser_version = version_after(ua, "Edg/");
  } else if (ua.find("OPR/") != std::string::npos) {
    info.browser = "Opera";
    info.browser_version = version_after(ua, "OPR/");
  } else if (ua.find("SamsungBrowser/") != std::string::npos) {
    info.browser = "Samsung Internet";
    info.browser_version = version_after(ua, "SamsungBrowser/");
  } else if (ua.find("Firefox/") != std::string::npos) {
    info.browser = (info.os_name == "Android") ? "Firefox Mobile" : "Firefox";
    info.browser_version = version_after(ua, "Firefox/");
  } else if (ua.find("Chrome/") != std::string::npos) {
    info.browser = (ua.find("Mobile") != std::string::npos) ? "Chrome Mobile"
                                                            : "Chrome";
    info.browser_version = version_after(ua, "Chrome/");
  } else if (ua.find("Version/") != std::string::npos &&
             ua.find("Safari/") != std::string::npos) {
    info.browser =
        (info.os_name == "iOS") ? "Mobile Safari" : "Safari";
    info.browser_version = version_after(ua, "Version/");
  }
  return info;
}

}  // namespace lazyeye::clients
