// User-Agent construction and parsing.
//
// The paper's web campaign attributes results to browser/OS combinations
// extracted from the user agent (Table 5, Appendix E). We synthesise
// realistic UA strings for simulated web clients and parse them back with
// the same heuristics the study uses (Linux/Ubuntu UAs carry no OS version).
#pragma once

#include <string>

namespace lazyeye::clients {

struct UserAgentInfo {
  std::string os_name;
  std::string os_version;  // may be empty (Linux/Ubuntu)
  std::string browser;
  std::string browser_version;
};

/// Builds a User-Agent string for a browser/OS combination.
/// Recognised browsers: Chrome, Chrome Mobile, Chromium, Edge, Firefox,
/// Firefox Mobile, Safari, Mobile Safari, Opera, Samsung Internet.
/// Recognised OSes: "Windows 10", "Mac OS X <v>", "Linux", "Ubuntu",
/// "Android <v>", "iOS <v>", "Chrome OS <v>".
std::string make_user_agent(const std::string& browser,
                            const std::string& browser_version,
                            const std::string& os_name,
                            const std::string& os_version);

/// Extracts browser/OS from a UA string (Table 5 extraction).
UserAgentInfo parse_user_agent(const std::string& user_agent);

}  // namespace lazyeye::clients
