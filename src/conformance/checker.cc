#include "conformance/checker.h"

#include <memory>
#include <utility>

#include "capture/analysis.h"
#include "clients/client.h"
#include "conformance/injector.h"
#include "dns/auth_server.h"
#include "dns/test_params.h"
#include "simnet/network.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "util/strings.h"

namespace lazyeye::conformance {

using simnet::Family;
using simnet::IpAddress;

int ConformanceRecord::violations() const {
  int n = 0;
  for (const Verdict& v : verdicts) {
    if (v.outcome == RuleOutcome::kViolate) ++n;
  }
  return n;
}

std::string ConformanceRecord::symbols() const {
  std::string out;
  out.reserve(verdicts.size());
  for (const Verdict& v : verdicts) out.push_back(rule_outcome_symbol(v.outcome));
  return out;
}

ConformanceHarness::ConformanceHarness(ConformanceOptions options)
    : options_{options} {}

campaign::ScenarioSpec ConformanceHarness::case_spec(
    const clients::ClientProfile& profile, const FaultPlan& plan,
    int fetches) const {
  campaign::ScenarioSpec spec;
  // The plan IS the replay handle: deriving the cell seed from it (and
  // nothing else) is what makes `example_conformance_probe` reproduce a
  // campaign cell bit-for-bit from the one-line repro.
  spec.seed = plan.rng_seed();
  spec.id = plan.index;
  spec.repetition = 0;
  spec.grid_index = static_cast<int>(plan.kind);
  spec.client = profile.display_name();
  spec.payload = campaign::ConformanceCase{plan, fetches};
  spec.label = lazyeye::str_format("conf %s %s", spec.client.c_str(),
                                   fault_kind_name(plan.kind));
  return spec;
}

campaign::ScenarioSpec ConformanceHarness::schedule_spec(
    const clients::ClientProfile& profile, const FaultSchedule& schedule,
    int fetches) const {
  campaign::ScenarioSpec spec;
  // Like case_spec: the schedule is the whole replay handle. rng_seed()
  // folds the entry content, so a mutated schedule runs a distinct world
  // while equal schedules always collide onto the same one.
  spec.seed = schedule.rng_seed();
  spec.id = schedule.index;
  spec.repetition = 0;
  spec.grid_index = static_cast<int>(schedule.entries.size());
  spec.client = profile.display_name();
  spec.payload = campaign::ScheduleCase{schedule, fetches};
  spec.label = lazyeye::str_format("sched %s n=%zu", spec.client.c_str(),
                                   schedule.entries.size());
  return spec;
}

std::vector<campaign::ScenarioSpec> ConformanceHarness::differential_specs(
    const std::vector<clients::ClientProfile>& profiles,
    int repetitions) const {
  std::vector<campaign::ScenarioSpec> specs;
  specs.reserve(all_fault_kinds().size() * profiles.size() *
                static_cast<std::size_t>(repetitions));
  std::uint64_t id = 0;
  for (const FaultKind kind : all_fault_kinds()) {
    std::uint32_t index = 0;
    for (const clients::ClientProfile& profile : profiles) {
      for (int rep = 0; rep < repetitions; ++rep) {
        FaultPlan plan;
        plan.kind = kind;
        plan.seed = options_.seed;
        plan.stream = static_cast<std::uint32_t>(kind);
        plan.index = index++;
        campaign::ScenarioSpec spec = case_spec(profile, plan, /*fetches=*/2);
        spec.id = id++;
        spec.repetition = rep;
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

namespace {

/// The cell's isolated world: two dual-stack nodes, echo web server, auth
/// DNS, the fault injector attached to the server's stacks, capture on the
/// client node. Mirrors testbed::build_scenario, plus the injector.
struct World {
  // Lease first: released (arena reset) after every raw pointer below is
  // dead. The arena destroys capture, client, injector, servers, then the
  // Network — the same reverse-creation order the old unique_ptr members
  // produced.
  simnet::WorldLease lease;
  simnet::Network* net = nullptr;
  simnet::Host* client_host = nullptr;
  simnet::Host* server_host = nullptr;
  transport::TcpStack* server_tcp = nullptr;
  transport::QuicStack* server_quic = nullptr;
  dns::AuthServer* auth = nullptr;
  FaultInjector* injector = nullptr;
  ScheduleInjector* schedule_injector = nullptr;
  clients::SimulatedClient* client = nullptr;
  capture::PacketCapture* capture = nullptr;
  dns::DnsName name;
};

/// Exactly one of `plan` / `schedule` is set — the cell's fault source.
std::unique_ptr<World> build_world(const clients::ClientProfile& profile,
                                   const ConformanceOptions& options,
                                   const FaultPlan* plan,
                                   const FaultSchedule* schedule,
                                   std::uint64_t cell_seed) {
  auto w = std::make_unique<World>();
  simnet::Arena& arena = w->lease.arena();
  w->net = arena.create<simnet::Network>(w->lease.memory(),
                                         options.seed * 7919 + cell_seed);

  w->server_host = &w->net->add_host("server");
  w->server_host->add_address(IpAddress::must_parse("10.0.0.80"));
  w->server_host->add_address(IpAddress::must_parse("2001:db8::80"));
  w->client_host = &w->net->add_host("client");
  w->client_host->add_address(IpAddress::must_parse("10.0.0.2"));
  w->client_host->add_address(IpAddress::must_parse("2001:db8::2"));

  w->server_tcp = arena.create<transport::TcpStack>(*w->server_host);
  w->server_tcp->listen(443, [](std::uint64_t, const simnet::Endpoint&) {});
  w->server_tcp->set_data_handler(
      [wp = w.get()](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        const std::string body = "ok";
        wp->server_tcp->send_data(
            conn_id, std::vector<std::uint8_t>{body.begin(), body.end()});
      });
  w->server_quic = arena.create<transport::QuicStack>(*w->server_host);
  w->server_quic->listen(443);
  w->server_quic->set_data_handler(
      [wp = w.get()](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        const std::string body = "ok";
        wp->server_quic->send_data(
            conn_id, std::vector<std::uint8_t>{body.begin(), body.end()});
      });

  w->auth = arena.create<dns::AuthServer>(*w->server_host);
  dns::Zone& zone = w->auth->add_zone(dns::DnsName::must_parse("conf.lab"));

  const auto nonce =
      lazyeye::str_format("%llu", static_cast<unsigned long long>(cell_seed));
  w->name = dns::make_test_name(dns::DnsName::must_parse("run.conf.lab"),
                                nonce, {});
  // Real server first (clients that honour record order try it first), then
  // unresponsive decoys so interleaving/abandonment have observable choices.
  zone.add_a(w->name, *simnet::Ipv4Address::parse("10.0.0.80"));
  zone.add_aaaa(w->name, *simnet::Ipv6Address::parse("2001:db8::80"));
  for (int i = 1; i <= options.decoys_per_family; ++i) {
    zone.add_a(w->name, *simnet::Ipv4Address::parse(
                            lazyeye::str_format("10.99.0.%d", i)));
    zone.add_aaaa(w->name, *simnet::Ipv6Address::parse(lazyeye::str_format(
                               "2001:db8:dead::%d", i)));
  }

  if (plan != nullptr) {
    w->injector = arena.create<FaultInjector>(*plan);
    w->injector->attach(*w->auth);
    w->injector->attach(*w->server_tcp);
    w->injector->attach(*w->server_quic);
  } else {
    w->schedule_injector =
        arena.create<ScheduleInjector>(*schedule, w->net->loop());
    w->schedule_injector->attach(*w->auth);
    w->schedule_injector->attach(*w->server_tcp);
    w->schedule_injector->attach(*w->server_quic);
  }

  dns::StubOptions stub_options;
  stub_options.servers = {{IpAddress::must_parse("10.0.0.80"), 53}};
  w->client = arena.create<clients::SimulatedClient>(
      *w->client_host, profile, stub_options, options.seed * 31 + cell_seed);
  w->client->reset_state();  // fresh container per cell

  w->capture = arena.create<capture::PacketCapture>(*w->client_host);
  return w;
}

}  // namespace

ConformanceRecord ConformanceHarness::run_spec(
    const clients::ClientProfile& profile,
    const campaign::ScenarioSpec& spec) const {
  const FaultPlan* plan = nullptr;
  const FaultSchedule* schedule = nullptr;
  int fetches = 1;
  if (const auto* cell = spec.get_if<campaign::ConformanceCase>()) {
    plan = &cell->fault;
    fetches = cell->fetches;
  } else if (const auto* cell2 = spec.get_if<campaign::ScheduleCase>()) {
    schedule = &cell2->schedule;
    fetches = cell2->fetches;
  } else {
    throw std::invalid_argument(
        lazyeye::str_format("ConformanceHarness::run_spec: unsupported case %s",
                            campaign::case_name(spec.payload)));
  }
  auto w = build_world(profile, options_, plan, schedule, spec.seed);

  clients::FetchResult first_fetch;
  clients::FetchResult last_fetch;
  bool first_done = false;
  SimTime first_completed{0};
  // The restart (second fetch) runs in the same client session — no
  // reset_state() — so the engine's RFC 6555 §4.1 winner cache applies and
  // the restart-cache rule can observe whether DNS is re-queried.
  w->client->fetch(w->name, 443, [&](clients::FetchResult r) {
    first_fetch = r;
    last_fetch = std::move(r);
    first_done = true;
    first_completed = w->net->loop().now();
    if (fetches >= 2) {
      w->client->fetch(w->name, 443, [&](clients::FetchResult r2) {
        last_fetch = std::move(r2);
      });
    }
  });
  w->net->loop().run();

  RuleContext ctx;
  ctx.fetches = fetches;
  ctx.first_fetch_ok =
      first_done && first_fetch.connection.ok && first_fetch.response_received;
  ctx.first_fetch_completed = first_completed;
  ctx.v4_candidates = 1 + options_.decoys_per_family;
  ctx.v6_candidates = 1 + options_.decoys_per_family;

  const capture::PacketCapture& cap = *w->capture;
  ctx.dns = capture::dns_exchanges(cap);
  ctx.attempts = capture::connection_attempts(cap);
  ctx.established = capture::established_family(cap);
  ctx.established_time = capture::first_established_time(cap);
  // ctx.dns already decoded every DNS packet once; reuse it.
  ctx.first_a_response = capture::first_response_time(ctx.dns, dns::RrType::kA);
  ctx.first_aaaa_response =
      capture::first_response_time(ctx.dns, dns::RrType::kAaaa);
  ctx.first_v4_syn = capture::first_syn_time(cap, Family::kIpv4);
  ctx.first_v6_syn = capture::first_syn_time(cap, Family::kIpv6);

  ConformanceRecord record;
  record.client = profile.display_name();
  if (plan != nullptr) record.fault = *plan;
  if (schedule != nullptr) record.schedule = *schedule;
  record.fetches = fetches;
  record.fetch_ok = last_fetch.connection.ok && last_fetch.response_received;
  record.first_fetch_ok = ctx.first_fetch_ok;
  record.verdicts = evaluate_rules(ctx);
  return record;
}

ConformanceRecord ConformanceHarness::replay(
    const clients::ClientProfile& profile, const FaultPlan& plan,
    int fetches) const {
  return run_spec(profile, case_spec(profile, plan, fetches));
}

ConformanceRecord ConformanceHarness::replay_schedule(
    const clients::ClientProfile& profile, const FaultSchedule& schedule,
    int fetches) const {
  return run_spec(profile, schedule_spec(profile, schedule, fetches));
}

// ---- VerdictTableSink ------------------------------------------------------

void VerdictTableSink::begin(std::size_t cells_total) {
  text_.clear();
  total_violations_ = 0;
  cells_ = 0;
  text_ += "conformance verdict table (";
  for (std::size_t i = 0; i < rfc8305_rules().size(); ++i) {
    if (i > 0) text_ += ", ";
    text_ += rfc8305_rules()[i].name;
  }
  text_ += lazyeye::str_format(") — %zu cells\n", cells_total);
  text_ += lazyeye::str_format("%-28s %-18s %-7s %s\n", "client", "fault",
                               "rules", "fetch");
}

void VerdictTableSink::cell(const campaign::ScenarioSpec& spec,
                            ConformanceRecord record) {
  (void)spec;
  ++cells_;
  const std::string fault_column =
      record.schedule
          ? lazyeye::str_format("schedule[%zu]", record.schedule->entries.size())
          : std::string{fault_kind_name(record.fault.kind)};
  text_ += lazyeye::str_format(
      "%-28s %-18s %-7s %s\n", record.client.c_str(), fault_column.c_str(),
      record.symbols().c_str(), record.fetch_ok ? "ok" : "fail");
  for (const Verdict& v : record.verdicts) {
    if (v.outcome != RuleOutcome::kViolate) continue;
    ++total_violations_;
    text_ += lazyeye::str_format("    V %s: %s\n", v.rule.c_str(),
                                 v.evidence.c_str());
    if (record.schedule) {
      const FaultSchedule& s = *record.schedule;
      // Triple form when the schedule is its triple's generate() output;
      // hex form (always exact) for mutated/minimized schedules.
      if (s == FaultSchedule::generate(s.seed, s.stream, s.index)) {
        text_ += lazyeye::str_format(
            "      repro: ./build/example_conformance_probe \"%s\" "
            "--schedule %llu %u %u\n",
            record.client.c_str(), static_cast<unsigned long long>(s.seed),
            static_cast<unsigned>(s.stream), static_cast<unsigned>(s.index));
      } else {
        text_ += lazyeye::str_format(
            "      repro: ./build/example_conformance_probe \"%s\" "
            "--schedule-hex %s\n",
            record.client.c_str(), schedule_to_hex(s).c_str());
      }
      continue;
    }
    text_ += lazyeye::str_format(
        "      repro: ./build/example_conformance_probe \"%s\" %s %llu %u %u\n",
        record.client.c_str(), fault_kind_name(record.fault.kind),
        static_cast<unsigned long long>(record.fault.seed),
        static_cast<unsigned>(record.fault.stream),
        static_cast<unsigned>(record.fault.index));
  }
}

void VerdictTableSink::end() {
  text_ += lazyeye::str_format("total violations: %d across %zu cells\n",
                               total_violations_, cells_);
}

}  // namespace lazyeye::conformance
