// ConformanceHarness: differential RFC 8305 conformance campaigns.
//
// Each cell builds an isolated two-node world (like testbed::LocalTestbed),
// attaches a FaultInjector for the cell's seeded FaultPlan to the server's
// DNS and transport stacks, runs the client's fetch(es), and evaluates the
// RFC 8305 rule set over the client-side capture. Cells ride the campaign
// API v2 as ConformanceCase payloads, so a differential matrix — the same
// fault against every client profile — shards across the CampaignRunner
// worker pool with byte-identical verdict tables at any worker count.
//
// Every cell replays from its plan's (seed, stream, index) triple:
//
//   ./build/example_conformance_probe "<client>" <fault> <seed> <stream> <index>
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "clients/profiles.h"
#include "conformance/fault.h"
#include "conformance/rules.h"
#include "conformance/schedule.h"

namespace lazyeye::conformance {

/// One cell's outcome: the fault it ran, whether the fetches succeeded, and
/// the verdict of every rule (rule-table order).
struct ConformanceRecord {
  std::string client;
  FaultPlan fault;
  /// Set for compound-schedule cells (ScheduleCase); `fault` stays at its
  /// default then and the schedule is the replay handle instead.
  std::optional<FaultSchedule> schedule;
  int fetches = 1;
  bool fetch_ok = false;        // the cell's final fetch
  bool first_fetch_ok = false;  // the first fetch (== fetch_ok when fetches=1)
  std::vector<Verdict> verdicts;

  int violations() const;
  /// One symbol per rule, e.g. "P-PV-" (rule-table order).
  std::string symbols() const;
};

struct ConformanceOptions {
  /// Campaign seed — becomes FaultPlan::seed for every generated cell.
  std::uint64_t seed = 1;
  /// Unresponsive decoy addresses per family next to the real server, so
  /// the interleaving/abandonment rules have material to judge.
  int decoys_per_family = 1;
};

class ConformanceHarness {
 public:
  explicit ConformanceHarness(ConformanceOptions options = {});

  const ConformanceOptions& options() const { return options_; }

  /// One cell: `plan` against `profile`. The spec's seed is the plan's
  /// rng_seed(), so the cell's whole world derives from the replay triple.
  campaign::ScenarioSpec case_spec(const clients::ClientProfile& profile,
                                   const FaultPlan& plan,
                                   int fetches = 1) const;

  /// One compound-schedule cell: the spec's seed is the schedule's
  /// rng_seed() (triple + entry content), so campaign, hunt, and both probe
  /// replay paths build byte-identical worlds for equal schedules.
  campaign::ScenarioSpec schedule_spec(const clients::ClientProfile& profile,
                                       const FaultSchedule& schedule,
                                       int fetches = 1) const;

  /// The differential matrix: every fault kind (kNone control first) against
  /// every profile. Fault-kind-major; stream = kind id, index = cell index
  /// within the kind (profile-major, repetition-minor). All cells use
  /// fetches = 2 so the restart-cache rule is exercised.
  std::vector<campaign::ScenarioSpec> differential_specs(
      const std::vector<clients::ClientProfile>& profiles,
      int repetitions = 1) const;

  /// Stateless executor: builds the cell's faulted world, runs it, and
  /// evaluates the rules. Thread-safe across distinct specs.
  ConformanceRecord run_spec(const clients::ClientProfile& profile,
                             const campaign::ScenarioSpec& spec) const;

  /// Replays one cell from its plan — the probe example's entry point.
  ConformanceRecord replay(const clients::ClientProfile& profile,
                           const FaultPlan& plan, int fetches = 2) const;

  /// Replays one compound-schedule cell (probe --schedule/--schedule-hex,
  /// hunt evaluation, corpus reproduction).
  ConformanceRecord replay_schedule(const clients::ClientProfile& profile,
                                    const FaultSchedule& schedule,
                                    int fetches = 2) const;

 private:
  ConformanceOptions options_;
};

/// Plugs ConformanceCase AND ScheduleCase into a campaign registry (both
/// dispatch to run_spec, which switches on the payload); `harness` must
/// outlive the registry, the profile pool is copied into the executor.
template <typename Outcome>
void register_conformance_executor(
    campaign::Registry<Outcome>& registry, const ConformanceHarness& harness,
    std::vector<clients::ClientProfile> profiles) {
  auto pool = std::make_shared<const std::vector<clients::ClientProfile>>(
      std::move(profiles));
  const auto run = [&harness, pool](const campaign::ScenarioSpec& spec) {
    const clients::ClientProfile& profile = campaign::find_registered(
        *pool, spec.client,
        [](const clients::ClientProfile& p) { return p.display_name(); },
        "conformance");
    return harness.run_spec(profile, spec);
  };
  registry.template add<campaign::ConformanceCase>(
      [run](const campaign::ScenarioSpec& spec,
            const campaign::ConformanceCase&) { return run(spec); });
  registry.template add<campaign::ScheduleCase>(
      [run](const campaign::ScenarioSpec& spec,
            const campaign::ScheduleCase&) { return run(spec); });
}

/// Streams a verdict table: one fixed-width row per cell plus, for each
/// violation, an evidence line and the single-command repro line. The text
/// is byte-stable for a given matrix (cells arrive in spec order regardless
/// of worker count — the bench asserts this at 1/2/4/8 workers).
class VerdictTableSink final : public campaign::ResultSink<ConformanceRecord> {
 public:
  void begin(std::size_t cells_total) override;
  void cell(const campaign::ScenarioSpec& spec,
            ConformanceRecord record) override;
  void end() override;

  const std::string& text() const { return text_; }
  int total_violations() const { return total_violations_; }
  std::size_t cells() const { return cells_; }

 private:
  std::string text_;
  int total_violations_ = 0;
  std::size_t cells_ = 0;
};

}  // namespace lazyeye::conformance
