#include "conformance/fault.h"

#include "util/strings.h"

namespace lazyeye::conformance {

const char* fault_kind_name(FaultKind kind) {
  static_assert(kFaultKindCount == 11,
                "new fault kind: extend fault_kind_name and the injector");
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDnsTruncate: return "dns-truncate";
    case FaultKind::kDnsCorrupt: return "dns-corrupt";
    case FaultKind::kDnsSpoof: return "dns-spoof";
    case FaultKind::kDnsReorder: return "dns-reorder";
    case FaultKind::kDnsStarveFamily: return "dns-starve-family";
    case FaultKind::kDnsDelaySpike: return "dns-delay-spike";
    case FaultKind::kTcpReset: return "tcp-reset";
    case FaultKind::kTcpAcceptReset: return "tcp-accept-reset";
    case FaultKind::kTcpBlackhole: return "tcp-blackhole";
    case FaultKind::kQuicDrop: return "quic-drop";
  }
  return "?";  // unreachable for in-range values
}

std::optional<FaultKind> fault_kind_from_name(std::string_view name) {
  for (const FaultKind kind : all_fault_kinds()) {
    if (name == fault_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = [] {
    std::vector<FaultKind> out;
    out.reserve(kFaultKindCount);
    for (int i = 0; i < kFaultKindCount; ++i) {
      out.push_back(static_cast<FaultKind>(i));
    }
    return out;
  }();
  return kinds;
}

std::uint64_t FaultPlan::rng_seed() const {
  // Mirror of ScenarioSpec::derive: fold the triple (and the kind, so two
  // kinds sharing a stream id never collide) into one SplitMix64 state.
  SplitMix64 mix{seed ^ ((std::uint64_t{stream} + 1) * 0x9e3779b97f4a7c15ULL) ^
                 ((std::uint64_t{index} + 1) * 0xd6e8feb86659fd93ULL) ^
                 (static_cast<std::uint64_t>(kind) << 56)};
  return mix.next();
}

std::string FaultPlan::repro() const {
  return lazyeye::str_format(
      "fault=%s seed=%llu stream=%u index=%u", fault_kind_name(kind),
      static_cast<unsigned long long>(seed), static_cast<unsigned>(stream),
      static_cast<unsigned>(index));
}

void truncate_wire(std::vector<std::uint8_t>& wire, SplitMix64& rng) {
  if (wire.size() < 2) return;
  const std::uint64_t keep = 1 + rng.next() % (wire.size() - 1);
  wire.resize(static_cast<std::size_t>(keep));
}

void corrupt_wire(std::vector<std::uint8_t>& wire, SplitMix64& rng) {
  if (wire.empty()) return;
  const int flips = 1 + static_cast<int>(rng.next() % 8);
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos = static_cast<std::size_t>(rng.next() % wire.size());
    wire[pos] ^= static_cast<std::uint8_t>(1 + rng.next() % 255);
  }
}

std::vector<std::uint8_t> garbage_wire(SplitMix64& rng) {
  const std::size_t size = static_cast<std::size_t>(rng.next() % 513);
  std::vector<std::uint8_t> wire(size);
  for (std::uint8_t& byte : wire) {
    byte = static_cast<std::uint8_t>(rng.next() & 0xff);
  }
  return wire;
}

}  // namespace lazyeye::conformance
