// Seeded fault plans — the adversarial inputs of the RFC 8305 noncompliance
// checker (ROADMAP "Conformance + adversarial fault-injection layer").
//
// A FaultPlan is fully described by its kind plus a (seed, stream, index)
// triple; every byte of injected misbehaviour derives from SplitMix64 over
// that triple, so any verdict a differential campaign reports replays from
// one documented line:
//
//   ./build/example_conformance_probe "<client>" <fault> <seed> <stream> <index>
//
// The wire mutators double as the decoder-robustness seed corpus: the same
// truncations/corruptions the injector feeds a live client are fed to
// DnsMessage::decode_into by tests/dns_codec_test.cc.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "simnet/ip.h"
#include "util/rng.h"
#include "util/time.h"

namespace lazyeye::conformance {

enum class FaultKind : std::uint8_t {
  kNone = 0,         // control cell: no fault injected
  kDnsTruncate,      // responses truncated mid-message
  kDnsCorrupt,       // seeded byte corruption of the response wire bytes
  kDnsSpoof,         // off-path (wrong-id, bogus-address) answer races the real one
  kDnsReorder,       // target family's answers held back so the other overtakes
  kDnsStarveFamily,  // answers of the target family stripped (NODATA-like)
  kDnsDelaySpike,    // per-family response delay spike
  kTcpReset,         // target family's SYNs answered with RST
  kTcpAcceptReset,   // handshake completes, then an immediate RST
  kTcpBlackhole,     // target family's SYNs swallowed (no SYN-ACK)
  kQuicDrop,         // target family's QUIC Initials dropped
};

inline constexpr int kFaultKindCount = 11;

const char* fault_kind_name(FaultKind kind);

/// Inverse of fault_kind_name(); nullopt for unknown names.
std::optional<FaultKind> fault_kind_from_name(std::string_view name);

/// All kinds in enumerator order (kNone first) — the differential matrix's
/// stream order.
const std::vector<FaultKind>& all_fault_kinds();

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// Replay triple: the cell's world and every mutation derive from it.
  std::uint64_t seed = 1;
  std::uint32_t stream = 0;
  std::uint32_t index = 0;
  /// Address family the family-selective kinds target.
  simnet::Family target_family = simnet::Family::kIpv6;
  /// Extra response delay for kDnsDelaySpike and the kDnsReorder holdback.
  SimTime spike = lazyeye::ms(150);

  /// Root of the plan's deterministic mutation stream (and the cell seed of
  /// its campaign spec): a pure function of (kind, seed, stream, index).
  std::uint64_t rng_seed() const;

  /// The one-line repro: "fault=<kind> seed=S stream=T index=I".
  std::string repro() const;

  bool operator==(const FaultPlan&) const = default;
};

// ---- Seeded wire mutators (shared decode-robustness corpus) ---------------

/// Truncates to a seeded length in [1, size-1]; no-op for wires < 2 bytes.
void truncate_wire(std::vector<std::uint8_t>& wire, SplitMix64& rng);

/// Flips 1..8 seeded bytes in place; no-op for empty wires.
void corrupt_wire(std::vector<std::uint8_t>& wire, SplitMix64& rng);

/// A fresh garbage datagram of 0..512 seeded bytes.
std::vector<std::uint8_t> garbage_wire(SplitMix64& rng);

}  // namespace lazyeye::conformance
