#include "conformance/injector.h"

#include <algorithm>
#include <utility>

namespace lazyeye::conformance {

using dns::DnsMessage;
using dns::RrType;
using simnet::Family;
using transport::AcceptAction;

namespace {

/// Family a query type resolves addresses for (non-address types count as
/// IPv4 only so the family-selective kinds leave them alone by default).
Family qtype_family(RrType qtype) {
  return qtype == RrType::kAaaa ? Family::kIpv6 : Family::kIpv4;
}

bool address_qtype(RrType qtype) {
  return qtype == RrType::kA || qtype == RrType::kAaaa;
}

}  // namespace

bool FaultInjector::dns_kind() const {
  switch (plan_.kind) {
    case FaultKind::kDnsTruncate:
    case FaultKind::kDnsCorrupt:
    case FaultKind::kDnsSpoof:
    case FaultKind::kDnsReorder:
    case FaultKind::kDnsStarveFamily:
    case FaultKind::kDnsDelaySpike:
      return true;
    default:
      return false;
  }
}

bool FaultInjector::tcp_kind() const {
  switch (plan_.kind) {
    case FaultKind::kTcpReset:
    case FaultKind::kTcpAcceptReset:
    case FaultKind::kTcpBlackhole:
      return true;
    default:
      return false;
  }
}

dns::ResponseInterposer FaultInjector::dns_hook() {
  return [this](const DnsMessage& query, DnsMessage& response, SimTime& delay,
                dns::ResponseDirectives& out) {
    on_dns_response(query, response, delay, out);
  };
}

void FaultInjector::attach(dns::AuthServer& server) {
  if (dns_kind()) server.set_response_interposer(dns_hook());
}

void FaultInjector::attach(dns::RecursiveResolver& resolver) {
  if (dns_kind()) resolver.set_response_interposer(dns_hook());
}

void FaultInjector::attach(transport::TcpStack& tcp) {
  if (!tcp_kind()) return;
  tcp.set_accept_interposer(
      [this](const simnet::Endpoint& peer, std::uint16_t) {
        return on_accept(peer);
      });
}

void FaultInjector::attach(transport::QuicStack& quic) {
  if (plan_.kind != FaultKind::kQuicDrop) return;
  quic.set_accept_interposer(
      [this](const simnet::Endpoint& peer, std::uint16_t) {
        return on_accept(peer);
      });
}

void FaultInjector::on_dns_response(const DnsMessage& query,
                                    DnsMessage& response, SimTime& delay,
                                    dns::ResponseDirectives& out) {
  const RrType qtype =
      query.questions.empty() ? RrType::kA : query.questions.front().type;
  const bool targeted =
      address_qtype(qtype) && qtype_family(qtype) == plan_.target_family;
  switch (plan_.kind) {
    case FaultKind::kDnsTruncate:
      out.mutate_wire = [this](std::vector<std::uint8_t>& wire) {
        truncate_wire(wire, rng_);
      };
      break;
    case FaultKind::kDnsCorrupt:
      out.mutate_wire = [this](std::vector<std::uint8_t>& wire) {
        corrupt_wire(wire, rng_);
      };
      break;
    case FaultKind::kDnsSpoof: {
      if (!address_qtype(qtype)) break;
      // Off-path race: wrong transaction id, bogus address, sent with zero
      // extra delay so it reaches the client ahead of the real answer. A
      // compliant resolver/client drops it on the id mismatch.
      DnsMessage spoof = response;
      spoof.header.id ^= static_cast<std::uint16_t>(1 + rng_.next() % 0xffff);
      spoof.answers.clear();
      spoof.authorities.clear();
      spoof.additionals.clear();
      const dns::DnsName& qname = query.questions.front().name;
      if (qtype == RrType::kA) {
        spoof.answers.push_back(dns::ResourceRecord::a(
            qname, simnet::IpAddress::must_parse("192.0.2.66").v4()));
      } else {
        spoof.answers.push_back(dns::ResourceRecord::aaaa(
            qname, simnet::IpAddress::must_parse("2001:db8:bad::66").v6()));
      }
      out.extra.push_back({spoof.encode(), SimTime{0}});
      break;
    }
    case FaultKind::kDnsReorder:
      // Hold the targeted family's answer back past the spike so the other
      // family's answer overtakes it, and scramble in-message record order.
      if (targeted) {
        delay = delay + plan_.spike;
        std::reverse(response.answers.begin(), response.answers.end());
      }
      break;
    case FaultKind::kDnsStarveFamily:
      if (targeted) response.answers.clear();  // NODATA-like starvation
      break;
    case FaultKind::kDnsDelaySpike:
      if (targeted) delay = delay + plan_.spike;
      break;
    default:
      break;
  }
}

AcceptAction FaultInjector::on_accept(const simnet::Endpoint& peer) const {
  if (peer.addr.family() != plan_.target_family) return AcceptAction::kAccept;
  switch (plan_.kind) {
    case FaultKind::kTcpReset: return AcceptAction::kReset;
    case FaultKind::kTcpAcceptReset: return AcceptAction::kAcceptThenReset;
    case FaultKind::kTcpBlackhole:
    case FaultKind::kQuicDrop: return AcceptAction::kDrop;
    default: return AcceptAction::kAccept;
  }
}

}  // namespace lazyeye::conformance
