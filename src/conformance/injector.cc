#include "conformance/injector.h"

#include <algorithm>
#include <utility>

namespace lazyeye::conformance {

using dns::DnsMessage;
using dns::RrType;
using simnet::Family;
using transport::AcceptAction;

namespace {

/// Family a query type resolves addresses for (non-address types count as
/// IPv4 only so the family-selective kinds leave them alone by default).
Family qtype_family(RrType qtype) {
  return qtype == RrType::kAaaa ? Family::kIpv6 : Family::kIpv4;
}

bool address_qtype(RrType qtype) {
  return qtype == RrType::kA || qtype == RrType::kAaaa;
}

}  // namespace

bool dns_fault_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDnsTruncate:
    case FaultKind::kDnsCorrupt:
    case FaultKind::kDnsSpoof:
    case FaultKind::kDnsReorder:
    case FaultKind::kDnsStarveFamily:
    case FaultKind::kDnsDelaySpike:
      return true;
    default:
      return false;
  }
}

bool tcp_fault_kind(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTcpReset:
    case FaultKind::kTcpAcceptReset:
    case FaultKind::kTcpBlackhole:
      return true;
    default:
      return false;
  }
}

void apply_dns_fault(const FaultPlan& plan, SplitMix64& rng,
                     const DnsMessage& query, DnsMessage& response,
                     SimTime& delay, dns::ResponseDirectives& out) {
  const RrType qtype =
      query.questions.empty() ? RrType::kA : query.questions.front().type;
  const bool targeted =
      address_qtype(qtype) && qtype_family(qtype) == plan.target_family;
  switch (plan.kind) {
    case FaultKind::kDnsTruncate:
      out.mutate_wire = [&rng](std::vector<std::uint8_t>& wire) {
        truncate_wire(wire, rng);
      };
      break;
    case FaultKind::kDnsCorrupt:
      out.mutate_wire = [&rng](std::vector<std::uint8_t>& wire) {
        corrupt_wire(wire, rng);
      };
      break;
    case FaultKind::kDnsSpoof: {
      if (!address_qtype(qtype)) break;
      // Off-path race: wrong transaction id, bogus address, sent with zero
      // extra delay so it reaches the client ahead of the real answer. A
      // compliant resolver/client drops it on the id mismatch.
      DnsMessage spoof = response;
      spoof.header.id ^= static_cast<std::uint16_t>(1 + rng.next() % 0xffff);
      spoof.answers.clear();
      spoof.authorities.clear();
      spoof.additionals.clear();
      const dns::DnsName& qname = query.questions.front().name;
      if (qtype == RrType::kA) {
        spoof.answers.push_back(dns::ResourceRecord::a(
            qname, simnet::IpAddress::must_parse("192.0.2.66").v4()));
      } else {
        spoof.answers.push_back(dns::ResourceRecord::aaaa(
            qname, simnet::IpAddress::must_parse("2001:db8:bad::66").v6()));
      }
      out.extra.push_back({spoof.encode(), SimTime{0}});
      break;
    }
    case FaultKind::kDnsReorder:
      // Hold the targeted family's answer back past the spike so the other
      // family's answer overtakes it, and scramble in-message record order.
      if (targeted) {
        delay = delay + plan.spike;
        std::reverse(response.answers.begin(), response.answers.end());
      }
      break;
    case FaultKind::kDnsStarveFamily:
      if (targeted) response.answers.clear();  // NODATA-like starvation
      break;
    case FaultKind::kDnsDelaySpike:
      if (targeted) delay = delay + plan.spike;
      break;
    default:
      break;
  }
}

AcceptAction fault_accept_action(const FaultPlan& plan,
                                 const simnet::Endpoint& peer) {
  if (peer.addr.family() != plan.target_family) return AcceptAction::kAccept;
  switch (plan.kind) {
    case FaultKind::kTcpReset: return AcceptAction::kReset;
    case FaultKind::kTcpAcceptReset: return AcceptAction::kAcceptThenReset;
    case FaultKind::kTcpBlackhole:
    case FaultKind::kQuicDrop: return AcceptAction::kDrop;
    default: return AcceptAction::kAccept;
  }
}

dns::ResponseInterposer FaultInjector::dns_hook() {
  return [this](const DnsMessage& query, DnsMessage& response, SimTime& delay,
                dns::ResponseDirectives& out) {
    apply_dns_fault(plan_, rng_, query, response, delay, out);
  };
}

void FaultInjector::attach(dns::AuthServer& server) {
  if (dns_fault_kind(plan_.kind)) server.set_response_interposer(dns_hook());
}

void FaultInjector::attach(dns::RecursiveResolver& resolver) {
  if (dns_fault_kind(plan_.kind)) {
    resolver.set_response_interposer(dns_hook());
  }
}

void FaultInjector::attach(transport::TcpStack& tcp) {
  if (!tcp_fault_kind(plan_.kind)) return;
  tcp.set_accept_interposer(
      [this](const simnet::Endpoint& peer, std::uint16_t) {
        return fault_accept_action(plan_, peer);
      });
}

void FaultInjector::attach(transport::QuicStack& quic) {
  if (plan_.kind != FaultKind::kQuicDrop) return;
  quic.set_accept_interposer(
      [this](const simnet::Endpoint& peer, std::uint16_t) {
        return fault_accept_action(plan_, peer);
      });
}

}  // namespace lazyeye::conformance
