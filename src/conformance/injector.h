// FaultInjector: maps a seeded FaultPlan onto the interposing hooks the
// dns/ and transport/ layers expose (ResponseInterposer, AcceptInterposer).
//
// The injector owns the plan's mutation RNG; attached hooks capture `this`,
// so the injector must outlive the stacks it attaches to (in practice: it
// lives next to the Testbed/world for the cell's whole run). Hooks are only
// installed for the layers the plan's kind actually touches — every other
// layer keeps its null hook and stays on the zero-cost fast path.
#pragma once

#include "conformance/fault.h"
#include "dns/auth_server.h"
#include "dns/recursive_resolver.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace lazyeye::conformance {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.rng_seed()) {}

  const FaultPlan& plan() const { return plan_; }

  /// Install hooks on the layers this plan's kind targets. No-ops (leaving
  /// the stack's hook unset) when the kind lives elsewhere.
  void attach(dns::AuthServer& server);
  void attach(dns::RecursiveResolver& resolver);
  void attach(transport::TcpStack& tcp);
  void attach(transport::QuicStack& quic);

 private:
  bool dns_kind() const;
  bool tcp_kind() const;
  dns::ResponseInterposer dns_hook();
  void on_dns_response(const dns::DnsMessage& query,
                       dns::DnsMessage& response, SimTime& delay,
                       dns::ResponseDirectives& out);
  transport::AcceptAction on_accept(const simnet::Endpoint& peer) const;

  FaultPlan plan_;
  SplitMix64 rng_;
};

}  // namespace lazyeye::conformance
