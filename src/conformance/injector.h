// FaultInjector: maps a seeded FaultPlan onto the interposing hooks the
// dns/ and transport/ layers expose (ResponseInterposer, AcceptInterposer).
//
// The injector owns the plan's mutation RNG; attached hooks capture `this`,
// so the injector must outlive the stacks it attaches to (in practice: it
// lives next to the Testbed/world for the cell's whole run). Hooks are only
// installed for the layers the plan's kind actually touches — every other
// layer keeps its null hook and stays on the zero-cost fast path.
//
// The per-kind fault semantics live in free functions (apply_dns_fault,
// fault_accept_action) so the compound-schedule injector (schedule.h) can
// multiplex several plans through one hook without duplicating them.
#pragma once

#include "conformance/fault.h"
#include "dns/auth_server.h"
#include "dns/recursive_resolver.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "util/rng.h"

namespace lazyeye::conformance {

/// Kind classification: which layer's hook a plan needs.
bool dns_fault_kind(FaultKind kind);
bool tcp_fault_kind(FaultKind kind);

/// Applies `plan`'s DNS-side fault to one outgoing response (message edits,
/// delay stretch, wire mutation, extra spoof datagrams). `rng` is the plan's
/// mutation stream; the mutate_wire closure it may install captures `rng` by
/// reference, so the generator must outlive the directives' execution.
/// No-op for non-DNS kinds. Overwrites out.mutate_wire when it installs one
/// — multiplexing callers chain the previous closure themselves.
void apply_dns_fault(const FaultPlan& plan, SplitMix64& rng,
                     const dns::DnsMessage& query, dns::DnsMessage& response,
                     SimTime& delay, dns::ResponseDirectives& out);

/// What `plan` does to an inbound handshake from `peer`: kReset/kDrop/
/// kAcceptThenReset for the transport kinds when the peer matches the
/// target family, kAccept otherwise (including all non-transport kinds).
transport::AcceptAction fault_accept_action(const FaultPlan& plan,
                                            const simnet::Endpoint& peer);

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.rng_seed()) {}

  const FaultPlan& plan() const { return plan_; }

  /// Install hooks on the layers this plan's kind targets. No-ops (leaving
  /// the stack's hook unset) when the kind lives elsewhere.
  void attach(dns::AuthServer& server);
  void attach(dns::RecursiveResolver& resolver);
  void attach(transport::TcpStack& tcp);
  void attach(transport::QuicStack& quic);

 private:
  dns::ResponseInterposer dns_hook();

  FaultPlan plan_;
  SplitMix64 rng_;
};

}  // namespace lazyeye::conformance
