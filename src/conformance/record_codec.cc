#include "conformance/record_codec.h"

#include <cstddef>

namespace lazyeye::conformance {

namespace {

// Big-endian primitives over std::string, mirroring util/bytes.h (which is
// vector<uint8_t>-based; journal payloads travel as strings).

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (!ok || data.size() - pos < 1) {
      ok = false;
      return 0;
    }
    return static_cast<unsigned char>(data[pos++]);
  }

  std::uint32_t u32() {
    if (!ok || data.size() - pos < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<unsigned char>(data[pos++]);
    }
    return v;
  }

  std::uint64_t u64() {
    if (!ok || data.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | static_cast<unsigned char>(data[pos++]);
    }
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (!ok || data.size() - pos < len) {
      ok = false;
      return {};
    }
    std::string out{data.substr(pos, len)};
    pos += len;
    return out;
  }
};

}  // namespace

void encode_record(const ConformanceRecord& record, std::string& out) {
  put_str(out, record.client);
  put_u8(out, static_cast<std::uint8_t>(record.fault.kind));
  put_u64(out, record.fault.seed);
  put_u32(out, record.fault.stream);
  put_u32(out, record.fault.index);
  put_u8(out, static_cast<std::uint8_t>(record.fault.target_family));
  put_u64(out, static_cast<std::uint64_t>(record.fault.spike.count()));
  put_u32(out, static_cast<std::uint32_t>(record.fetches));
  put_u8(out, record.fetch_ok ? 1 : 0);
  put_u8(out, record.first_fetch_ok ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(record.verdicts.size()));
  for (const Verdict& verdict : record.verdicts) {
    put_str(out, verdict.rule);
    put_u8(out, static_cast<std::uint8_t>(verdict.outcome));
    put_str(out, verdict.evidence);
  }
}

std::optional<ConformanceRecord> decode_record(std::string_view bytes) {
  Reader in{bytes};
  ConformanceRecord record;
  record.client = in.str();
  const std::uint8_t kind = in.u8();
  if (kind >= kFaultKindCount) return std::nullopt;
  record.fault.kind = static_cast<FaultKind>(kind);
  record.fault.seed = in.u64();
  record.fault.stream = in.u32();
  record.fault.index = in.u32();
  const std::uint8_t family = in.u8();
  if (family > static_cast<std::uint8_t>(simnet::Family::kIpv6)) {
    return std::nullopt;
  }
  record.fault.target_family = static_cast<simnet::Family>(family);
  record.fault.spike = SimTime{static_cast<std::int64_t>(in.u64())};
  record.fetches = static_cast<int>(in.u32());
  record.fetch_ok = in.u8() != 0;
  record.first_fetch_ok = in.u8() != 0;
  const std::uint32_t verdict_count = in.u32();
  if (!in.ok || verdict_count > 1024) return std::nullopt;
  record.verdicts.reserve(verdict_count);
  for (std::uint32_t i = 0; i < verdict_count; ++i) {
    Verdict verdict;
    verdict.rule = in.str();
    const std::uint8_t outcome = in.u8();
    if (outcome > static_cast<std::uint8_t>(RuleOutcome::kInapplicable)) {
      return std::nullopt;
    }
    verdict.outcome = static_cast<RuleOutcome>(outcome);
    verdict.evidence = in.str();
    record.verdicts.push_back(std::move(verdict));
  }
  if (!in.ok || in.pos != bytes.size()) return std::nullopt;
  return record;
}

}  // namespace lazyeye::conformance
