#include "conformance/record_codec.h"

#include <cstddef>

#include "conformance/wire.h"

namespace lazyeye::conformance {

void encode_record(const ConformanceRecord& record, std::string& out) {
  wire::put_str(out, record.client);
  wire::put_u8(out, static_cast<std::uint8_t>(record.fault.kind));
  wire::put_u64(out, record.fault.seed);
  wire::put_u32(out, record.fault.stream);
  wire::put_u32(out, record.fault.index);
  wire::put_u8(out, static_cast<std::uint8_t>(record.fault.target_family));
  wire::put_u64(out, static_cast<std::uint64_t>(record.fault.spike.count()));
  // Compound-schedule cells carry the schedule inline (length-prefixed so
  // the record decoder can delegate to the schedule codec).
  if (record.schedule) {
    wire::put_u8(out, 1);
    wire::put_str(out, encode_schedule(*record.schedule));
  } else {
    wire::put_u8(out, 0);
  }
  wire::put_u32(out, static_cast<std::uint32_t>(record.fetches));
  wire::put_u8(out, record.fetch_ok ? 1 : 0);
  wire::put_u8(out, record.first_fetch_ok ? 1 : 0);
  wire::put_u32(out, static_cast<std::uint32_t>(record.verdicts.size()));
  for (const Verdict& verdict : record.verdicts) {
    wire::put_str(out, verdict.rule);
    wire::put_u8(out, static_cast<std::uint8_t>(verdict.outcome));
    wire::put_str(out, verdict.evidence);
  }
}

std::optional<ConformanceRecord> decode_record(std::string_view bytes) {
  wire::Reader in{bytes};
  ConformanceRecord record;
  record.client = in.str();
  const std::uint8_t kind = in.u8();
  if (kind >= kFaultKindCount) return std::nullopt;
  record.fault.kind = static_cast<FaultKind>(kind);
  record.fault.seed = in.u64();
  record.fault.stream = in.u32();
  record.fault.index = in.u32();
  const std::uint8_t family = in.u8();
  if (family > static_cast<std::uint8_t>(simnet::Family::kIpv6)) {
    return std::nullopt;
  }
  record.fault.target_family = static_cast<simnet::Family>(family);
  record.fault.spike = SimTime{static_cast<std::int64_t>(in.u64())};
  const std::uint8_t has_schedule = in.u8();
  if (has_schedule > 1) return std::nullopt;
  if (has_schedule == 1) {
    auto schedule = decode_schedule(in.str());
    if (!schedule) return std::nullopt;
    record.schedule = std::move(*schedule);
  }
  record.fetches = static_cast<int>(in.u32());
  record.fetch_ok = in.u8() != 0;
  record.first_fetch_ok = in.u8() != 0;
  const std::uint32_t verdict_count = in.u32();
  if (!in.ok || verdict_count > 1024) return std::nullopt;
  record.verdicts.reserve(verdict_count);
  for (std::uint32_t i = 0; i < verdict_count; ++i) {
    Verdict verdict;
    verdict.rule = in.str();
    const std::uint8_t outcome = in.u8();
    if (outcome > static_cast<std::uint8_t>(RuleOutcome::kInapplicable)) {
      return std::nullopt;
    }
    verdict.outcome = static_cast<RuleOutcome>(outcome);
    verdict.evidence = in.str();
    record.verdicts.push_back(std::move(verdict));
  }
  if (!in.exhausted()) return std::nullopt;
  return record;
}

}  // namespace lazyeye::conformance
