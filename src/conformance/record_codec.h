// Wire codec for ConformanceRecord — the journal payload of crash-safe
// conformance campaigns (campaign/journal_sink.h) and the unit the sharded
// driver's merge step decodes back into verdict tables.
//
// Big-endian framing via util::ByteWriter/ByteReader like the DNS codec.
// encode() is a pure function of the record, so two shards (or a crashed
// run and its resume) that executed the same cell produce byte-identical
// journal records — the property the kill-and-resume harness compares.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "conformance/checker.h"

namespace lazyeye::conformance {

/// Serialises `record` (appends to `out`).
void encode_record(const ConformanceRecord& record, std::string& out);

inline std::string encode_record(const ConformanceRecord& record) {
  std::string out;
  encode_record(record, out);
  return out;
}

/// Inverse of encode_record; nullopt on malformed or trailing bytes.
std::optional<ConformanceRecord> decode_record(std::string_view bytes);

}  // namespace lazyeye::conformance
