#include "conformance/rules.h"

#include <algorithm>

#include "he/options.h"
#include "util/strings.h"

namespace lazyeye::conformance {

using simnet::Family;

const char* rule_outcome_name(RuleOutcome outcome) {
  switch (outcome) {
    case RuleOutcome::kPass: return "pass";
    case RuleOutcome::kViolate: return "violate";
    case RuleOutcome::kInapplicable: return "n/a";
  }
  return "?";
}

char rule_outcome_symbol(RuleOutcome outcome) {
  switch (outcome) {
    case RuleOutcome::kPass: return 'P';
    case RuleOutcome::kViolate: return 'V';
    case RuleOutcome::kInapplicable: return '-';
  }
  return '?';
}

namespace {

/// RFC 8305 reference parameters (Table 1 preset) the rules measure against.
const he::HeOptions& reference() {
  static const he::HeOptions ref = he::HeOptions::rfc8305();
  return ref;
}

/// Attempts started at or before establishment (all of them when the run
/// never established) — the window the connection-phase clauses constrain.
std::vector<const capture::ConnectionAttempt*> pre_establishment(
    const RuleContext& ctx) {
  std::vector<const capture::ConnectionAttempt*> out;
  for (const auto& attempt : ctx.attempts) {
    if (ctx.established_time && attempt.first_syn > *ctx.established_time) {
      continue;
    }
    out.push_back(&attempt);
  }
  return out;
}

Verdict eval_resolution_delay(const RuleContext& ctx) {
  Verdict v{"resolution-delay", RuleOutcome::kInapplicable, ""};
  const SimTime ref_rd = *reference().resolution_delay;
  if (!ctx.first_a_response || !ctx.first_v4_syn) {
    v.evidence = "needs an A answer followed by a v4 attempt";
    return v;
  }
  if (ctx.first_aaaa_response &&
      *ctx.first_aaaa_response <= *ctx.first_a_response) {
    v.evidence = "AAAA answered no later than A";
    return v;
  }
  if (*ctx.first_v4_syn < *ctx.first_a_response) {
    v.evidence = "v4 attempt predates the A answer";
    return v;
  }
  if (ctx.first_aaaa_response &&
      *ctx.first_v4_syn >= *ctx.first_aaaa_response) {
    v.outcome = RuleOutcome::kPass;
    v.evidence = "v4 attempt waited out the AAAA answer";
    return v;
  }
  const SimTime waited = *ctx.first_v4_syn - *ctx.first_a_response;
  if (waited < ref_rd) {
    v.outcome = RuleOutcome::kViolate;
    v.evidence = lazyeye::str_format(
        "connected v4 %s after the A answer with AAAA outstanding (RD >= %s)",
        format_duration(waited).c_str(), format_duration(ref_rd).c_str());
  } else {
    v.outcome = RuleOutcome::kPass;
    v.evidence = lazyeye::str_format("waited %s (>= %s) for AAAA",
                                     format_duration(waited).c_str(),
                                     format_duration(ref_rd).c_str());
  }
  return v;
}

Verdict eval_attempt_spacing(const RuleContext& ctx) {
  Verdict v{"attempt-spacing", RuleOutcome::kInapplicable, ""};
  const he::DynamicCad& bounds = reference().dynamic_cad;
  const auto attempts = pre_establishment(ctx);
  if (attempts.size() < 2) {
    v.evidence = "fewer than two attempts";
    return v;
  }
  std::size_t gaps = 0;
  for (std::size_t i = 1; i < attempts.size(); ++i) {
    // RFC 8305 §5 allows the next attempt to begin immediately once the
    // previous one failed; only pace attempts racing a still-pending one.
    if (attempts[i - 1]->refused) continue;
    ++gaps;
    const SimTime gap = attempts[i]->first_syn - attempts[i - 1]->first_syn;
    if (gap < bounds.minimum) {
      v.outcome = RuleOutcome::kViolate;
      v.evidence = lazyeye::str_format(
          "attempts %zu and %zu spaced %s (< %s minimum CAD)", i - 1, i,
          format_duration(gap).c_str(),
          format_duration(bounds.minimum).c_str());
      return v;
    }
    if (gap > bounds.maximum) {
      v.outcome = RuleOutcome::kViolate;
      v.evidence = lazyeye::str_format(
          "attempts %zu and %zu spaced %s (> %s maximum CAD)", i - 1, i,
          format_duration(gap).c_str(),
          format_duration(bounds.maximum).c_str());
      return v;
    }
  }
  if (gaps == 0) {
    v.evidence = "all successive attempts followed failed ones";
    return v;
  }
  v.outcome = RuleOutcome::kPass;
  v.evidence = lazyeye::str_format(
      "%zu racing gap(s) within [%s, %s]", gaps,
      format_duration(bounds.minimum).c_str(),
      format_duration(bounds.maximum).c_str());
  return v;
}

Verdict eval_family_interleave(const RuleContext& ctx) {
  Verdict v{"family-interleave", RuleOutcome::kInapplicable, ""};
  if (ctx.v4_candidates == 0 || ctx.v6_candidates == 0) {
    v.evidence = "single-family candidate set";
    return v;
  }
  const auto attempts = pre_establishment(ctx);
  if (attempts.size() < 2) {
    v.evidence = "fewer than two attempts";
    return v;
  }
  const auto fafc =
      static_cast<std::size_t>(reference().first_address_family_count);
  // Distinct addresses of `family` attempted before index `end`.
  auto distinct_before = [&](Family family, std::size_t end) {
    std::vector<simnet::IpAddress> seen;
    for (std::size_t j = 0; j < end; ++j) {
      if (attempts[j]->family() != family) continue;
      if (std::find(seen.begin(), seen.end(), attempts[j]->remote.addr) ==
          seen.end()) {
        seen.push_back(attempts[j]->remote.addr);
      }
    }
    return static_cast<int>(seen.size());
  };
  for (std::size_t i = std::max<std::size_t>(1, fafc); i < attempts.size();
       ++i) {
    const Family family = attempts[i]->family();
    if (attempts[i - 1]->family() != family) continue;
    const Family other =
        family == Family::kIpv4 ? Family::kIpv6 : Family::kIpv4;
    const int other_total =
        other == Family::kIpv4 ? ctx.v4_candidates : ctx.v6_candidates;
    if (distinct_before(other, i) < other_total) {
      v.outcome = RuleOutcome::kViolate;
      v.evidence = lazyeye::str_format(
          "attempts %zu and %zu both %s while %s addresses were untried",
          i - 1, i, simnet::family_name(family), simnet::family_name(other));
      return v;
    }
  }
  v.outcome = RuleOutcome::kPass;
  v.evidence = lazyeye::str_format("%zu attempts interleaved by family",
                                   attempts.size());
  return v;
}

Verdict eval_losing_family(const RuleContext& ctx) {
  Verdict v{"losing-family", RuleOutcome::kInapplicable, ""};
  bool a_answered = false;
  bool aaaa_answered = false;
  for (const auto& ex : ctx.dns) {
    if (!ex.response_time || ex.answer_count == 0) continue;
    if (ex.qtype == dns::RrType::kA) a_answered = true;
    if (ex.qtype == dns::RrType::kAaaa) aaaa_answered = true;
  }
  if (!a_answered || !aaaa_answered) {
    v.evidence = "needs resolved addresses for both families";
    return v;
  }
  if (ctx.established) {
    v.evidence = "connection established, no abandonment situation";
    return v;
  }
  bool tried_v4 = false;
  bool tried_v6 = false;
  for (const auto& attempt : ctx.attempts) {
    (attempt.family() == Family::kIpv4 ? tried_v4 : tried_v6) = true;
  }
  if (tried_v4 && tried_v6) {
    v.outcome = RuleOutcome::kPass;
    v.evidence = "both families attempted before giving up";
    return v;
  }
  const char* tried = tried_v6 ? "IPv6" : "IPv4";
  const char* abandoned = tried_v6 ? "IPv4" : "IPv6";
  v.outcome = RuleOutcome::kViolate;
  v.evidence = lazyeye::str_format(
      "failed with only %s attempted; %s never tried despite resolved "
      "addresses",
      tried, abandoned);
  return v;
}

Verdict eval_restart_cache(const RuleContext& ctx) {
  Verdict v{"restart-cache", RuleOutcome::kInapplicable, ""};
  if (ctx.fetches < 2) {
    v.evidence = "single-fetch cell";
    return v;
  }
  if (!ctx.first_fetch_ok) {
    v.evidence = "first fetch failed, nothing to cache";
    return v;
  }
  int requeries = 0;
  for (const auto& ex : ctx.dns) {
    if (ex.qtype != dns::RrType::kA && ex.qtype != dns::RrType::kAaaa) {
      continue;
    }
    if (ex.query_time >= ctx.first_fetch_completed) ++requeries;
  }
  if (requeries == 0) {
    v.outcome = RuleOutcome::kPass;
    v.evidence = "restart reused the session's cached winner (no re-query)";
  } else {
    v.outcome = RuleOutcome::kViolate;
    v.evidence = lazyeye::str_format(
        "%d DNS queries after the first fetch completed within the cache TTL",
        requeries);
  }
  return v;
}

Verdict eval_abort_on_winner(const RuleContext& ctx) {
  Verdict v{"abort-on-winner", RuleOutcome::kInapplicable, ""};
  if (!ctx.established_time) {
    v.evidence = "no connection ever won";
    return v;
  }
  if (ctx.attempts.size() < 2) {
    v.evidence = "no pending attempt beside the winner";
    return v;
  }
  const SimTime won = *ctx.established_time;
  // RFC 8305 s5: once one attempt succeeds, every other pending attempt
  // must be cancelled. Cancellation is observable as silence: a client that
  // keeps an attempt alive re-transmits its SYN (or opens a brand-new
  // attempt) after the winner's handshake completed.
  for (std::size_t i = 0; i < ctx.attempts.size(); ++i) {
    const auto& attempt = ctx.attempts[i];
    if (attempt.established) continue;  // the winner itself
    if (attempt.first_syn > won) {
      v.outcome = RuleOutcome::kViolate;
      v.evidence = lazyeye::str_format(
          "attempt %zu (%s) started %s after a connection was established",
          i, simnet::family_name(attempt.family()),
          format_duration(attempt.first_syn - won).c_str());
      return v;
    }
    if (attempt.last_syn > won) {
      v.outcome = RuleOutcome::kViolate;
      v.evidence = lazyeye::str_format(
          "attempt %zu (%s) still retransmitting %s after the winner "
          "established (never aborted)",
          i, simnet::family_name(attempt.family()),
          format_duration(attempt.last_syn - won).c_str());
      return v;
    }
  }
  v.outcome = RuleOutcome::kPass;
  v.evidence = "all pending attempts went silent once a connection won";
  return v;
}

}  // namespace

const std::vector<Rule>& rfc8305_rules() {
  static const std::vector<Rule> rules{
      {"resolution-delay", "RFC 8305 s3", &eval_resolution_delay},
      {"attempt-spacing", "RFC 8305 s5", &eval_attempt_spacing},
      {"family-interleave", "RFC 8305 s4", &eval_family_interleave},
      {"losing-family", "RFC 8305 s6", &eval_losing_family},
      {"restart-cache", "RFC 6555 s4.1", &eval_restart_cache},
      {"abort-on-winner", "RFC 8305 s5", &eval_abort_on_winner},
  };
  return rules;
}

std::vector<Verdict> evaluate_rules(const RuleContext& ctx) {
  std::vector<Verdict> out;
  out.reserve(rfc8305_rules().size());
  for (const Rule& rule : rfc8305_rules()) {
    out.push_back(rule.evaluate(ctx));
  }
  return out;
}

}  // namespace lazyeye::conformance
