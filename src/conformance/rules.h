// Machine-checkable RFC 8305 rules over capture-derived evidence.
//
// Each rule maps black-box packet-capture evidence (capture/analysis.h) plus
// a few scenario facts to a Verdict: pass, violate, or inapplicable (the run
// never put the client in the situation the clause constrains). Reference
// values come from the he::HeOptions RFC 8305 preset (Table 1), NOT from the
// client profile under test — the checker measures distance from the RFC,
// not from the client's own configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capture/analysis.h"
#include "simnet/ip.h"
#include "util/time.h"

namespace lazyeye::conformance {

enum class RuleOutcome : std::uint8_t { kPass, kViolate, kInapplicable };

const char* rule_outcome_name(RuleOutcome outcome);  // "pass"/"violate"/"n/a"
char rule_outcome_symbol(RuleOutcome outcome);       // 'P' / 'V' / '-'

struct Verdict {
  std::string rule;
  RuleOutcome outcome = RuleOutcome::kInapplicable;
  std::string evidence;
};

/// Everything a rule may look at, extracted once per cell (checker.cc fills
/// it from the scenario facts and the client-side capture).
struct RuleContext {
  // Scenario facts.
  int fetches = 1;
  bool first_fetch_ok = false;
  SimTime first_fetch_completed{0};
  int v4_candidates = 0;  // addresses per family the zone advertised
  int v6_candidates = 0;

  // Capture evidence.
  std::vector<capture::DnsExchange> dns;
  std::vector<capture::ConnectionAttempt> attempts;
  std::optional<simnet::Family> established;
  std::optional<SimTime> established_time;
  std::optional<SimTime> first_a_response;
  std::optional<SimTime> first_aaaa_response;
  std::optional<SimTime> first_v4_syn;
  std::optional<SimTime> first_v6_syn;
};

struct Rule {
  const char* name;    // short id, e.g. "resolution-delay"
  const char* clause;  // the clause it checks, e.g. "RFC 8305 §3"
  Verdict (*evaluate)(const RuleContext&);
};

/// The checker's rule set, in fixed table order (stable across runs):
/// resolution-delay, attempt-spacing, family-interleave, losing-family,
/// restart-cache, abort-on-winner.
const std::vector<Rule>& rfc8305_rules();

/// Runs every rule; verdicts come back in rule-table order.
std::vector<Verdict> evaluate_rules(const RuleContext& ctx);

}  // namespace lazyeye::conformance
