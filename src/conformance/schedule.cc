#include "conformance/schedule.h"

#include <utility>

#include "conformance/injector.h"
#include "conformance/wire.h"
#include "dns/auth_server.h"
#include "dns/recursive_resolver.h"
#include "simnet/event_loop.h"
#include "transport/quic.h"
#include "transport/tcp.h"
#include "util/strings.h"

namespace lazyeye::conformance {

using transport::AcceptAction;

const char* trigger_kind_name(TriggerKind trigger) {
  static_assert(kTriggerKindCount == 4,
                "new trigger kind: extend the name table and the injector");
  switch (trigger) {
    case TriggerKind::kNone: return "none";
    case TriggerKind::kAfterFirstDnsQuery: return "after-first-dns-query";
    case TriggerKind::kAfterFirstDnsResponse: return "after-first-dns-response";
    case TriggerKind::kAfterFirstSyn: return "after-first-syn";
  }
  return "?";  // unreachable for in-range values
}

std::uint64_t FaultSchedule::rng_seed() const {
  // Triple fold like FaultPlan::rng_seed (distinct tag so a schedule and a
  // plan sharing a triple never collide), then the entry content folded in:
  // a mutant that retimes one window runs a different world than its parent
  // while staying a pure function of its own value.
  SplitMix64 mix{seed ^ ((std::uint64_t{stream} + 1) * 0x9e3779b97f4a7c15ULL) ^
                 ((std::uint64_t{index} + 1) * 0xd6e8feb86659fd93ULL) ^
                 0x5343484544554c45ULL};  // "SCHEDULE"
  std::uint64_t acc = mix.next();
  for (const TimedFault& entry : entries) {
    SplitMix64 fold{acc ^ entry.plan.rng_seed() ^
                    (static_cast<std::uint64_t>(entry.start.count()) *
                     0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(entry.duration.count()) + 1) ^
                    (static_cast<std::uint64_t>(entry.trigger) << 48)};
    acc = fold.next();
  }
  return acc;
}

std::string FaultSchedule::repro() const {
  return lazyeye::str_format(
      "schedule seed=%llu stream=%u index=%u entries=%zu",
      static_cast<unsigned long long>(seed), static_cast<unsigned>(stream),
      static_cast<unsigned>(index), entries.size());
}

SimTime sample_window_start(SplitMix64& rng) {
  const std::uint64_t r = rng.next() % 8;
  if (r < 4) return SimTime{0};
  if (r < 6) return lazyeye::ms(static_cast<std::int64_t>(rng.next() % 50));
  return lazyeye::ms(static_cast<std::int64_t>(rng.next() % 301));
}

SimTime sample_window_duration(SplitMix64& rng) {
  return (rng.next() % 4 == 0)
             ? SimTime{0}  // open window
             : lazyeye::ms(25 + static_cast<std::int64_t>(rng.next() % 476));
}

FaultSchedule FaultSchedule::generate(std::uint64_t seed, std::uint32_t stream,
                                      std::uint32_t index) {
  FaultSchedule s;
  s.seed = seed;
  s.stream = stream;
  s.index = index;
  // Distinct fold tag from rng_seed(): the generator stream is independent
  // of the world seed the generated schedule will run under.
  SplitMix64 mix{seed ^ ((std::uint64_t{stream} + 1) * 0xd6e8feb86659fd93ULL) ^
                 ((std::uint64_t{index} + 1) * 0x9e3779b97f4a7c15ULL) ^
                 0x67656e5343484544ULL};  // "genSCHED"
  const int count = 1 + static_cast<int>(mix.next() % 3);
  s.entries.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    TimedFault tf;
    // Any injecting kind (kNone excluded — a no-op entry wastes a slot).
    tf.plan.kind =
        static_cast<FaultKind>(1 + mix.next() % (kFaultKindCount - 1));
    tf.plan.seed = seed;
    tf.plan.stream = stream;
    // 16 slots per schedule keeps entry mutation streams collision-free
    // across a campaign's schedules (search.cc mutations stay below 16
    // entries by construction).
    tf.plan.index = index * 16 + static_cast<std::uint32_t>(i);
    tf.plan.target_family = (mix.next() & 1) != 0 ? simnet::Family::kIpv6
                                                  : simnet::Family::kIpv4;
    tf.plan.spike = lazyeye::ms(50 + static_cast<std::int64_t>(mix.next() % 351));
    tf.trigger = static_cast<TriggerKind>(mix.next() % kTriggerKindCount);
    tf.start = sample_window_start(mix);
    tf.duration = sample_window_duration(mix);
    s.entries.push_back(tf);
  }
  return s;
}

// ---- Codec ----------------------------------------------------------------

namespace {

/// Sanity cap: no legitimate schedule (generator: <=3 entries, search
/// mutations: <16) comes anywhere near it; a decoded count above it means
/// corrupt bytes, not a big schedule.
constexpr std::uint32_t kMaxScheduleEntries = 64;

}  // namespace

void encode_schedule(const FaultSchedule& schedule, std::string& out) {
  wire::put_u64(out, schedule.seed);
  wire::put_u32(out, schedule.stream);
  wire::put_u32(out, schedule.index);
  wire::put_u32(out, static_cast<std::uint32_t>(schedule.entries.size()));
  for (const TimedFault& entry : schedule.entries) {
    wire::put_u8(out, static_cast<std::uint8_t>(entry.plan.kind));
    wire::put_u64(out, entry.plan.seed);
    wire::put_u32(out, entry.plan.stream);
    wire::put_u32(out, entry.plan.index);
    wire::put_u8(out, static_cast<std::uint8_t>(entry.plan.target_family));
    wire::put_u64(out, static_cast<std::uint64_t>(entry.plan.spike.count()));
    wire::put_u64(out, static_cast<std::uint64_t>(entry.start.count()));
    wire::put_u64(out, static_cast<std::uint64_t>(entry.duration.count()));
    wire::put_u8(out, static_cast<std::uint8_t>(entry.trigger));
  }
}

std::optional<FaultSchedule> decode_schedule(std::string_view bytes) {
  wire::Reader in{bytes};
  FaultSchedule s;
  s.seed = in.u64();
  s.stream = in.u32();
  s.index = in.u32();
  const std::uint32_t count = in.u32();
  if (!in.ok || count > kMaxScheduleEntries) return std::nullopt;
  s.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TimedFault entry;
    const std::uint8_t kind = in.u8();
    if (kind >= kFaultKindCount) return std::nullopt;
    entry.plan.kind = static_cast<FaultKind>(kind);
    entry.plan.seed = in.u64();
    entry.plan.stream = in.u32();
    entry.plan.index = in.u32();
    const std::uint8_t family = in.u8();
    if (family > static_cast<std::uint8_t>(simnet::Family::kIpv6)) {
      return std::nullopt;
    }
    entry.plan.target_family = static_cast<simnet::Family>(family);
    entry.plan.spike = SimTime{static_cast<std::int64_t>(in.u64())};
    entry.start = SimTime{static_cast<std::int64_t>(in.u64())};
    entry.duration = SimTime{static_cast<std::int64_t>(in.u64())};
    const std::uint8_t trigger = in.u8();
    if (trigger >= kTriggerKindCount) return std::nullopt;
    entry.trigger = static_cast<TriggerKind>(trigger);
    if (entry.start < SimTime{0}) return std::nullopt;
    s.entries.push_back(entry);
  }
  if (!in.exhausted()) return std::nullopt;
  return s;
}

std::string schedule_to_hex(const FaultSchedule& schedule) {
  static const char kDigits[] = "0123456789abcdef";
  const std::string raw = encode_schedule(schedule);
  std::string hex;
  hex.reserve(raw.size() * 2);
  for (const char c : raw) {
    const auto b = static_cast<unsigned char>(c);
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xF]);
  }
  return hex;
}

std::optional<FaultSchedule> schedule_from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string raw;
  raw.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    raw.push_back(static_cast<char>((hi << 4) | lo));
  }
  return decode_schedule(raw);
}

// ---- ScheduleInjector -----------------------------------------------------

ScheduleInjector::ScheduleInjector(FaultSchedule schedule,
                                   const simnet::EventLoop& loop)
    : schedule_{std::move(schedule)}, loop_{&loop} {
  rngs_.reserve(schedule_.entries.size());
  for (const TimedFault& entry : schedule_.entries) {
    rngs_.emplace_back(entry.plan.rng_seed());
  }
}

bool ScheduleInjector::needs_dns_hook() const {
  for (const TimedFault& entry : schedule_.entries) {
    if (dns_fault_kind(entry.plan.kind)) return true;
    // DNS-side triggers are observed from the same hook even when every
    // fault in the schedule lives elsewhere.
    if (entry.trigger == TriggerKind::kAfterFirstDnsQuery ||
        entry.trigger == TriggerKind::kAfterFirstDnsResponse) {
      return true;
    }
  }
  return false;
}

bool ScheduleInjector::needs_tcp_hook() const {
  for (const TimedFault& entry : schedule_.entries) {
    if (tcp_fault_kind(entry.plan.kind)) return true;
    if (entry.trigger == TriggerKind::kAfterFirstSyn) return true;
  }
  return false;
}

bool ScheduleInjector::needs_quic_hook() const {
  for (const TimedFault& entry : schedule_.entries) {
    if (entry.plan.kind == FaultKind::kQuicDrop) return true;
  }
  return false;
}

void ScheduleInjector::attach(dns::AuthServer& server) {
  if (!needs_dns_hook()) return;
  server.set_response_interposer(
      [this](const dns::DnsMessage& query, dns::DnsMessage& response,
             SimTime& delay, dns::ResponseDirectives& out) {
        on_dns_response(query, response, delay, out);
      });
}

void ScheduleInjector::attach(dns::RecursiveResolver& resolver) {
  if (!needs_dns_hook()) return;
  resolver.set_response_interposer(
      [this](const dns::DnsMessage& query, dns::DnsMessage& response,
             SimTime& delay, dns::ResponseDirectives& out) {
        on_dns_response(query, response, delay, out);
      });
}

void ScheduleInjector::attach(transport::TcpStack& tcp) {
  if (!needs_tcp_hook()) return;
  tcp.set_accept_interposer(
      [this](const simnet::Endpoint& peer, std::uint16_t) {
        return on_accept(/*quic=*/false, peer);
      });
}

void ScheduleInjector::attach(transport::QuicStack& quic) {
  if (!needs_quic_hook()) return;
  quic.set_accept_interposer(
      [this](const simnet::Endpoint& peer, std::uint16_t) {
        return on_accept(/*quic=*/true, peer);
      });
}

bool ScheduleInjector::entry_active(std::size_t i) const {
  const TimedFault& entry = schedule_.entries[i];
  std::optional<SimTime> anchor;
  switch (entry.trigger) {
    case TriggerKind::kNone: anchor = SimTime{0}; break;
    case TriggerKind::kAfterFirstDnsQuery: anchor = first_dns_query_; break;
    case TriggerKind::kAfterFirstDnsResponse:
      anchor = first_dns_response_;
      break;
    case TriggerKind::kAfterFirstSyn: anchor = first_syn_; break;
  }
  if (!anchor) return false;  // trigger never fired (yet)
  const SimTime now = loop_->now();
  if (now < *anchor + entry.start) return false;
  if (entry.duration > SimTime{0} &&
      now >= *anchor + entry.start + entry.duration) {
    return false;
  }
  return true;
}

void ScheduleInjector::on_dns_response(const dns::DnsMessage& query,
                                       dns::DnsMessage& response,
                                       SimTime& delay,
                                       dns::ResponseDirectives& out) {
  for (std::size_t i = 0; i < schedule_.entries.size(); ++i) {
    const TimedFault& entry = schedule_.entries[i];
    if (!dns_fault_kind(entry.plan.kind) || !entry_active(i)) continue;
    // apply_dns_fault overwrites out.mutate_wire; chain so every active
    // wire-mutating entry runs, in schedule order.
    auto prev = std::move(out.mutate_wire);
    out.mutate_wire = nullptr;
    apply_dns_fault(entry.plan, rngs_[i], query, response, delay, out);
    if (prev) {
      if (out.mutate_wire) {
        out.mutate_wire = [first = std::move(prev),
                           second = std::move(out.mutate_wire)](
                              std::vector<std::uint8_t>& bytes) {
          first(bytes);
          second(bytes);
        };
      } else {
        out.mutate_wire = std::move(prev);
      }
    }
  }
  // Anchors update after evaluation: the first query/response is served
  // under pre-trigger windows, and "after-first-X" entries only shape what
  // follows it. The response anchor is the emission instant (post any delay
  // the active entries just added), i.e. when the answer actually hits the
  // wire.
  const SimTime now = loop_->now();
  if (!first_dns_query_) first_dns_query_ = now;
  if (!first_dns_response_) first_dns_response_ = now + delay;
}

AcceptAction ScheduleInjector::on_accept(bool quic,
                                         const simnet::Endpoint& peer) {
  AcceptAction action = AcceptAction::kAccept;
  for (std::size_t i = 0; i < schedule_.entries.size(); ++i) {
    const TimedFault& entry = schedule_.entries[i];
    const bool layer_match = quic ? entry.plan.kind == FaultKind::kQuicDrop
                                  : tcp_fault_kind(entry.plan.kind);
    if (!layer_match || !entry_active(i)) continue;
    const AcceptAction candidate = fault_accept_action(entry.plan, peer);
    if (candidate != AcceptAction::kAccept) {
      action = candidate;  // first non-accept entry wins
      break;
    }
  }
  // The triggering SYN itself is evaluated above with the anchor unset.
  if (!quic && !first_syn_) first_syn_ = loop_->now();
  return action;
}

}  // namespace lazyeye::conformance
