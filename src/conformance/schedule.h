// Compound fault schedules: several seeded faults with activation windows
// and event triggers, multiplexed through the same interposing hooks a
// single FaultPlan uses (ROADMAP "compound fault plans (multiple concurrent
// seeded faults), coverage-guided fault search").
//
// A FaultSchedule is an ordered list of TimedFault entries. Each entry is a
// plain FaultPlan plus a window: the fault acts only while sim time sits in
// [anchor + start, anchor + start + duration), where the anchor is t=0 for
// untriggered entries or the instant the entry's trigger event was first
// observed (the triggering event itself is never affected — the anchor is
// set after the event is evaluated). duration <= 0 leaves the window open.
//
// Two replay paths, both exact:
//   * generated schedules are a pure function of a (seed, stream, index)
//     triple (FaultSchedule::generate), so the campaign's one-line replay
//     contract survives:
//       ./build/example_conformance_probe "<client>" --schedule S T I
//   * arbitrary schedules (mutated/minimized by the fault hunt, search.h)
//     round-trip through encode_schedule()/decode_schedule() and replay via
//       ./build/example_conformance_probe "<client>" --schedule-hex <hex>
//
// ScheduleInjector multiplexes the entries through one ResponseInterposer /
// AcceptInterposer per layer. Hooks are installed only on layers some entry
// targets (or must be watched for a trigger); untouched layers keep their
// null hook and the zero-cost fast path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "conformance/fault.h"
#include "transport/connection.h"
#include "util/rng.h"
#include "util/time.h"

namespace lazyeye::dns {
class AuthServer;
class RecursiveResolver;
struct DnsMessage;
struct ResponseDirectives;
}  // namespace lazyeye::dns

namespace lazyeye::transport {
class TcpStack;
class QuicStack;
}  // namespace lazyeye::transport

namespace lazyeye::simnet {
class EventLoop;
}  // namespace lazyeye::simnet

namespace lazyeye::conformance {

/// Event that anchors a triggered entry's activation window.
enum class TriggerKind : std::uint8_t {
  kNone = 0,              // anchor at t=0
  kAfterFirstDnsQuery,    // first DNS query reaching the faulted server
  kAfterFirstDnsResponse, // first DNS response leaving it (post-delay)
  kAfterFirstSyn,         // first TCP handshake reaching the server
};

inline constexpr int kTriggerKindCount = 4;

const char* trigger_kind_name(TriggerKind trigger);

/// One schedule entry: a fault plan active only inside its window.
struct TimedFault {
  FaultPlan plan;
  SimTime start{0};     // window open, relative to the anchor
  SimTime duration{0};  // window length; <= 0 keeps it open for the run
  TriggerKind trigger = TriggerKind::kNone;

  bool operator==(const TimedFault&) const = default;
};

struct FaultSchedule {
  /// Provenance triple. For generated schedules it fully determines the
  /// entries; mutated/minimized schedules keep the triple of the candidate
  /// they descended from (their entries replay via the codec instead).
  std::uint64_t seed = 1;
  std::uint32_t stream = 0;
  std::uint32_t index = 0;
  std::vector<TimedFault> entries;

  /// Cell seed for this schedule's world: folds the triple AND a content
  /// hash of the entries, so two mutants of one candidate run distinct
  /// worlds while every replay path reproduces them exactly.
  std::uint64_t rng_seed() const;

  /// "schedule seed=S stream=T index=I entries=N".
  std::string repro() const;

  /// Pure function of the triple: 1..3 entries with seeded kinds, windows,
  /// triggers and per-entry plan indices (index*16 + slot, so entry streams
  /// never collide across schedules of one campaign).
  static FaultSchedule generate(std::uint64_t seed, std::uint32_t stream,
                                std::uint32_t index);

  bool operator==(const FaultSchedule&) const = default;
};

// ---- Codec (journal payloads, corpus entries, --schedule-hex replay) ------

/// Serialises `schedule` (appends to `out`). Pure function of the value, so
/// equal schedules are byte-identical everywhere they are persisted.
void encode_schedule(const FaultSchedule& schedule, std::string& out);

inline std::string encode_schedule(const FaultSchedule& schedule) {
  std::string out;
  encode_schedule(schedule, out);
  return out;
}

/// Inverse of encode_schedule; nullopt on malformed, out-of-range, or
/// trailing bytes.
std::optional<FaultSchedule> decode_schedule(std::string_view bytes);

/// Lower-case hex of encode_schedule() — the corpus-file / repro-line form.
std::string schedule_to_hex(const FaultSchedule& schedule);

/// Inverse of schedule_to_hex; nullopt on non-hex input or a malformed
/// underlying schedule.
std::optional<FaultSchedule> schedule_from_hex(std::string_view hex);

// ---- Window sampling (generator + hunt mutations) -------------------------

/// Seeded window-start sample, biased hard toward the session's head: the
/// events a window can actually intersect (DNS exchanges, the first SYN
/// wave, the CAD wave) cluster in the first few hundred ms, and half of all
/// sampled starts are exactly 0 so untriggered entries reliably cover the
/// initial resolution.
SimTime sample_window_start(SplitMix64& rng);

/// Seeded window-length sample: 1-in-4 open (duration 0), else 25..500 ms.
SimTime sample_window_duration(SplitMix64& rng);

// ---- Injection ------------------------------------------------------------

/// Multiplexes a schedule's entries through per-layer hooks. Entries are
/// consulted in schedule order; for DNS every active entry applies (wire
/// mutators chain), for transport the first non-accept action wins. The
/// injector reads the event loop's clock to evaluate windows and must
/// outlive the stacks it attaches to, like FaultInjector.
class ScheduleInjector {
 public:
  ScheduleInjector(FaultSchedule schedule, const simnet::EventLoop& loop);

  const FaultSchedule& schedule() const { return schedule_; }

  /// Install hooks on layers the schedule targets or must observe for a
  /// trigger. No-ops elsewhere (null-hook fast path untouched).
  void attach(dns::AuthServer& server);
  void attach(dns::RecursiveResolver& resolver);
  void attach(transport::TcpStack& tcp);
  void attach(transport::QuicStack& quic);

 private:
  bool needs_dns_hook() const;
  bool needs_tcp_hook() const;
  bool needs_quic_hook() const;

  /// Whether entry i's window covers the current sim time.
  bool entry_active(std::size_t i) const;

  void on_dns_response(const dns::DnsMessage& query,
                       dns::DnsMessage& response, SimTime& delay,
                       dns::ResponseDirectives& out);
  transport::AcceptAction on_accept(bool quic, const simnet::Endpoint& peer);

  FaultSchedule schedule_;
  const simnet::EventLoop* loop_;
  /// One mutation stream per entry, seeded from the entry plan's rng_seed()
  /// — entry k of a schedule draws identically no matter which other
  /// entries are active (what keeps delta-minimization replayable).
  std::vector<SplitMix64> rngs_;

  // Trigger anchors: set after the first matching event is evaluated.
  std::optional<SimTime> first_dns_query_;
  std::optional<SimTime> first_dns_response_;
  std::optional<SimTime> first_syn_;
};

}  // namespace lazyeye::conformance
