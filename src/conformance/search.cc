#include "conformance/search.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "campaign/journal.h"
#include "campaign/runner.h"
#include "conformance/record_codec.h"
#include "conformance/wire.h"
#include "util/strings.h"

namespace lazyeye::conformance {

namespace {

/// Stream id of hunt-generated schedules; keeps them off any stream a
/// hand-built schedule campaign is likely to use.
constexpr std::uint32_t kHuntStream = 0xFA;

/// Mutation cap: schedules never grow past this many entries (plan index
/// slots allow 16; see FaultSchedule::generate).
constexpr std::size_t kMaxMutatedEntries = 8;

int total_violations(const std::vector<ConformanceRecord>& records) {
  int n = 0;
  for (const ConformanceRecord& record : records) n += record.violations();
  return n;
}

/// The exact set of (client, rule) pairs that violate — the invariant
/// delta-minimization preserves.
std::set<std::string> violation_key(
    const std::vector<ConformanceRecord>& records) {
  std::set<std::string> key;
  for (const ConformanceRecord& record : records) {
    for (const Verdict& v : record.verdicts) {
      if (v.outcome == RuleOutcome::kViolate) {
        key.insert(record.client + "|" + v.rule);
      }
    }
  }
  return key;
}

TimedFault seeded_entry(SplitMix64& rng, std::uint64_t seed,
                        std::uint32_t stream, std::uint32_t plan_index) {
  TimedFault tf;
  tf.plan.kind =
      static_cast<FaultKind>(1 + rng.next() % (kFaultKindCount - 1));
  tf.plan.seed = seed;
  tf.plan.stream = stream;
  tf.plan.index = plan_index;
  tf.plan.target_family = (rng.next() & 1) != 0 ? simnet::Family::kIpv6
                                                : simnet::Family::kIpv4;
  tf.plan.spike = lazyeye::ms(50 + static_cast<std::int64_t>(rng.next() % 351));
  tf.trigger = static_cast<TriggerKind>(rng.next() % kTriggerKindCount);
  tf.start = sample_window_start(rng);
  tf.duration = sample_window_duration(rng);
  return tf;
}

FaultSchedule mutate_schedule(const FaultSchedule& base, SplitMix64& rng,
                              std::uint64_t seed, std::uint32_t index) {
  FaultSchedule m = base;
  m.seed = seed;
  m.stream = kHuntStream;
  m.index = index;
  switch (rng.next() % 4) {
    case 0:  // add an entry (no-op when already at the cap)
      if (m.entries.size() < kMaxMutatedEntries) {
        m.entries.push_back(seeded_entry(
            rng, seed, kHuntStream,
            index * 16 + static_cast<std::uint32_t>(m.entries.size())));
      }
      break;
    case 1:  // drop an entry (schedules never go empty)
      if (m.entries.size() > 1) {
        m.entries.erase(m.entries.begin() +
                        static_cast<std::ptrdiff_t>(rng.next() %
                                                    m.entries.size()));
      }
      break;
    case 2: {  // retime: new window and trigger
      TimedFault& tf = m.entries[rng.next() % m.entries.size()];
      tf.start = sample_window_start(rng);
      tf.duration = sample_window_duration(rng);
      tf.trigger = static_cast<TriggerKind>(rng.next() % kTriggerKindCount);
      break;
    }
    default: {  // retarget: flip family or swap the fault kind
      TimedFault& tf = m.entries[rng.next() % m.entries.size()];
      if ((rng.next() & 1) != 0) {
        tf.plan.target_family =
            tf.plan.target_family == simnet::Family::kIpv6
                ? simnet::Family::kIpv4
                : simnet::Family::kIpv6;
      } else {
        tf.plan.kind =
            static_cast<FaultKind>(1 + rng.next() % (kFaultKindCount - 1));
      }
      break;
    }
  }
  return m;
}

}  // namespace

// ---- Coverage signature ---------------------------------------------------

std::string evidence_bucket(std::string_view evidence) {
  std::string out;
  out.reserve(evidence.size());
  bool in_digits = false;
  for (const char c : evidence) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (!in_digits) out.push_back('#');
      in_digits = true;
    } else {
      out.push_back(c);
      in_digits = false;
    }
  }
  return out;
}

std::vector<std::string> coverage_signature(
    const std::vector<ConformanceRecord>& records) {
  std::vector<std::string> sig;
  for (const ConformanceRecord& record : records) {
    for (const Verdict& v : record.verdicts) {
      std::string element = record.client;
      element.push_back('|');
      element += v.rule;
      element.push_back('|');
      element.push_back(rule_outcome_symbol(v.outcome));
      element.push_back('|');
      element += evidence_bucket(v.evidence);
      sig.push_back(std::move(element));
    }
    sig.push_back(lazyeye::str_format("fetch|%s|%s/%s", record.client.c_str(),
                                      record.first_fetch_ok ? "ok" : "fail",
                                      record.fetch_ok ? "ok" : "fail"));
  }
  // Cross-client differential: one element per rule with every client's
  // symbol in profile order — a schedule that splits two clients that used
  // to agree is novel even if each individual verdict was seen before.
  if (!records.empty()) {
    for (std::size_t r = 0; r < records.front().verdicts.size(); ++r) {
      std::string diff = "diff|" + records.front().verdicts[r].rule + "|";
      for (const ConformanceRecord& record : records) {
        diff.push_back(r < record.verdicts.size()
                           ? rule_outcome_symbol(record.verdicts[r].outcome)
                           : '?');
      }
      sig.push_back(std::move(diff));
    }
  }
  return sig;
}

// ---- Hunt internals -------------------------------------------------------

struct FaultHunt::State {
  SplitMix64 rng{0};
  std::set<std::string> coverage;
  std::vector<CorpusEntry> corpus;
  int violating = 0;
};

struct FaultHunt::Candidate {
  FaultSchedule schedule;
  std::vector<ConformanceRecord> records;  // profile order
  std::optional<FaultSchedule> minimized;  // set when the candidate violates
};

FaultHunt::FaultHunt(HuntOptions options,
                     std::vector<clients::ClientProfile> profiles)
    : options_{std::move(options)},
      profiles_{std::move(profiles)},
      harness_{options_.conformance} {
  if (profiles_.empty()) {
    throw std::invalid_argument("FaultHunt: no client profiles");
  }
  if (options_.budget < 0) {
    throw std::invalid_argument("FaultHunt: negative budget");
  }
  if (options_.snapshot_every < 1) options_.snapshot_every = 1;
}

FaultSchedule FaultHunt::propose(State& state, std::uint32_t index) const {
  if (!state.corpus.empty() && (state.rng.next() & 1) != 0) {
    const CorpusEntry& base =
        state.corpus[state.rng.next() % state.corpus.size()];
    return mutate_schedule(base.schedule, state.rng, options_.seed, index);
  }
  return FaultSchedule::generate(options_.seed, kHuntStream, index);
}

std::vector<ConformanceRecord> FaultHunt::evaluate(
    const FaultSchedule& schedule) const {
  std::vector<campaign::ScenarioSpec> specs;
  specs.reserve(profiles_.size());
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    campaign::ScenarioSpec spec =
        harness_.schedule_spec(profiles_[i], schedule, options_.fetches);
    spec.id = i;
    specs.push_back(std::move(spec));
  }
  campaign::RunnerOptions runner_options;
  runner_options.workers = options_.workers;
  const campaign::CampaignRunner runner{runner_options};
  const std::function<ConformanceRecord(const campaign::ScenarioSpec&)>
      executor = [this](const campaign::ScenarioSpec& spec) {
        for (const clients::ClientProfile& profile : profiles_) {
          if (profile.display_name() == spec.client) {
            return harness_.run_spec(profile, spec);
          }
        }
        throw std::invalid_argument("FaultHunt: unknown client " + spec.client);
      };
  return runner.run<ConformanceRecord>(specs, executor);
}

FaultSchedule FaultHunt::minimize(
    const FaultSchedule& schedule,
    const std::vector<ConformanceRecord>& baseline) const {
  const std::set<std::string> key = violation_key(baseline);
  FaultSchedule best = schedule;
  // Pass 1: greedily drop entries while the exact violation set survives.
  bool shrunk = true;
  while (shrunk && best.entries.size() > 1) {
    shrunk = false;
    for (std::size_t i = 0; i < best.entries.size(); ++i) {
      FaultSchedule candidate = best;
      candidate.entries.erase(candidate.entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
      if (violation_key(evaluate(candidate)) == key) {
        best = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  // Pass 2: shrink windows — zero (or halve) starts, bound open windows,
  // halve long ones. Fixed attempt order, no RNG: replaying a minimized
  // schedule never depends on how it was found.
  for (std::size_t i = 0; i < best.entries.size(); ++i) {
    if (best.entries[i].start > SimTime{0}) {
      FaultSchedule candidate = best;
      candidate.entries[i].start = SimTime{0};
      if (violation_key(evaluate(candidate)) == key) {
        best = std::move(candidate);
      } else {
        candidate = best;
        candidate.entries[i].start = best.entries[i].start / 2;
        if (violation_key(evaluate(candidate)) == key) {
          best = std::move(candidate);
        }
      }
    }
    if (best.entries[i].duration <= SimTime{0}) {
      FaultSchedule candidate = best;
      candidate.entries[i].duration = lazyeye::ms(250);
      if (violation_key(evaluate(candidate)) == key) {
        best = std::move(candidate);
      }
    } else if (best.entries[i].duration > lazyeye::ms(50)) {
      FaultSchedule candidate = best;
      candidate.entries[i].duration = best.entries[i].duration / 2;
      if (violation_key(evaluate(candidate)) == key) {
        best = std::move(candidate);
      }
    }
  }
  return best;
}

void FaultHunt::apply(State& state, const Candidate& candidate) const {
  const std::vector<std::string> sig = coverage_signature(candidate.records);
  std::string first_novel;
  for (const std::string& element : sig) {
    if (state.coverage.find(element) == state.coverage.end()) {
      first_novel = element;
      break;
    }
  }
  for (const std::string& element : sig) state.coverage.insert(element);
  const int violations = total_violations(candidate.records);
  if (violations > 0) ++state.violating;
  if (!first_novel.empty()) {
    CorpusEntry entry;
    entry.schedule =
        candidate.minimized ? *candidate.minimized : candidate.schedule;
    entry.violations = violations;
    entry.minimized = candidate.minimized.has_value();
    entry.novelty = std::move(first_novel);
    state.corpus.push_back(std::move(entry));
  }
}

// ---- State / candidate codecs (journal payloads) --------------------------

std::string FaultHunt::encode_state(const State& state) const {
  std::string out;
  wire::put_u64(out, state.rng.state());
  wire::put_u32(out, static_cast<std::uint32_t>(state.violating));
  wire::put_u32(out, static_cast<std::uint32_t>(state.coverage.size()));
  for (const std::string& element : state.coverage) {
    wire::put_str(out, element);
  }
  wire::put_u32(out, static_cast<std::uint32_t>(state.corpus.size()));
  for (const CorpusEntry& entry : state.corpus) {
    wire::put_str(out, encode_schedule(entry.schedule));
    wire::put_u32(out, static_cast<std::uint32_t>(entry.violations));
    wire::put_u8(out, entry.minimized ? 1 : 0);
    wire::put_str(out, entry.novelty);
  }
  return out;
}

FaultHunt::State FaultHunt::decode_state(std::string_view bytes) const {
  wire::Reader in{bytes};
  State state;
  state.rng = SplitMix64{in.u64()};
  state.violating = static_cast<int>(in.u32());
  const std::uint32_t coverage_count = in.u32();
  if (!in.ok || coverage_count > 1u << 24) {
    throw campaign::JournalError("hunt snapshot: malformed coverage set");
  }
  for (std::uint32_t i = 0; i < coverage_count; ++i) {
    state.coverage.insert(in.str());
  }
  const std::uint32_t corpus_count = in.u32();
  if (!in.ok || corpus_count > 1u << 20) {
    throw campaign::JournalError("hunt snapshot: malformed corpus");
  }
  for (std::uint32_t i = 0; i < corpus_count; ++i) {
    CorpusEntry entry;
    auto schedule = decode_schedule(in.str());
    entry.violations = static_cast<int>(in.u32());
    entry.minimized = in.u8() != 0;
    entry.novelty = in.str();
    if (!schedule) {
      throw campaign::JournalError("hunt snapshot: malformed schedule");
    }
    entry.schedule = std::move(*schedule);
    state.corpus.push_back(std::move(entry));
  }
  if (!in.exhausted()) {
    throw campaign::JournalError("hunt snapshot: trailing bytes");
  }
  return state;
}

std::string FaultHunt::encode_candidate(const Candidate& candidate) const {
  std::string out;
  wire::put_str(out, encode_schedule(candidate.schedule));
  wire::put_u8(out, candidate.minimized ? 1 : 0);
  if (candidate.minimized) {
    wire::put_str(out, encode_schedule(*candidate.minimized));
  }
  wire::put_u32(out, static_cast<std::uint32_t>(candidate.records.size()));
  for (const ConformanceRecord& record : candidate.records) {
    wire::put_str(out, encode_record(record));
  }
  return out;
}

FaultHunt::Candidate FaultHunt::decode_candidate(
    std::string_view bytes) const {
  wire::Reader in{bytes};
  Candidate candidate;
  auto schedule = decode_schedule(in.str());
  if (!schedule) {
    throw campaign::JournalError("hunt cell: malformed schedule");
  }
  candidate.schedule = std::move(*schedule);
  const std::uint8_t has_min = in.u8();
  if (has_min > 1) throw campaign::JournalError("hunt cell: bad flags");
  if (has_min == 1) {
    auto minimized = decode_schedule(in.str());
    if (!minimized) {
      throw campaign::JournalError("hunt cell: malformed minimized schedule");
    }
    candidate.minimized = std::move(*minimized);
  }
  const std::uint32_t record_count = in.u32();
  if (!in.ok || record_count > 4096) {
    throw campaign::JournalError("hunt cell: malformed record list");
  }
  for (std::uint32_t i = 0; i < record_count; ++i) {
    auto record = decode_record(in.str());
    if (!record) throw campaign::JournalError("hunt cell: malformed record");
    candidate.records.push_back(std::move(*record));
  }
  if (!in.exhausted()) {
    throw campaign::JournalError("hunt cell: trailing bytes");
  }
  return candidate;
}

// ---- The hunt loop --------------------------------------------------------

HuntResult FaultHunt::run() {
  const auto budget = static_cast<std::uint64_t>(options_.budget);
  const std::uint64_t identity =
      campaign::journal_identity("lazyeye-hunt", budget, options_.seed);

  State state;
  // Proposal stream root: triple-style fold of the hunt seed.
  SplitMix64 mix{options_.seed ^ (0x68756e74ULL /* "hunt" */ *
                                  0x9e3779b97f4a7c15ULL)};
  state.rng = SplitMix64{mix.next()};

  HuntResult result;
  std::uint64_t start_index = 0;
  bool complete = false;
  std::optional<campaign::JournalWriter> writer;

  if (!options_.journal_path.empty()) {
    const campaign::JournalLoad load =
        campaign::load_journal(options_.journal_path);
    if (load.exists) {
      if (load.identity != identity) {
        throw campaign::JournalError(
            "hunt journal identity mismatch: different seed/budget");
      }
      std::uint64_t replay_from = 0;
      if (!load.snapshot_state.empty()) {
        state = decode_state(load.snapshot_state);
        replay_from = load.snapshot_cells;
      }
      // Tail replay: re-derive each journaled candidate's proposal (the
      // RNG draws are part of the state transition) and fold its recorded
      // outcome in — no world re-runs.
      for (std::uint64_t i = replay_from; i < load.cells.size(); ++i) {
        const Candidate candidate = decode_candidate(load.cells[i].payload);
        const FaultSchedule proposed =
            propose(state, static_cast<std::uint32_t>(i));
        if (!(proposed == candidate.schedule)) {
          throw campaign::JournalError(
              "hunt journal diverges from the deterministic proposal stream");
        }
        apply(state, candidate);
      }
      start_index = load.resume_index();
      result.resumed = start_index > 0 || !load.snapshot_state.empty();
      complete = load.complete;
      if (!complete) {
        writer.emplace(campaign::JournalWriter::append(options_.journal_path,
                                                       load.valid_bytes));
        // A crash can land between a cell append and the snapshot that
        // cadence says follows it; re-emit the missing snapshot so the
        // resumed journal is byte-identical to an uninterrupted one.
        const auto every =
            static_cast<std::uint64_t>(options_.snapshot_every);
        if (start_index > 0 && start_index % every == 0 &&
            load.snapshot_cells < start_index) {
          writer->append_snapshot(start_index, encode_state(state));
        }
      }
    } else {
      writer.emplace(campaign::JournalWriter::create(
          options_.journal_path, identity, /*cell_begin=*/0, budget));
    }
  }

  if (!complete) {
    for (std::uint64_t i = start_index; i < budget; ++i) {
      Candidate candidate;
      candidate.schedule = propose(state, static_cast<std::uint32_t>(i));
      candidate.records = evaluate(candidate.schedule);
      if (total_violations(candidate.records) > 0) {
        candidate.minimized = minimize(candidate.schedule, candidate.records);
      }
      apply(state, candidate);
      if (writer) writer->append_cell(i, encode_candidate(candidate));
      if (options_.after_cell) options_.after_cell(static_cast<int>(i));
      if (writer && (i + 1) % static_cast<std::uint64_t>(
                                  options_.snapshot_every) ==
                        0) {
        writer->append_snapshot(i + 1, encode_state(state));
      }
    }
    if (writer) writer->append_complete(budget);
  }

  result.corpus = std::move(state.corpus);
  result.coverage = std::move(state.coverage);
  result.candidates = options_.budget;
  result.violating_candidates = state.violating;
  return result;
}

// ---- Corpus file ----------------------------------------------------------

std::string FaultHunt::corpus_text(const std::vector<CorpusEntry>& corpus) {
  std::string out = "# lazyeye-hunt corpus v1\n";
  out += lazyeye::str_format("# entries=%zu\n", corpus.size());
  for (const CorpusEntry& entry : corpus) {
    out += lazyeye::str_format("entry violations=%d minimized=%d %s\n",
                               entry.violations, entry.minimized ? 1 : 0,
                               schedule_to_hex(entry.schedule).c_str());
  }
  return out;
}

void FaultHunt::write_corpus(const std::string& path,
                             const std::vector<CorpusEntry>& corpus) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("write_corpus: cannot open " + path);
  }
  const std::string text = corpus_text(corpus);
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    throw std::runtime_error("write_corpus: short write to " + path);
  }
}

std::vector<CorpusEntry> FaultHunt::load_corpus(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("load_corpus: cannot open " + path);
  }
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);

  std::vector<CorpusEntry> corpus;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line{text.data() + pos, eol - pos};
    pos = eol + 1;
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    int violations = 0;
    int minimized = 0;
    char hex[4096] = {0};
    const std::string owned{line};
    if (std::sscanf(owned.c_str(), "entry violations=%d minimized=%d %4095s",
                    &violations, &minimized, hex) != 3) {
      throw std::runtime_error(lazyeye::str_format(
          "load_corpus: malformed line %d in %s", line_no, path.c_str()));
    }
    auto schedule = schedule_from_hex(hex);
    if (!schedule || minimized > 1 || violations < 0) {
      throw std::runtime_error(lazyeye::str_format(
          "load_corpus: undecodable schedule at line %d in %s", line_no,
          path.c_str()));
    }
    CorpusEntry entry;
    entry.schedule = std::move(*schedule);
    entry.violations = violations;
    entry.minimized = minimized == 1;
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

}  // namespace lazyeye::conformance
