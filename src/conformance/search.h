// Coverage-guided fault hunt over compound schedules (ROADMAP "coverage-
// guided fault search").
//
// The hunt is a seeded, deterministic loop: each candidate FaultSchedule is
// either freshly generated from the hunt triple or a mutation (add / drop /
// retime / retarget an entry) of a corpus member; it runs differentially
// against every client profile; its fitness is *novelty* — the coverage
// signature (client, rule, verdict symbol, digit-stripped evidence bucket)
// plus per-rule cross-client verdict diffs — and novel candidates enter the
// corpus. Candidates that violate a rule are first delta-minimized (drop
// entries, zero/shrink windows) while the exact set of (client, rule)
// violations is preserved, so every corpus violation is a smallest-found
// replayable reproducer.
//
// Crash safety: with journal_path set the hunt is a journaled campaign over
// its candidate indices (campaign/journal.h). One kCell record per
// candidate carries the proposed schedule, every per-profile record, and
// the minimized schedule — enough to replay the hunt's state transitions
// WITHOUT re-running any world. Periodic kSnapshot records checkpoint the
// whole search state (mutation RNG state, coverage set, corpus), so resume
// is snapshot + short tail replay. A SIGKILL at any instant resumes to a
// byte-identical journal and corpus (tests/fault_search_test.cc).
//
// Everything the hunt derives — proposals, worlds, verdicts, minimization —
// is a pure function of (seed, budget, profiles), so two hunts with equal
// options produce equal corpora on any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "clients/profiles.h"
#include "conformance/checker.h"
#include "conformance/schedule.h"

namespace lazyeye::conformance {

struct HuntOptions {
  /// Hunt seed: roots the proposal stream and every candidate world.
  std::uint64_t seed = 1;
  /// Candidate schedules to evaluate.
  int budget = 64;
  /// kSnapshot cadence, in candidates (journaled hunts only).
  int snapshot_every = 16;
  /// Fetches per cell (2 exercises the restart-cache rule, like the
  /// differential matrix).
  int fetches = 2;
  /// Worker threads for each candidate's per-profile matrix. 1 runs inline
  /// (fork-safe); results are byte-identical at any width.
  int workers = 1;
  /// Journal file ("" = in-memory hunt, no crash safety).
  std::string journal_path;
  /// Progress hook: called after candidate `index` is folded into the state
  /// (and its cell record journaled) but BEFORE any snapshot it is due —
  /// the kill-9 harness uses it to die at deterministic spots, including
  /// the gap between a cell and its cadence snapshot.
  std::function<void(int index)> after_cell;
  /// World options for every candidate cell.
  ConformanceOptions conformance;
};

/// One corpus member: a schedule the hunt kept because it covered something
/// new. Violating members are stored delta-minimized.
struct CorpusEntry {
  FaultSchedule schedule;
  /// Rule violations across the candidate's per-profile records.
  int violations = 0;
  bool minimized = false;
  /// The first novel signature element that admitted it (diagnostic).
  std::string novelty;

  bool operator==(const CorpusEntry&) const = default;
};

struct HuntResult {
  std::vector<CorpusEntry> corpus;
  /// Every coverage-signature element ever observed (std::set: iteration
  /// order is deterministic, per repo lint rules).
  std::set<std::string> coverage;
  int candidates = 0;             // evaluated (or replayed) this run
  int violating_candidates = 0;   // candidates with >= 1 rule violation
  bool resumed = false;           // a journal with prior progress was loaded
};

// ---- Coverage signature (unit-tested building blocks) ---------------------

/// Digit runs collapsed to '#': "waited 43 ms (< 250 ms)" and
/// "waited 57 ms (< 250 ms)" bucket identically.
std::string evidence_bucket(std::string_view evidence);

/// The candidate's full coverage signature over its per-profile records
/// (profile order): per-verdict elements plus per-rule cross-client diff
/// strings. Pure function of the records.
std::vector<std::string> coverage_signature(
    const std::vector<ConformanceRecord>& records);

class FaultHunt {
 public:
  FaultHunt(HuntOptions options, std::vector<clients::ClientProfile> profiles);

  const HuntOptions& options() const { return options_; }

  /// Runs (or resumes) the hunt. Journaled hunts refuse a journal written
  /// by different options (identity mismatch) or one that diverges from the
  /// deterministic proposal stream — both throw campaign::JournalError.
  HuntResult run();

  /// Deterministic text form of a corpus ("# lazyeye-hunt corpus v1" header
  /// plus one hex entry line per schedule).
  static std::string corpus_text(const std::vector<CorpusEntry>& corpus);

  /// Writes corpus_text() to `path` (truncating). Throws std::runtime_error
  /// when the file cannot be written.
  static void write_corpus(const std::string& path,
                           const std::vector<CorpusEntry>& corpus);

  /// Parses a corpus file back. Throws std::runtime_error on unreadable
  /// files or malformed lines — a corpus that cannot be trusted to replay
  /// is refused loudly, never silently truncated.
  static std::vector<CorpusEntry> load_corpus(const std::string& path);

 private:
  struct State;
  struct Candidate;

  FaultSchedule propose(State& state, std::uint32_t index) const;
  std::vector<ConformanceRecord> evaluate(const FaultSchedule& schedule) const;
  FaultSchedule minimize(const FaultSchedule& schedule,
                         const std::vector<ConformanceRecord>& baseline) const;
  void apply(State& state, const Candidate& candidate) const;

  std::string encode_state(const State& state) const;
  State decode_state(std::string_view bytes) const;
  std::string encode_candidate(const Candidate& candidate) const;
  Candidate decode_candidate(std::string_view bytes) const;

  HuntOptions options_;
  std::vector<clients::ClientProfile> profiles_;
  ConformanceHarness harness_;
};

}  // namespace lazyeye::conformance
