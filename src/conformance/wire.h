// Big-endian string-backed wire primitives shared by the conformance
// codecs (record_codec.cc, schedule.cc). Mirrors util/bytes.h, which is
// vector<uint8_t>-based — journal payloads and corpus entries travel as
// strings, so the conformance layer keeps its own string flavour.
//
// Reader is forgiving in shape (`ok` latches false on underrun instead of
// throwing) so decoders can read a whole struct and validate once at the
// end, including the exact-length check that rejects trailing garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace lazyeye::conformance::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

inline void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  std::uint8_t u8() {
    if (!ok || data.size() - pos < 1) {
      ok = false;
      return 0;
    }
    return static_cast<unsigned char>(data[pos++]);
  }

  std::uint32_t u32() {
    if (!ok || data.size() - pos < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<unsigned char>(data[pos++]);
    }
    return v;
  }

  std::uint64_t u64() {
    if (!ok || data.size() - pos < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | static_cast<unsigned char>(data[pos++]);
    }
    return v;
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (!ok || data.size() - pos < len) {
      ok = false;
      return {};
    }
    std::string out{data.substr(pos, len)};
    pos += len;
    return out;
  }

  /// True only when every read succeeded AND the buffer is fully consumed.
  bool exhausted() const { return ok && pos == data.size(); }
};

}  // namespace lazyeye::conformance::wire
