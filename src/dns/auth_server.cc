#include "dns/auth_server.h"

#include "dns/message_pool.h"
#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::dns {

AuthServer::AuthServer(simnet::Host& host, std::uint16_t port)
    : host_{host},
      port_{port},
      query_scratch_{MessagePool::local().acquire()},
      response_scratch_{MessagePool::local().acquire()} {
  host_.udp_bind(port_, [this](const simnet::Packet& p) { on_query(p); });
}

AuthServer::~AuthServer() {
  host_.udp_unbind(port_);
  MessagePool::local().release(std::move(query_scratch_));
  MessagePool::local().release(std::move(response_scratch_));
}

Zone& AuthServer::add_zone(DnsName origin) {
  zones_.push_back(std::make_unique<Zone>(std::move(origin),
                                          host_.network().memory()));
  return *zones_.back();
}

Zone& AuthServer::add_zone(std::unique_ptr<Zone> zone) {
  zones_.push_back(std::move(zone));
  return *zones_.back();
}

void AuthServer::on_query(const simnet::Packet& packet) {
  ++queries_received_;
  if (!DnsMessage::decode_into(packet.payload, query_scratch_) ||
      query_scratch_.questions.empty()) {
    return;  // not a parsable query: ignore
  }
  const DnsMessage& query = query_scratch_;
  const Question& q = query.questions.front();

  query_log_.push_back(QueryLogEntry{host_.network().loop().now(),
                                     packet.family(), packet.src, packet.dst,
                                     q.name, q.type, query.header.id});
  if (unresponsive_) return;

  build_response(query, response_scratch_);
  SimTime delay = response_delay(q.name, q.type);
  const simnet::Endpoint from = packet.dst;
  const simnet::Endpoint to = packet.src;

  if (interposer_) {
    // Fault-injection slow path (conformance layer). Kept out of the fast
    // path so measurement campaigns with no interposer are untouched.
    ResponseDirectives directives;
    interposer_(query, response_scratch_, delay, directives);
    for (InterposedDatagram& extra : directives.extra) {
      send_response(from, to, simnet::Buffer::adopt(std::move(extra.wire)),
                    extra.delay);
    }
    if (directives.drop) return;
    simnet::Buffer wire{&host_.network().buffer_pool()};
    response_scratch_.encode_into(wire, compressor_);
    if (directives.mutate_wire) directives.mutate_wire(wire.heap_storage());
    send_response(from, to, std::move(wire), delay);
    return;
  }

  simnet::Buffer wire{&host_.network().buffer_pool()};
  response_scratch_.encode_into(wire, compressor_);
  send_response(from, to, std::move(wire), delay);
}

void AuthServer::send_response(const simnet::Endpoint& from,
                               const simnet::Endpoint& to, simnet::Buffer wire,
                               SimTime delay) {
  if (delay.count() == 0) {
    host_.udp_send(from, to, std::move(wire));
    return;
  }
  host_.network().loop().schedule_after(
      delay, [this, from, to, wire = std::move(wire)]() mutable {
        host_.udp_send(from, to, std::move(wire));
      });
}

SimTime AuthServer::response_delay(const DnsName& qname, RrType qtype) const {
  SimTime total{0};
  for (const DelayRule& rule : delay_rules_) {
    if (rule.qtype && *rule.qtype != qtype) continue;
    if (rule.suffix && !qname.is_subdomain_of(*rule.suffix)) continue;
    total += rule.delay;
  }
  if (test_params_enabled_) {
    if (const auto params = parse_test_params(qname)) {
      total += params->delay_for(qtype);
    }
  }
  return total;
}

namespace {

/// Appends records to a response section by assigning over retained elements
/// (copy-assignment reuses name/rdata storage); finish() trims the excess.
/// Replaces clear()+push_back, which destroyed the recycled elements first.
class SectionWriter {
 public:
  explicit SectionWriter(std::vector<ResourceRecord>& out) : out_{out} {}
  void put(const ResourceRecord& rr) {
    if (n_ == out_.size()) {
      out_.push_back(rr);
    } else {
      out_[n_] = rr;
    }
    ++n_;
  }
  void finish() { out_.resize(n_); }

 private:
  std::vector<ResourceRecord>& out_;
  std::size_t n_ = 0;
};

}  // namespace

void AuthServer::build_response(const DnsMessage& query,
                                DnsMessage& response) {
  const Question& q = query.questions.front();

  // Reset the reused envelope (same shape make_response() produced).
  response.header = DnsHeader{};
  response.header.id = query.header.id;
  response.header.qr = true;
  response.header.rd = query.header.rd;
  response.questions = query.questions;
  SectionWriter answers{response.answers};
  SectionWriter authorities{response.authorities};
  SectionWriter additionals{response.additionals};
  const auto seal = [&] {
    answers.finish();
    authorities.finish();
    additionals.finish();
  };

  // Find the most specific zone containing the qname.
  const Zone* best = nullptr;
  for (const auto& zone : zones_) {
    if (!q.name.is_subdomain_of(zone->origin())) continue;
    if (best == nullptr ||
        zone->origin().label_count() > best->origin().label_count()) {
      best = zone.get();
    }
  }
  if (best == nullptr) {
    response.header.rcode = Rcode::kRefused;
    return seal();
  }

  response.header.aa = true;

  // Pointer-based zone lookup into a reused scratch: each record is copied
  // exactly once, straight into its response section, instead of through an
  // intermediate LookupResult vector per response.
  chase_scratch_ = q.name;
  for (int chase = 0; chase < 8; ++chase) {
    best->lookup_into(chase_scratch_, q.type, lookup_scratch_);
    const Zone::LookupRefs& result = lookup_scratch_;
    switch (result.kind) {
      case Zone::RcodeKind::kAnswer:
        for (const auto* rr : result.records) answers.put(*rr);
        return seal();
      case Zone::RcodeKind::kCname: {
        answers.put(*result.records.front());
        chase_scratch_ =
            std::get<CnameRdata>(result.records.front()->rdata).target;
        if (!chase_scratch_.is_subdomain_of(best->origin())) return seal();
        continue;
      }
      case Zone::RcodeKind::kDelegation:
        response.header.aa = false;
        for (const auto* rr : result.records) authorities.put(*rr);
        for (const auto* rr : result.additional) additionals.put(*rr);
        return seal();
      case Zone::RcodeKind::kNoData:
        if (result.soa) authorities.put(*result.soa);
        return seal();
      case Zone::RcodeKind::kNxDomain:
        response.header.rcode = Rcode::kNxDomain;
        if (result.soa) authorities.put(*result.soa);
        return seal();
      case Zone::RcodeKind::kNotInZone:
        response.header.rcode = Rcode::kRefused;
        return seal();
    }
  }
  // CNAME chain too long; respond with what we have.
  seal();
}

}  // namespace lazyeye::dns
