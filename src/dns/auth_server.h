// Authoritative DNS server (paper §4.1 (ii)).
//
// Serves one or more zones over simulated UDP and supports the paper's two
// delay mechanisms:
//  * static delay rules configured by the operator (qtype and/or name-suffix
//    matched), used for resolver CAD/RD measurements, and
//  * per-query delays encoded in the qname (TestParams), used by the client
//    testbed so a single deployment supports every test configuration.
//
// Every query is appended to a query log with its arrival timestamp and
// transport family — the resolver study (§5.3) evaluates resolvers purely
// from this authoritative-side log.
#pragma once

#include <memory>
#include <vector>

#include "dns/interpose.h"
#include "dns/message.h"
#include "dns/test_params.h"
#include "dns/zone.h"
#include "simnet/host.h"
#include "simnet/network.h"

namespace lazyeye::dns {

struct DelayRule {
  std::optional<RrType> qtype;       // unset = all types
  std::optional<DnsName> suffix;     // unset = all names; else qname must be
                                     // at/below this name
  SimTime delay{0};
};

struct QueryLogEntry {
  SimTime time{0};
  simnet::Family family = simnet::Family::kIpv4;
  simnet::Endpoint client;
  simnet::Endpoint server;  // which of our addresses was queried
  DnsName qname;
  RrType qtype = RrType::kA;
  std::uint16_t txn_id = 0;
};

class AuthServer {
 public:
  /// Binds to `port` on all of the host's addresses.
  explicit AuthServer(simnet::Host& host, std::uint16_t port = 53);
  ~AuthServer();

  AuthServer(const AuthServer&) = delete;
  AuthServer& operator=(const AuthServer&) = delete;

  /// Adds a zone this server is authoritative for.
  Zone& add_zone(DnsName origin);
  Zone& add_zone(std::unique_ptr<Zone> zone);

  /// Static delay rules (evaluated additively with qname-encoded params).
  void add_delay_rule(DelayRule rule) { delay_rules_.push_back(std::move(rule)); }
  void clear_delay_rules() { delay_rules_.clear(); }

  /// Enables qname-encoded TestParams handling (default on).
  void set_test_params_enabled(bool enabled) { test_params_enabled_ = enabled; }

  /// When set, queries are dropped entirely (unresponsive server).
  void set_unresponsive(bool unresponsive) { unresponsive_ = unresponsive; }

  /// Fault-injection hook on the response path (see dns/interpose.h).
  /// Unset (the default) costs one branch per response.
  void set_response_interposer(ResponseInterposer hook) {
    interposer_ = std::move(hook);
  }

  const std::vector<QueryLogEntry>& query_log() const { return query_log_; }
  void clear_query_log() { query_log_.clear(); }

  std::uint64_t queries_received() const { return queries_received_; }

 private:
  void on_query(const simnet::Packet& packet);
  /// Fills `response` (a reused scratch envelope) for `query`.
  void build_response(const DnsMessage& query, DnsMessage& response);
  SimTime response_delay(const DnsName& qname, RrType qtype) const;
  void send_response(const simnet::Endpoint& from, const simnet::Endpoint& to,
                     simnet::Buffer wire, SimTime delay);

  simnet::Host& host_;
  std::uint16_t port_;
  std::vector<std::unique_ptr<Zone>> zones_;
  std::vector<DelayRule> delay_rules_;
  std::vector<QueryLogEntry> query_log_;
  bool test_params_enabled_ = true;
  bool unresponsive_ = false;
  std::uint64_t queries_received_ = 0;
  ResponseInterposer interposer_;
  // Decode/encode scratch reused across queries (single-threaded per host).
  // The message envelopes check out of the thread-local MessagePool so their
  // capacity survives this server's world.
  DnsMessage query_scratch_;
  DnsMessage response_scratch_;
  Zone::LookupRefs lookup_scratch_;
  DnsName chase_scratch_;  // CNAME-chase cursor, capacity reused per response
  NameCompressor compressor_;
};

}  // namespace lazyeye::dns
