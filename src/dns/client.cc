#include "dns/client.h"

#include "dns/message_pool.h"

namespace lazyeye::dns {

DnsClient::DnsClient(simnet::Host& host)
    : host_{host},
      transactions_{host.network().memory()},
      query_scratch_{MessagePool::local().acquire()},
      response_scratch_{MessagePool::local().acquire()} {}

DnsClient::~DnsClient() {
  MessagePool::local().release(std::move(query_scratch_));
  MessagePool::local().release(std::move(response_scratch_));
}

std::uint64_t DnsClient::query(const simnet::Endpoint& server,
                               const DnsName& name, RrType type,
                               const DnsClientOptions& options,
                               Handler handler, bool recursion_desired) {
  const auto src_addr = host_.address(server.addr.family());
  if (!src_addr) {
    QueryOutcome outcome;
    outcome.error = "no local address for " +
                    std::string{simnet::family_name(server.addr.family())};
    handler(outcome);
    return 0;
  }

  const std::uint64_t handle = next_handle_++;
  Transaction txn;
  txn.txn_id =
      static_cast<std::uint16_t>(host_.network().rng().next_below(65536));
  txn.local_port = host_.ephemeral_port();
  txn.server = server;
  txn.name = name;
  txn.type = type;
  txn.recursion_desired = recursion_desired;
  txn.options = options;
  txn.handler = std::move(handler);
  transactions_.emplace(handle, std::move(txn));

  host_.udp_bind(transactions_.at(handle).local_port,
                 [this, handle](const simnet::Packet& p) {
                   on_datagram(handle, p);
                 });
  send_attempt(handle);
  return handle;
}

void DnsClient::cancel(std::uint64_t handle) {
  const auto it = transactions_.find(handle);
  if (it == transactions_.end()) return;
  host_.network().loop().cancel(it->second.timer);
  host_.udp_unbind(it->second.local_port);
  transactions_.erase(it);
}

void DnsClient::send_attempt(std::uint64_t handle) {
  auto& txn = transactions_.at(handle);
  auto& loop = host_.network().loop();
  if (txn.attempts_made == 0) txn.first_send = loop.now();
  ++txn.attempts_made;

  const auto src_addr = host_.address(txn.server.addr.family());
  // Build the query in the reused scratch envelope and serialise it into a
  // pooled buffer: the steady-state send path recycles both.
  query_scratch_.header = DnsHeader{};
  query_scratch_.header.id = txn.txn_id;
  query_scratch_.header.rd = txn.recursion_desired;
  query_scratch_.questions.resize(1);
  query_scratch_.questions.front().name = txn.name;
  query_scratch_.questions.front().type = txn.type;
  simnet::Buffer wire{&host_.network().buffer_pool()};
  query_scratch_.encode_into(wire, compressor_);
  host_.udp_send({*src_addr, txn.local_port}, txn.server, std::move(wire));

  txn.timer = loop.schedule_after(txn.options.timeout,
                                  [this, handle] { on_timeout(handle); });
}

void DnsClient::on_datagram(std::uint64_t handle,
                            const simnet::Packet& packet) {
  const auto it = transactions_.find(handle);
  if (it == transactions_.end()) return;
  Transaction& txn = it->second;

  // Decode into the reused scratch message; rejected datagrams (garbage,
  // wrong id, off-path) never cost a fresh message's allocations.
  if (!DnsMessage::decode_into(packet.payload, response_scratch_)) {
    return;  // garbage: keep waiting
  }
  DnsMessage& msg = response_scratch_;
  if (!msg.header.qr || msg.header.id != txn.txn_id) return;
  if (packet.src != txn.server) return;  // off-path response

  QueryOutcome outcome;
  outcome.ok = msg.header.rcode == Rcode::kNoError;
  outcome.rcode = msg.header.rcode;
  outcome.rtt = host_.network().loop().now() - txn.first_send;
  // Swap the decoded message out against a pooled envelope: the scratch gets
  // recycled capacity for the next decode instead of re-growing, and
  // finish() returns the outcome's message to the pool afterwards.
  outcome.response = MessagePool::local().acquire();
  std::swap(outcome.response, response_scratch_);
  if (!outcome.ok) outcome.error = rcode_name(outcome.rcode);
  finish(handle, std::move(outcome));
}

void DnsClient::on_timeout(std::uint64_t handle) {
  const auto it = transactions_.find(handle);
  if (it == transactions_.end()) return;
  Transaction& txn = it->second;
  if (txn.attempts_made < txn.options.attempts) {
    send_attempt(handle);
    return;
  }
  QueryOutcome outcome;
  outcome.error = "timeout";
  outcome.rtt = host_.network().loop().now() - txn.first_send;
  finish(handle, std::move(outcome));
}

void DnsClient::finish(std::uint64_t handle, QueryOutcome outcome) {
  const auto it = transactions_.find(handle);
  if (it == transactions_.end()) return;
  Handler handler = std::move(it->second.handler);
  host_.network().loop().cancel(it->second.timer);
  host_.udp_unbind(it->second.local_port);
  transactions_.erase(it);
  handler(outcome);
  // The handler received a const ref; reclaim the response envelope —
  // contents and all, since decode_into() assigns sections in place.
  MessagePool::local().release(std::move(outcome.response));
}

}  // namespace lazyeye::dns
