// One-shot UDP DNS query helper: socket + transaction id matching + timeout
// + retransmission. Both the stub resolver and the recursive resolver build
// on this.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory_resource>
#include <string>

#include "dns/message.h"
#include "simnet/host.h"
#include "simnet/network.h"
#include "util/time.h"

namespace lazyeye::dns {

struct QueryOutcome {
  bool ok = false;
  Rcode rcode = Rcode::kServFail;
  DnsMessage response;       // valid when ok
  SimTime rtt{0};            // time from first send to response
  std::string error;         // "timeout", "network", ... when !ok
};

struct DnsClientOptions {
  SimTime timeout = lazyeye::sec(5);  // per-attempt timeout
  int attempts = 1;                   // total attempts (1 = no retry)
};

/// Issues UDP DNS queries from a host. One ephemeral socket per transaction.
class DnsClient {
 public:
  using Handler = std::function<void(const QueryOutcome&)>;

  explicit DnsClient(simnet::Host& host);
  ~DnsClient();

  DnsClient(const DnsClient&) = delete;
  DnsClient& operator=(const DnsClient&) = delete;

  /// Sends `question` to `server`; the source address is the host's address
  /// matching the server's family. Returns a transaction handle (0 on
  /// immediate failure, e.g. no source address of that family — the handler
  /// is then invoked synchronously with an error).
  std::uint64_t query(const simnet::Endpoint& server, const DnsName& name,
                      RrType type, const DnsClientOptions& options,
                      Handler handler, bool recursion_desired = false);

  /// Cancels an in-flight transaction (its handler will not run).
  void cancel(std::uint64_t handle);

  /// Number of in-flight transactions.
  std::size_t in_flight() const { return transactions_.size(); }

 private:
  struct Transaction {
    std::uint16_t txn_id = 0;
    std::uint16_t local_port = 0;
    simnet::Endpoint server;
    DnsName name;
    RrType type;
    bool recursion_desired = false;
    DnsClientOptions options;
    int attempts_made = 0;
    SimTime first_send{0};
    simnet::TimerId timer;
    Handler handler;
  };

  void send_attempt(std::uint64_t handle);
  void on_datagram(std::uint64_t handle, const simnet::Packet& packet);
  void on_timeout(std::uint64_t handle);
  void finish(std::uint64_t handle, QueryOutcome outcome);

  simnet::Host& host_;
  // Node storage from the world's arena: transaction churn lands on retained
  // chunks instead of the global heap.
  std::pmr::map<std::uint64_t, Transaction> transactions_;
  std::uint64_t next_handle_ = 1;
  // Scratch reused across sends/receives (single-threaded per host): the
  // query envelope, the name-compression table, and the decode target keep
  // their capacity, so a steady-state query round trip barely allocates.
  // Checked out of the thread-local MessagePool so the capacity also
  // survives this client's world: consecutive cells on a worker thread
  // reuse the same section/label storage instead of re-growing it.
  DnsMessage query_scratch_;
  DnsMessage response_scratch_;
  NameCompressor compressor_;
};

}  // namespace lazyeye::dns
