// Response interposition hooks for the DNS servers (conformance layer).
//
// A ResponseInterposer sits between a server's response construction and the
// wire: it can edit the decoded response in place, stretch the response
// delay, drop the response, corrupt the encoded bytes, or emit extra
// (spoofed/duplicate) datagrams from the server's address. AuthServer and
// RecursiveResolver consult an optional interposer on their serve paths;
// the hook is one branch when unset, so measurement campaigns never pay
// for the fault layer they do not use.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dns/message.h"
#include "util/time.h"

namespace lazyeye::dns {

/// A pre-encoded extra datagram to emit from the server's address.
struct InterposedDatagram {
  std::vector<std::uint8_t> wire;
  /// Relative to now. 0 = sent before the (possibly delayed) real response,
  /// which is how an off-path spoof races the genuine answer.
  SimTime delay{0};
};

/// Wire-level directives an interposer fills in for one response.
struct ResponseDirectives {
  /// Suppress the response entirely (the query was still logged).
  bool drop = false;
  /// Applied in place to the encoded response bytes just before the send
  /// (truncation, seeded corruption). Runs after name compression.
  std::function<void(std::vector<std::uint8_t>&)> mutate_wire;
  /// Extra datagrams (spoofed/duplicate answers) to emit alongside.
  std::vector<InterposedDatagram> extra;
};

/// Interposes on one outgoing response: `response` and `delay` are mutable
/// (message-level faults); wire-level actions go through `out`.
using ResponseInterposer =
    std::function<void(const DnsMessage& query, DnsMessage& response,
                       SimTime& delay, ResponseDirectives& out)>;

}  // namespace lazyeye::dns
