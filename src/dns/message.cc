#include "dns/message.h"

#include "util/strings.h"

namespace lazyeye::dns {

namespace {
constexpr std::uint16_t kClassIn = 1;

void encode_record(const ResourceRecord& rr, ByteWriter& w,
                   NameCompressor* compression) {
  rr.name.encode(w, compression);
  w.u16(static_cast<std::uint16_t>(rr.type));
  if (rr.type == RrType::kOpt) {
    // For OPT the class field carries the advertised UDP payload size.
    const auto* opt = std::get_if<OptRdata>(&rr.rdata);
    w.u16(opt != nullptr ? opt->udp_payload_size : 1232);
  } else {
    w.u16(kClassIn);
  }
  w.u32(rr.ttl);
  const std::size_t len_at = w.size();
  w.u16(0);  // placeholder rdlength
  encode_rdata(rr, w, compression);
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - len_at - 2));
}

bool decode_record(ByteReader& r, ResourceRecord& rr) {
  DnsName::decode_into(r, rr.name);
  const std::uint16_t type = r.u16();
  const std::uint16_t klass = r.u16();
  rr.ttl = r.u32();
  const std::uint16_t rdlength = r.u16();
  if (!r.ok()) return false;
  const std::size_t end = r.pos() + rdlength;
  rr.type = static_cast<RrType>(type);
  rr.rdata = decode_rdata(rr.type, rdlength, r);
  if (rr.type == RrType::kOpt) {
    std::get<OptRdata>(rr.rdata).udp_payload_size = klass;
  }
  if (!r.ok()) return false;
  // Tolerate rdata decoders that did not consume exactly rdlength (e.g.
  // unknown trailing params) but never read past it.
  if (r.pos() > end) return false;
  r.seek(end);
  return r.ok();
}

}  // namespace

const char* rcode_name(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError: return "NOERROR";
    case Rcode::kFormErr: return "FORMERR";
    case Rcode::kServFail: return "SERVFAIL";
    case Rcode::kNxDomain: return "NXDOMAIN";
    case Rcode::kNotImp: return "NOTIMP";
    case Rcode::kRefused: return "REFUSED";
  }
  return "RCODE?";
}

std::vector<std::uint8_t> DnsMessage::encode() const {
  ByteWriter w;
  NameCompressor compression;
  encode_into(w, compression);
  return w.take();
}

void DnsMessage::encode_into(simnet::Buffer& out,
                             NameCompressor& compression) const {
  // DNS messages always exceed the Buffer's inline capacity (12-byte header
  // + question), so serialise straight into the (pooled) heap block.
  std::vector<std::uint8_t>& storage = out.heap_storage();
  storage.clear();
  ByteWriter w{storage};
  encode_into(w, compression);
}

void DnsMessage::encode_into(ByteWriter& w, NameCompressor& compression) const {
  compression.clear();

  w.u16(header.id);
  std::uint16_t flags = 0;
  if (header.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((header.opcode & 0x0F) << 11);
  if (header.aa) flags |= 0x0400;
  if (header.tc) flags |= 0x0200;
  if (header.rd) flags |= 0x0100;
  if (header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(header.rcode) & 0x0F;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));

  for (const Question& q : questions) {
    q.name.encode(w, &compression);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(kClassIn);
  }
  for (const auto& rr : answers) encode_record(rr, w, &compression);
  for (const auto& rr : authorities) encode_record(rr, w, &compression);
  for (const auto& rr : additionals) encode_record(rr, w, &compression);
}

namespace {

/// Shared parse body; returns nullptr on success, an error literal on
/// failure. Fills `msg` in place so callers can reuse its section capacity.
const char* decode_message(std::span<const std::uint8_t> wire,
                           DnsMessage& msg) {
  ByteReader r{wire};
  msg.header = DnsHeader{};
  // Sections are *resized* to the wire counts, not cleared: surviving
  // elements (and the name/label buffers inside them) are decoded into in
  // place, so a scratch DnsMessage parses packet after packet without
  // allocating once its high-water capacity is reached.

  msg.header.id = r.u16();
  const std::uint16_t flags = r.u16();
  msg.header.qr = (flags & 0x8000) != 0;
  msg.header.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  msg.header.aa = (flags & 0x0400) != 0;
  msg.header.tc = (flags & 0x0200) != 0;
  msg.header.rd = (flags & 0x0100) != 0;
  msg.header.ra = (flags & 0x0080) != 0;
  msg.header.rcode = static_cast<Rcode>(flags & 0x0F);

  const std::uint16_t qdcount = r.u16();
  const std::uint16_t ancount = r.u16();
  const std::uint16_t nscount = r.u16();
  const std::uint16_t arcount = r.u16();
  if (!r.ok()) return "truncated header";

  msg.questions.resize(qdcount);
  for (Question& q : msg.questions) {
    DnsName::decode_into(r, q.name);
    q.type = static_cast<RrType>(r.u16());
    r.u16();  // class
    if (!r.ok()) return "truncated question";
  }

  auto read_section = [&](std::vector<ResourceRecord>& out,
                          std::uint16_t count) -> bool {
    out.resize(count);
    for (ResourceRecord& rr : out) {
      if (!decode_record(r, rr)) return false;
    }
    return true;
  };
  if (!read_section(msg.answers, ancount)) {
    return "truncated answer section";
  }
  if (!read_section(msg.authorities, nscount)) {
    return "truncated authority section";
  }
  if (!read_section(msg.additionals, arcount)) {
    return "truncated additional section";
  }
  return nullptr;
}

}  // namespace

Result<DnsMessage> DnsMessage::decode(std::span<const std::uint8_t> wire) {
  DnsMessage msg;
  if (const char* error = decode_message(wire, msg)) {
    return Result<DnsMessage>::failure(error);
  }
  return msg;
}

bool DnsMessage::decode_into(std::span<const std::uint8_t> wire,
                             DnsMessage& out) {
  return decode_message(wire, out) == nullptr;
}

DnsMessage DnsMessage::make_query(std::uint16_t id, DnsName name, RrType type,
                                  bool recursion_desired) {
  DnsMessage msg;
  msg.header.id = id;
  msg.header.rd = recursion_desired;
  msg.questions.push_back(Question{std::move(name), type});
  return msg;
}

DnsMessage DnsMessage::make_response(const DnsMessage& query, Rcode rcode) {
  DnsMessage msg;
  msg.header.id = query.header.id;
  msg.header.qr = true;
  msg.header.rd = query.header.rd;
  msg.header.rcode = rcode;
  msg.questions = query.questions;
  return msg;
}

bool DnsMessage::has_answer_for(const DnsName& name, RrType type) const {
  for (const auto& rr : answers) {
    if (rr.type == type && rr.name == name) return true;
  }
  return false;
}

std::vector<simnet::IpAddress> DnsMessage::addresses_for(const DnsName& name,
                                                         RrType type) const {
  std::vector<simnet::IpAddress> out;
  addresses_for_into(name, type, out);
  return out;
}

void DnsMessage::addresses_for_into(const DnsName& name, RrType type,
                                    std::vector<simnet::IpAddress>& out) const {
  out.clear();
  // Chase the cursor by pointer: CNAME targets live in the answer section, so
  // no per-hop DnsName copy is needed.
  const DnsName* current = &name;
  // Chase CNAMEs inside the message (bounded by the answer count).
  for (std::size_t hops = 0; hops <= answers.size(); ++hops) {
    bool chased = false;
    for (const auto& rr : answers) {
      if (rr.name != *current) continue;
      if (rr.type == type) {
        if (const auto addr = rr.address()) out.push_back(*addr);
      } else if (const auto* cn = std::get_if<CnameRdata>(&rr.rdata)) {
        current = &cn->target;
        chased = true;
      }
    }
    if (!chased || !out.empty()) break;
  }
}

std::string DnsMessage::summary() const {
  std::string q = questions.empty()
                      ? "-"
                      : questions.front().name.to_string() + "/" +
                            rr_type_name(questions.front().type);
  return lazyeye::str_format("%s id=%u %s an=%zu ns=%zu ar=%zu %s",
                             header.qr ? "response" : "query", header.id,
                             q.c_str(), answers.size(), authorities.size(),
                             additionals.size(), rcode_name(header.rcode));
}

}  // namespace lazyeye::dns
