// DNS message: header + sections, RFC 1035 wire encode/decode.
//
// The codec has reuse-friendly entry points for the hot send/receive paths:
// encode_into() serialises into a caller-owned pooled Buffer (or external
// ByteWriter) with a reusable NameCompressor, and decode_into() parses into
// an existing message so section vectors keep their capacity across packets.
// encode()/decode() remain as one-shot conveniences on top of them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/rr.h"
#include "simnet/buffer.h"
#include "util/result.h"

namespace lazyeye::dns {

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

const char* rcode_name(Rcode rcode);

struct DnsHeader {
  std::uint16_t id = 0;
  bool qr = false;  // response flag
  std::uint8_t opcode = 0;
  bool aa = false;  // authoritative answer
  bool tc = false;  // truncated
  bool rd = false;  // recursion desired
  bool ra = false;  // recursion available
  Rcode rcode = Rcode::kNoError;

  bool operator==(const DnsHeader&) const = default;
};

struct Question {
  DnsName name;
  RrType type = RrType::kA;
  // Class is always IN for this library.

  bool operator==(const Question&) const = default;
};

struct DnsMessage {
  DnsHeader header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  bool operator==(const DnsMessage&) const = default;

  /// Serialises to RFC 1035 wire format (with name compression).
  std::vector<std::uint8_t> encode() const;

  /// Appends the wire form to `w` using `compression` as scratch (cleared
  /// here). Hot paths hand in a writer over reused storage plus a retained
  /// compressor so a steady-state encode performs no allocations beyond
  /// first-use growth.
  void encode_into(ByteWriter& w, NameCompressor& compression) const;

  /// Serialises into `out` (cleared first). With a pool-backed Buffer the
  /// wire block recycles through the owning Network's BufferPool.
  void encode_into(simnet::Buffer& out, NameCompressor& compression) const;

  /// Parses wire bytes; fails on truncated/garbage input.
  static Result<DnsMessage> decode(std::span<const std::uint8_t> wire);

  /// Parses into `out`, reusing its section vectors' capacity. Returns
  /// false on truncated/garbage input (out is then in an undefined but
  /// destructible/reusable state).
  static bool decode_into(std::span<const std::uint8_t> wire, DnsMessage& out);

  /// Builds a query for `name`/`type` with the given transaction id.
  static DnsMessage make_query(std::uint16_t id, DnsName name, RrType type,
                               bool recursion_desired = false);

  /// Builds a response skeleton echoing the query's id and question.
  static DnsMessage make_response(const DnsMessage& query,
                                  Rcode rcode = Rcode::kNoError);

  /// True if any answer record matches (qname, qtype).
  bool has_answer_for(const DnsName& name, RrType type) const;

  /// All A/AAAA addresses found in the answer section for `name`
  /// (follows CNAME indirection inside the message).
  std::vector<simnet::IpAddress> addresses_for(const DnsName& name,
                                               RrType type) const;

  /// As addresses_for, but fills a caller-owned vector (cleared first) so a
  /// reused scratch keeps its capacity across responses.
  void addresses_for_into(const DnsName& name, RrType type,
                          std::vector<simnet::IpAddress>& out) const;

  std::string summary() const;
};

}  // namespace lazyeye::dns
