// Thread-local recycling pool for DnsMessage scratch envelopes.
//
// The codec's decode_into()/encode_into() entry points make a *warm* message
// cheap to reuse, but every simulated world builds fresh DnsClient/AuthServer
// objects whose scratch envelopes start cold — so short-lived cells paid the
// full section/label growth cost on every build. Checking scratch envelopes
// out of a thread-local pool lets that capacity survive across consecutive
// cells on the same worker thread, the same way ScenarioPool retains arena
// chunks and packet buffers.
//
// Thread-locality matches the execution model: a cell runs entirely on one
// worker thread, so no synchronisation is needed and a message never moves
// between threads. Released messages keep their decoded contents (sections
// are NOT cleared) — decode_into() resizes to the wire counts and assigns
// elements in place, so stale elements are exactly the storage being
// recycled.
#pragma once

#include <utility>
#include <vector>

#include "dns/message.h"

namespace lazyeye::dns {

class MessagePool {
 public:
  /// This thread's pool.
  static MessagePool& local() {
    thread_local MessagePool pool;
    return pool;
  }

  /// Checks out a message (warm capacity when available).
  DnsMessage acquire() {
    if (idle_.empty()) return DnsMessage{};
    DnsMessage msg = std::move(idle_.back());
    idle_.pop_back();
    return msg;
  }

  /// Returns a message to the pool. Contents are retained deliberately —
  /// see the header comment. Beyond the cap the message is simply dropped.
  void release(DnsMessage&& msg) {
    if (idle_.size() < kCap) idle_.push_back(std::move(msg));
  }

  std::size_t idle() const { return idle_.size(); }

 private:
  // Enough for the worst simultaneous residency per thread (client query +
  // response + outcome envelopes, server query + response, analysis scratch)
  // with headroom; keeps a stuck thread from hoarding unbounded capacity.
  static constexpr std::size_t kCap = 16;
  std::vector<DnsMessage> idle_;
};

/// RAII checkout: `PooledMessage msg; use(*msg);` — releases on destruction.
class PooledMessage {
 public:
  PooledMessage() : msg_{MessagePool::local().acquire()} {}
  ~PooledMessage() { MessagePool::local().release(std::move(msg_)); }

  PooledMessage(const PooledMessage&) = delete;
  PooledMessage& operator=(const PooledMessage&) = delete;

  DnsMessage& operator*() { return msg_; }
  DnsMessage* operator->() { return &msg_; }

 private:
  DnsMessage msg_;
};

}  // namespace lazyeye::dns
