#include "dns/name.h"

#include <stdexcept>

#include "util/strings.h"

namespace lazyeye::dns {

namespace {
constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;
constexpr int kMaxPointerJumps = 32;
}  // namespace

Result<DnsName> DnsName::from_string(std::string_view text) {
  DnsName name;
  if (text.empty() || text == ".") return name;
  if (text.back() == '.') text.remove_suffix(1);
  const char* error = nullptr;
  lazyeye::for_each_split(text, '.', [&](std::string_view raw) {
    if (raw.empty()) {
      error = "empty label in name";
      return false;
    }
    if (raw.size() > kMaxLabel) {
      error = "label longer than 63 octets";
      return false;
    }
    // Lowercase straight into the stored label: one string per label, no
    // split()/to_lower() intermediates.
    std::string& label = name.labels_.emplace_back();
    label.reserve(raw.size());
    for (const char c : raw) {
      label.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                           : c);
    }
    return true;
  });
  if (error != nullptr) {
    std::string detail{error};
    detail.append(": ");
    detail.append(text);
    return Result<DnsName>::failure(std::move(detail));
  }
  if (name.wire_length() > kMaxName) {
    return Result<DnsName>::failure("name longer than 255 octets");
  }
  return name;
}

DnsName DnsName::must_parse(std::string_view text) {
  auto r = from_string(text);
  if (!r.ok()) throw std::invalid_argument(r.error());
  return std::move(r).value();
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  return lazyeye::join(labels_, ".");
}

std::size_t DnsName::wire_length() const {
  std::size_t n = 1;  // root length byte
  for (const auto& l : labels_) n += 1 + l.size();
  return n;
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i) {
    if (labels_[offset + i] != ancestor.labels_[i]) return false;
  }
  return true;
}

DnsName DnsName::parent() const {
  DnsName p;
  if (labels_.size() <= 1) return p;
  p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

DnsName DnsName::prepend(std::string_view label) const {
  DnsName p;
  p.labels_.reserve(labels_.size() + 1);
  p.labels_.push_back(lazyeye::to_lower(label));
  p.labels_.insert(p.labels_.end(), labels_.begin(), labels_.end());
  return p;
}

void DnsName::assign_tail(const DnsName& src, std::size_t skip) {
  // vector::assign copy-assigns over retained elements, so warm label
  // strings recycle their buffers. Self-assignment (src == *this) would
  // alias; callers never do that, and the skip==0 whole-copy case is safe
  // via operator= anyway.
  labels_.assign(src.labels_.begin() + static_cast<std::ptrdiff_t>(skip),
                 src.labels_.end());
}

DnsName DnsName::concat(const DnsName& suffix) const {
  DnsName p;
  p.labels_ = labels_;
  p.labels_.insert(p.labels_.end(), suffix.labels_.begin(),
                   suffix.labels_.end());
  return p;
}

std::optional<std::uint16_t> NameCompressor::find(
    const DnsName& name, std::size_t label_index) const {
  const auto& labels = name.labels();
  const std::size_t len = labels.size() - label_index;
  // First match wins: record() never overwrites (emplace semantics of the
  // old map), so scanning in insertion order reproduces its offsets.
  for (const Entry& e : entries_) {
    const auto& other = e.name->labels();
    if (other.size() - e.label_index != len) continue;
    bool equal = true;
    for (std::size_t i = 0; i < len; ++i) {
      if (labels[label_index + i] != other[e.label_index + i]) {
        equal = false;
        break;
      }
    }
    if (equal) return e.offset;
  }
  return std::nullopt;
}

void NameCompressor::record(const DnsName& name, std::size_t label_index,
                            std::uint16_t offset) {
  entries_.push_back(
      Entry{&name, static_cast<std::uint32_t>(label_index), offset});
}

void DnsName::encode(ByteWriter& w, NameCompressor* compression) const {
  // Emit labels left to right; at each suffix, check for a prior occurrence.
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (compression != nullptr) {
      if (const auto offset = compression->find(*this, i)) {
        w.u16(static_cast<std::uint16_t>(0xC000 | *offset));
        return;
      }
      if (w.size() <= 0x3FFF) {
        compression->record(*this, i, static_cast<std::uint16_t>(w.size()));
      }
    }
    w.u8(static_cast<std::uint8_t>(labels_[i].size()));
    w.bytes(std::string_view{labels_[i]});
  }
  w.u8(0);  // root
}

DnsName DnsName::decode(ByteReader& r) {
  DnsName name;
  decode_into(r, name);
  return name;
}

void DnsName::decode_into(ByteReader& r, DnsName& out) {
  int jumps = 0;
  std::optional<std::size_t> resume;  // position after the first pointer
  std::size_t total = 0;
  std::size_t count = 0;  // labels written so far (slots below reused)

  const auto fail = [&] {
    out.labels_.clear();
  };

  for (;;) {
    const std::uint8_t len = r.u8();
    if (!r.ok()) return fail();
    if ((len & 0xC0) == 0xC0) {
      const std::uint8_t low = r.u8();
      if (!r.ok()) return fail();
      if (++jumps > kMaxPointerJumps) {
        r.mark_bad();
        return fail();
      }
      if (!resume) resume = r.pos();
      r.seek(static_cast<std::size_t>((len & 0x3F) << 8 | low));
      if (!r.ok()) return fail();
      continue;
    }
    if ((len & 0xC0) != 0) {  // 0x40/0x80 label types are unsupported
      r.mark_bad();
      return fail();
    }
    if (len == 0) break;
    total += 1 + len;
    if (total > kMaxName) {
      r.mark_bad();
      return fail();
    }
    // Lower-case straight off the wire view — no intermediate std::string
    // temporaries (most labels then land in the stored string's SSO), and
    // existing label slots are assigned in place so their buffers recycle.
    const std::span<const std::uint8_t> raw = r.view(len);
    if (!r.ok()) return fail();
    if (count == out.labels_.size()) out.labels_.emplace_back();
    std::string& label = out.labels_[count++];
    label.clear();
    label.reserve(raw.size());
    for (const std::uint8_t c : raw) {
      label.push_back(
          c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                               : static_cast<char>(c));
    }
  }
  out.labels_.resize(count);

  if (resume) r.seek(*resume);
}

}  // namespace lazyeye::dns
