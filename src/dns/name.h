// DNS domain names: label sequences with RFC 1035 wire encoding, including
// message compression (0xC0 pointers) on decode and encode.
//
// Names are stored lowercase (DNS comparisons are case-insensitive) as a
// label vector without the root label; the root name has zero labels.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace lazyeye::dns {

/// Offsets of already-encoded names, used for compression on encode.
/// Key is the canonical dotted representation of a name suffix.
using CompressionMap = std::map<std::string, std::uint16_t>;

class DnsName {
 public:
  DnsName() = default;  // root

  /// Parses dotted text ("www.example.com", trailing dot optional).
  /// Enforces label <= 63 octets and total wire length <= 255.
  static Result<DnsName> from_string(std::string_view text);

  /// from_string or throws std::invalid_argument — for literals.
  static DnsName must_parse(std::string_view text);

  /// Dotted form; "." for the root name.
  std::string to_string() const;

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Wire length of the encoded name without compression.
  std::size_t wire_length() const;

  /// True if this name equals `ancestor` or is below it.
  bool is_subdomain_of(const DnsName& ancestor) const;

  /// Name with the leftmost label removed; root stays root.
  DnsName parent() const;

  /// New name with `label` prepended (leftmost).
  DnsName prepend(std::string_view label) const;

  /// Concatenation: this.labels + suffix.labels.
  DnsName concat(const DnsName& suffix) const;

  /// Encodes at the current writer position. If `compression` is non-null,
  /// uses/records pointer targets (offsets must fit 14 bits to be recorded).
  void encode(ByteWriter& w, CompressionMap* compression) const;

  /// Decodes from the reader (follows compression pointers; caps the jump
  /// count to defeat pointer loops). On failure marks the reader bad.
  static DnsName decode(ByteReader& r);

  auto operator<=>(const DnsName&) const = default;

 private:
  std::vector<std::string> labels_;
};

}  // namespace lazyeye::dns
