// DNS domain names: label sequences with RFC 1035 wire encoding, including
// message compression (0xC0 pointers) on decode and encode.
//
// Names are stored lowercase (DNS comparisons are case-insensitive) as a
// label vector without the root label; the root name has zero labels.
//
// Compression state for one message lives in a NameCompressor: a flat list
// of (name, label-suffix, offset) entries compared label-wise, replacing the
// old std::map<std::string, offset> whose per-suffix key strings dominated
// the encode path's allocations. A compressor is clear()-able scratch, so
// hot senders reuse one across messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace lazyeye::dns {

class DnsName;

/// Offsets of already-encoded name suffixes, used for compression on encode.
/// Entries reference the DnsName objects handed to DnsName::encode(), which
/// must stay alive until the message is fully encoded (they always are: the
/// DnsMessage outlives its serialisation). clear() keeps the entry storage,
/// so steady-state encoding records suffixes without allocating.
class NameCompressor {
 public:
  void clear() { entries_.clear(); }

  /// Offset of a previously recorded suffix equal to `name[label_index..]`,
  /// earliest recording first (mirrors the old map's emplace semantics).
  std::optional<std::uint16_t> find(const DnsName& name,
                                    std::size_t label_index) const;

  /// Records that `name[label_index..]` was encoded at `offset`.
  void record(const DnsName& name, std::size_t label_index,
              std::uint16_t offset);

 private:
  struct Entry {
    const DnsName* name;
    std::uint32_t label_index;
    std::uint16_t offset;
  };
  std::vector<Entry> entries_;
};

class DnsName {
 public:
  DnsName() = default;  // root

  /// Parses dotted text ("www.example.com", trailing dot optional).
  /// Enforces label <= 63 octets and total wire length <= 255.
  static Result<DnsName> from_string(std::string_view text);

  /// from_string or throws std::invalid_argument — for literals.
  static DnsName must_parse(std::string_view text);

  /// Dotted form; "." for the root name.
  std::string to_string() const;

  bool is_root() const { return labels_.empty(); }
  std::size_t label_count() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }
  const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Wire length of the encoded name without compression.
  std::size_t wire_length() const;

  /// True if this name equals `ancestor` or is below it.
  bool is_subdomain_of(const DnsName& ancestor) const;

  /// Name with the leftmost label removed; root stays root.
  DnsName parent() const;

  /// New name with `label` prepended (leftmost).
  DnsName prepend(std::string_view label) const;

  /// Concatenation: this.labels + suffix.labels.
  DnsName concat(const DnsName& suffix) const;

  /// Makes this name `src` with its first `skip` labels removed, reusing
  /// this name's label storage (no allocation once warm). skip must be
  /// <= src.label_count().
  void assign_tail(const DnsName& src, std::size_t skip);

  /// Encodes at the current writer position. If `compression` is non-null,
  /// uses/records pointer targets (offsets must fit 14 bits to be recorded);
  /// the name must then outlive the compressor's current message.
  void encode(ByteWriter& w, NameCompressor* compression) const;

  /// Decodes from the reader (follows compression pointers; caps the jump
  /// count to defeat pointer loops). On failure marks the reader bad.
  static DnsName decode(ByteReader& r);

  /// Decodes into `out`, reusing its label storage (vector capacity and the
  /// per-label string buffers). Steady-state message parsing with a scratch
  /// DnsMessage decodes names without allocating. On failure marks the
  /// reader bad and leaves `out` empty.
  static void decode_into(ByteReader& r, DnsName& out);

  auto operator<=>(const DnsName&) const = default;

 private:
  std::vector<std::string> labels_;
};

}  // namespace lazyeye::dns
