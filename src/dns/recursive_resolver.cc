#include "dns/recursive_resolver.h"

#include <algorithm>

#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::dns {

namespace {
constexpr int kMaxCnameChase = 4;
constexpr int kMaxDelegationDepth = 12;
}  // namespace

const char* ns_query_strategy_name(NsQueryStrategy s) {
  switch (s) {
    case NsQueryStrategy::kAaaaThenA: return "AAAA-then-A";
    case NsQueryStrategy::kAThenAaaa: return "A-then-AAAA";
    case NsQueryStrategy::kAaaaAfterFirstUse: return "AAAA-after-first-use";
    case NsQueryStrategy::kEitherOr: return "either-or";
    case NsQueryStrategy::kGlueOnly: return "glue-only";
  }
  return "?";
}

RecursiveResolver::RecursiveResolver(simnet::Host& host,
                                     ResolverProfile profile,
                                     std::vector<simnet::IpAddress> root_hints)
    : host_{host},
      profile_{std::move(profile)},
      root_hints_{std::move(root_hints)},
      client_{host} {}

void RecursiveResolver::serve(std::uint16_t port) {
  serve_port_ = port;
  host_.udp_bind(port, [this](const simnet::Packet& packet) {
    if (!DnsMessage::decode_into(packet.payload, serve_scratch_) ||
        serve_scratch_.questions.empty()) {
      return;
    }
    const DnsMessage& query = serve_scratch_;
    const Question& q = query.questions.front();
    const simnet::Endpoint reply_from = packet.dst;
    const simnet::Endpoint reply_to = packet.src;
    const std::uint16_t txn = query.header.id;
    const bool rd = query.header.rd;

    resolve(q.name, q.type,
            [this, reply_from, reply_to, txn, rd, q](const QueryOutcome& out) {
              DnsMessage response;
              response.header.id = txn;
              response.header.qr = true;
              response.header.rd = rd;
              response.header.ra = true;
              response.questions.push_back(q);
              if (out.ok) {
                response.header.rcode = out.rcode;
                response.answers = out.response.answers;
              } else if (out.rcode == Rcode::kNxDomain) {
                response.header.rcode = Rcode::kNxDomain;
              } else {
                response.header.rcode = Rcode::kServFail;
              }

              if (serve_interposer_) {
                // Fault-injection slow path: rebuild the query envelope
                // (the serve scratch was reused during resolution) and let
                // the interposer edit/delay/drop/augment the response.
                DnsMessage query_echo;
                query_echo.header.id = txn;
                query_echo.header.rd = rd;
                query_echo.questions.push_back(q);
                SimTime delay{0};
                ResponseDirectives directives;
                serve_interposer_(query_echo, response, delay, directives);
                for (InterposedDatagram& extra : directives.extra) {
                  host_.udp_send(reply_from, reply_to,
                                 simnet::Buffer::adopt(std::move(extra.wire)));
                }
                if (directives.drop) return;
                simnet::Buffer wire{&host_.network().buffer_pool()};
                response.encode_into(wire, serve_compressor_);
                if (directives.mutate_wire) {
                  directives.mutate_wire(wire.heap_storage());
                }
                if (delay.count() > 0) {
                  host_.network().loop().schedule_after(
                      delay,
                      [this, reply_from, reply_to,
                       wire = std::move(wire)]() mutable {
                        host_.udp_send(reply_from, reply_to, std::move(wire));
                      });
                  return;
                }
                host_.udp_send(reply_from, reply_to, std::move(wire));
                return;
              }

              simnet::Buffer wire{&host_.network().buffer_pool()};
              response.encode_into(wire, serve_compressor_);
              host_.udp_send(reply_from, reply_to, std::move(wire));
            });
  });
}

void RecursiveResolver::stop_serving() {
  if (serve_port_ != 0) host_.udp_unbind(serve_port_);
  serve_port_ = 0;
}

void RecursiveResolver::log_step(ResolveStep::Kind kind, simnet::Family family,
                                 const DnsName& qname, RrType qtype,
                                 std::string note) {
  steps_.push_back(ResolveStep{kind, host_.network().loop().now(), family,
                               qname, qtype, std::move(note)});
}

std::uint64_t RecursiveResolver::resolve(const DnsName& qname, RrType qtype,
                                         Handler handler) {
  const std::uint64_t id = next_job_id_++;
  Job& job = jobs_[id];
  job.id = id;
  job.qname = qname;
  job.qtype = qtype;
  job.handler = std::move(handler);

  job.overall_timer = host_.network().loop().schedule_after(
      profile_.overall_timeout, [this, id] {
        QueryOutcome out;
        out.error = "overall timeout";
        finish(id, std::move(out));
      });

  start_iteration(id);
  return id;
}

void RecursiveResolver::start_iteration(std::uint64_t job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;

  // Seed the server pool: cached delegation closest to qname, else root.
  job.zone = DnsName{};  // root
  NsServerInfo root;
  root.name = DnsName::must_parse("root-server.lab");
  for (const auto& addr : root_hints_) {
    (addr.is_v4() ? root.v4 : root.v6).push_back(addr);
  }
  job.servers = {std::move(root)};

  if (cache_enabled_) {
    const DnsName* best = nullptr;
    for (const auto& [zone, servers] : delegation_cache_) {
      if (!job.qname.is_subdomain_of(zone)) continue;
      if (best == nullptr || zone.label_count() > best->label_count()) {
        best = &zone;
      }
    }
    if (best != nullptr) {
      job.zone = *best;
      job.servers = delegation_cache_.at(*best);
    }
  }

  job.family_chosen = false;
  job.packets_this_family = 0;
  job.total_attempts = 0;
  send_main_query(job_id);
}

std::optional<simnet::Endpoint> RecursiveResolver::pick_address(Job& job) {
  std::vector<simnet::IpAddress> v4;
  std::vector<simnet::IpAddress> v6;
  for (const auto& server : job.servers) {
    v4.insert(v4.end(), server.v4.begin(), server.v4.end());
    v6.insert(v6.end(), server.v6.begin(), server.v6.end());
  }
  // Respect transport capability (both ours and the host's addressing).
  if (!profile_.ipv6_transport_capable ||
      !host_.address(simnet::Family::kIpv6)) {
    v6.clear();
  }
  if (!host_.address(simnet::Family::kIpv4)) v4.clear();
  if (v4.empty() && v6.empty()) return std::nullopt;

  if (!job.family_chosen) {
    if (v6.empty()) {
      job.family = simnet::Family::kIpv4;
    } else if (v4.empty()) {
      job.family = simnet::Family::kIpv6;
    } else {
      job.family = host_.network().rng().chance(profile_.ipv6_probability)
                       ? simnet::Family::kIpv6
                       : simnet::Family::kIpv4;
    }
    job.family_chosen = true;
    job.packets_this_family = 0;
    job.timeout = profile_.attempt_timeout;
  }

  const auto& pool = job.family == simnet::Family::kIpv6 ? v6 : v4;
  if (pool.empty()) {
    // Chosen family has no addresses; fall back to the other one.
    job.family = simnet::other_family(job.family);
    job.packets_this_family = 0;
    job.timeout = profile_.attempt_timeout;
    const auto& fallback =
        job.family == simnet::Family::kIpv6 ? v6 : v4;
    if (fallback.empty()) return std::nullopt;
    return simnet::Endpoint{
        fallback[static_cast<std::size_t>(job.packets_this_family) %
                 fallback.size()],
        53};
  }
  return simnet::Endpoint{
      pool[static_cast<std::size_t>(job.packets_this_family) % pool.size()],
      53};
}

void RecursiveResolver::send_main_query(std::uint64_t job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;

  const auto target = pick_address(job);
  if (!target) {
    QueryOutcome out;
    out.error = "no usable name server address";
    finish(job_id, std::move(out));
    return;
  }

  DnsClientOptions copts;
  copts.timeout = job.timeout;
  copts.attempts = 1;

  ++job.packets_this_family;
  ++job.total_attempts;
  log_step(ResolveStep::Kind::kQuerySent, target->addr.family(), job.qname,
           job.qtype, "to " + target->to_string());

  job.client_handle = client_.query(
      *target, job.qname, job.qtype, copts,
      [this, job_id](const QueryOutcome& outcome) {
        if (outcome.ok || outcome.rcode == Rcode::kNxDomain) {
          on_main_response(job_id, outcome);
        } else {
          on_main_timeout(job_id);
        }
      });
}

void RecursiveResolver::on_main_timeout(std::uint64_t job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;

  log_step(ResolveStep::Kind::kTimeout, job.family, job.qname, job.qtype);

  if (job.total_attempts >= profile_.max_total_attempts) {
    QueryOutcome out;
    out.error = "exhausted retries";
    finish(job_id, std::move(out));
    return;
  }

  // Decide whether to retry the same family or switch.
  bool retry_same = false;
  if (profile_.stick_to_family) {
    retry_same = true;
  } else if (job.packets_this_family < profile_.max_packets_per_family) {
    const double p = profile_.retry_same_family_prob;
    retry_same = p >= 1.0 || (p > 0.0 && host_.network().rng().chance(p));
  }

  if (retry_same) {
    if (profile_.backoff_factor > 1.0) {
      job.timeout = SimTime{static_cast<std::int64_t>(
          static_cast<double>(job.timeout.count()) * profile_.backoff_factor)};
    }
    send_main_query(job_id);
    return;
  }

  // Switch family.
  job.family = simnet::other_family(job.family);
  job.packets_this_family = 0;
  job.timeout = profile_.attempt_timeout;
  log_step(ResolveStep::Kind::kFamilySwitch, job.family, job.qname, job.qtype);
  send_main_query(job_id);
}

void RecursiveResolver::on_main_response(std::uint64_t job_id,
                                         const QueryOutcome& outcome) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;

  log_step(ResolveStep::Kind::kResponse, job.family, job.qname, job.qtype);

  // Deferred AAAA acquisition (Google-style): the child auth has now been
  // contacted; issue the NS AAAA query for the record books.
  if (profile_.ns_query_strategy == NsQueryStrategy::kAaaaAfterFirstUse &&
      !job.servers.empty() && !job.zone.is_root() &&
      !job.servers.front().name.is_root()) {
    NsServerInfo& primary = job.servers.front();
    if (!primary.deferred_aaaa_sent) {
      primary.deferred_aaaa_sent = true;
      const auto target = pick_address(job);
      if (target) {
        DnsClientOptions copts;
        copts.timeout = profile_.ns_query_timeout;
        copts.attempts = 1;
        log_step(ResolveStep::Kind::kNsAddrQuery, target->addr.family(),
                 primary.name, RrType::kAaaa, "deferred");
        client_.query(*target, primary.name, RrType::kAaaa, copts,
                      [](const QueryOutcome&) {});
      }
    }
  }

  const DnsMessage& msg = outcome.response;

  if (outcome.rcode == Rcode::kNxDomain) {
    finish(job_id, outcome);
    return;
  }

  // Answer present?
  if (!msg.answers.empty()) {
    const auto addrs = msg.addresses_for(job.qname, job.qtype);
    if (!addrs.empty() || msg.has_answer_for(job.qname, job.qtype)) {
      log_step(ResolveStep::Kind::kAnswer, job.family, job.qname, job.qtype);
      finish(job_id, outcome);
      return;
    }
    // CNAME without the target type in the same message: chase it.
    for (const auto& rr : msg.answers) {
      if (rr.name == job.qname) {
        if (const auto* cn = std::get_if<CnameRdata>(&rr.rdata)) {
          if (++job.cname_chase > kMaxCnameChase) {
            QueryOutcome out;
            out.error = "CNAME chain too long";
            finish(job_id, std::move(out));
            return;
          }
          job.qname = cn->target;
          start_iteration(job_id);
          return;
        }
      }
    }
    // Unrelated answer records: treat as the final response.
    finish(job_id, outcome);
    return;
  }

  // Referral?
  bool has_ns = false;
  for (const auto& rr : msg.authorities) {
    if (rr.type == RrType::kNs) {
      has_ns = true;
      break;
    }
  }
  if (has_ns) {
    handle_referral(job_id, msg);
    return;
  }

  // NODATA (possibly with SOA): definitive empty answer.
  finish(job_id, outcome);
}

void RecursiveResolver::handle_referral(std::uint64_t job_id,
                                        const DnsMessage& response) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;

  if (++job.delegation_depth > kMaxDelegationDepth) {
    QueryOutcome out;
    out.error = "delegation too deep";
    finish(job_id, std::move(out));
    return;
  }

  DnsName new_zone;
  std::vector<NsServerInfo> pool;
  for (const auto& rr : response.authorities) {
    if (rr.type != RrType::kNs) continue;
    new_zone = rr.name;
    NsServerInfo info;
    info.name = std::get<NsRdata>(rr.rdata).ns;
    if (profile_.use_glue) {
      for (const auto& glue : response.additionals) {
        if (glue.name != info.name) continue;
        if (const auto addr = glue.address()) {
          (addr->is_v4() ? info.v4 : info.v6).push_back(*addr);
        }
      }
    }
    pool.push_back(std::move(info));
  }
  if (pool.empty() || new_zone == job.zone ||
      !new_zone.is_subdomain_of(job.zone)) {
    QueryOutcome out;
    out.error = "lame referral";
    finish(job_id, std::move(out));
    return;
  }

  job.zone = new_zone;
  job.servers = std::move(pool);
  job.family_chosen = false;
  job.packets_this_family = 0;
  job.total_attempts = 0;
  if (cache_enabled_) delegation_cache_[job.zone] = job.servers;

  acquire_ns_addresses(job_id);
}

void RecursiveResolver::acquire_ns_addresses(std::uint64_t job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;

  NsServerInfo& primary = job.servers.front();
  const bool has_glue = !primary.v4.empty() || !primary.v6.empty();

  const auto strategy = profile_.ns_query_strategy;
  const bool explicit_queries =
      strategy != NsQueryStrategy::kGlueOnly &&
      strategy != NsQueryStrategy::kAaaaAfterFirstUse &&
      (!has_glue || profile_.requery_with_glue);

  if (!explicit_queries) {
    if (!has_glue && strategy != NsQueryStrategy::kGlueOnly) {
      // Still need at least one address: fall through to explicit queries.
    } else {
      send_main_query(job_id);
      return;
    }
  }

  // Where to send the NS-name address queries: the child zone is
  // authoritative for its (in-bailiwick) NS names; use glue when present.
  simnet::IpAddress target_addr;
  if (!primary.v4.empty() && host_.address(simnet::Family::kIpv4)) {
    target_addr = primary.v4.front();
  } else if (!primary.v6.empty() && profile_.ipv6_transport_capable &&
             host_.address(simnet::Family::kIpv6)) {
    target_addr = primary.v6.front();
  } else {
    // No glue at all: we cannot reach the child; give up (our lab topology
    // always provides glue, so this indicates a broken delegation).
    QueryOutcome out;
    out.error = "no glue for in-bailiwick NS";
    finish(job_id, std::move(out));
    return;
  }
  const simnet::Endpoint target{target_addr, 53};

  std::vector<RrType> types;
  switch (strategy) {
    case NsQueryStrategy::kAaaaThenA:
      types = {RrType::kAaaa, RrType::kA};
      break;
    case NsQueryStrategy::kAThenAaaa:
      types = {RrType::kA, RrType::kAaaa};
      break;
    case NsQueryStrategy::kEitherOr:
      types = {global_either_or_toggle_ ? RrType::kA : RrType::kAaaa};
      global_either_or_toggle_ = !global_either_or_toggle_;
      break;
    case NsQueryStrategy::kGlueOnly:
    case NsQueryStrategy::kAaaaAfterFirstUse:
      types = {};
      break;
  }
  if (types.empty()) {
    send_main_query(job_id);
    return;
  }

  job.pending_ns_queries = static_cast<int>(types.size());
  const DnsName ns_name = primary.name;

  // Guard timer: proceed with whatever we have if responses are slow. This
  // is what surfaces resolver-side Resolution-Delay-like behaviour.
  job.ns_timer = host_.network().loop().schedule_after(
      profile_.ns_query_timeout, [this, job_id] {
        auto jit = jobs_.find(job_id);
        if (jit == jobs_.end() || jit->second.done) return;
        if (jit->second.pending_ns_queries <= 0) return;
        jit->second.pending_ns_queries = 0;
        send_main_query(job_id);
      });

  auto issue = [this, job_id, ns_name](const simnet::Endpoint& target,
                                       RrType type) {
    log_step(ResolveStep::Kind::kNsAddrQuery, target.addr.family(), ns_name,
             type);
    DnsClientOptions copts;
    copts.timeout = profile_.ns_query_timeout;
    copts.attempts = 1;
    client_.query(
        target, ns_name, type, copts,
        [this, job_id, ns_name, type](const QueryOutcome& outcome) {
          auto jit = jobs_.find(job_id);
          if (jit == jobs_.end() || jit->second.done) return;
          Job& j = jit->second;
          if (outcome.ok) {
            for (const auto& section :
                 {&outcome.response.answers, &outcome.response.additionals}) {
              for (const auto& rr : *section) {
                if (rr.name != ns_name) continue;
                if (const auto addr = rr.address()) {
                  for (auto& server : j.servers) {
                    if (server.name != ns_name) continue;
                    auto& list = addr->is_v4() ? server.v4 : server.v6;
                    if (std::find(list.begin(), list.end(), *addr) ==
                        list.end()) {
                      list.push_back(*addr);
                    }
                  }
                }
              }
            }
          }
          if (j.pending_ns_queries > 0 && --j.pending_ns_queries == 0) {
            host_.network().loop().cancel(j.ns_timer);
            send_main_query(job_id);
          }
        });
  };

  if (profile_.parallel_ns_queries && types.size() == 2) {
    // DNS0.EU-style: the two queries ride different transport families when
    // possible (Table 3 footnote 1 — the relative delay is unmeasurable).
    simnet::Endpoint second_target = target;
    if (!primary.v6.empty() && profile_.ipv6_transport_capable &&
        host_.address(simnet::Family::kIpv6) &&
        target.addr.family() == simnet::Family::kIpv4) {
      second_target = simnet::Endpoint{primary.v6.front(), 53};
    } else if (!primary.v4.empty() &&
               host_.address(simnet::Family::kIpv4) &&
               target.addr.family() == simnet::Family::kIpv6) {
      second_target = simnet::Endpoint{primary.v4.front(), 53};
    }
    issue(target, types[0]);
    issue(second_target, types[1]);
    return;
  }

  // Ordered: issue the first immediately and the second right after (they
  // are distinct packets and the auth log preserves the order).
  for (const RrType type : types) issue(target, type);
}

void RecursiveResolver::finish(std::uint64_t job_id, QueryOutcome outcome) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.done) return;
  Job& job = it->second;
  job.done = true;

  host_.network().loop().cancel(job.overall_timer);
  host_.network().loop().cancel(job.ns_timer);
  if (job.client_handle != 0) client_.cancel(job.client_handle);

  if (!outcome.ok && outcome.rcode == Rcode::kNoError &&
      !outcome.error.empty()) {
    outcome.rcode = Rcode::kServFail;
  }
  log_step(outcome.ok ? ResolveStep::Kind::kAnswer : ResolveStep::Kind::kFailure,
           job.family, job.qname, job.qtype, outcome.error);

  Handler handler = std::move(job.handler);
  jobs_.erase(it);
  handler(outcome);
}

}  // namespace lazyeye::dns
