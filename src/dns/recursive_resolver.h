// Recursive resolver engine: iterative resolution from root hints with
// profile-driven IP version preference and fallback behaviour.
//
// The engine is deliberately observable: every packet it emits crosses the
// simulated network and lands in the authoritative servers' query logs, which
// is where the resolver study (paper §5.3) takes all of its measurements.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dns/client.h"
#include "dns/interpose.h"
#include "dns/resolver_profile.h"

namespace lazyeye::dns {

/// A name server with its (possibly partial) address knowledge.
struct NsServerInfo {
  DnsName name;
  std::vector<simnet::IpAddress> v4;
  std::vector<simnet::IpAddress> v6;
  /// Set once the deferred (Google-style) AAAA query has been issued.
  bool deferred_aaaa_sent = false;

  bool has_family(simnet::Family f) const {
    return f == simnet::Family::kIpv4 ? !v4.empty() : !v6.empty();
  }
};

/// Internal step log (useful for tests; the lab uses auth-side logs).
struct ResolveStep {
  enum class Kind {
    kQuerySent,
    kResponse,
    kTimeout,
    kFamilySwitch,
    kNsAddrQuery,
    kAnswer,
    kFailure,
  };
  Kind kind;
  SimTime time{0};
  simnet::Family family = simnet::Family::kIpv4;
  DnsName qname;
  RrType qtype = RrType::kA;
  std::string note;
};

class RecursiveResolver {
 public:
  using Handler = std::function<void(const QueryOutcome&)>;

  /// `root_hints`: addresses of the root name server(s).
  RecursiveResolver(simnet::Host& host, ResolverProfile profile,
                    std::vector<simnet::IpAddress> root_hints);

  /// Starts answering RD queries from clients on `port`.
  void serve(std::uint16_t port = 53);
  void stop_serving();

  /// Resolves qname/qtype iteratively; invokes handler exactly once.
  std::uint64_t resolve(const DnsName& qname, RrType qtype, Handler handler);

  const ResolverProfile& profile() const { return profile_; }
  const std::vector<ResolveStep>& steps() const { return steps_; }
  void clear_steps() { steps_.clear(); }

  /// Minimal positive cache (zone -> servers) reuse across queries can be
  /// disabled to keep measurement campaigns cache-free like the paper's.
  void set_delegation_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  /// Fault-injection hook on the serve() response path (dns/interpose.h).
  /// Unset (the default) costs one branch per served response.
  void set_response_interposer(ResponseInterposer hook) {
    serve_interposer_ = std::move(hook);
  }

 private:
  struct Job {
    std::uint64_t id = 0;
    DnsName qname;
    RrType qtype = RrType::kA;
    Handler handler;

    std::vector<NsServerInfo> servers;  // current delegation's servers
    DnsName zone;                       // current delegation owner

    // NS-address acquisition state.
    int pending_ns_queries = 0;
    simnet::TimerId ns_timer;
    int delegation_depth = 0;

    // Attempt state for the current zone.
    simnet::Family family = simnet::Family::kIpv4;
    bool family_chosen = false;
    int packets_this_family = 0;
    int total_attempts = 0;
    SimTime timeout{0};

    std::uint64_t client_handle = 0;
    simnet::TimerId overall_timer;
    int cname_chase = 0;
    bool done = false;
  };

  void start_iteration(std::uint64_t job_id);
  void send_main_query(std::uint64_t job_id);
  void on_main_response(std::uint64_t job_id, const QueryOutcome& outcome);
  void on_main_timeout(std::uint64_t job_id);
  void handle_referral(std::uint64_t job_id, const DnsMessage& response);
  void acquire_ns_addresses(std::uint64_t job_id);
  void finish(std::uint64_t job_id, QueryOutcome outcome);

  /// Picks the next (family, address) to contact; nullopt => no usable
  /// address at all.
  std::optional<simnet::Endpoint> pick_address(Job& job);

  void log_step(ResolveStep::Kind kind, simnet::Family family,
                const DnsName& qname, RrType qtype, std::string note = {});

  simnet::Host& host_;
  ResolverProfile profile_;
  std::vector<simnet::IpAddress> root_hints_;
  DnsClient client_;
  std::map<std::uint64_t, Job> jobs_;
  std::vector<ResolveStep> steps_;
  std::map<DnsName, std::vector<NsServerInfo>> delegation_cache_;
  bool cache_enabled_ = false;
  bool global_either_or_toggle_ = false;
  std::uint64_t next_job_id_ = 1;
  std::uint16_t serve_port_ = 0;
  ResponseInterposer serve_interposer_;
  // Decode/encode scratch for the serve() front-end (single-threaded).
  DnsMessage serve_scratch_;
  NameCompressor serve_compressor_;
};

}  // namespace lazyeye::dns
