// Behaviour knobs for the recursive resolver engine.
//
// Each knob corresponds to an observable the paper measures at the
// authoritative name server (§5.3, Table 3): the order of NS-name AAAA/A
// queries, the IPv6 share of iterative queries, the effective per-attempt
// timeout ("max IPv6 delay used"), retry/backoff behaviour, and whether the
// resolver interleaves address families when retrying.
#pragma once

#include <string>

#include "util/time.h"

namespace lazyeye::dns {

/// How the resolver learns the addresses of a delegated zone's name servers.
enum class NsQueryStrategy {
  /// AAAA query first, A immediately after; waits for both before contacting
  /// the child zone (Unbound, most open services).
  kAaaaThenA,
  /// A first, then AAAA (BIND, DNS.sb).
  kAThenAaaa,
  /// Contacts the child over IPv4 glue first; the AAAA query for the NS name
  /// is only sent afterwards (Google Public DNS).
  kAaaaAfterFirstUse,
  /// Sends either an A or a AAAA query for the NS name, never both,
  /// alternating between zones (Knot Resolver).
  kEitherOr,
  /// Uses glue only; never queries NS-name addresses explicitly.
  kGlueOnly,
};

const char* ns_query_strategy_name(NsQueryStrategy s);

struct ResolverProfile {
  std::string name = "default";

  // ---- NS address acquisition --------------------------------------------
  NsQueryStrategy ns_query_strategy = NsQueryStrategy::kAaaaThenA;
  /// Trust glue records from referrals (if false, always re-queries).
  bool use_glue = true;
  /// Re-query NS addresses even when glue is present (12/13 services do).
  bool requery_with_glue = true;
  /// Issue the NS-name A and AAAA queries in parallel rather than in order
  /// (DNS0.EU — makes the AAAA-vs-A delay unmeasurable, Table 3 footnote 1).
  bool parallel_ns_queries = false;
  /// How long to wait for NS-name address responses before proceeding with
  /// whatever addresses are known.
  SimTime ns_query_timeout = lazyeye::ms(800);

  // ---- Address family selection for iterative queries ---------------------
  /// Probability of choosing IPv6 when both families are available.
  /// 1.0 = strict IPv6 preference (BIND, OpenDNS); 0.0 = IPv4 only.
  double ipv6_probability = 0.5;
  /// Per-attempt timeout before the retry logic kicks in. This is the
  /// resolver-side analogue of the Happy Eyeballs CAD: the largest upstream
  /// IPv6 delay the resolver tolerates before abandoning IPv6.
  SimTime attempt_timeout = lazyeye::ms(400);
  /// Probability of retrying the same family after a timeout (Unbound: 0.44).
  double retry_same_family_prob = 0.0;
  /// Timeout multiplier applied on a same-family retry (Unbound's exponential
  /// backoff: 376 ms -> 1128 ms).
  double backoff_factor = 1.0;
  /// Maximum consecutive packets to one family before switching
  /// (Yandex sends up to 6 to IPv6).
  int max_packets_per_family = 1;
  /// Never switch families on retry; keep hitting the initially chosen
  /// family until giving up (DNS0.EU).
  bool stick_to_family = false;
  /// Total attempts across families before SERVFAIL.
  int max_total_attempts = 6;

  // ---- Capabilities --------------------------------------------------------
  /// False for services that cannot resolve IPv6-only delegations at all
  /// (Hurricane Electric, Lumen, Dyn, G-Core — Table 4).
  bool ipv6_transport_capable = true;

  /// Overall per-client-query budget.
  SimTime overall_timeout = lazyeye::sec(15);
};

}  // namespace lazyeye::dns
