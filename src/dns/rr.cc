#include "dns/rr.h"

#include <algorithm>

#include "util/strings.h"

namespace lazyeye::dns {

const char* rr_type_name(RrType t) {
  switch (t) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kSoa: return "SOA";
    case RrType::kTxt: return "TXT";
    case RrType::kAaaa: return "AAAA";
    case RrType::kOpt: return "OPT";
    case RrType::kSvcb: return "SVCB";
    case RrType::kHttps: return "HTTPS";
  }
  return "TYPE?";
}

std::optional<RrType> rr_type_from_name(std::string_view name) {
  const std::string lower = lazyeye::to_lower(name);
  if (lower == "a") return RrType::kA;
  if (lower == "ns") return RrType::kNs;
  if (lower == "cname") return RrType::kCname;
  if (lower == "soa") return RrType::kSoa;
  if (lower == "txt") return RrType::kTxt;
  if (lower == "aaaa") return RrType::kAaaa;
  if (lower == "opt") return RrType::kOpt;
  if (lower == "svcb") return RrType::kSvcb;
  if (lower == "https") return RrType::kHttps;
  return std::nullopt;
}

// ------------------------------------------------------ SVCB parameters ----

void SvcbRdata::set_alpn(const std::vector<std::string>& protocols) {
  ByteWriter w;
  for (const auto& p : protocols) {
    w.u8(static_cast<std::uint8_t>(p.size()));
    w.bytes(std::string_view{p});
  }
  params[static_cast<std::uint16_t>(SvcParamKey::kAlpn)] = w.take();
}

std::vector<std::string> SvcbRdata::alpn() const {
  std::vector<std::string> out;
  const auto it = params.find(static_cast<std::uint16_t>(SvcParamKey::kAlpn));
  if (it == params.end()) return out;
  ByteReader r{it->second};
  while (r.ok() && r.remaining() > 0) {
    const std::uint8_t len = r.u8();
    out.push_back(r.str(len));
  }
  return out;
}

void SvcbRdata::set_port(std::uint16_t port) {
  ByteWriter w;
  w.u16(port);
  params[static_cast<std::uint16_t>(SvcParamKey::kPort)] = w.take();
}

std::optional<std::uint16_t> SvcbRdata::port() const {
  const auto it = params.find(static_cast<std::uint16_t>(SvcParamKey::kPort));
  if (it == params.end() || it->second.size() != 2) return std::nullopt;
  return static_cast<std::uint16_t>(it->second[0] << 8 | it->second[1]);
}

void SvcbRdata::set_ipv4_hints(const std::vector<simnet::Ipv4Address>& addrs) {
  ByteWriter w;
  for (const auto& a : addrs) w.u32(a.value);
  params[static_cast<std::uint16_t>(SvcParamKey::kIpv4Hint)] = w.take();
}

std::vector<simnet::Ipv4Address> SvcbRdata::ipv4_hints() const {
  std::vector<simnet::Ipv4Address> out;
  const auto it =
      params.find(static_cast<std::uint16_t>(SvcParamKey::kIpv4Hint));
  if (it == params.end()) return out;
  ByteReader r{it->second};
  while (r.ok() && r.remaining() >= 4) {
    out.push_back(simnet::Ipv4Address{r.u32()});
  }
  return out;
}

void SvcbRdata::set_ipv6_hints(const std::vector<simnet::Ipv6Address>& addrs) {
  ByteWriter w;
  for (const auto& a : addrs) w.bytes(a.bytes);
  params[static_cast<std::uint16_t>(SvcParamKey::kIpv6Hint)] = w.take();
}

std::vector<simnet::Ipv6Address> SvcbRdata::ipv6_hints() const {
  std::vector<simnet::Ipv6Address> out;
  const auto it =
      params.find(static_cast<std::uint16_t>(SvcParamKey::kIpv6Hint));
  if (it == params.end()) return out;
  ByteReader r{it->second};
  while (r.ok() && r.remaining() >= 16) {
    simnet::Ipv6Address a;
    const auto bytes = r.bytes(16);
    std::copy(bytes.begin(), bytes.end(), a.bytes.begin());
    out.push_back(a);
  }
  return out;
}

void SvcbRdata::set_ech(std::vector<std::uint8_t> config) {
  params[static_cast<std::uint16_t>(SvcParamKey::kEch)] = std::move(config);
}

bool SvcbRdata::has_ech() const {
  return params.count(static_cast<std::uint16_t>(SvcParamKey::kEch)) > 0;
}

// -------------------------------------------------------- constructors ----

ResourceRecord ResourceRecord::a(DnsName name, simnet::Ipv4Address addr,
                                 std::uint32_t ttl) {
  return {std::move(name), RrType::kA, ttl, ARdata{addr}};
}

ResourceRecord ResourceRecord::aaaa(DnsName name, simnet::Ipv6Address addr,
                                    std::uint32_t ttl) {
  return {std::move(name), RrType::kAaaa, ttl, AaaaRdata{addr}};
}

ResourceRecord ResourceRecord::ns(DnsName name, DnsName nsdname,
                                  std::uint32_t ttl) {
  return {std::move(name), RrType::kNs, ttl, NsRdata{std::move(nsdname)}};
}

ResourceRecord ResourceRecord::cname(DnsName name, DnsName target,
                                     std::uint32_t ttl) {
  return {std::move(name), RrType::kCname, ttl,
          CnameRdata{std::move(target)}};
}

ResourceRecord ResourceRecord::soa(DnsName name, SoaRdata soa,
                                   std::uint32_t ttl) {
  return {std::move(name), RrType::kSoa, ttl, std::move(soa)};
}

ResourceRecord ResourceRecord::txt(DnsName name,
                                   std::vector<std::string> strings,
                                   std::uint32_t ttl) {
  return {std::move(name), RrType::kTxt, ttl, TxtRdata{std::move(strings)}};
}

ResourceRecord ResourceRecord::svcb(DnsName name, SvcbRdata rdata, bool https,
                                    std::uint32_t ttl) {
  return {std::move(name), https ? RrType::kHttps : RrType::kSvcb, ttl,
          std::move(rdata)};
}

std::optional<simnet::IpAddress> ResourceRecord::address() const {
  if (const auto* a = std::get_if<ARdata>(&rdata)) {
    return simnet::IpAddress{a->addr};
  }
  if (const auto* aaaa = std::get_if<AaaaRdata>(&rdata)) {
    return simnet::IpAddress{aaaa->addr};
  }
  return std::nullopt;
}

std::string ResourceRecord::to_string() const {
  std::string rd;
  if (const auto* a = std::get_if<ARdata>(&rdata)) {
    rd = a->addr.to_string();
  } else if (const auto* aaaa = std::get_if<AaaaRdata>(&rdata)) {
    rd = aaaa->addr.to_string();
  } else if (const auto* ns = std::get_if<NsRdata>(&rdata)) {
    rd = ns->ns.to_string();
  } else if (const auto* cn = std::get_if<CnameRdata>(&rdata)) {
    rd = cn->target.to_string();
  } else if (const auto* soa = std::get_if<SoaRdata>(&rdata)) {
    rd = soa->mname.to_string() + " " + soa->rname.to_string();
  } else if (const auto* txt = std::get_if<TxtRdata>(&rdata)) {
    rd = lazyeye::join(txt->strings, " ");
  } else if (const auto* svcb = std::get_if<SvcbRdata>(&rdata)) {
    rd = lazyeye::str_format("%u %s (+%zu params)", svcb->priority,
                             svcb->target.to_string().c_str(),
                             svcb->params.size());
  } else if (std::get_if<OptRdata>(&rdata) != nullptr) {
    rd = "EDNS0";
  } else if (const auto* raw = std::get_if<RawRdata>(&rdata)) {
    rd = lazyeye::str_format("\\# %zu", raw->data.size());
  }
  return lazyeye::str_format("%s %u IN %s %s", name.to_string().c_str(), ttl,
                             rr_type_name(type), rd.c_str());
}

// --------------------------------------------------------- wire codecs ----

void encode_rdata(const ResourceRecord& rr, ByteWriter& w,
                  NameCompressor* compression) {
  if (const auto* a = std::get_if<ARdata>(&rr.rdata)) {
    w.u32(a->addr.value);
  } else if (const auto* aaaa = std::get_if<AaaaRdata>(&rr.rdata)) {
    w.bytes(aaaa->addr.bytes);
  } else if (const auto* ns = std::get_if<NsRdata>(&rr.rdata)) {
    ns->ns.encode(w, compression);
  } else if (const auto* cn = std::get_if<CnameRdata>(&rr.rdata)) {
    cn->target.encode(w, compression);
  } else if (const auto* soa = std::get_if<SoaRdata>(&rr.rdata)) {
    soa->mname.encode(w, compression);
    soa->rname.encode(w, compression);
    w.u32(soa->serial);
    w.u32(soa->refresh);
    w.u32(soa->retry);
    w.u32(soa->expire);
    w.u32(soa->minimum);
  } else if (const auto* txt = std::get_if<TxtRdata>(&rr.rdata)) {
    for (const auto& s : txt->strings) {
      w.u8(static_cast<std::uint8_t>(s.size()));
      w.bytes(std::string_view{s});
    }
  } else if (const auto* svcb = std::get_if<SvcbRdata>(&rr.rdata)) {
    w.u16(svcb->priority);
    svcb->target.encode(w, nullptr);  // RFC 9460: target is never compressed
    for (const auto& [key, value] : svcb->params) {
      w.u16(key);
      w.u16(static_cast<std::uint16_t>(value.size()));
      w.bytes(value);
    }
  } else if (const auto* opt = std::get_if<OptRdata>(&rr.rdata)) {
    (void)opt;  // OPT rdata is empty; udp size lives in the class field
  } else if (const auto* raw = std::get_if<RawRdata>(&rr.rdata)) {
    w.bytes(raw->data);
  }
}

Rdata decode_rdata(RrType type, std::uint16_t rdlength, ByteReader& r) {
  const std::size_t end = r.pos() + rdlength;
  switch (type) {
    case RrType::kA: {
      ARdata a{simnet::Ipv4Address{r.u32()}};
      return a;
    }
    case RrType::kAaaa: {
      AaaaRdata a;
      const auto bytes = r.bytes(16);
      if (bytes.size() == 16) {
        std::copy(bytes.begin(), bytes.end(), a.addr.bytes.begin());
      }
      return a;
    }
    case RrType::kNs:
      return NsRdata{DnsName::decode(r)};
    case RrType::kCname:
      return CnameRdata{DnsName::decode(r)};
    case RrType::kSoa: {
      SoaRdata soa;
      soa.mname = DnsName::decode(r);
      soa.rname = DnsName::decode(r);
      soa.serial = r.u32();
      soa.refresh = r.u32();
      soa.retry = r.u32();
      soa.expire = r.u32();
      soa.minimum = r.u32();
      return soa;
    }
    case RrType::kTxt: {
      TxtRdata txt;
      while (r.ok() && r.pos() < end) {
        const std::uint8_t len = r.u8();
        txt.strings.push_back(r.str(len));
      }
      return txt;
    }
    case RrType::kSvcb:
    case RrType::kHttps: {
      SvcbRdata svcb;
      svcb.priority = r.u16();
      svcb.target = DnsName::decode(r);
      while (r.ok() && r.pos() + 4 <= end) {
        const std::uint16_t key = r.u16();
        const std::uint16_t len = r.u16();
        svcb.params[key] = r.bytes(len);
      }
      return svcb;
    }
    case RrType::kOpt: {
      r.skip(rdlength);
      return OptRdata{};
    }
  }
  RawRdata raw;
  raw.type = static_cast<std::uint16_t>(type);
  raw.data = r.bytes(rdlength);
  return raw;
}

}  // namespace lazyeye::dns
