// Resource records: typed rdata for every record the experiments need
// (A, AAAA, NS, CNAME, SOA, TXT, OPT, and the RFC 9460 SVCB/HTTPS types
// that HEv3 consumes).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "simnet/ip.h"

namespace lazyeye::dns {

enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kTxt = 16,
  kAaaa = 28,
  kOpt = 41,
  kSvcb = 64,
  kHttps = 65,
};

const char* rr_type_name(RrType t);
std::optional<RrType> rr_type_from_name(std::string_view name);

struct ARdata {
  simnet::Ipv4Address addr;
  bool operator==(const ARdata&) const = default;
};

struct AaaaRdata {
  simnet::Ipv6Address addr;
  bool operator==(const AaaaRdata&) const = default;
};

struct NsRdata {
  DnsName ns;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  DnsName target;
  bool operator==(const CnameRdata&) const = default;
};

struct SoaRdata {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 1;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 900;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 60;
  bool operator==(const SoaRdata&) const = default;
};

struct TxtRdata {
  std::vector<std::string> strings;
  bool operator==(const TxtRdata&) const = default;
};

/// RFC 9460 SvcParamKeys used by HEv3.
enum class SvcParamKey : std::uint16_t {
  kMandatory = 0,
  kAlpn = 1,
  kNoDefaultAlpn = 2,
  kPort = 3,
  kIpv4Hint = 4,
  kEch = 5,
  kIpv6Hint = 6,
};

struct SvcbRdata {
  std::uint16_t priority = 1;  // 0 = AliasMode, >0 = ServiceMode
  DnsName target;
  std::map<std::uint16_t, std::vector<std::uint8_t>> params;

  // Typed param helpers (encode/decode the raw param value).
  void set_alpn(const std::vector<std::string>& protocols);
  std::vector<std::string> alpn() const;
  void set_port(std::uint16_t port);
  std::optional<std::uint16_t> port() const;
  void set_ipv4_hints(const std::vector<simnet::Ipv4Address>& addrs);
  std::vector<simnet::Ipv4Address> ipv4_hints() const;
  void set_ipv6_hints(const std::vector<simnet::Ipv6Address>& addrs);
  std::vector<simnet::Ipv6Address> ipv6_hints() const;
  void set_ech(std::vector<std::uint8_t> config);
  bool has_ech() const;

  bool operator==(const SvcbRdata&) const = default;
};

/// EDNS(0) OPT pseudo-record payload (we only need the UDP size).
struct OptRdata {
  std::uint16_t udp_payload_size = 1232;
  bool operator==(const OptRdata&) const = default;
};

/// Raw bytes for types we do not model (kept for wire fidelity).
struct RawRdata {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, AaaaRdata, NsRdata, CnameRdata, SoaRdata,
                           TxtRdata, SvcbRdata, OptRdata, RawRdata>;

struct ResourceRecord {
  DnsName name;
  RrType type = RrType::kA;
  std::uint32_t ttl = 60;
  Rdata rdata;

  bool operator==(const ResourceRecord&) const = default;

  std::string to_string() const;

  // Convenience constructors.
  static ResourceRecord a(DnsName name, simnet::Ipv4Address addr,
                          std::uint32_t ttl = 60);
  static ResourceRecord aaaa(DnsName name, simnet::Ipv6Address addr,
                             std::uint32_t ttl = 60);
  static ResourceRecord ns(DnsName name, DnsName nsdname,
                           std::uint32_t ttl = 60);
  static ResourceRecord cname(DnsName name, DnsName target,
                              std::uint32_t ttl = 60);
  static ResourceRecord soa(DnsName name, SoaRdata soa, std::uint32_t ttl = 60);
  static ResourceRecord txt(DnsName name, std::vector<std::string> strings,
                            std::uint32_t ttl = 60);
  static ResourceRecord svcb(DnsName name, SvcbRdata rdata, bool https,
                             std::uint32_t ttl = 60);

  /// The address carried by an A/AAAA record, if this is one.
  std::optional<simnet::IpAddress> address() const;
};

/// Encodes the rdata portion (without the length prefix) of `rr`.
void encode_rdata(const ResourceRecord& rr, ByteWriter& w,
                  NameCompressor* compression);

/// Decodes rdata given the already-parsed type and rdlength.
Rdata decode_rdata(RrType type, std::uint16_t rdlength, ByteReader& r);

}  // namespace lazyeye::dns
