#include "dns/stub_resolver.h"

#include <stdexcept>

namespace lazyeye::dns {

StubResolver::StubResolver(simnet::Host& host, StubOptions options)
    : host_{host},
      options_{std::move(options)},
      client_{host},
      requests_{host.network().memory()} {
  if (options_.servers.empty()) {
    throw std::invalid_argument("StubResolver needs at least one server");
  }
}

namespace {

// (handle, type) packed into one word so the DnsClient callback capture is
// exactly (this, tag) = 16 bytes and stays in std::function's inline buffer.
constexpr std::uint64_t make_tag(std::uint64_t handle, RrType type) {
  return (handle << 16) | static_cast<std::uint16_t>(type);
}

}  // namespace

void StubResolver::start_query(std::uint64_t handle, RrType type) {
  const auto req_it = requests_.find(handle);
  if (req_it == requests_.end()) return;
  PendingQuery& pending = req_it->second.queries[type];

  if (pending.server_index >= options_.servers.size()) {
    QueryOutcome outcome;
    outcome.error = "all servers failed";
    deliver(handle, type, outcome);
    return;
  }

  const simnet::Endpoint server = options_.servers[pending.server_index];
  DnsClientOptions copts;
  copts.timeout = options_.timeout;
  copts.attempts = options_.attempts_per_server;

  const std::uint64_t tag = make_tag(handle, type);
  const std::uint64_t client_handle = client_.query(
      server, req_it->second.name, type, copts,
      [this, tag](const QueryOutcome& outcome) {
        on_query_outcome(tag, outcome);
      },
      /*recursion_desired=*/true);

  // The query may have completed synchronously (and erased state): re-lookup
  // before recording the client handle.
  if (auto it = requests_.find(handle); it != requests_.end()) {
    if (auto qit = it->second.queries.find(type);
        qit != it->second.queries.end()) {
      qit->second.client_handle = client_handle;
    }
  }
}

void StubResolver::on_query_outcome(std::uint64_t tag,
                                    const QueryOutcome& outcome) {
  const std::uint64_t handle = tag >> 16;
  const auto type = static_cast<RrType>(tag & 0xFFFF);
  const auto it = requests_.find(handle);
  if (it == requests_.end()) return;
  if (outcome.ok || outcome.rcode == Rcode::kNxDomain) {
    // NXDOMAIN is a definitive (negative) answer, not a server failure.
    deliver(handle, type, outcome);
    return;
  }
  // Failover to the next server.
  it->second.queries[type].server_index++;
  start_query(handle, type);
}

void StubResolver::deliver(std::uint64_t handle, RrType type,
                           const QueryOutcome& outcome) {
  const auto it = requests_.find(handle);
  if (it == requests_.end()) return;
  Request& req = it->second;

  if (req.single) {
    // resolve(): one definitive outcome ends the request. Erase before the
    // callback so a handler that re-enters sees consistent state.
    auto handler = std::move(req.single);
    requests_.erase(it);
    handler(outcome);
    return;
  }

  req.queries.erase(type);
  const bool finished = req.queries.empty();
  if (outcome.ok || outcome.rcode == Rcode::kNxDomain) {
    if (req.dual.on_records) {
      // Local copy so a handler that cancels/finishes the request cannot
      // destroy the function object mid-invocation (engine handlers are
      // small, so the copy stays in the inline buffer).
      auto on_records = req.dual.on_records;
      outcome.response.addresses_for_into(req.name, type, addr_scratch_);
      on_records(type, addr_scratch_, outcome.rtt);
    }
  } else {
    if (req.dual.on_error) {
      auto on_error = req.dual.on_error;
      on_error(type, outcome.error);
    }
  }
  if (finished) requests_.erase(handle);
}

std::uint64_t StubResolver::resolve(
    const DnsName& name, RrType type,
    std::function<void(const QueryOutcome&)> handler) {
  const std::uint64_t handle = next_handle_++;
  Request& req = requests_[handle];
  req.name = name;
  req.single = std::move(handler);
  start_query(handle, type);
  return handle;
}

std::uint64_t StubResolver::resolve_dual(const DnsName& name,
                                         DualHandlers handlers,
                                         bool aaaa_first) {
  const std::uint64_t handle = next_handle_++;
  Request& req = requests_[handle];
  req.name = name;
  req.dual = std::move(handlers);

  const RrType first = aaaa_first ? RrType::kAaaa : RrType::kA;
  const RrType second = aaaa_first ? RrType::kA : RrType::kAaaa;
  // RFC 8305: AAAA first, A immediately after (same instant, ordered sends).
  start_query(handle, first);
  start_query(handle, second);
  return handle;
}

void StubResolver::cancel(std::uint64_t handle) {
  const auto it = requests_.find(handle);
  if (it == requests_.end()) return;
  for (auto& [type, pending] : it->second.queries) {
    client_.cancel(pending.client_handle);
  }
  requests_.erase(it);
}

}  // namespace lazyeye::dns
