#include "dns/stub_resolver.h"

#include <stdexcept>

namespace lazyeye::dns {

StubResolver::StubResolver(simnet::Host& host, StubOptions options)
    : host_{host}, options_{std::move(options)}, client_{host} {
  if (options_.servers.empty()) {
    throw std::invalid_argument("StubResolver needs at least one server");
  }
}

void StubResolver::start_query(std::uint64_t handle, const DnsName& name,
                               RrType type,
                               std::function<void(const QueryOutcome&)> done) {
  auto req_it = requests_.find(handle);
  if (req_it == requests_.end()) return;
  PendingQuery& pending = req_it->second.queries[type];

  if (pending.server_index >= options_.servers.size()) {
    QueryOutcome outcome;
    outcome.error = "all servers failed";
    done(outcome);
    return;
  }

  const simnet::Endpoint server = options_.servers[pending.server_index];
  DnsClientOptions copts;
  copts.timeout = options_.timeout;
  copts.attempts = options_.attempts_per_server;

  const std::uint64_t client_handle = client_.query(
      server, name, type, copts,
      [this, handle, name, type, done](const QueryOutcome& outcome) {
        auto it = requests_.find(handle);
        if (it == requests_.end()) return;
        if (outcome.ok || outcome.rcode == Rcode::kNxDomain) {
          // NXDOMAIN is a definitive (negative) answer, not a server failure.
          done(outcome);
          return;
        }
        // Failover to the next server.
        it->second.queries[type].server_index++;
        start_query(handle, name, type, done);
      },
      /*recursion_desired=*/true);

  // The query may have completed synchronously (and erased state): re-lookup
  // before recording the client handle.
  if (auto it = requests_.find(handle); it != requests_.end()) {
    if (auto qit = it->second.queries.find(type);
        qit != it->second.queries.end()) {
      qit->second.client_handle = client_handle;
    }
  }
}

std::uint64_t StubResolver::resolve(
    const DnsName& name, RrType type,
    std::function<void(const QueryOutcome&)> handler) {
  const std::uint64_t handle = next_handle_++;
  requests_[handle];  // create
  start_query(handle, name, type,
              [this, handle, handler = std::move(handler)](
                  const QueryOutcome& outcome) {
                requests_.erase(handle);
                handler(outcome);
              });
  return handle;
}

std::uint64_t StubResolver::resolve_dual(const DnsName& name,
                                         DualHandlers handlers,
                                         bool aaaa_first) {
  const std::uint64_t handle = next_handle_++;
  requests_[handle];  // create

  auto make_done = [this, handle, name, handlers](RrType type) {
    return [this, handle, name, type, handlers](const QueryOutcome& outcome) {
      auto it = requests_.find(handle);
      if (it == requests_.end()) return;
      it->second.queries.erase(type);
      const bool finished = it->second.queries.empty();
      if (outcome.ok || outcome.rcode == Rcode::kNxDomain) {
        if (handlers.on_records) {
          handlers.on_records(type, outcome.response.addresses_for(name, type),
                              outcome.rtt);
        }
      } else {
        if (handlers.on_error) handlers.on_error(type, outcome.error);
      }
      if (finished) requests_.erase(handle);
    };
  };

  const RrType first = aaaa_first ? RrType::kAaaa : RrType::kA;
  const RrType second = aaaa_first ? RrType::kA : RrType::kAaaa;
  // RFC 8305: AAAA first, A immediately after (same instant, ordered sends).
  start_query(handle, name, first, make_done(first));
  start_query(handle, name, second, make_done(second));
  return handle;
}

void StubResolver::cancel(std::uint64_t handle) {
  const auto it = requests_.find(handle);
  if (it == requests_.end()) return;
  for (auto& [type, pending] : it->second.queries) {
    client_.cancel(pending.client_handle);
  }
  requests_.erase(it);
}

}  // namespace lazyeye::dns
