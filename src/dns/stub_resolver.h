// Stub resolver used by HE clients.
//
// HEv2 (RFC 8305 §3) behaviour: issue the AAAA query first, immediately
// followed by the A query, and surface each response to the caller the
// moment it arrives (the Happy Eyeballs engine reacts per-record-type).
// Server failover and per-query timeout/retry mirror common OS stub
// behaviour; the timeout is the knob the paper shows browsers delegate to
// (§5.2: browsers without their own Resolution Delay wait for the resolver's
// timeout).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "dns/client.h"

namespace lazyeye::dns {

struct StubOptions {
  /// Resolver endpoints, tried in order when a query fails; the transport
  /// family follows each server's address (A lookups may ride IPv6 — a fact
  /// the paper's delayed-A experiment leans on).
  std::vector<simnet::Endpoint> servers;
  SimTime timeout = lazyeye::sec(5);
  int attempts_per_server = 2;
};

class StubResolver {
 public:
  StubResolver(simnet::Host& host, StubOptions options);

  /// Single-type lookup with server failover.
  std::uint64_t resolve(const DnsName& name, RrType type,
                        std::function<void(const QueryOutcome&)> handler);

  struct DualHandlers {
    /// Called once per record type as soon as its response arrives.
    /// `addresses` may be empty (NODATA / NXDOMAIN).
    std::function<void(RrType, const std::vector<simnet::IpAddress>&,
                       SimTime rtt)>
        on_records;
    /// Called on timeout / server failure for that record type.
    std::function<void(RrType, const std::string& error)> on_error;
  };

  /// AAAA + A resolution for Happy Eyeballs. Returns a request handle.
  std::uint64_t resolve_dual(const DnsName& name, DualHandlers handlers,
                             bool aaaa_first = true);

  void cancel(std::uint64_t handle);

  const StubOptions& options() const { return options_; }

 private:
  struct PendingQuery {
    std::size_t server_index = 0;
    std::uint64_t client_handle = 0;
  };
  struct Request {
    std::map<RrType, PendingQuery> queries;
  };

  void start_query(std::uint64_t handle, const DnsName& name, RrType type,
                   std::function<void(const QueryOutcome&)> done);

  simnet::Host& host_;
  StubOptions options_;
  DnsClient client_;
  std::map<std::uint64_t, Request> requests_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace lazyeye::dns
