// Stub resolver used by HE clients.
//
// HEv2 (RFC 8305 §3) behaviour: issue the AAAA query first, immediately
// followed by the A query, and surface each response to the caller the
// moment it arrives (the Happy Eyeballs engine reacts per-record-type).
// Server failover and per-query timeout/retry mirror common OS stub
// behaviour; the timeout is the knob the paper shows browsers delegate to
// (§5.2: browsers without their own Resolution Delay wait for the resolver's
// timeout).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory_resource>
#include <vector>

#include "dns/client.h"

namespace lazyeye::dns {

struct StubOptions {
  /// Resolver endpoints, tried in order when a query fails; the transport
  /// family follows each server's address (A lookups may ride IPv6 — a fact
  /// the paper's delayed-A experiment leans on).
  std::vector<simnet::Endpoint> servers;
  SimTime timeout = lazyeye::sec(5);
  int attempts_per_server = 2;
};

class StubResolver {
 public:
  StubResolver(simnet::Host& host, StubOptions options);

  /// Single-type lookup with server failover.
  std::uint64_t resolve(const DnsName& name, RrType type,
                        std::function<void(const QueryOutcome&)> handler);

  struct DualHandlers {
    /// Called once per record type as soon as its response arrives.
    /// `addresses` may be empty (NODATA / NXDOMAIN).
    std::function<void(RrType, const std::vector<simnet::IpAddress>&,
                       SimTime rtt)>
        on_records;
    /// Called on timeout / server failure for that record type.
    std::function<void(RrType, const std::string& error)> on_error;
  };

  /// AAAA + A resolution for Happy Eyeballs. Returns a request handle.
  std::uint64_t resolve_dual(const DnsName& name, DualHandlers handlers,
                             bool aaaa_first = true);

  void cancel(std::uint64_t handle);

  const StubOptions& options() const { return options_; }

 private:
  struct PendingQuery {
    std::size_t server_index = 0;
    std::uint64_t client_handle = 0;
  };
  // Per-request state lives here (qname, completion handlers) rather than in
  // each callback's captures: the DnsClient callbacks then close over a
  // single (this, tag) pair, which fits std::function's inline buffer — the
  // old per-query closure chain heap-allocated several functions and name
  // copies per lookup. Allocator-aware so the outer pmr::map's arena
  // resource propagates to the per-request query map.
  struct Request {
    using allocator_type = std::pmr::polymorphic_allocator<std::byte>;
    Request() = default;
    explicit Request(allocator_type alloc) : queries{alloc.resource()} {}
    Request(Request&& other, allocator_type alloc)
        : name{std::move(other.name)},
          dual{std::move(other.dual)},
          single{std::move(other.single)},
          queries{std::move(other.queries), alloc.resource()} {}

    DnsName name;
    DualHandlers dual;                                 // resolve_dual()
    std::function<void(const QueryOutcome&)> single;   // resolve()
    std::pmr::map<RrType, PendingQuery> queries;
  };

  void start_query(std::uint64_t handle, RrType type);
  void on_query_outcome(std::uint64_t tag, const QueryOutcome& outcome);
  void deliver(std::uint64_t handle, RrType type, const QueryOutcome& outcome);

  simnet::Host& host_;
  StubOptions options_;
  DnsClient client_;
  // Reused by deliver(): keeps its capacity across responses.
  std::vector<simnet::IpAddress> addr_scratch_;
  // Request/query nodes from the world's arena (see DnsClient).
  std::pmr::map<std::uint64_t, Request> requests_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace lazyeye::dns
