#include "dns/test_params.h"

#include "util/strings.h"

namespace lazyeye::dns {

SimTime TestParams::delay_for(RrType type) const {
  SimTime d = all_delay;
  if (const auto it = delays.find(type); it != delays.end()) d += it->second;
  return d;
}

namespace {

/// Parses one "d<ms>-<type>" label; returns false if it is not one.
bool parse_delay_label(const std::string& label, TestParams& out) {
  if (label.size() < 4 || label[0] != 'd') return false;
  const auto dash = label.find('-');
  if (dash == std::string::npos || dash < 2) return false;
  const auto ms_value = lazyeye::parse_u64(label.substr(1, dash - 1));
  if (!ms_value) return false;
  const std::string type_str = label.substr(dash + 1);
  const SimTime delay = lazyeye::ms(static_cast<std::int64_t>(*ms_value));
  if (type_str == "all") {
    out.all_delay += delay;
    return true;
  }
  const auto type = rr_type_from_name(type_str);
  if (!type) return false;
  out.delays[*type] += delay;
  return true;
}

bool is_nonce_label(const std::string& label) {
  if (label.size() < 2 || label[0] != 'n') return false;
  for (std::size_t i = 1; i < label.size(); ++i) {
    const char c = label[i];
    const bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
    if (!alnum) return false;
  }
  return true;
}

}  // namespace

std::optional<TestParams> parse_test_params(const DnsName& qname) {
  TestParams params;
  bool found = false;
  for (const std::string& label : qname.labels()) {
    if (parse_delay_label(label, params)) {
      found = true;
    } else if (is_nonce_label(label) && params.nonce.empty()) {
      params.nonce = label.substr(1);
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return params;
}

DnsName make_test_name(const DnsName& base, const std::string& nonce,
                       const std::map<RrType, SimTime>& delays,
                       SimTime all_delay) {
  DnsName name = base;
  if (all_delay.count() > 0) {
    name = name.prepend(lazyeye::str_format(
        "d%lld-all", static_cast<long long>(
                         std::chrono::duration_cast<std::chrono::milliseconds>(
                             all_delay)
                             .count())));
  }
  for (const auto& [type, delay] : delays) {
    name = name.prepend(lazyeye::str_format(
        "d%lld-%s",
        static_cast<long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(delay)
                .count()),
        lazyeye::to_lower(rr_type_name(type)).c_str()));
  }
  if (!nonce.empty()) name = name.prepend("n" + nonce);
  return name;
}

}  // namespace lazyeye::dns
