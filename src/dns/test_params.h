// Test parameters encoded in query names (paper §4.1 (ii)).
//
// The paper's authoritative server derives per-query behaviour from labels in
// the qname: the delay to apply, the record type to delay, and a nonce that
// defeats caching. Grammar used here (one or more parameter labels anywhere
// in the name):
//
//   d<ms>-<type>     delay responses to queries of <type> by <ms> milliseconds
//                    (<type> in {a, aaaa, ns, svcb, https, all})
//   n<alnum>         nonce label (ignored by the server, unique per test run)
//
// Example: n42x7.d250-aaaa.rd-test.he.lab
//   -> AAAA queries for this name are answered after 250 ms; other types
//      immediately. The nonce makes the name unique per repetition.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "dns/name.h"
#include "dns/rr.h"
#include "util/time.h"

namespace lazyeye::dns {

struct TestParams {
  /// Per-type response delays (absent type => no delay).
  std::map<RrType, SimTime> delays;
  /// Delay applied to all types (combined additively with per-type delays).
  SimTime all_delay{0};
  /// Nonce label, if present.
  std::string nonce;

  /// Effective delay for a query of `type`.
  SimTime delay_for(RrType type) const;

  /// True if any parameter label was present.
  bool any() const { return all_delay.count() > 0 || !delays.empty() || !nonce.empty(); }
};

/// Extracts parameters from a qname. Returns nullopt when the name carries
/// no parameter labels at all.
std::optional<TestParams> parse_test_params(const DnsName& qname);

/// Builds "<nonce-label>.<delay-labels>.<base>" for a test run.
/// `delays` maps record types to delays; types sharing a delay get their own
/// labels. Pass kAllTypes (nullopt key semantics) via `all_delay`.
DnsName make_test_name(const DnsName& base, const std::string& nonce,
                       const std::map<RrType, SimTime>& delays,
                       SimTime all_delay = SimTime{0});

}  // namespace lazyeye::dns
