#include "dns/zone.h"

#include <stdexcept>

namespace lazyeye::dns {

Zone::Zone(DnsName origin, std::pmr::memory_resource* mem)
    : origin_{std::move(origin)}, records_{mem} {
  // The relative SOA name stems are process-wide constants; only the
  // concat with this zone's origin is per-zone work.
  static const DnsName ns1 = DnsName::must_parse("ns1");
  static const DnsName hostmaster = DnsName::must_parse("hostmaster");
  SoaRdata soa;
  soa.mname = ns1.concat(origin_);
  soa.rname = hostmaster.concat(origin_);
  records_.emplace(origin_, ResourceRecord::soa(origin_, soa));
}

void Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(origin_)) {
    throw std::invalid_argument("record " + rr.name.to_string() +
                                " outside zone " + origin_.to_string());
  }
  records_.emplace(rr.name, std::move(rr));
}

void Zone::add_a(const DnsName& name, simnet::Ipv4Address addr,
                 std::uint32_t ttl) {
  add(ResourceRecord::a(name, addr, ttl));
}

void Zone::add_aaaa(const DnsName& name, simnet::Ipv6Address addr,
                    std::uint32_t ttl) {
  add(ResourceRecord::aaaa(name, addr, ttl));
}

void Zone::add_ns(const DnsName& owner, const DnsName& nsdname,
                  std::uint32_t ttl) {
  add(ResourceRecord::ns(owner, nsdname, ttl));
}

void Zone::add_cname(const DnsName& name, const DnsName& target,
                     std::uint32_t ttl) {
  add(ResourceRecord::cname(name, target, ttl));
}

void Zone::set_soa(SoaRdata soa) {
  // Replace the SOA created by the constructor.
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->first == origin_ && it->second.type == RrType::kSoa) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  records_.emplace(origin_, ResourceRecord::soa(origin_, std::move(soa)));
}

bool Zone::name_exists(const DnsName& name) const {
  if (records_.count(name) > 0) return true;
  // An "empty non-terminal" exists if any record lives below it.
  for (const auto& [owner, rr] : records_) {
    if (owner != name && owner.is_subdomain_of(name)) return true;
  }
  return false;
}

const DnsName* Zone::find_zone_cut(const DnsName& qname) const {
  // Walk from just below the origin down towards qname, looking for an NS
  // RRset at an intermediate owner (a zone cut). The origin's own NS records
  // are apex records, not a cut. Each candidate is a label suffix of qname,
  // assigned into the reused scratch instead of copied via parent() chains.
  const std::size_t extra = qname.label_count() - origin_.label_count();
  for (std::size_t depth = 1; depth <= extra; ++depth) {
    // candidate = last (origin_labels + depth) labels of qname.
    cut_scratch_.assign_tail(qname, extra - depth);
    const auto range = records_.equal_range(cut_scratch_);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second.type == RrType::kNs && cut_scratch_ != origin_) {
        return &cut_scratch_;
      }
    }
  }
  return nullptr;
}

std::vector<ResourceRecord> Zone::glue_for(const DnsName& name) const {
  std::vector<ResourceRecord> out;
  const auto range = records_.equal_range(name);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second.type == RrType::kA || it->second.type == RrType::kAaaa) {
      out.push_back(it->second);
    }
  }
  return out;
}

void Zone::lookup_into(const DnsName& qname, RrType qtype,
                       LookupRefs& out) const {
  out.clear();
  if (!qname.is_subdomain_of(origin_)) {
    out.kind = RcodeKind::kNotInZone;
    return;
  }

  // Delegation check first (RFC 1034 4.3.2 step 3b).
  if (const auto cut = find_zone_cut(qname)) {
    out.kind = RcodeKind::kDelegation;
    const auto range = records_.equal_range(*cut);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second.type != RrType::kNs) continue;
      out.records.push_back(&it->second);
      const auto& nsname = std::get<NsRdata>(it->second.rdata).ns;
      const auto glue_range = records_.equal_range(nsname);
      for (auto g = glue_range.first; g != glue_range.second; ++g) {
        if (g->second.type == RrType::kA || g->second.type == RrType::kAaaa) {
          out.additional.push_back(&g->second);
        }
      }
    }
    return;
  }

  auto soa_record = [&]() -> const ResourceRecord* {
    const auto range = records_.equal_range(origin_);
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second.type == RrType::kSoa) return &it->second;
    }
    return nullptr;
  };

  const auto range = records_.equal_range(qname);
  const bool name_has_records = range.first != range.second;

  // CNAME handling (only when the query is not for the CNAME itself).
  if (qtype != RrType::kCname) {
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second.type == RrType::kCname) {
        out.kind = RcodeKind::kCname;
        out.records.push_back(&it->second);
        return;
      }
    }
  }

  for (auto it = range.first; it != range.second; ++it) {
    if (it->second.type == qtype) out.records.push_back(&it->second);
  }
  if (!out.records.empty()) {
    out.kind = RcodeKind::kAnswer;
    return;
  }

  if (name_has_records || name_exists(qname)) {
    out.kind = RcodeKind::kNoData;
  } else {
    out.kind = RcodeKind::kNxDomain;
  }
  out.soa = soa_record();
}

Zone::LookupResult Zone::lookup(const DnsName& qname, RrType qtype) const {
  // One-shot convenience on top of lookup_into(): same semantics, but the
  // caller receives owned copies.
  LookupRefs refs;
  lookup_into(qname, qtype, refs);
  LookupResult result;
  result.kind = refs.kind;
  result.records.reserve(refs.records.size());
  for (const ResourceRecord* rr : refs.records) result.records.push_back(*rr);
  result.additional.reserve(refs.additional.size());
  for (const ResourceRecord* rr : refs.additional) {
    result.additional.push_back(*rr);
  }
  if (refs.soa != nullptr) result.soa = *refs.soa;
  return result;
}

}  // namespace lazyeye::dns
