// Authoritative zone data with RFC 1034 lookup semantics:
// answer / NODATA / NXDOMAIN / delegation (with glue) / CNAME.
#pragma once

#include <map>
#include <memory_resource>
#include <optional>
#include <vector>

#include "dns/rr.h"

namespace lazyeye::dns {

class Zone {
 public:
  /// `mem` backs the record storage; servers built inside an arena-backed
  /// world pass the world's resource so record nodes land on retained
  /// chunks.
  explicit Zone(DnsName origin, std::pmr::memory_resource* mem =
                                    std::pmr::get_default_resource());

  const DnsName& origin() const { return origin_; }

  /// Adds a record; `rr.name` must be at or below the origin.
  void add(ResourceRecord rr);

  // Convenience helpers (names may be given relative to nothing — they must
  // be fully qualified and inside the zone).
  void add_a(const DnsName& name, simnet::Ipv4Address addr,
             std::uint32_t ttl = 60);
  void add_aaaa(const DnsName& name, simnet::Ipv6Address addr,
                std::uint32_t ttl = 60);
  void add_ns(const DnsName& owner, const DnsName& nsdname,
              std::uint32_t ttl = 60);
  void add_cname(const DnsName& name, const DnsName& target,
                 std::uint32_t ttl = 60);
  void set_soa(SoaRdata soa);

  enum class RcodeKind {
    kAnswer,      // records of the requested type
    kNoData,      // name exists, no records of that type
    kNxDomain,    // name does not exist
    kDelegation,  // name is below a zone cut: referral
    kCname,       // name owns a CNAME (and qtype != CNAME)
    kNotInZone,   // qname not under this zone's origin
  };

  struct LookupResult {
    RcodeKind kind = RcodeKind::kNotInZone;
    std::vector<ResourceRecord> records;     // answers, CNAME, or the NS set
    std::vector<ResourceRecord> additional;  // glue for delegations
    std::optional<ResourceRecord> soa;       // for negative answers
  };

  /// Pure lookup; CNAME chasing is left to the server (it may re-query
  /// within the same zone).
  LookupResult lookup(const DnsName& qname, RrType qtype) const;

  /// Copy-free lookup result: records point into the zone's own storage
  /// (multimap nodes are stable), valid until the zone is mutated. clear()
  /// keeps the vectors' capacity, so a reused scratch makes the steady-state
  /// lookup allocation-free.
  struct LookupRefs {
    RcodeKind kind = RcodeKind::kNotInZone;
    std::vector<const ResourceRecord*> records;
    std::vector<const ResourceRecord*> additional;  // glue for delegations
    const ResourceRecord* soa = nullptr;            // for negative answers

    void clear() {
      kind = RcodeKind::kNotInZone;
      records.clear();
      additional.clear();
      soa = nullptr;
    }
  };

  /// lookup() without the per-call ResourceRecord copies: fills `out` (a
  /// caller-reused scratch) with pointers into the zone. The serve path
  /// copies each record at most once, straight into the response sections.
  void lookup_into(const DnsName& qname, RrType qtype, LookupRefs& out) const;

  /// All records (for inspection/tests).
  const std::pmr::multimap<DnsName, ResourceRecord>& records() const {
    return records_;
  }

  /// Glue lookup helper: in-zone A/AAAA records for `name`.
  std::vector<ResourceRecord> glue_for(const DnsName& name) const;

 private:
  bool name_exists(const DnsName& name) const;
  /// Topmost zone cut at/below `qname`, or nullptr. The returned name lives
  /// in `cut_scratch_` (valid until the next call on this zone).
  const DnsName* find_zone_cut(const DnsName& qname) const;

  DnsName origin_;
  std::pmr::multimap<DnsName, ResourceRecord> records_;
  // Candidate-name scratch for find_zone_cut: suffixes are assigned in
  // place instead of materialising a fresh DnsName per depth step (worlds
  // are single-threaded, so mutable scratch on a const path is safe).
  mutable DnsName cut_scratch_;
};

}  // namespace lazyeye::dns
