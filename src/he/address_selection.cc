#include "he/address_selection.h"

#include <algorithm>

namespace lazyeye::he {

namespace {

void sort_candidates(std::vector<AddressCandidate>& list,
                     const HeOptions& options) {
  // Stable sorts keep DNS order for ties (resolver-provided ordering is
  // itself meaningful).
  if (options.prefer_ech) {
    std::stable_sort(list.begin(), list.end(),
                     [](const AddressCandidate& a, const AddressCandidate& b) {
                       return a.ech_available > b.ech_available;
                     });
  }
  if (options.sort_by_history) {
    std::stable_sort(list.begin(), list.end(),
                     [](const AddressCandidate& a, const AddressCandidate& b) {
                       // Known RTT beats unknown; lower RTT beats higher.
                       if (a.history_rtt.has_value() !=
                           b.history_rtt.has_value()) {
                         return a.history_rtt.has_value();
                       }
                       if (!a.history_rtt) return false;
                       return *a.history_rtt < *b.history_rtt;
                     });
  }
}

}  // namespace

std::vector<AddressCandidate> select_addresses(const SelectionInput& input,
                                               const HeOptions& options) {
  std::vector<AddressCandidate> first =
      options.prefer_ipv6 ? input.ipv6 : input.ipv4;
  std::vector<AddressCandidate> second =
      options.prefer_ipv6 ? input.ipv4 : input.ipv6;

  sort_candidates(first, options);
  sort_candidates(second, options);

  const auto cap = static_cast<std::size_t>(
      std::max(0, options.max_addresses_per_family));
  if (first.size() > cap) first.resize(cap);
  if (second.size() > cap) second.resize(cap);

  if (!options.fallback_enabled) {
    // No fallback: the non-preferred family is only used when the preferred
    // one has no addresses at all.
    if (!first.empty()) return first;
    return second;
  }

  std::vector<AddressCandidate> out;
  out.reserve(first.size() + second.size());

  const std::size_t fafc = static_cast<std::size_t>(
      std::max(1, options.first_address_family_count));

  switch (options.interlace) {
    case InterlaceMode::kNone: {
      out.insert(out.end(), first.begin(), first.end());
      out.insert(out.end(), second.begin(), second.end());
      return out;
    }
    case InterlaceMode::kAlternate: {
      // RFC 8305 §4: start with `fafc` addresses of the preferred family,
      // then strictly alternate, starting with the other family.
      std::size_t i = std::min(fafc, first.size());
      out.insert(out.end(), first.begin(),
                 first.begin() + static_cast<std::ptrdiff_t>(i));
      std::size_t j = 0;
      bool take_second = true;
      while (i < first.size() || j < second.size()) {
        if (take_second && j < second.size()) {
          out.push_back(second[j++]);
        } else if (i < first.size()) {
          out.push_back(first[i++]);
        } else if (j < second.size()) {
          out.push_back(second[j++]);
        }
        take_second = !take_second;
      }
      return out;
    }
    case InterlaceMode::kFirstOtherThenRest: {
      // Safari (paper App. D): fafc preferred, one other, all remaining
      // preferred, then all remaining other.
      std::size_t i = std::min(fafc, first.size());
      out.insert(out.end(), first.begin(),
                 first.begin() + static_cast<std::ptrdiff_t>(i));
      std::size_t j = 0;
      if (j < second.size()) out.push_back(second[j++]);
      out.insert(out.end(), first.begin() + static_cast<std::ptrdiff_t>(i),
                 first.end());
      out.insert(out.end(), second.begin() + static_cast<std::ptrdiff_t>(j),
                 second.end());
      return out;
    }
  }
  return out;
}

}  // namespace lazyeye::he
