// RFC 8305 §4 destination address selection: sorting plus family interlacing
// with a First Address Family Count.
#pragma once

#include <optional>
#include <vector>

#include "he/options.h"
#include "simnet/ip.h"

namespace lazyeye::he {

struct AddressCandidate {
  simnet::IpAddress address;
  /// Historical RTT knowledge, if the client keeps any (HEv2 §4).
  std::optional<SimTime> history_rtt;
  /// Whether the source (e.g. an HTTPS RR) advertised ECH for this endpoint
  /// (HEv3 preference input).
  bool ech_available = false;
};

struct SelectionInput {
  std::vector<AddressCandidate> ipv6;
  std::vector<AddressCandidate> ipv4;
};

/// Produces the ordered attempt list:
///  1. optionally sorts each family list by historical RTT,
///  2. optionally prefers ECH-capable endpoints (HEv3),
///  3. truncates each family to `max_addresses_per_family`,
///  4. interlaces per `interlace`/`first_address_family_count` with the
///     preferred family first.
std::vector<AddressCandidate> select_addresses(const SelectionInput& input,
                                               const HeOptions& options);

}  // namespace lazyeye::he
