#include "he/cache.h"

namespace lazyeye::he {

std::optional<OutcomeCache::Entry> OutcomeCache::lookup(
    const dns::DnsName& host, SimTime now) const {
  const auto it = entries_.find(host);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.expiry <= now) return std::nullopt;
  return it->second;
}

void OutcomeCache::store(const dns::DnsName& host,
                         const simnet::IpAddress& address,
                         transport::TransportProtocol proto, SimTime now,
                         SimTime ttl) {
  if (ttl.count() <= 0) return;
  entries_[host] = Entry{address, proto, now + ttl};
}

}  // namespace lazyeye::he
