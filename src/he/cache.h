// Outcome cache: RFC 6555 §4.1 — remember which address/protocol won for a
// host "on the order of 10 minutes" and go straight to it next time.
#pragma once

#include <map>
#include <optional>

#include "dns/name.h"
#include "simnet/ip.h"
#include "transport/connection.h"
#include "util/time.h"

namespace lazyeye::he {

class OutcomeCache {
 public:
  struct Entry {
    simnet::IpAddress address;
    transport::TransportProtocol proto = transport::TransportProtocol::kTcp;
    SimTime expiry{0};
  };

  /// Returns the cached winner if present and not expired at `now`.
  std::optional<Entry> lookup(const dns::DnsName& host, SimTime now) const;

  void store(const dns::DnsName& host, const simnet::IpAddress& address,
             transport::TransportProtocol proto, SimTime now, SimTime ttl);

  void erase(const dns::DnsName& host) { entries_.erase(host); }
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<dns::DnsName, Entry> entries_;
};

}  // namespace lazyeye::he
