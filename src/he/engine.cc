#include "he/engine.h"

#include <algorithm>

#include "util/strings.h"

namespace lazyeye::he {

using transport::TransportProtocol;

const char* he_event_type_name(HeEvent::Type type) {
  switch (type) {
    case HeEvent::Type::kCacheHit: return "cache-hit";
    case HeEvent::Type::kDnsQuerySent: return "dns-query";
    case HeEvent::Type::kDnsResponse: return "dns-response";
    case HeEvent::Type::kDnsError: return "dns-error";
    case HeEvent::Type::kResolutionDelayStarted: return "rd-start";
    case HeEvent::Type::kResolutionDelayExpired: return "rd-expired";
    case HeEvent::Type::kAddressSelectionDone: return "address-selection";
    case HeEvent::Type::kAttemptStarted: return "attempt-start";
    case HeEvent::Type::kAttemptFailed: return "attempt-failed";
    case HeEvent::Type::kConnectionEstablished: return "established";
    case HeEvent::Type::kFailed: return "failed";
  }
  return "?";
}

HappyEyeballsEngine::HappyEyeballsEngine(simnet::Host& host,
                                         dns::StubResolver& stub,
                                         transport::TcpStack& tcp,
                                         transport::QuicStack* quic)
    : host_{host},
      stub_{stub},
      tcp_{tcp},
      quic_{quic},
      sessions_{host.network().memory()} {}

void HappyEyeballsEngine::trace_event(Session& s, HeEvent::Type type,
                                      std::string detail,
                                      simnet::IpAddress address,
                                      TransportProtocol proto) {
  s.trace.push_back(HeEvent{type, host_.network().loop().now(),
                            std::move(detail), address, proto});
}

std::uint64_t HappyEyeballsEngine::connect(const dns::DnsName& hostname,
                                           std::uint16_t port,
                                           CompletionHandler handler) {
  const std::uint64_t id = next_session_id_++;
  Session& s = sessions_[id];
  s.id = id;
  s.host = hostname;
  s.port = port;
  s.handler = std::move(handler);
  s.opts = options_;
  s.started = host_.network().loop().now();
  // One up-front block per vector instead of doubling through the typical
  // session's growth (a session sees ~10 trace events, a few addresses and
  // attempts).
  s.trace.reserve(12);
  s.v6.reserve(4);
  s.v4.reserve(4);
  s.plan.reserve(4);
  s.attempt_ids.reserve(4);

  // Reject a nonsensical parameter space up front: a configuration error is
  // delivered through the normal completion path (handler fires exactly
  // once). Deferred to the loop so the handler never runs re-entrantly
  // inside connect() — every other completion path fires from the loop.
  if (const Status config = s.opts.validate(); !config.ok()) {
    host_.network().loop().schedule_after(
        SimTime{0},
        [this, id, error = "configuration: " + config.error()] {
          fail(id, error);
        });
    return id;
  }

  s.overall_timer = host_.network().loop().schedule_after(
      s.opts.overall_timeout, [this, id] { fail(id, "overall timeout"); });

  // RFC 6555 §4.1 cache: go straight to the remembered winner.
  if (const auto cached = cache_.lookup(hostname, s.started)) {
    trace_event(s, HeEvent::Type::kCacheHit,
                cached->address.to_string(), cached->address, cached->proto);
    s.cache_attempt_active = true;
    s.connecting = true;
    AttemptPlan plan;
    plan.candidate.address = cached->address;
    plan.proto = cached->proto;
    s.plan.push_back(plan);
    launch_next_attempt(id);
    return id;
  }

  start_dns(id);
  return id;
}

void HappyEyeballsEngine::cancel(std::uint64_t session_id) {
  fail(session_id, "cancelled");
}

void HappyEyeballsEngine::start_dns(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;

  trace_event(s, HeEvent::Type::kDnsQuerySent,
              s.opts.query_aaaa_first ? "AAAA then A" : "A then AAAA");

  if (s.opts.use_svcb) {
    s.svcb_done = false;
    s.svcb_handle = stub_.resolve(
        s.host, dns::RrType::kHttps,
        [this, session_id](const dns::QueryOutcome& outcome) {
          on_svcb_outcome(session_id, outcome);
        });
  }

  dns::StubResolver::DualHandlers handlers;
  handlers.on_records = [this, session_id](
                            dns::RrType type,
                            const std::vector<simnet::IpAddress>& addrs,
                            SimTime) {
    on_dns_records(session_id, type, addrs);
  };
  handlers.on_error = [this, session_id](dns::RrType type,
                                         const std::string& error) {
    on_dns_error(session_id, type, error);
  };
  s.dns_handle =
      stub_.resolve_dual(s.host, handlers, s.opts.query_aaaa_first);
}

void HappyEyeballsEngine::on_svcb_outcome(std::uint64_t session_id,
                                          const dns::QueryOutcome& outcome) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  s.svcb_done = true;
  if (outcome.ok) {
    for (const auto& rr : outcome.response.answers) {
      const auto* svcb = std::get_if<dns::SvcbRdata>(&rr.rdata);
      if (svcb == nullptr || svcb->priority == 0) continue;  // skip AliasMode
      const bool ech = svcb->has_ech();
      for (const auto& alpn : svcb->alpn()) {
        if (alpn == "h3") s.svcb_h3 = true;
      }
      for (const auto& hint : svcb->ipv6_hints()) {
        s.v6.push_back(AddressCandidate{simnet::IpAddress{hint}, std::nullopt,
                                        ech});
      }
      for (const auto& hint : svcb->ipv4_hints()) {
        s.v4.push_back(AddressCandidate{simnet::IpAddress{hint}, std::nullopt,
                                        ech});
      }
    }
    trace_event(s, HeEvent::Type::kDnsResponse,
                lazyeye::str_format("HTTPS h3=%d", s.svcb_h3 ? 1 : 0));
  } else {
    trace_event(s, HeEvent::Type::kDnsError, "HTTPS: " + outcome.error);
  }
  reconsider(session_id);
}

void HappyEyeballsEngine::on_dns_records(
    std::uint64_t session_id, dns::RrType type,
    const std::vector<simnet::IpAddress>& addrs) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;

  auto& list = type == dns::RrType::kAaaa ? s.v6 : s.v4;
  for (const auto& addr : addrs) {
    const bool duplicate =
        std::any_of(list.begin(), list.end(), [&](const AddressCandidate& c) {
          return c.address == addr;
        });
    if (!duplicate) list.push_back(AddressCandidate{addr, std::nullopt, false});
  }
  if (type == dns::RrType::kAaaa) {
    s.aaaa_done = true;
  } else {
    s.a_done = true;
  }
  trace_event(s, HeEvent::Type::kDnsResponse,
              lazyeye::str_format("%s: %zu records", rr_type_name(type),
                                  addrs.size()));
  reconsider(session_id);
}

void HappyEyeballsEngine::on_dns_error(std::uint64_t session_id,
                                       dns::RrType type,
                                       const std::string& error) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  if (type == dns::RrType::kAaaa) {
    s.aaaa_done = true;
    s.aaaa_failed = true;
  } else {
    s.a_done = true;
    s.a_failed = true;
  }
  trace_event(s, HeEvent::Type::kDnsError,
              std::string{rr_type_name(type)} + ": " + error);
  reconsider(session_id);
}

bool HappyEyeballsEngine::dns_settled(const Session& s) const {
  return s.aaaa_done && s.a_done && s.svcb_done;
}

void HappyEyeballsEngine::reconsider(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;

  // The §5.2 deviation: fail the whole connection when the A lookup failed,
  // regardless of a perfectly fine AAAA answer (Chrome/Firefox).
  if (s.opts.fail_on_a_timeout && s.a_failed && !s.connecting) {
    fail(session_id, "A lookup failed");
    return;
  }

  if (s.connecting) {
    // Already racing: fold any newly learned addresses into the plan
    // (e.g. AAAA arriving after the RD expired).
    rebuild_plan(s);
    if (s.rd_armed && s.aaaa_done) {
      host_.network().loop().cancel(s.rd_timer);
      s.rd_armed = false;
    }
    if (s.in_flight == 0) {
      // The race had stalled (every prior attempt failed): the new
      // candidates may unblock it right away.
      launch_next_attempt(session_id);
    } else if (!s.cad_armed) {
      // Attempts are pending but no stagger step is scheduled: arm one so
      // the new candidates get their turn after a CAD.
      arm_cad(s);
    }
    return;
  }

  if (s.opts.wait_for_a_record) {
    // Wait for the complete resolution (both record types settled).
    if (s.aaaa_done && s.a_done && s.svcb_done) {
      start_connecting(session_id);
    }
    return;
  }

  // RFC 8305 §3 logic.
  if (s.aaaa_done && !s.aaaa_failed && !s.v6.empty()) {
    // Positive AAAA: connect immediately.
    start_connecting(session_id);
    return;
  }
  if (s.aaaa_done && (s.aaaa_failed || s.v6.empty())) {
    // AAAA settled negatively; IPv4 is all we will get.
    if (s.a_done) {
      start_connecting(session_id);
    }
    return;
  }
  if (s.a_done && !s.a_failed && !s.aaaa_done) {
    // A first. Start the Resolution Delay if configured; otherwise keep
    // waiting for the AAAA answer or its resolver timeout (§5.2 behaviour).
    if (s.opts.resolution_delay && !s.rd_armed && !s.rd_expired) {
      s.rd_armed = true;
      trace_event(s, HeEvent::Type::kResolutionDelayStarted,
                  format_duration(*s.opts.resolution_delay));
      s.rd_timer = host_.network().loop().schedule_after(
          *s.opts.resolution_delay, [this, session_id] {
            auto sit = sessions_.find(session_id);
            if (sit == sessions_.end() || sit->second.finished) return;
            sit->second.rd_armed = false;
            sit->second.rd_expired = true;
            trace_event(sit->second, HeEvent::Type::kResolutionDelayExpired);
            start_connecting(session_id);
          });
    }
    return;
  }
  if (s.a_done && s.a_failed && s.aaaa_done) {
    // Both failed.
    if (s.v6.empty() && s.v4.empty()) {
      fail(session_id, "name resolution failed");
    } else {
      start_connecting(session_id);
    }
    return;
  }
}

void HappyEyeballsEngine::rebuild_plan(Session& s) {
  SelectionInput input;
  input.ipv6 = s.v6;
  input.ipv4 = s.v4;
  const auto selected = select_addresses(input, s.opts);

  // Started entries keep their place (history can't be rewritten); the
  // not-yet-started tail is re-derived from the full selection so that
  // late-arriving records land at their proper interlaced position
  // (RFC 8305 §5: newly resolved addresses join the ordered list).
  std::vector<AttemptPlan> rebuilt;
  for (const AttemptPlan& p : s.plan) {
    if (p.started) rebuilt.push_back(p);
  }
  auto already_planned = [&](const simnet::IpAddress& addr,
                             TransportProtocol proto) {
    return std::any_of(rebuilt.begin(), rebuilt.end(),
                       [&](const AttemptPlan& p) {
                         return p.candidate.address == addr &&
                                p.proto == proto;
                       });
  };

  const bool race_quic = s.opts.race_quic && quic_ != nullptr &&
                         (s.svcb_h3 || !s.opts.use_svcb);
  for (const auto& candidate : selected) {
    if (race_quic &&
        !already_planned(candidate.address, TransportProtocol::kQuic)) {
      rebuilt.push_back(AttemptPlan{candidate, TransportProtocol::kQuic});
    }
    if (!already_planned(candidate.address, TransportProtocol::kTcp)) {
      rebuilt.push_back(AttemptPlan{candidate, TransportProtocol::kTcp});
    }
  }
  s.plan = std::move(rebuilt);
  s.next_attempt = 0;  // the skip loop advances past started entries
}

void HappyEyeballsEngine::start_connecting(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  if (s.connecting) return;
  s.connecting = true;
  if (s.rd_armed) {
    host_.network().loop().cancel(s.rd_timer);
    s.rd_armed = false;
  }
  rebuild_plan(s);
  trace_event(s, HeEvent::Type::kAddressSelectionDone,
              lazyeye::str_format("%zu attempts planned", s.plan.size()));
  if (s.plan.empty()) {
    if (dns_settled(s)) {
      fail(session_id, "no usable addresses");
    }
    return;
  }
  launch_next_attempt(session_id);
}

void HappyEyeballsEngine::launch_next_attempt(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  if (!s.connecting) return;

  // Find the next unstarted entry.
  while (s.next_attempt < s.plan.size() && s.plan[s.next_attempt].started) {
    ++s.next_attempt;
  }
  if (s.next_attempt >= s.plan.size()) {
    maybe_all_failed(session_id);
    return;
  }

  // Copy out what we need before calling connect(): a synchronous callback
  // may rebuild the plan and invalidate references into it.
  AttemptPlan& attempt = s.plan[s.next_attempt];
  attempt.started = true;
  ++s.next_attempt;
  ++s.in_flight;
  const TransportProtocol attempt_proto = attempt.proto;
  const simnet::Endpoint remote{attempt.candidate.address, s.port};
  trace_event(s, HeEvent::Type::kAttemptStarted, remote.to_string(),
              attempt.candidate.address, attempt_proto);

  std::uint64_t attempt_id = 0;
  if (attempt_proto == TransportProtocol::kQuic && quic_ != nullptr) {
    attempt_id = quic_->connect(
        remote, s.opts.quic,
        [this, session_id](const transport::ConnectResult& result) {
          on_attempt_result(session_id, result);
        });
  } else {
    attempt_id = tcp_.connect(
        remote, s.opts.tcp,
        [this, session_id](const transport::ConnectResult& result) {
          on_attempt_result(session_id, result);
        });
  }

  // Re-lookup: the connect call may have completed synchronously.
  auto it2 = sessions_.find(session_id);
  if (it2 == sessions_.end() || it2->second.finished) return;
  Session& s2 = it2->second;
  if (attempt_id != 0) {
    s2.attempt_ids.emplace_back(attempt_id, attempt_proto);
  }

  // Arm the Connection Attempt Delay for the next stagger step.
  bool more_planned = false;
  for (std::size_t i = s2.next_attempt; i < s2.plan.size(); ++i) {
    if (!s2.plan[i].started) more_planned = true;
  }
  if (more_planned || !dns_settled(s2)) {
    arm_cad(s2);
  }
}

void HappyEyeballsEngine::arm_cad(Session& s) {
  const std::uint64_t session_id = s.id;
  host_.network().loop().cancel(s.cad_timer);
  const SimTime cad = s.opts.effective_cad(srtt_);
  s.cad_armed = true;
  s.cad_timer = host_.network().loop().schedule_after(
      cad, [this, session_id] {
        auto it = sessions_.find(session_id);
        if (it == sessions_.end() || it->second.finished) return;
        it->second.cad_armed = false;
        launch_next_attempt(session_id);
      });
}

void HappyEyeballsEngine::on_attempt_result(
    std::uint64_t session_id, const transport::ConnectResult& result) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;

  if (result.ok) {
    succeed(session_id, result);
    return;
  }
  if (result.error == "cancelled") return;  // engine-initiated abort

  --s.in_flight;
  trace_event(s, HeEvent::Type::kAttemptFailed,
              result.remote.to_string() + ": " + result.error,
              result.remote.addr, result.proto);

  if (s.cache_attempt_active) {
    // The cached winner is stale: forget it and run the full algorithm.
    s.cache_attempt_active = false;
    cache_.erase(s.host);
    s.plan.clear();
    s.next_attempt = 0;
    s.connecting = false;
    start_dns(session_id);
    return;
  }

  // RFC 8305 §5: on failure, the next attempt starts immediately.
  host_.network().loop().cancel(s.cad_timer);
  s.cad_armed = false;
  launch_next_attempt(session_id);
}

void HappyEyeballsEngine::maybe_all_failed(std::uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  if (s.in_flight > 0) return;
  if (!dns_settled(s)) return;  // more candidates may still arrive
  bool any_unstarted = false;
  for (const auto& p : s.plan) {
    if (!p.started) any_unstarted = true;
  }
  if (any_unstarted) return;
  fail(session_id, s.plan.empty() ? "no usable addresses"
                                  : "all connection attempts failed");
}

void HappyEyeballsEngine::succeed(std::uint64_t session_id,
                                  const transport::ConnectResult& result) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  s.finished = true;

  // The winner must survive teardown's abort sweep.
  std::erase_if(s.attempt_ids, [&](const auto& entry) {
    return entry.first == result.connection_id && entry.second == result.proto;
  });

  trace_event(s, HeEvent::Type::kConnectionEstablished,
              result.remote.to_string(), result.remote.addr, result.proto);

  // Update the smoothed RTT estimate (feeds dynamic CAD).
  const SimTime sample = result.handshake_time();
  if (srtt_) {
    srtt_ = SimTime{(srtt_->count() * 7 + sample.count()) / 8};
  } else {
    srtt_ = sample;
  }

  cache_.store(s.host, result.remote.addr, result.proto,
               host_.network().loop().now(), s.opts.cache_ttl);

  HeResult out;
  out.ok = true;
  out.remote = result.remote;
  out.proto = result.proto;
  out.started = s.started;
  out.completed = host_.network().loop().now();
  out.connection_id = result.connection_id;
  finish(session_id, std::move(out));
}

void HappyEyeballsEngine::fail(std::uint64_t session_id,
                               const std::string& error) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.finished) return;
  Session& s = it->second;
  s.finished = true;
  trace_event(s, HeEvent::Type::kFailed, error);

  HeResult out;
  out.ok = false;
  out.error = error;
  out.started = s.started;
  out.completed = host_.network().loop().now();
  finish(session_id, std::move(out));
}

void HappyEyeballsEngine::teardown(Session& s) {
  auto& loop = host_.network().loop();
  loop.cancel(s.overall_timer);
  loop.cancel(s.cad_timer);
  loop.cancel(s.rd_timer);
  if (s.dns_handle != 0) stub_.cancel(s.dns_handle);
  if (s.svcb_handle != 0) stub_.cancel(s.svcb_handle);
  for (const auto& [attempt_id, proto] : s.attempt_ids) {
    if (proto == TransportProtocol::kQuic && quic_ != nullptr) {
      quic_->abort(attempt_id);
    } else {
      tcp_.abort(attempt_id);
    }
  }
  s.attempt_ids.clear();
}

void HappyEyeballsEngine::finish(std::uint64_t session_id, HeResult result) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  teardown(s);
  result.trace = std::move(s.trace);
  CompletionHandler handler = std::move(s.handler);
  sessions_.erase(it);
  if (handler) handler(std::move(result));
}

}  // namespace lazyeye::he
