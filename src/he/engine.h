// The Happy Eyeballs engine: orchestrates DNS (AAAA/A/HTTPS), resolution
// delay, address selection and staggered connection racing over TCP and QUIC,
// per the configured HeOptions. One engine per client instance; sessions are
// independent connects.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory_resource>
#include <optional>

#include "dns/stub_resolver.h"
#include "he/address_selection.h"
#include "he/cache.h"
#include "he/options.h"
#include "he/trace.h"
#include "transport/quic.h"
#include "transport/tcp.h"

namespace lazyeye::he {

class HappyEyeballsEngine {
 public:
  // By value so the engine can move the result (and its trace) straight into
  // the handler; callers taking `const HeResult&` still bind unchanged.
  using CompletionHandler = std::function<void(HeResult)>;

  /// `quic` may be null when the client never races QUIC.
  HappyEyeballsEngine(simnet::Host& host, dns::StubResolver& stub,
                      transport::TcpStack& tcp,
                      transport::QuicStack* quic = nullptr);

  HeOptions& options() { return options_; }
  const HeOptions& options() const { return options_; }
  void set_options(HeOptions options) { options_ = std::move(options); }

  OutcomeCache& cache() { return cache_; }

  /// Smoothed RTT estimate feeding the dynamic CAD (updated automatically
  /// from successful handshakes; can be seeded or cleared).
  std::optional<SimTime> smoothed_rtt() const { return srtt_; }
  void set_smoothed_rtt(std::optional<SimTime> rtt) { srtt_ = rtt; }

  /// Starts a Happy Eyeballs connection to hostname:port. The handler is
  /// invoked exactly once with the outcome (including the full event trace).
  std::uint64_t connect(const dns::DnsName& hostname, std::uint16_t port,
                        CompletionHandler handler);

  /// Cancels a session; the handler fires with error "cancelled".
  void cancel(std::uint64_t session_id);

  std::size_t active_sessions() const { return sessions_.size(); }

 private:
  struct AttemptPlan {
    AddressCandidate candidate;
    transport::TransportProtocol proto = transport::TransportProtocol::kTcp;
    bool started = false;
  };

  struct Session {
    std::uint64_t id = 0;
    dns::DnsName host;
    std::uint16_t port = 443;
    CompletionHandler handler;
    HeOptions opts;
    SimTime started{0};
    HeTrace trace;

    // DNS state.
    std::uint64_t dns_handle = 0;
    std::uint64_t svcb_handle = 0;
    bool aaaa_done = false;
    bool a_done = false;
    bool aaaa_failed = false;
    bool a_failed = false;
    bool svcb_done = true;  // set false only when an HTTPS query is issued
    bool svcb_h3 = false;
    std::vector<AddressCandidate> v6;
    std::vector<AddressCandidate> v4;
    simnet::TimerId rd_timer;
    bool rd_armed = false;
    bool rd_expired = false;

    // Connection state.
    bool connecting = false;
    std::vector<AttemptPlan> plan;
    std::size_t next_attempt = 0;
    int in_flight = 0;
    std::vector<std::pair<std::uint64_t, transport::TransportProtocol>>
        attempt_ids;
    simnet::TimerId cad_timer;
    bool cad_armed = false;
    simnet::TimerId overall_timer;

    // Cache fast-path state.
    bool cache_attempt_active = false;

    bool finished = false;
  };

  void trace_event(Session& s, HeEvent::Type type, std::string detail = {},
                   simnet::IpAddress address = {},
                   transport::TransportProtocol proto =
                       transport::TransportProtocol::kTcp);

  void start_dns(std::uint64_t session_id);
  void on_dns_records(std::uint64_t session_id, dns::RrType type,
                      const std::vector<simnet::IpAddress>& addrs);
  void on_dns_error(std::uint64_t session_id, dns::RrType type,
                    const std::string& error);
  void on_svcb_outcome(std::uint64_t session_id,
                       const dns::QueryOutcome& outcome);
  void reconsider(std::uint64_t session_id);
  void start_connecting(std::uint64_t session_id);
  void rebuild_plan(Session& s);
  void arm_cad(Session& s);
  void launch_next_attempt(std::uint64_t session_id);
  void on_attempt_result(std::uint64_t session_id,
                         const transport::ConnectResult& result);
  void maybe_all_failed(std::uint64_t session_id);
  bool dns_settled(const Session& s) const;
  void succeed(std::uint64_t session_id,
               const transport::ConnectResult& result);
  void fail(std::uint64_t session_id, const std::string& error);
  void teardown(Session& s);
  void finish(std::uint64_t session_id, HeResult result);

  simnet::Host& host_;
  dns::StubResolver& stub_;
  transport::TcpStack& tcp_;
  transport::QuicStack* quic_;
  HeOptions options_;
  OutcomeCache cache_;
  std::optional<SimTime> srtt_;
  // Session nodes from the world's arena; the Session's own vectors stay
  // std:: (they cross API boundaries via HeResult/address selection).
  std::pmr::map<std::uint64_t, Session> sessions_;
  std::uint64_t next_session_id_ = 1;
};

}  // namespace lazyeye::he
