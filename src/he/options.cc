#include "he/options.h"

#include <algorithm>

#include "util/strings.h"

namespace lazyeye::he {

const char* he_version_name(HeVersion v) {
  switch (v) {
    case HeVersion::kNone: return "none";
    case HeVersion::kV1: return "HEv1";
    case HeVersion::kV2: return "HEv2";
    case HeVersion::kV3: return "HEv3";
  }
  return "?";
}

SimTime DynamicCad::effective(std::optional<SimTime> smoothed_rtt) const {
  if (!smoothed_rtt) return no_history_default;
  const auto scaled = SimTime{static_cast<std::int64_t>(
      static_cast<double>(smoothed_rtt->count()) * rtt_multiplier)};
  return std::clamp(scaled, minimum, maximum);
}

SimTime HeOptions::effective_cad(std::optional<SimTime> smoothed_rtt) const {
  if (dynamic_cad.enabled) return dynamic_cad.effective(smoothed_rtt);
  return connection_attempt_delay;
}

Status HeOptions::validate() const {
  if (first_address_family_count < 1) {
    return Status::failure(lazyeye::str_format(
        "first_address_family_count must be >= 1 (got %d)",
        first_address_family_count));
  }
  if (max_addresses_per_family < 1) {
    return Status::failure(lazyeye::str_format(
        "max_addresses_per_family must be >= 1 (got %d)",
        max_addresses_per_family));
  }
  if (resolution_delay && resolution_delay->count() < 0) {
    return Status::failure(lazyeye::str_format(
        "resolution_delay must be non-negative (got %s)",
        format_duration(*resolution_delay).c_str()));
  }
  if (connection_attempt_delay.count() < 0) {
    return Status::failure(lazyeye::str_format(
        "connection_attempt_delay must be non-negative (got %s)",
        format_duration(connection_attempt_delay).c_str()));
  }
  if (overall_timeout.count() <= 0) {
    return Status::failure(lazyeye::str_format(
        "overall_timeout must be positive (got %s)",
        format_duration(overall_timeout).c_str()));
  }
  return Status{};
}

HeOptions HeOptions::rfc6555() {
  HeOptions o;
  o.version = HeVersion::kV1;
  // HEv1 has no DNS handling: the client waits for the full resolution.
  o.wait_for_a_record = true;
  o.resolution_delay = std::nullopt;
  // "IPv6 once, then IPv4": one address per family, no interlacing.
  o.interlace = InterlaceMode::kNone;
  o.max_addresses_per_family = 1;
  // RFC 6555 recommends 150-250 ms; use the upper bound.
  o.connection_attempt_delay = lazyeye::ms(250);
  return o;
}

HeOptions HeOptions::rfc8305() {
  HeOptions o;
  o.version = HeVersion::kV2;
  o.query_aaaa_first = true;
  o.resolution_delay = lazyeye::ms(50);
  o.first_address_family_count = 1;
  o.interlace = InterlaceMode::kAlternate;
  o.connection_attempt_delay = lazyeye::ms(250);
  return o;
}

HeOptions HeOptions::v3_draft() {
  HeOptions o = rfc8305();
  o.version = HeVersion::kV3;
  o.use_svcb = true;
  o.race_quic = true;
  o.prefer_ech = true;
  return o;
}

HeOptions HeOptions::none() {
  HeOptions o;
  o.version = HeVersion::kNone;
  o.wait_for_a_record = true;
  o.resolution_delay = std::nullopt;
  o.fallback_enabled = false;
  o.interlace = InterlaceMode::kNone;
  o.max_addresses_per_family = 1;
  o.cache_ttl = SimTime{0};
  return o;
}

}  // namespace lazyeye::he
