// Happy Eyeballs configuration: every parameter from Table 1 of the paper
// (HEv1 RFC 6555, HEv2 RFC 8305, HEv3 draft) plus the deviation knobs needed
// to model real client behaviour observed in the paper's measurements.
#pragma once

#include <optional>

#include "transport/quic.h"
#include "transport/tcp.h"
#include "util/result.h"
#include "util/time.h"

namespace lazyeye::he {

enum class HeVersion {
  kNone,  // no Happy Eyeballs at all (wget)
  kV1,    // RFC 6555: connection racing only
  kV2,    // RFC 8305: + DNS handling, resolution delay, address selection
  kV3,    // draft-ietf-happy-happyeyeballs-v3: + SVCB/HTTPS, QUIC, ECH
};

const char* he_version_name(HeVersion v);

/// How the ordered attempt list mixes address families (RFC 8305 §4).
enum class InterlaceMode {
  /// No interlacing: preferred family first, then the other.
  kNone,
  /// Strict alternation after the First Address Family Count block.
  kAlternate,
  /// Safari's observed strategy (paper App. D): FAFC IPv6 addresses, one
  /// IPv4 address, all remaining IPv6, then all remaining IPv4.
  kFirstOtherThenRest,
};

/// Dynamic Connection Attempt Delay (HEv2 history-informed mode).
struct DynamicCad {
  bool enabled = false;
  /// RFC 8305 bounds: min 10 ms (absolute), recommended min 100 ms, max 2 s.
  SimTime minimum = lazyeye::ms(10);
  SimTime recommended_minimum = lazyeye::ms(100);
  SimTime maximum = lazyeye::sec(2);
  /// CAD = clamp(rtt_multiplier * smoothed RTT, minimum, maximum).
  double rtt_multiplier = 2.0;
  /// Used when no RTT history exists (Safari's lab behaviour: 2 s).
  SimTime no_history_default = lazyeye::sec(2);

  /// Effective CAD for a given (optional) RTT estimate.
  SimTime effective(std::optional<SimTime> smoothed_rtt) const;
};

struct HeOptions {
  HeVersion version = HeVersion::kV2;

  // ---- DNS phase -----------------------------------------------------------
  /// Issue the AAAA query first, immediately followed by A (RFC 8305 §3).
  bool query_aaaa_first = true;
  /// Resolution Delay: wait this long for AAAA after an A-first response.
  /// nullopt = no RD — the client waits for the resolver's own timeout
  /// (the Chromium/Firefox behaviour in §5.2).
  std::optional<SimTime> resolution_delay = lazyeye::ms(50);
  /// Deviation: delay any connection attempt until the A response arrived,
  /// even when AAAA records are already in hand (§5.2: all but Safari).
  bool wait_for_a_record = false;
  /// Deviation: if the A query fails (resolver timeout), fail the whole
  /// connection even when AAAA succeeded (Chrome/Firefox complete failures
  /// in §5.2). Without this flag, A failure simply means IPv6-only.
  bool fail_on_a_timeout = false;

  // ---- Address selection ---------------------------------------------------
  bool prefer_ipv6 = true;
  /// First Address Family Count (RFC 8305 §4: 1, or 2 when favouring the
  /// first family aggressively).
  int first_address_family_count = 1;
  InterlaceMode interlace = InterlaceMode::kAlternate;
  /// Cap on how many addresses of each family are attempted (Table 2
  /// "Addrs. Used": 1 for Chromium/Firefox/curl, 10 for Safari).
  int max_addresses_per_family = 100;
  /// Sort candidates by historical RTT when available (HEv2 §4 knowledge).
  bool sort_by_history = false;

  // ---- Connection phase ----------------------------------------------------
  /// Fixed Connection Attempt Delay (RFC 6555: 150-250 ms; RFC 8305: 250 ms).
  SimTime connection_attempt_delay = lazyeye::ms(250);
  DynamicCad dynamic_cad;
  /// Disable the IPv4 fallback entirely (wget has no HE: it only ever uses
  /// the preferred family).
  bool fallback_enabled = true;
  /// TCP handshake parameters for each attempt.
  transport::TcpOptions tcp;
  /// Give up after this much time without any established connection.
  SimTime overall_timeout = lazyeye::sec(75);

  // ---- HEv3 ----------------------------------------------------------------
  /// Query SVCB/HTTPS records and use their hints (HEv3).
  bool use_svcb = false;
  /// Race QUIC (when the HTTPS record advertises h3) before TCP.
  bool race_quic = false;
  /// Prefer endpoints whose HTTPS record carries ECH configuration.
  bool prefer_ech = false;
  transport::QuicOptions quic;

  // ---- Caching -------------------------------------------------------------
  /// Cache the winning (address, protocol) "on the order of 10 minutes"
  /// (RFC 6555 §4.1). Zero disables caching.
  SimTime cache_ttl = lazyeye::minutes(10);

  /// Effective CAD for the session (fixed or dynamic).
  SimTime effective_cad(std::optional<SimTime> smoothed_rtt) const;

  /// Sanity-checks the parameter space the engine is about to run with:
  /// first_address_family_count >= 1, max_addresses_per_family >= 1,
  /// non-negative resolution_delay (when set) and connection_attempt_delay,
  /// and a positive overall timeout. The engine validates at session start
  /// and surfaces a configuration error instead of silently misbehaving
  /// (an FAFC of 0 would starve the attempt plan; a negative delay would
  /// fire its timer in the past and drag virtual time backwards).
  Status validate() const;

  // Presets matching the RFC/draft recommendations (Table 1).
  static HeOptions rfc6555();
  static HeOptions rfc8305();
  static HeOptions v3_draft();
  /// No Happy Eyeballs: resolve, use preferred family only.
  static HeOptions none();
};

}  // namespace lazyeye::he
