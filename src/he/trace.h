// Engine-level event trace. The testbed infers behaviour from packet
// captures (black-box, like the paper); the trace exists for API users,
// examples and unit tests that want white-box visibility.
#pragma once

#include <string>
#include <vector>

#include "simnet/ip.h"
#include "transport/connection.h"
#include "util/time.h"

namespace lazyeye::he {

struct HeEvent {
  enum class Type {
    kCacheHit,
    kDnsQuerySent,
    kDnsResponse,
    kDnsError,
    kResolutionDelayStarted,
    kResolutionDelayExpired,
    kAddressSelectionDone,
    kAttemptStarted,
    kAttemptFailed,
    kConnectionEstablished,
    kFailed,
  };

  Type type;
  SimTime time{0};
  std::string detail;
  simnet::IpAddress address;  // meaningful for attempt/connection events
  transport::TransportProtocol proto = transport::TransportProtocol::kTcp;
};

const char* he_event_type_name(HeEvent::Type type);

using HeTrace = std::vector<HeEvent>;

struct HeResult {
  bool ok = false;
  std::string error;
  simnet::Endpoint remote;
  transport::TransportProtocol proto = transport::TransportProtocol::kTcp;
  SimTime started{0};
  SimTime completed{0};
  /// Connection id on the winning stack (TCP or QUIC), 0 if failed.
  std::uint64_t connection_id = 0;
  HeTrace trace;

  SimTime elapsed() const { return completed - started; }
  simnet::Family family() const { return remote.addr.family(); }
};

}  // namespace lazyeye::he
