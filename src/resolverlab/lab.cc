#include "resolverlab/lab.h"

#include <algorithm>
#include <map>

#include "campaign/runner.h"
#include "dns/auth_server.h"
#include "dns/recursive_resolver.h"
#include "simnet/network.h"
#include "util/strings.h"

namespace lazyeye::resolverlab {

using dns::DnsName;
using simnet::Family;
using simnet::IpAddress;

LabConfig LabConfig::paper_grid() {
  LabConfig config;
  // One millisecond below each distinctive client timeout in Table 3 plus
  // coverage above them (to force fallback and count per-family packets).
  config.delay_grid = {lazyeye::ms(0),    lazyeye::ms(49),   lazyeye::ms(100),
                       lazyeye::ms(199),  lazyeye::ms(249),  lazyeye::ms(299),
                       lazyeye::ms(375),  lazyeye::ms(399),  lazyeye::ms(499),
                       lazyeye::ms(599),  lazyeye::ms(799),  lazyeye::ms(1249),
                       lazyeye::ms(1500), lazyeye::ms(2000)};
  config.repetitions = 9;
  return config;
}

namespace {

struct LabRun {
  // Lease first: released last, so the arena reset (which destroys the
  // arena-created servers and resolver, then the Network) runs after every
  // raw pointer below is dead.
  simnet::WorldLease lease;
  simnet::Network* net = nullptr;
  simnet::Host* auth_host = nullptr;
  dns::AuthServer* root = nullptr;
  dns::AuthServer* tld = nullptr;
  dns::AuthServer* auth = nullptr;
  dns::RecursiveResolver* resolver = nullptr;
  DnsName zone;
  DnsName ns_name;
  DnsName qname;
};

/// Builds the delegation tree for one measurement run. Unique zone apex and
/// NS names per (delay, repetition) defeat caching, exactly like §4.2.
std::unique_ptr<LabRun> build_run(const resolvers::ServiceProfile& service,
                                  SimTime v6_delay, int delay_index, int rep,
                                  std::uint64_t seed, bool v6_only) {
  auto run = std::make_unique<LabRun>();
  simnet::Arena& arena = run->lease.arena();
  run->net = arena.create<simnet::Network>(run->lease.memory(), seed);
  simnet::Network& net = *run->net;

  simnet::Host& root_host = net.add_host("root");
  root_host.add_address(IpAddress::must_parse("10.0.0.1"));
  root_host.add_address(IpAddress::must_parse("2001:db8::1"));
  simnet::Host& tld_host = net.add_host("tld");
  tld_host.add_address(IpAddress::must_parse("10.0.0.2"));
  tld_host.add_address(IpAddress::must_parse("2001:db8::2"));
  simnet::Host& auth_host = net.add_host("auth");
  run->auth_host = &auth_host;
  const auto auth_v4 = IpAddress::must_parse("10.0.1.1");
  const auto auth_v6 = IpAddress::must_parse("2001:db8:1::1");
  if (!v6_only) auth_host.add_address(auth_v4);
  auth_host.add_address(auth_v6);
  simnet::Host& resolver_host = net.add_host("resolver");
  resolver_host.add_address(IpAddress::must_parse("10.0.9.9"));
  resolver_host.add_address(IpAddress::must_parse("2001:db8:9::9"));

  // Traffic shaping towards the auth server's IPv6 address (§4.2: shaping
  // on the IP addresses for CAD measurements).
  if (v6_delay.count() > 0) {
    net.qdisc().add_rule(simnet::PacketFilter::to_address(auth_v6),
                         simnet::NetemSpec::delay_only(v6_delay),
                         "v6 delay to auth");
  }

  run->zone = DnsName::must_parse(
      lazyeye::str_format("z%dr%d.lab", delay_index, rep));
  run->ns_name = run->zone.prepend("ns1");
  run->qname = run->zone.prepend("www");

  run->root = arena.create<dns::AuthServer>(root_host);
  dns::Zone& root_zone = run->root->add_zone(DnsName{});
  root_zone.add_ns(DnsName::must_parse("lab"), DnsName::must_parse("ns.lab"));
  root_zone.add(dns::ResourceRecord::a(DnsName::must_parse("ns.lab"),
                                       *simnet::Ipv4Address::parse("10.0.0.2")));
  root_zone.add(dns::ResourceRecord::aaaa(
      DnsName::must_parse("ns.lab"), *simnet::Ipv6Address::parse("2001:db8::2")));

  run->tld = arena.create<dns::AuthServer>(tld_host);
  dns::Zone& lab_zone = run->tld->add_zone(DnsName::must_parse("lab"));
  lab_zone.add_ns(DnsName::must_parse("lab"), DnsName::must_parse("ns.lab"));
  lab_zone.add_a(DnsName::must_parse("ns.lab"),
                 *simnet::Ipv4Address::parse("10.0.0.2"));
  lab_zone.add_aaaa(DnsName::must_parse("ns.lab"),
                    *simnet::Ipv6Address::parse("2001:db8::2"));
  lab_zone.add_ns(run->zone, run->ns_name);
  if (!v6_only) {
    lab_zone.add(dns::ResourceRecord::a(run->ns_name,
                                        *simnet::Ipv4Address::parse("10.0.1.1")));
  }
  lab_zone.add(dns::ResourceRecord::aaaa(
      run->ns_name, *simnet::Ipv6Address::parse("2001:db8:1::1")));

  run->auth = arena.create<dns::AuthServer>(auth_host);
  dns::Zone& zone = run->auth->add_zone(run->zone);
  zone.add_ns(run->zone, run->ns_name);
  if (!v6_only) {
    zone.add_a(run->ns_name, *simnet::Ipv4Address::parse("10.0.1.1"));
  }
  zone.add_aaaa(run->ns_name, *simnet::Ipv6Address::parse("2001:db8:1::1"));
  zone.add_a(run->qname, *simnet::Ipv4Address::parse("10.0.1.80"));

  run->resolver = arena.create<dns::RecursiveResolver>(
      resolver_host, service.engine,
      std::vector<IpAddress>{IpAddress::must_parse("10.0.0.1"),
                             IpAddress::must_parse("2001:db8::1")});
  return run;
}

RunObservation observe(LabRun& run, SimTime delay, int rep, bool resolved,
                       SimTime completed) {
  RunObservation obs;
  obs.configured_delay = delay;
  obs.repetition = rep;
  obs.resolved = resolved;
  obs.completed = completed;

  // Ordering uses log *indices*: back-to-back queries share a timestamp but
  // the capture preserves wire order.
  std::optional<std::size_t> first_aaaa_ns;
  std::optional<std::size_t> first_a_ns;
  std::optional<std::size_t> first_main;
  std::optional<Family> aaaa_ns_family;
  std::optional<Family> a_ns_family;
  std::optional<Family> last_main_family;
  const auto& log = run.auth->query_log();
  std::optional<SimTime> earliest_send;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& entry = log[i];
    if (entry.qname == run.qname) {
      if (entry.family == Family::kIpv6) {
        ++obs.v6_main_queries;
      } else {
        ++obs.v4_main_queries;
      }
      if (!first_main) first_main = i;
      // The lab knows the shaping it applied, so it can reconstruct the
      // *send* time of each arriving query: delayed IPv6 queries may land
      // after a later-sent IPv4 one.
      const SimTime send_time =
          entry.time - (entry.family == Family::kIpv6 ? delay : SimTime{0});
      if (!earliest_send || send_time < *earliest_send) {
        earliest_send = send_time;
        obs.first_query_v6 = entry.family == Family::kIpv6;
      }
      // Only queries that arrived before the resolver finished can have
      // produced the answer it used.
      if (entry.time <= completed || !resolved) {
        last_main_family = entry.family;
      }
    } else if (entry.qname == run.ns_name) {
      if (entry.qtype == dns::RrType::kAaaa) {
        obs.aaaa_ns_seen = true;
        if (!first_aaaa_ns) {
          first_aaaa_ns = i;
          aaaa_ns_family = entry.family;
        }
      } else if (entry.qtype == dns::RrType::kA) {
        obs.a_ns_seen = true;
        if (!first_a_ns) {
          first_a_ns = i;
          a_ns_family = entry.family;
        }
      }
    }
  }
  if (first_aaaa_ns && first_a_ns) {
    obs.aaaa_before_a = *first_aaaa_ns < *first_a_ns;
    // "Parallel queries on IPv4 and IPv6" (Table 3 footnote 1): the two
    // NS-name queries rode different transport families.
    obs.ns_queries_parallel = aaaa_ns_family && a_ns_family &&
                              *aaaa_ns_family != *a_ns_family;
  }
  if (first_aaaa_ns && first_main) {
    obs.aaaa_before_main = *first_aaaa_ns < *first_main;
  }
  obs.answer_via_v6 =
      resolved && last_main_family && *last_main_family == Family::kIpv6;
  return obs;
}

}  // namespace

bool check_ipv6_only_capability(const resolvers::ServiceProfile& service,
                                std::uint64_t seed) {
  auto run = build_run(service, SimTime{0}, 0, 0, seed, /*v6_only=*/true);
  bool resolved = false;
  run->resolver->resolve(run->qname, dns::RrType::kA,
                         [&resolved](const dns::QueryOutcome& out) {
                           resolved = out.ok;
                         });
  run->net->loop().run();
  return resolved;
}

namespace {

/// Pure per-index cell builder shared by the eager and lazy generators.
/// The seed sequence is the one the original serial loop consumed:
/// config.seed + 1, +2, ... in (delay-major, repetition-minor) order.
campaign::ScenarioSpec resolver_cell_at(const std::string& service_name,
                                        const std::vector<SimTime>& grid,
                                        int repetitions,
                                        std::uint64_t config_seed,
                                        std::size_t cell) {
  const std::size_t di = cell / static_cast<std::size_t>(repetitions);
  const int rep = static_cast<int>(cell % static_cast<std::size_t>(repetitions));
  campaign::ScenarioSpec spec;
  spec.id = cell;
  spec.seed = config_seed + cell + 1;
  spec.repetition = rep;
  spec.grid_index = static_cast<int>(di);
  spec.payload = campaign::ResolverCellCase{service_name, grid[di]};
  spec.label = lazyeye::str_format("%s %s rep%d", service_name.c_str(),
                                   format_duration(grid[di]).c_str(), rep);
  return spec;
}

}  // namespace

std::vector<campaign::ScenarioSpec> cell_specs(
    const resolvers::ServiceProfile& service, const LabConfig& config) {
  const std::size_t total = config.delay_grid.size() *
                            static_cast<std::size_t>(config.repetitions);
  std::vector<campaign::ScenarioSpec> specs;
  specs.reserve(total);
  for (std::size_t cell = 0; cell < total; ++cell) {
    specs.push_back(resolver_cell_at(service.service, config.delay_grid,
                                     config.repetitions, config.seed, cell));
  }
  return specs;
}

campaign::SpecStream cell_spec_stream(const resolvers::ServiceProfile& service,
                                      const LabConfig& config) {
  const std::size_t total = config.delay_grid.size() *
                            static_cast<std::size_t>(config.repetitions);
  return campaign::SpecStream{
      total, [name = service.service, grid = config.delay_grid,
              repetitions = config.repetitions, seed = config.seed](
                 std::size_t cell) {
        return resolver_cell_at(name, grid, repetitions, seed, cell);
      }};
}

campaign::SpecStream cross_service_cell_spec_stream(
    const std::vector<resolvers::ServiceProfile>& services,
    const LabConfig& config) {
  const std::size_t per_service = config.delay_grid.size() *
                                  static_cast<std::size_t>(config.repetitions);
  std::vector<std::string> names;
  names.reserve(services.size());
  for (const auto& service : services) names.push_back(service.service);
  return campaign::SpecStream{
      per_service * names.size(),
      [names = std::move(names), grid = config.delay_grid,
       repetitions = config.repetitions, seed = config.seed,
       per_service](std::size_t i) {
        // Service-major; each service's block keeps its solo seed sequence
        // (see cross_service_cell_specs), ids dense across the joint matrix.
        campaign::ScenarioSpec spec =
            resolver_cell_at(names[i / per_service], grid, repetitions, seed,
                             i % per_service);
        spec.id = i;
        return spec;
      }};
}

std::vector<campaign::ScenarioSpec> cross_service_cell_specs(
    const std::vector<resolvers::ServiceProfile>& services,
    const LabConfig& config) {
  std::vector<campaign::ScenarioSpec> specs;
  specs.reserve(services.size() * config.delay_grid.size() *
                static_cast<std::size_t>(config.repetitions));
  std::uint64_t cell = 0;
  for (const auto& service : services) {
    // Each service keeps its solo seed sequence (different services run
    // different engines, so re-using the sequence across blocks is what
    // makes the joint matrix reproduce every solo campaign exactly).
    for (campaign::ScenarioSpec& spec : cell_specs(service, config)) {
      spec.id = cell++;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

RunObservation run_cell(const resolvers::ServiceProfile& service,
                        const campaign::ScenarioSpec& spec) {
  // Throws bad_variant_access on a non-resolver cell: routing a foreign
  // case here is a programming error, not a measurement outcome.
  const auto& cell = std::get<campaign::ResolverCellCase>(spec.payload);
  auto run = build_run(service, cell.v6_delay, spec.grid_index,
                       spec.repetition, spec.seed, /*v6_only=*/false);
  bool resolved = false;
  SimTime completed{0};
  run->resolver->resolve(run->qname, dns::RrType::kA,
                         [&resolved, &completed,
                          net = run->net](const dns::QueryOutcome& out) {
                           resolved = out.ok;
                           completed = net->loop().now();
                         });
  run->net->loop().run();
  return observe(*run, cell.v6_delay, spec.repetition, resolved, completed);
}

ServiceMetrics aggregate_service(const resolvers::ServiceProfile& service,
                                 std::vector<RunObservation> observations) {
  ServiceMetrics metrics;
  metrics.service = service.service;

  std::map<std::int64_t, std::pair<int, int>> v6_success_by_delay;  // (v6, n)
  int first_query_v6 = 0;
  int first_query_total = 0;

  for (RunObservation& obs : observations) {
    if (obs.v6_main_queries + obs.v4_main_queries > 0) {
      ++first_query_total;
      if (obs.first_query_v6) ++first_query_v6;
    }
    // Max-IPv6-delay statistics condition on the runs where the resolver
    // chose IPv6 in the first place (otherwise services with a low IPv6
    // share could never reach a majority at any delay).
    if (obs.first_query_v6) {
      auto& bucket = v6_success_by_delay[obs.configured_delay.count()];
      bucket.second += 1;
      if (obs.answer_via_v6) bucket.first += 1;
    }
    metrics.max_ipv6_packets =
        std::max(metrics.max_ipv6_packets, obs.v6_main_queries);
    metrics.runs.push_back(std::move(obs));
  }

  // ---- Aggregation ----------------------------------------------------------
  metrics.ipv6_share =
      first_query_total == 0
          ? 0.0
          : static_cast<double>(first_query_v6) / first_query_total;

  // Largest delay where the majority of repetitions were answered over v6.
  for (const auto& [delay_ns, counts] : v6_success_by_delay) {
    if (counts.second == 0) continue;
    if (counts.first * 2 > counts.second) {
      const SimTime d{delay_ns};
      if (!metrics.max_ipv6_delay || d > *metrics.max_ipv6_delay) {
        metrics.max_ipv6_delay = d;
      }
    }
  }

  // AAAA Query column classification (majority vote across runs).
  int before_a = 0;
  int after_a = 0;
  int either_or = 0;
  int after_main = 0;
  int parallel = 0;
  int with_ns_queries = 0;
  for (const auto& obs : metrics.runs) {
    if (!obs.aaaa_ns_seen && !obs.a_ns_seen) continue;
    ++with_ns_queries;
    if (obs.ns_queries_parallel) ++parallel;
    if (obs.aaaa_ns_seen && !obs.aaaa_before_main) {
      // The AAAA query only went out after the auth server was already
      // contacted (Google's deferred behaviour).
      ++after_main;
    } else if (obs.aaaa_ns_seen != obs.a_ns_seen) {
      // Exactly one of the two types, before the main query (Knot).
      ++either_or;
    } else if (obs.aaaa_ns_seen && obs.a_ns_seen) {
      if (obs.aaaa_before_a) {
        ++before_a;
      } else {
        ++after_a;
      }
    }
  }
  if (with_ns_queries > 0) {
    metrics.aaaa_order_known = true;
    if (after_main * 2 > with_ns_queries) {
      metrics.aaaa_order = resolvers::AaaaOrderClass::kAfterAuthQuery;
    } else if (either_or * 2 > with_ns_queries) {
      metrics.aaaa_order = resolvers::AaaaOrderClass::kEitherOr;
    } else if (before_a >= after_a) {
      metrics.aaaa_order = resolvers::AaaaOrderClass::kBeforeA;
    } else {
      metrics.aaaa_order = resolvers::AaaaOrderClass::kAfterA;
    }
    metrics.delay_unmeasurable = parallel * 2 > with_ns_queries;
  }
  return metrics;
}

ServiceMetrics measure_service(const resolvers::ServiceProfile& service,
                               const LabConfig& config) {
  std::vector<ServiceMetrics> rows = measure_services({service}, config);
  return std::move(rows.front());
}

std::vector<ServiceMetrics> measure_services(
    const std::vector<resolvers::ServiceProfile>& services,
    const LabConfig& config) {
  // One joint matrix, one worker pool: every service's cells interleave
  // freely across workers. Each cell is an isolated world seeded from its
  // spec, and the sink streams observations in spec order (service-major),
  // so per-service aggregation is worker-count independent and identical
  // to running each service's campaign alone. The matrix is lazy: cells are
  // generated as workers claim them, never materialised as a vector.
  const campaign::SpecStream specs =
      cross_service_cell_spec_stream(services, config);

  campaign::Registry<RunObservation> registry;
  register_executor(registry, services);

  std::vector<std::vector<RunObservation>> per_service(services.size());
  const std::size_t cells_per_service =
      services.empty() ? 0 : specs.size() / services.size();
  for (std::size_t s = 0; s < services.size(); ++s) {
    per_service[s].reserve(cells_per_service);
  }
  campaign::CallbackSink<RunObservation> sink{
      [&](const campaign::ScenarioSpec& spec, RunObservation obs) {
        // Spec order is service-major, so the service block index is just
        // id / block size.
        per_service[spec.id / cells_per_service].push_back(std::move(obs));
      }};

  campaign::RunnerOptions runner_options;
  runner_options.workers = config.workers;
  registry.run(campaign::CampaignRunner{runner_options}, specs, sink);

  std::vector<ServiceMetrics> rows;
  rows.reserve(services.size());
  for (std::size_t s = 0; s < services.size(); ++s) {
    rows.push_back(aggregate_service(services[s], std::move(per_service[s])));
  }
  return rows;
}

}  // namespace lazyeye::resolverlab
