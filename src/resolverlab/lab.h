// Resolver measurement lab (paper §4.2, §5.3).
//
// Builds the delegation tree root -> lab -> <measurement zone> with a fresh
// network per run, unique zone apexes and NS names per delay configuration
// (cache-effect avoidance), traffic shaping on the authoritative server's
// IPv6 path, and evaluates resolvers *purely from the authoritative-side
// query log* — the resolver engine is a black box to the measurement.
//
// Campaign API v2: each (delay, repetition) cell is a ScenarioSpec carrying
// a ResolverCellCase payload that names the service, so cells of *different*
// services can share one worker pool — measure_services() runs every
// Table 3 row in a single campaign while keeping each service's serial seed
// sequence (per-service results are byte-identical to a solo campaign).
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "campaign/scenario.h"
#include "campaign/spec_stream.h"
#include "resolvers/service_profiles.h"
#include "util/time.h"

namespace lazyeye::resolverlab {

struct LabConfig {
  /// IPv6 delays applied at the measurement auth server (the sweep grid).
  std::vector<SimTime> delay_grid;
  /// Repetitions per delay (fresh zone + network each).
  int repetitions = 9;
  std::uint64_t seed = 42;
  /// Campaign worker threads (0 = one per hardware thread). Results are
  /// identical for any worker count.
  int workers = 0;

  static LabConfig paper_grid();
};

/// One resolution observed at the authoritative server.
struct RunObservation {
  SimTime configured_delay{0};
  int repetition = 0;
  bool resolved = false;
  SimTime completed{0};      // when the resolver delivered its answer
  int v6_main_queries = 0;   // main-qname queries over IPv6
  int v4_main_queries = 0;
  bool first_query_v6 = false;  // family of the first *sent* main query
  bool answer_via_v6 = false;  // the answer the resolver used came over v6
  bool aaaa_ns_seen = false;
  bool a_ns_seen = false;
  /// Auth-side ordering signals for the AAAA Query column.
  bool aaaa_before_a = false;
  bool aaaa_before_main = false;
  bool ns_queries_parallel = false;
};

/// Aggregate Table 3 row for one service.
struct ServiceMetrics {
  std::string service;
  resolvers::AaaaOrderClass aaaa_order =
      resolvers::AaaaOrderClass::kBeforeA;
  bool aaaa_order_known = false;
  double ipv6_share = 0.0;  // fraction of auth-directed packets over IPv6
  std::optional<SimTime> max_ipv6_delay;  // largest delay with majority-v6
  int max_ipv6_packets = 0;  // most IPv6 packets in a single resolution
  bool delay_unmeasurable = false;  // parallel NS queries (footnote 1)
  std::vector<RunObservation> runs;
};

/// Table 4 capability check: can the service resolve an IPv6-only
/// delegation at all?
bool check_ipv6_only_capability(const resolvers::ServiceProfile& service,
                                std::uint64_t seed = 7);

/// Enumerates the service's (delay × repetition) matrix as campaign cells.
/// Each cell's seed is config.seed + flat_index + 1 — the same sequence the
/// original serial loop consumed, so measurements are reproducible across
/// versions and worker counts.
std::vector<campaign::ScenarioSpec> cell_specs(
    const resolvers::ServiceProfile& service, const LabConfig& config);

/// One joint matrix covering all `services` (service-major: service A's
/// full delay × repetition block, then B's, ...). Each service's block
/// keeps its own serial seed sequence, so per-service observations are
/// identical to a solo campaign; ids are dense across the joint matrix.
std::vector<campaign::ScenarioSpec> cross_service_cell_specs(
    const std::vector<resolvers::ServiceProfile>& services,
    const LabConfig& config);

/// Lazy equivalent of cell_specs(): cell-for-cell identical specs (same
/// seed sequence), generated per claimed cell.
campaign::SpecStream cell_spec_stream(const resolvers::ServiceProfile& service,
                                      const LabConfig& config);

/// Lazy equivalent of cross_service_cell_specs().
campaign::SpecStream cross_service_cell_spec_stream(
    const std::vector<resolvers::ServiceProfile>& services,
    const LabConfig& config);

/// Stateless executor for one (delay, repetition) cell: builds the
/// delegation tree in an isolated world seeded from the spec, resolves, and
/// reads the authoritative-side query log. Thread-safe across cells.
RunObservation run_cell(const resolvers::ServiceProfile& service,
                        const campaign::ScenarioSpec& spec);

/// Folds one service's observations (in matrix order) into its Table 3 row.
ServiceMetrics aggregate_service(const resolvers::ServiceProfile& service,
                                 std::vector<RunObservation> observations);

/// Runs the full campaign for one service (cells sharded across
/// config.workers threads).
ServiceMetrics measure_service(const resolvers::ServiceProfile& service,
                               const LabConfig& config);

/// Cross-service campaign: all services' matrices in ONE worker pool (the
/// ROADMAP's "all Table 3 rows in one pool"). Returns one metrics row per
/// service, in input order, byte-identical to measure_service() per
/// service at any worker count.
std::vector<ServiceMetrics> measure_services(
    const std::vector<resolvers::ServiceProfile>& services,
    const LabConfig& config);

/// Plugs the resolver-cell case into a campaign registry. Cells name their
/// service in the payload; it is resolved against `services` (copied into
/// the executor).
template <typename Outcome>
void register_executor(campaign::Registry<Outcome>& registry,
                       std::vector<resolvers::ServiceProfile> services) {
  auto pool = std::make_shared<const std::vector<resolvers::ServiceProfile>>(
      std::move(services));
  registry.template add<campaign::ResolverCellCase>(
      [pool](const campaign::ScenarioSpec& spec,
             const campaign::ResolverCellCase& cell) {
        return run_cell(
            campaign::find_registered(
                *pool, cell.service,
                [](const resolvers::ServiceProfile& s) { return s.service; },
                "resolverlab"),
            spec);
      });
}

}  // namespace lazyeye::resolverlab
