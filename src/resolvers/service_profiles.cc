#include "resolvers/service_profiles.h"

namespace lazyeye::resolvers {

const char* aaaa_order_symbol(AaaaOrderClass c) {
  switch (c) {
    case AaaaOrderClass::kBeforeA: return "AAAA before A";
    case AaaaOrderClass::kAfterA: return "AAAA after A";
    case AaaaOrderClass::kAfterAuthQuery: return "AAAA after auth query";
    case AaaaOrderClass::kEitherOr: return "either AAAA or A";
  }
  return "?";
}

namespace {

/// Convenience builder for the common open-service shape: AAAA-first NS
/// queries, probabilistic IPv6 preference, fixed per-attempt timeout, a
/// bounded number of same-family packets before switching to IPv4.
ServiceProfile open_service(const std::string& name, double ipv6_share,
                            std::optional<SimTime> max_delay,
                            std::optional<int> ipv6_packets, int v4_addrs,
                            int v6_addrs) {
  ServiceProfile p;
  p.service = name;
  p.engine.name = name;
  p.engine.ns_query_strategy = dns::NsQueryStrategy::kAaaaThenA;
  p.engine.ipv6_probability = ipv6_share;
  if (max_delay) p.engine.attempt_timeout = *max_delay;
  if (ipv6_packets) {
    p.engine.max_packets_per_family = *ipv6_packets;
    p.engine.retry_same_family_prob = *ipv6_packets > 1 ? 1.0 : 0.0;
    // Leave room for the IPv4 fallback after the same-family retries.
    p.engine.max_total_attempts = *ipv6_packets + 4;
  }
  p.ipv4_addresses = v4_addrs;
  p.ipv6_addresses = v6_addrs;
  p.expected_aaaa_order = AaaaOrderClass::kBeforeA;
  p.expected_ipv6_share = ipv6_share;
  p.expected_max_delay = max_delay;
  p.expected_ipv6_packets = ipv6_packets;
  return p;
}

}  // namespace

std::vector<ServiceProfile> local_software_profiles() {
  std::vector<ServiceProfile> out;

  {
    // BIND 9: classic HE-style strict IPv6 preference, CAD 800 ms, one
    // IPv6 packet, consistently falls back to IPv4; queries A before AAAA.
    ServiceProfile bind;
    bind.service = "BIND";
    bind.local_software = true;
    bind.engine.name = "BIND";
    bind.engine.ns_query_strategy = dns::NsQueryStrategy::kAThenAaaa;
    bind.engine.ipv6_probability = 1.0;
    bind.engine.attempt_timeout = lazyeye::ms(800);
    bind.engine.max_packets_per_family = 1;
    bind.expected_aaaa_order = AaaaOrderClass::kAfterA;
    bind.expected_ipv6_share = 1.0;
    bind.expected_max_delay = lazyeye::ms(800);
    bind.expected_ipv6_packets = 1;
    out.push_back(std::move(bind));
  }
  {
    // Unbound: AAAA first, 43.8 % IPv6, 376 ms timeout, retries IPv6 in
    // 44 % of cases with exponential backoff to 1128 ms (2 packets).
    ServiceProfile unbound;
    unbound.service = "Unbound";
    unbound.local_software = true;
    unbound.engine.name = "Unbound";
    unbound.engine.ns_query_strategy = dns::NsQueryStrategy::kAaaaThenA;
    unbound.engine.ipv6_probability = 0.438;
    unbound.engine.attempt_timeout = lazyeye::ms(376);
    unbound.engine.max_packets_per_family = 2;
    unbound.engine.retry_same_family_prob = 0.44;
    unbound.engine.backoff_factor = 3.0;  // 376 ms -> 1128 ms
    unbound.expected_aaaa_order = AaaaOrderClass::kBeforeA;
    unbound.expected_ipv6_share = 0.438;
    unbound.expected_max_delay = lazyeye::ms(376);
    unbound.expected_ipv6_packets = 2;
    out.push_back(std::move(unbound));
  }
  {
    // Knot Resolver: sends either A or AAAA for NS names (never both),
    // 27.9 % IPv6, 400 ms, 2 packets, consistent IPv4 fallback.
    ServiceProfile knot;
    knot.service = "Knot Resolver";
    knot.local_software = true;
    knot.engine.name = "Knot Resolver";
    knot.engine.ns_query_strategy = dns::NsQueryStrategy::kEitherOr;
    knot.engine.ipv6_probability = 0.279;
    knot.engine.attempt_timeout = lazyeye::ms(400);
    knot.engine.max_packets_per_family = 2;
    knot.engine.retry_same_family_prob = 1.0;
    knot.expected_aaaa_order = AaaaOrderClass::kEitherOr;
    knot.expected_ipv6_share = 0.279;
    knot.expected_max_delay = lazyeye::ms(400);
    knot.expected_ipv6_packets = 2;
    out.push_back(std::move(knot));
  }
  return out;
}

std::vector<ServiceProfile> open_service_profiles() {
  std::vector<ServiceProfile> out;

  {
    // DNS.sb: queries A first; never used IPv6 towards the auth servers.
    ServiceProfile p = open_service("DNS.sb", 0.0, std::nullopt, std::nullopt,
                                    2, 2);
    p.engine.ns_query_strategy = dns::NsQueryStrategy::kAThenAaaa;
    p.expected_aaaa_order = AaaaOrderClass::kAfterA;
    out.push_back(std::move(p));
  }
  {
    // Google Public DNS: no AAAA query before contacting the auth server;
    // 0 % IPv6 usage.
    ServiceProfile p = open_service("Google P. DNS", 0.0, std::nullopt,
                                    std::nullopt, 2, 2);
    p.engine.ns_query_strategy = dns::NsQueryStrategy::kAaaaAfterFirstUse;
    p.expected_aaaa_order = AaaaOrderClass::kAfterAuthQuery;
    out.push_back(std::move(p));
  }
  {
    // DNS0.EU: parallel A/AAAA NS queries (delay unmeasurable, Table 3
    // footnote 1); sticks to the initially chosen IP version and fails.
    ServiceProfile p = open_service("DNS0.EU", 0.095, std::nullopt, {2}, 2, 2);
    p.engine.parallel_ns_queries = true;
    p.engine.stick_to_family = true;
    // "Sticks to the IP version initially chosen and fails at some point"
    // (§5.3) — after the two observed packets.
    p.engine.max_total_attempts = 2;
    out.push_back(std::move(p));
  }
  out.push_back(open_service("NextDNS", 0.089, lazyeye::ms(200), {1}, 2, 2));
  out.push_back(open_service("Quad 101", 0.10, lazyeye::ms(400), {1}, 2, 2));
  {
    // 114DNS: IPv4-only resolver addresses, but the resolution path is
    // IPv6-capable (a forwarder per App. C).
    out.push_back(open_service("114DNS", 0.111, lazyeye::ms(600), {1}, 2, 0));
  }
  out.push_back(open_service("Cloudflare", 0.111, lazyeye::ms(500), {2}, 2, 2));
  out.push_back(
      open_service("Verisign P. DNS", 0.153, lazyeye::ms(250), {1}, 2, 2));
  out.push_back(open_service("Yandex", 0.174, lazyeye::ms(300), {6}, 2, 2));
  out.push_back(open_service("H-MSK-IX", 0.205, lazyeye::ms(600), {2}, 2, 2));
  out.push_back(open_service("MSK-IX", 0.221, lazyeye::ms(600), {2}, 2, 2));
  out.push_back(open_service("Quad9 DNS", 0.342, lazyeye::ms(1250), {2}, 6, 6));
  {
    // OpenDNS: textbook Happy Eyeballs — always IPv6 first, 50 ms fallback.
    out.push_back(open_service("OpenDNS", 1.0, lazyeye::ms(50), {1}, 6, 6));
  }

  // Services that cannot resolve IPv6-only delegations (Table 4).
  auto incapable = [](const std::string& name, int v4, int v6) {
    ServiceProfile p;
    p.service = name;
    p.engine.name = name;
    p.engine.ns_query_strategy = dns::NsQueryStrategy::kGlueOnly;
    p.engine.ipv6_probability = 0.0;
    p.engine.ipv6_transport_capable = false;
    p.ipv4_addresses = v4;
    p.ipv6_addresses = v6;
    p.ipv6_resolution_capable = false;
    return p;
  };
  out.push_back(incapable("G-Core", 2, 2));
  out.push_back(incapable("DYN", 2, 0));
  out.push_back(incapable("Lumen (Level3)", 4, 0));
  out.push_back(incapable("HE", 4, 4));
  return out;
}

std::vector<ServiceProfile> all_service_profiles() {
  auto out = local_software_profiles();
  for (auto& p : open_service_profiles()) out.push_back(std::move(p));
  return out;
}

std::optional<ServiceProfile> find_service_profile(const std::string& name) {
  for (const auto& p : all_service_profiles()) {
    if (p.service == name) return p;
  }
  return std::nullopt;
}

}  // namespace lazyeye::resolvers
