// Resolver service profiles: BIND/Unbound/Knot (local software, §5.3) and
// the open resolver services of Tables 3 & 4. Engine knobs encode the
// behaviour the paper measured; the expectations fields carry the published
// Table 3 values so benches/tests can compare pipeline output against paper
// ground truth.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dns/resolver_profile.h"

namespace lazyeye::resolvers {

/// Table 3 "AAAA Query" column symbols.
enum class AaaaOrderClass {
  kBeforeA,         // ● sends AAAA before A
  kAfterA,          // ◐ sends AAAA after A
  kAfterAuthQuery,  // ◑ sends AAAA only after querying the IPv4 auth server
  kEitherOr,        // ◒ sends either AAAA or A but never both
};

const char* aaaa_order_symbol(AaaaOrderClass c);

struct ServiceProfile {
  std::string service;            // "Quad9 DNS"
  bool local_software = false;    // BIND/Unbound/Knot vs open service
  dns::ResolverProfile engine;    // behaviour knobs for the engine

  // Table 4 address inventory.
  int ipv4_addresses = 2;
  int ipv6_addresses = 2;

  /// False for services that cannot resolve IPv6-only delegations
  /// (Hurricane Electric, Lumen, Dyn, G-Core) — excluded from Table 3.
  bool ipv6_resolution_capable = true;

  // ---- Published Table 3 values (paper ground truth) ----------------------
  AaaaOrderClass expected_aaaa_order = AaaaOrderClass::kBeforeA;
  double expected_ipv6_share = 0.0;           // fraction, e.g. 0.438
  std::optional<SimTime> expected_max_delay;  // "Max. IPv6 Delay Used"
  std::optional<int> expected_ipv6_packets;   // "# IPv6 Packets"
};

/// BIND 9, Unbound, Knot Resolver.
std::vector<ServiceProfile> local_software_profiles();

/// The 17 open resolver services (Table 4), including the four that cannot
/// resolve IPv6-only delegations.
std::vector<ServiceProfile> open_service_profiles();

std::vector<ServiceProfile> all_service_profiles();

std::optional<ServiceProfile> find_service_profile(const std::string& name);

}  // namespace lazyeye::resolvers
