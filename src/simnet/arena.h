// Arena: chunked bump allocator with one-shot drop, backing a cell's world.
//
// A campaign cell builds an entire isolated world (Network, Hosts, zones,
// stacks, client, capture), runs it, and throws it away. With unique_ptr
// ownership that teardown is a cascade of individual frees and the next cell
// re-pays every malloc. The Arena replaces both halves: construction bumps a
// pointer through retained chunks (warm cells allocate nothing), and
// teardown is reset() — run the registered finalizers in reverse creation
// order, rewind the bump pointer, keep the chunks for the next cell.
//
// The Arena is a std::pmr::memory_resource, so the world's containers
// (EventLoop timer-wheel storage, Host tables, routing maps, captures) draw
// their nodes and growth from the same chunks via polymorphic allocators;
// do_deallocate is a no-op, which is exactly right for storage whose
// lifetime IS the cell.
//
// Single-threaded by design, like everything else in a cell's world: one
// arena is only ever used by the worker thread that leased it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <type_traits>
#include <utility>
#include <vector>

namespace lazyeye::simnet {

class Arena : public std::pmr::memory_resource {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_{first_chunk_bytes} {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() override { reset(); }

  /// Constructs a T in arena storage. Non-trivially-destructible objects are
  /// registered on an intrusive finalizer list (nodes live in the arena
  /// itself), and reset() destroys them in reverse creation order — the same
  /// order a struct of unique_ptr members would have produced.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate_raw(sizeof(T), alignof(T));
    T* obj = ::new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      auto* fin = static_cast<Finalizer*>(
          allocate_raw(sizeof(Finalizer), alignof(Finalizer)));
      fin->destroy = [](void* o) { static_cast<T*>(o)->~T(); };
      fin->object = obj;
      fin->next = finalizers_;
      finalizers_ = fin;
    }
    return obj;
  }

  /// Destroys every created object (reverse creation order) and rewinds the
  /// bump pointer. Chunks are RETAINED: the next cell built on this arena
  /// reuses them and allocates nothing until it outgrows the high-water mark.
  void reset() {
    for (Finalizer* f = finalizers_; f != nullptr; f = f->next) {
      f->destroy(f->object);
    }
    finalizers_ = nullptr;
    active_ = 0;
    offset_ = 0;
    ++resets_;
  }

  // -- observability ---------------------------------------------------------
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  std::uint64_t resets() const { return resets_; }

 private:
  struct Finalizer {
    void (*destroy)(void*);
    void* object;
    Finalizer* next;
  };
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate_raw(std::size_t bytes, std::size_t align) {
    while (active_ < chunks_.size()) {
      Chunk& chunk = chunks_[active_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= chunk.size) {
        offset_ = aligned + bytes;
        return chunk.data.get() + aligned;
      }
      // Current chunk exhausted: move on to the next retained one.
      ++active_;
      offset_ = 0;
    }
    // No retained chunk fits: grow. Chunk sizes double so a world that once
    // needed N bytes settles at O(log N) chunks, and oversized single
    // allocations get a dedicated chunk.
    const std::size_t chunk_bytes =
        bytes + align > next_chunk_bytes_ ? bytes + align : next_chunk_bytes_;
    next_chunk_bytes_ = chunk_bytes * 2;
    chunks_.push_back(
        Chunk{std::make_unique<std::byte[]>(chunk_bytes), chunk_bytes});
    active_ = chunks_.size() - 1;
    offset_ = 0;
    return allocate_raw(bytes, align);
  }

  void* do_allocate(std::size_t bytes, std::size_t align) override {
    return allocate_raw(bytes, align);
  }
  void do_deallocate(void*, std::size_t, std::size_t) override {}
  bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunk currently being bumped
  std::size_t offset_ = 0;  // bump offset within chunks_[active_]
  std::size_t next_chunk_bytes_;
  Finalizer* finalizers_ = nullptr;  // LIFO; nodes live in arena storage
  std::uint64_t resets_ = 0;
};

}  // namespace lazyeye::simnet
