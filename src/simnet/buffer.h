// simnet payload buffer: the pooled lazyeye::Buffer under its simnet name.
//
// The implementation lives in util/ so the wire codec (util/bytes.h) can
// serialise straight into pooled blocks without util -> simnet includes;
// simnet code uses it as simnet::Buffer, and each Network owns the
// simnet::BufferPool its packets recycle through.
#pragma once

#include "util/buffer.h"

namespace lazyeye::simnet {

using Buffer = ::lazyeye::Buffer;
using BufferPool = ::lazyeye::BufferPool;

}  // namespace lazyeye::simnet
