#include "simnet/event_loop.h"

#include <memory>
#include <stdexcept>

namespace lazyeye::simnet {

namespace {
// A run() that executes this many callbacks is assumed to be a feedback loop
// (e.g. two hosts retransmitting at each other forever). Large enough for the
// heaviest bench sweep, small enough to fail fast in tests.
constexpr std::uint64_t kRunawayCap = 200'000'000;
}  // namespace

TimerId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id,
                    std::make_shared<Callback>(std::move(cb))});
  live_.insert(id);
  return TimerId{id};
}

TimerId EventLoop::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(TimerId id) {
  if (!id.valid()) return false;
  // Lazy deletion: remember the id; skip when popped.
  if (live_.erase(id.value) == 0) return false;  // already ran or cancelled
  cancelled_.insert(id.value);
  return true;
}

bool EventLoop::pop_one() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(ev.id);
    now_ = ev.when;
    ++processed_;
    (*ev.cb)();
    return true;
  }
  return false;
}

void EventLoop::run() {
  const std::uint64_t start = processed_;
  while (pop_one()) {
    if (processed_ - start > kRunawayCap) {
      throw std::runtime_error("EventLoop::run: runaway event feedback loop");
    }
  }
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > deadline) break;
    pop_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t EventLoop::run_for(SimTime d) { return run_until(now_ + d); }

}  // namespace lazyeye::simnet
