#include "simnet/event_loop.h"

#include <algorithm>
#include <stdexcept>

namespace lazyeye::simnet {

namespace {
// A run() that executes this many callbacks is assumed to be a feedback loop
// (e.g. two hosts retransmitting at each other forever). Large enough for the
// heaviest bench sweep, small enough to fail fast in tests.
constexpr std::uint64_t kRunawayCap = 200'000'000;
}  // namespace

std::uint64_t EventLoop::arm_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kSlotMask) {
      // > 16M concurrently armed timers means something is leaking events.
      throw std::runtime_error("EventLoop: timer slot table exhausted");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].armed = true;
  ++live_count_;
  return (slots_[slot].generation << kSlotBits) |
         (static_cast<std::uint64_t>(slot) + 1);
}

bool EventLoop::slot_armed(std::uint64_t packed) const {
  const std::uint64_t slot_plus1 = packed & kSlotMask;
  if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return false;
  const Slot& s = slots_[slot_plus1 - 1];
  return s.armed && s.generation == (packed >> kSlotBits);
}

void EventLoop::retire(std::uint64_t packed) {
  const std::uint32_t slot = static_cast<std::uint32_t>((packed & kSlotMask) - 1);
  Slot& s = slots_[slot];
  if (s.armed) {
    s.armed = false;
    --live_count_;
  }
  // Invalidate every TimerId minted for this use of the slot, then recycle.
  // Wrap at the packed width so slot_armed()'s equality keeps matching the
  // bits a TimerId can actually carry.
  s.generation = (s.generation + 1) & kGenMask;
  free_slots_.push_back(slot);
}

TimerId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = arm_slot();
  heap_.push_back(Event{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  return TimerId{id};
}

TimerId EventLoop::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(TimerId id) {
  // Lazy deletion: the slot is disarmed here; the heap node is pruned (and
  // the slot retired) when it reaches the top.
  if (!id.valid() || !slot_armed(id.value)) return false;
  Slot& s = slots_[(id.value & kSlotMask) - 1];
  s.armed = false;
  --live_count_;
  return true;
}

bool EventLoop::pop_one() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    const bool runnable = slot_armed(ev.id);
    // Retire before running: the callback may schedule new timers, which can
    // then reuse this slot under a fresh generation without aliasing ev.id.
    retire(ev.id);
    if (!runnable) continue;  // cancelled: prune and move on
    now_ = ev.when;
    ++processed_;
    ev.cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  const std::uint64_t start = processed_;
  while (pop_one()) {
    if (processed_ - start > kRunawayCap) {
      throw std::runtime_error("EventLoop::run: runaway event feedback loop");
    }
  }
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (!slot_armed(top.id)) {
      // Cancelled entry at the top: prune without running.
      std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
      retire(heap_.back().id);
      heap_.pop_back();
      continue;
    }
    if (top.when > deadline) break;
    pop_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t EventLoop::run_for(SimTime d) { return run_until(now_ + d); }

}  // namespace lazyeye::simnet
