#include "simnet/event_loop.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace lazyeye::simnet {

namespace {
// A run() that executes this many callbacks is assumed to be a feedback loop
// (e.g. two hosts retransmitting at each other forever). Large enough for the
// heaviest bench sweep, small enough to fail fast in tests.
constexpr std::uint64_t kRunawayCap = 200'000'000;

bool event_before(SimTime a_when, std::uint64_t a_seq, SimTime b_when,
                  std::uint64_t b_seq) {
  if (a_when != b_when) return a_when < b_when;
  return a_seq < b_seq;
}
}  // namespace

EventLoop::EventLoop(std::pmr::memory_resource* memory)
    : heap_{memory},
      nodes_{memory},
      free_nodes_{memory},
      ready_{memory},
      slots_{memory},
      free_slots_{memory} {
  l0_head_.fill(-1);
  l1_head_.fill(-1);
}

// ---------------------------------------------------------- liveness slots --

std::uint64_t EventLoop::arm_slot() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kSlotMask) {
      // > 16M concurrently armed timers means something is leaking events.
      throw std::runtime_error("EventLoop: timer slot table exhausted");
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].armed = true;
  ++live_count_;
  return (slots_[slot].generation << kSlotBits) |
         (static_cast<std::uint64_t>(slot) + 1);
}

bool EventLoop::slot_armed(std::uint64_t packed) const {
  const std::uint64_t slot_plus1 = packed & kSlotMask;
  if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return false;
  const Slot& s = slots_[slot_plus1 - 1];
  return s.armed && s.generation == (packed >> kSlotBits);
}

void EventLoop::retire(std::uint64_t packed) {
  const std::uint32_t slot =
      static_cast<std::uint32_t>((packed & kSlotMask) - 1);
  Slot& s = slots_[slot];
  if (s.armed) {
    s.armed = false;
    --live_count_;
  }
  // Invalidate every TimerId minted for this use of the slot, then recycle.
  // Wrap at the packed width so slot_armed()'s equality keeps matching the
  // bits a TimerId can actually carry.
  s.generation = (s.generation + 1) & kGenMask;
  free_slots_.push_back(slot);
}

// ------------------------------------------------------------- wheel nodes --

std::int32_t EventLoop::acquire_node() {
  if (!free_nodes_.empty()) {
    const std::int32_t idx = free_nodes_.back();
    free_nodes_.pop_back();
    return idx;
  }
  const std::int32_t idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  free_nodes_.reserve(nodes_.size());  // free_node below never reallocates
  return idx;
}

void EventLoop::free_node(std::int32_t idx) {
  nodes_[idx].cb = Callback{};
  free_nodes_.push_back(idx);
}

void EventLoop::l0_set_bit(std::size_t slot) {
  l0_bits_[slot >> 6] |= 1ULL << (slot & 63);
  l0_summary_ |= 1ULL << (slot >> 6);
}

void EventLoop::l0_clear_bit(std::size_t slot) {
  l0_bits_[slot >> 6] &= ~(1ULL << (slot & 63));
  if (l0_bits_[slot >> 6] == 0) l0_summary_ &= ~(1ULL << (slot >> 6));
}

std::ptrdiff_t EventLoop::l0_find_from(std::size_t slot) const {
  const std::size_t word = slot >> 6;
  const std::uint64_t first = l0_bits_[word] & (~std::uint64_t{0} << (slot & 63));
  if (first != 0) {
    return static_cast<std::ptrdiff_t>((word << 6) +
                                       std::countr_zero(first));
  }
  if (word + 1 >= l0_bits_.size()) return -1;
  const std::uint64_t rest = l0_summary_ & (~std::uint64_t{0} << (word + 1));
  if (rest == 0) return -1;
  const std::size_t g = static_cast<std::size_t>(std::countr_zero(rest));
  return static_cast<std::ptrdiff_t>((g << 6) +
                                     std::countr_zero(l0_bits_[g]));
}

void EventLoop::push_l0(std::int64_t tick, std::int32_t node) {
  const std::size_t slot = static_cast<std::size_t>(tick - w0_tick_);
  nodes_[node].next = l0_head_[slot];
  l0_head_[slot] = node;
  l0_set_bit(slot);
  ++l0_nodes_;
}

// --------------------------------------------------------------- schedule --

TimerId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = arm_slot();
  insert_event(when, next_seq_++, id, std::move(cb));
  return TimerId{id};
}

TimerId EventLoop::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

void EventLoop::insert_event(SimTime when, std::uint64_t seq, std::uint64_t id,
                             Callback cb) {
  const std::int64_t tick = when.count() >> kTickShift;

  // The tick currently being drained/executed keeps exact order via a
  // merge-insert into the staged queue (a callback scheduling "at now" must
  // run within this same tick, after everything already staged before it).
  if (tick == ready_tick_ && ready_pos_ < ready_.size()) {
    const auto it = std::lower_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
        ready_.end(), std::pair{when, seq}, [](const Event& e, const auto& k) {
          return event_before(e.when, e.seq, k.first, k.second);
        });
    ready_.insert(it, Event{when, seq, id, std::move(cb)});
    ++wheel_scheduled_;
    return;
  }

  // An event landing *before* the staged tick (a heap callback scheduling a
  // short timer while a later wheel tick is staged): push the staged
  // remainder back into the wheel so the next pop restages from the true
  // earliest tick. Rare, and re-sorting on the restage keeps exact order.
  if (ready_tick_ >= 0 && ready_pos_ < ready_.size() && tick < ready_tick_) {
    std::vector<Event> remainder;
    remainder.reserve(ready_.size() - ready_pos_);
    for (std::size_t i = ready_pos_; i < ready_.size(); ++i) {
      remainder.push_back(std::move(ready_[i]));
    }
    ready_.clear();
    ready_pos_ = 0;
    ready_tick_ = -1;
    for (Event& e : remainder) {
      --wheel_scheduled_;  // the re-insert below counts it again
      insert_event(e.when, e.seq, e.id, std::move(e.cb));
    }
  }

  // Empty wheel: pull the window up to now so the full horizon is usable.
  if (l0_nodes_ + l1_nodes_ == 0) w0_tick_ = now_tick();

  const std::int64_t delta = tick - w0_tick_;
  if (delta >= 0 && delta < static_cast<std::int64_t>(kL0Slots)) {
    const std::int32_t node = acquire_node();
    WheelNode& n = nodes_[node];
    n.when = when;
    n.seq = seq;
    n.id = id;
    n.cb = std::move(cb);
    push_l0(tick, node);
    ++wheel_scheduled_;
    return;
  }
  if (delta >= static_cast<std::int64_t>(kL0Slots) && delta < kHorizonTicks) {
    const std::size_t k =
        static_cast<std::size_t>(delta >> kL0Bits) - 1;
    const std::size_t idx = (l1_base_ + k) & (kL1Slots - 1);
    const std::int32_t node = acquire_node();
    WheelNode& n = nodes_[node];
    n.when = when;
    n.seq = seq;
    n.id = id;
    n.cb = std::move(cb);
    n.next = l1_head_[idx];
    l1_head_[idx] = node;
    ++l1_nodes_;
    ++wheel_scheduled_;
    return;
  }

  // Beyond the wheel horizon (or behind a window that cascaded ahead of
  // now): the binary heap handles it with the same (when, seq) ordering.
  heap_.push_back(Event{when, seq, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  ++heap_scheduled_;
}

bool EventLoop::cancel(TimerId id) {
  // Lazy deletion: the slot is disarmed here; the node is pruned (and the
  // slot retired) when its container next touches it.
  if (!id.valid() || !slot_armed(id.value)) return false;
  Slot& s = slots_[(id.value & kSlotMask) - 1];
  s.armed = false;
  --live_count_;
  return true;
}

// -------------------------------------------------------------- execution --

void EventLoop::drain_l0_slot(std::size_t slot) {
  std::int32_t n = l0_head_[slot];
  l0_head_[slot] = -1;
  l0_clear_bit(slot);
  while (n != -1) {
    const std::int32_t next = nodes_[n].next;
    --l0_nodes_;
    if (slot_armed(nodes_[n].id)) {
      ready_.push_back(Event{nodes_[n].when, nodes_[n].seq, nodes_[n].id,
                             std::move(nodes_[n].cb)});
    } else {
      retire(nodes_[n].id);  // cancelled: prune
    }
    free_node(n);
    n = next;
  }
}

void EventLoop::purge_l0() {
  // Every node left in L0 here is behind now(), i.e. cancelled: live events
  // are executed in time order, so none can be stranded in the past.
  while (l0_summary_ != 0) {
    const std::size_t g =
        static_cast<std::size_t>(std::countr_zero(l0_summary_));
    const std::size_t slot =
        (g << 6) + static_cast<std::size_t>(std::countr_zero(l0_bits_[g]));
    std::int32_t n = l0_head_[slot];
    l0_head_[slot] = -1;
    l0_clear_bit(slot);
    while (n != -1) {
      const std::int32_t next = nodes_[n].next;
      --l0_nodes_;
      if (slot_armed(nodes_[n].id)) {
        throw std::logic_error(
            "EventLoop: live event stranded in a past wheel slot");
      }
      retire(nodes_[n].id);
      free_node(n);
      n = next;
    }
  }
}

bool EventLoop::advance_window() {
  if (l1_nodes_ == 0) return false;
  for (std::size_t k = 0; k < kL1Slots; ++k) {
    const std::size_t idx = (l1_base_ + k) & (kL1Slots - 1);
    if (l1_head_[idx] == -1) continue;
    // Rebase L0 onto this L1 slot's window and cascade its nodes down.
    w0_tick_ += static_cast<std::int64_t>(k + 1) << kL0Bits;
    l1_base_ = (l1_base_ + k + 1) & (kL1Slots - 1);
    std::int32_t n = l1_head_[idx];
    l1_head_[idx] = -1;
    while (n != -1) {
      const std::int32_t next = nodes_[n].next;
      --l1_nodes_;
      if (slot_armed(nodes_[n].id)) {
        push_l0(nodes_[n].when.count() >> kTickShift, n);
      } else {
        retire(nodes_[n].id);  // cancelled while parked in L1
        free_node(n);
      }
      n = next;
    }
    return true;
  }
  return false;  // l1_nodes_ said otherwise, but stay safe
}

void EventLoop::ensure_ready() {
  if (ready_pos_ < ready_.size()) return;
  ready_.clear();
  ready_pos_ = 0;
  ready_tick_ = -1;
  while (l0_nodes_ + l1_nodes_ > 0) {
    std::int64_t r = now_tick() - w0_tick_;
    if (r < 0) r = 0;
    if (r >= static_cast<std::int64_t>(kL0Slots)) {
      // now() ran past the whole L0 window (run_until over cancelled
      // timers): discard the dead window and cascade the next one in.
      purge_l0();
      if (!advance_window()) break;
      continue;
    }
    const std::ptrdiff_t slot = l0_find_from(static_cast<std::size_t>(r));
    if (slot >= 0) {
      drain_l0_slot(static_cast<std::size_t>(slot));
      if (!ready_.empty()) {
        std::sort(ready_.begin(), ready_.end(),
                  [](const Event& a, const Event& b) {
                    return event_before(a.when, a.seq, b.when, b.seq);
                  });
        ready_tick_ = w0_tick_ + slot;
        return;
      }
      continue;  // slot held only cancelled nodes; keep scanning
    }
    // Nothing live ahead in L0; clear any stale dead slots behind now and
    // bring the next occupied L1 window down.
    purge_l0();
    if (!advance_window()) break;
  }
  // Wheel fully empty: keep the window anchored at now for fresh inserts.
  if (l0_nodes_ + l1_nodes_ == 0) w0_tick_ = now_tick();
}

void EventLoop::prune_heap_top() {
  while (!heap_.empty() && !slot_armed(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    retire(heap_.back().id);
    heap_.pop_back();
  }
}

bool EventLoop::pop_next(const SimTime* deadline) {
  for (;;) {
    prune_heap_top();
    ensure_ready();
    const bool have_wheel = ready_pos_ < ready_.size();
    const bool have_heap = !heap_.empty();
    if (!have_wheel && !have_heap) return false;

    bool use_wheel = have_wheel;
    if (have_wheel && have_heap) {
      const Event& w = ready_[ready_pos_];
      const Event& h = heap_.front();
      use_wheel = event_before(w.when, w.seq, h.when, h.seq);
    }

    Event ev;
    if (use_wheel) {
      if (deadline != nullptr && ready_[ready_pos_].when > *deadline) {
        return false;
      }
      ev = std::move(ready_[ready_pos_++]);
      if (!slot_armed(ev.id)) {
        retire(ev.id);  // cancelled between drain and execution
        continue;
      }
    } else {
      if (deadline != nullptr && heap_.front().when > *deadline) return false;
      std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
      ev = std::move(heap_.back());
      heap_.pop_back();
    }
    // Retire before running: the callback may schedule new timers, which can
    // then reuse this slot under a fresh generation without aliasing ev.id.
    retire(ev.id);
    now_ = ev.when;
    ++processed_;
    ev.cb();
    return true;
  }
}

void EventLoop::run() {
  const std::uint64_t start = processed_;
  while (pop_next(nullptr)) {
    if (processed_ - start > kRunawayCap) {
      throw std::runtime_error("EventLoop::run: runaway event feedback loop");
    }
  }
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (pop_next(&deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t EventLoop::run_for(SimTime d) { return run_until(now_ + d); }

}  // namespace lazyeye::simnet
