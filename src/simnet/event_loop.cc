#include "simnet/event_loop.h"

#include <algorithm>
#include <stdexcept>

namespace lazyeye::simnet {

namespace {
// A run() that executes this many callbacks is assumed to be a feedback loop
// (e.g. two hosts retransmitting at each other forever). Large enough for the
// heaviest bench sweep, small enough to fail fast in tests.
constexpr std::uint64_t kRunawayCap = 200'000'000;
}  // namespace

TimerId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  live_.insert(id);
  return TimerId{id};
}

TimerId EventLoop::schedule_after(SimTime delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(TimerId id) {
  if (!id.valid()) return false;
  // Lazy deletion: ids not in live_ are skipped (and pruned) when their heap
  // node reaches the top.
  return live_.erase(id.value) != 0;
}

bool EventLoop::pop_one() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (live_.erase(ev.id) == 0) continue;  // cancelled: prune and move on
    now_ = ev.when;
    ++processed_;
    ev.cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  const std::uint64_t start = processed_;
  while (pop_one()) {
    if (processed_ - start > kRunawayCap) {
      throw std::runtime_error("EventLoop::run: runaway event feedback loop");
    }
  }
}

std::size_t EventLoop::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (live_.count(top.id) == 0) {
      // Cancelled entry at the top: prune without running.
      std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
      heap_.pop_back();
      continue;
    }
    if (top.when > deadline) break;
    pop_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t EventLoop::run_for(SimTime d) { return run_until(now_ + d); }

}  // namespace lazyeye::simnet
