// Deterministic discrete-event loop over virtual time.
//
// Single-threaded: callbacks run strictly in (time, insertion-order) order.
// This is the substrate every other module schedules against (DNS timeouts,
// TCP retransmissions, HE connection-attempt delays, netem delivery...).
//
// The scheduling path is allocation-lean: callbacks are stored in
// InlineCallback nodes (small captures never touch the heap), and liveness
// is tracked by generation-tagged slots validated directly against the
// stored nodes — no per-event hash-set insert/erase on the hot path.
//
// Near-future timers go through a two-level hierarchical timer wheel
// (level 0: 4096 slots of 2^10 ns ≈ 1 µs covering ~4.2 ms; level 1: 512
// slots of one level-0 window each, covering ~2.1 s) — O(1) insert/remove
// for the dense same-delay bands (netem delivery, retransmit timers, HE
// connection-attempt delays). Far-future timers (resolver overall timeouts
// and the like) fall back to the binary heap. Execution merges both sources
// by exact (when, seq), so the observable order — and therefore every
// byte of measurement output — is identical to the heap-only loop.
#pragma once

#include <array>
#include <cstdint>
#include <memory_resource>
#include <vector>

#include "simnet/inline_callback.h"
#include "util/time.h"

namespace lazyeye::simnet {

/// Handle for cancelling a scheduled callback. Default-constructed = invalid.
///
/// The value packs (generation << kSlotBits) | (slot + 1): the slot indexes
/// a recycled entry in the loop's slot table, and the generation is bumped
/// every time the slot is retired, so a stale handle held across the event's
/// execution (or cancellation) can never alias a later timer that happens to
/// reuse the same slot.
struct TimerId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(TimerId a, TimerId b) { return a.value == b.value; }
};

class EventLoop {
 public:
  using Callback = InlineCallback;

  /// All growable storage (heap, wheel nodes, liveness slots, ready stage)
  /// draws from `memory`. A world-pooled Network passes its arena, so a
  /// fresh per-cell loop reuses the previous cell's high-water-mark storage
  /// without a single heap allocation; the default is the global resource.
  explicit EventLoop(
      std::pmr::memory_resource* memory = std::pmr::get_default_resource());
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time (starts at 0).
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `when` (clamped to now()).
  TimerId schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` from now.
  TimerId schedule_after(SimTime delay, Callback cb);

  /// Cancels a pending callback; returns false if it already ran / was
  /// cancelled / is invalid.
  bool cancel(TimerId id);

  /// Runs until no events remain (or the safety cap on processed events
  /// trips, which indicates a runaway feedback loop in a test).
  void run();

  /// Processes all events with time <= deadline, then advances now() to
  /// `deadline`. Returns the number of events processed.
  std::size_t run_until(SimTime deadline);

  /// run_until(now() + d).
  std::size_t run_for(SimTime d);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_count_; }

  /// Total callbacks executed since construction.
  std::uint64_t processed() const { return processed_; }

  /// Observability: how many schedules landed in the timer wheel vs the
  /// far-future binary heap (tests + benches assert the wheel is exercised).
  std::uint64_t wheel_scheduled() const { return wheel_scheduled_; }
  std::uint64_t heap_scheduled() const { return heap_scheduled_; }

 private:
  // TimerId layout: low kSlotBits hold slot+1 (so value 0 stays invalid),
  // the remaining 40 bits hold the slot's generation at arm time. The
  // stored generation wraps at 40 bits so the comparison in slot_armed()
  // always sees exactly the bits that survive packing; a stale id could
  // alias only after a full 2^40 retires of one slot between arm and check.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (~std::uint64_t{0}) >> kSlotBits;

  // Wheel geometry. A tick is 2^kTickShift ns (shift, not divide, on the
  // hot path); events within one tick keep exact sub-tick order because
  // slots are sorted by (when, seq) when drained.
  static constexpr int kTickShift = 10;                     // ~1 us ticks
  static constexpr int kL0Bits = 12;
  static constexpr std::size_t kL0Slots = 1u << kL0Bits;    // ~4.2 ms window
  static constexpr std::size_t kL1Slots = 512;              // ~2.1 s horizon
  static constexpr std::int64_t kHorizonTicks =
      static_cast<std::int64_t>(kL0Slots) * (1 + kL1Slots);

  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;  // packed (generation, slot) — see TimerId
    // The callback lives in the node itself; small captures are stored
    // inline (InlineCallback), so scheduling typically allocates nothing.
    Callback cb;
  };
  struct EventLater {
    // Min-heap comparator for std::push_heap/std::pop_heap.
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Wheel node: an Event plus an intrusive slot-list link. Nodes live in
  /// nodes_ and recycle through free_nodes_.
  struct WheelNode {
    SimTime when;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    std::int32_t next = -1;
    Callback cb;
  };

  /// One recyclable liveness slot. `generation` is bumped when the slot is
  /// retired (its node ran or was pruned), invalidating every TimerId
  /// minted for an earlier use of the slot. Generations start at 1 so the
  /// packed id of an armed timer is never 0.
  struct Slot {
    std::uint64_t generation = 1;
    bool armed = false;
  };

  // Slot helpers.
  std::uint64_t arm_slot();                     // returns packed id
  bool slot_armed(std::uint64_t packed) const;  // id still live?
  void retire(std::uint64_t packed);            // bump generation, free slot

  std::int64_t now_tick() const { return now_.count() >> kTickShift; }

  // Wheel plumbing (definitions in the .cc).
  void insert_event(SimTime when, std::uint64_t seq, std::uint64_t id,
                    Callback cb);
  std::int32_t acquire_node();
  void free_node(std::int32_t idx);
  void push_l0(std::int64_t tick, std::int32_t node);
  void l0_set_bit(std::size_t slot);
  void l0_clear_bit(std::size_t slot);
  std::ptrdiff_t l0_find_from(std::size_t slot) const;  // -1 when none
  void drain_l0_slot(std::size_t slot);  // live nodes -> ready_, dead retired
  void purge_l0();                       // retire every remaining L0 node
  bool advance_window();                 // cascade next non-empty L1 slot
  void ensure_ready();                   // stage the earliest wheel tick
  void prune_heap_top();
  /// Runs the earliest live event from wheel+heap; respects `deadline` when
  /// non-null. Returns false if nothing (eligible) remains.
  bool pop_next(const SimTime* deadline);

  /// Far-future events: binary min-heap over (when, seq). Cancellation is
  /// lazy — a node whose liveness slot no longer matches is pruned when it
  /// reaches the top.
  std::pmr::vector<Event> heap_;

  // Wheel storage.
  std::pmr::vector<WheelNode> nodes_;
  std::pmr::vector<std::int32_t> free_nodes_;
  std::array<std::int32_t, kL0Slots> l0_head_;
  std::array<std::int32_t, kL1Slots> l1_head_;
  std::array<std::uint64_t, kL0Slots / 64> l0_bits_{};
  std::uint64_t l0_summary_ = 0;
  std::int64_t w0_tick_ = 0;   // tick of L0 slot 0; L0 covers [w0, w0+4096)
  std::size_t l1_base_ = 0;    // circular index of the L1 slot after L0
  std::size_t l0_nodes_ = 0;   // nodes resident in L0 (incl. cancelled)
  std::size_t l1_nodes_ = 0;   // nodes resident in L1 (incl. cancelled)

  /// The earliest wheel tick, drained and sorted by (when, seq); consumed
  /// from ready_pos_. Same-tick schedules issued while the tick executes are
  /// merge-inserted so the global order stays exact.
  std::pmr::vector<Event> ready_;
  std::size_t ready_pos_ = 0;
  std::int64_t ready_tick_ = -1;  // -1 = no tick staged

  std::pmr::vector<Slot> slots_;
  std::pmr::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;  // scheduled, not yet run/cancelled
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t heap_scheduled_ = 0;
};

}  // namespace lazyeye::simnet
