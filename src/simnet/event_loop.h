// Deterministic discrete-event loop over virtual time.
//
// Single-threaded: callbacks run strictly in (time, insertion-order) order.
// This is the substrate every other module schedules against (DNS timeouts,
// TCP retransmissions, HE connection-attempt delays, netem delivery...).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace lazyeye::simnet {

/// Handle for cancelling a scheduled callback. Default-constructed = invalid.
struct TimerId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(TimerId a, TimerId b) { return a.value == b.value; }
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time (starts at 0).
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `when` (clamped to now()).
  TimerId schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` from now.
  TimerId schedule_after(SimTime delay, Callback cb);

  /// Cancels a pending callback; returns false if it already ran / was
  /// cancelled / is invalid.
  bool cancel(TimerId id);

  /// Runs until no events remain (or the safety cap on processed events
  /// trips, which indicates a runaway feedback loop in a test).
  void run();

  /// Processes all events with time <= deadline, then advances now() to
  /// `deadline`. Returns the number of events processed.
  std::size_t run_until(SimTime deadline);

  /// run_until(now() + d).
  std::size_t run_for(SimTime d);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_.size(); }

  /// Total callbacks executed since construction.
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    // The callback lives in the heap node itself (moved in, moved out —
    // no per-event allocation beyond what std::function needs).
    Callback cb;
  };
  struct EventLater {
    // Min-heap comparator for std::push_heap/std::pop_heap.
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one();  // runs the earliest live event; false if queue empty

  /// Binary min-heap over (when, seq). Cancellation is lazy: an id absent
  /// from live_ is skipped — and thereby pruned — when its node reaches the
  /// top, so stale entries never outlive their scheduled time.
  std::vector<Event> heap_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not yet run/cancelled
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
};

}  // namespace lazyeye::simnet
