// Deterministic discrete-event loop over virtual time.
//
// Single-threaded: callbacks run strictly in (time, insertion-order) order.
// This is the substrate every other module schedules against (DNS timeouts,
// TCP retransmissions, HE connection-attempt delays, netem delivery...).
//
// The scheduling path is allocation-lean: callbacks are stored in
// InlineCallback nodes (small captures never touch the heap), and liveness
// is tracked by generation-tagged slots validated directly against the heap
// nodes — no per-event hash-set insert/erase on the hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/inline_callback.h"
#include "util/time.h"

namespace lazyeye::simnet {

/// Handle for cancelling a scheduled callback. Default-constructed = invalid.
///
/// The value packs (generation << kSlotBits) | (slot + 1): the slot indexes
/// a recycled entry in the loop's slot table, and the generation is bumped
/// every time the slot is retired, so a stale handle held across the event's
/// execution (or cancellation) can never alias a later timer that happens to
/// reuse the same slot.
struct TimerId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
  friend bool operator==(TimerId a, TimerId b) { return a.value == b.value; }
};

class EventLoop {
 public:
  using Callback = InlineCallback;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time (starts at 0).
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `when` (clamped to now()).
  TimerId schedule_at(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` from now.
  TimerId schedule_after(SimTime delay, Callback cb);

  /// Cancels a pending callback; returns false if it already ran / was
  /// cancelled / is invalid.
  bool cancel(TimerId id);

  /// Runs until no events remain (or the safety cap on processed events
  /// trips, which indicates a runaway feedback loop in a test).
  void run();

  /// Processes all events with time <= deadline, then advances now() to
  /// `deadline`. Returns the number of events processed.
  std::size_t run_until(SimTime deadline);

  /// run_until(now() + d).
  std::size_t run_for(SimTime d);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return live_count_; }

  /// Total callbacks executed since construction.
  std::uint64_t processed() const { return processed_; }

 private:
  // TimerId layout: low kSlotBits hold slot+1 (so value 0 stays invalid),
  // the remaining 40 bits hold the slot's generation at arm time. The
  // stored generation wraps at 40 bits so the comparison in slot_armed()
  // always sees exactly the bits that survive packing; a stale id could
  // alias only after a full 2^40 retires of one slot between arm and check.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (~std::uint64_t{0}) >> kSlotBits;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;  // packed (generation, slot) — see TimerId
    // The callback lives in the heap node itself; small captures are stored
    // inline (InlineCallback), so scheduling typically allocates nothing.
    Callback cb;
  };
  struct EventLater {
    // Min-heap comparator for std::push_heap/std::pop_heap.
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One recyclable liveness slot. `generation` is bumped when the slot is
  /// retired (its heap node ran or was pruned), invalidating every TimerId
  /// minted for an earlier use of the slot. Generations start at 1 so the
  /// packed id of an armed timer is never 0.
  struct Slot {
    std::uint64_t generation = 1;
    bool armed = false;
  };

  bool pop_one();  // runs the earliest live event; false if queue empty

  // Slot helpers (definitions in the .cc).
  std::uint64_t arm_slot();                    // returns packed id
  bool slot_armed(std::uint64_t packed) const;  // id still live?
  void retire(std::uint64_t packed);           // bump generation, free slot

  /// Binary min-heap over (when, seq). Cancellation is lazy: a node whose
  /// slot generation no longer matches (or whose slot was disarmed) is
  /// skipped — and thereby pruned — when it reaches the top, so stale
  /// entries never outlive their scheduled time.
  std::vector<Event> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;  // scheduled, not yet run/cancelled
  SimTime now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace lazyeye::simnet
