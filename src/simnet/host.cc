#include "simnet/host.h"

#include <algorithm>
#include <stdexcept>

#include "simnet/network.h"
#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::simnet {

Host::Host(Network& net, std::string name)
    : net_{net}, name_{std::move(name)} {}

void Host::add_address(const IpAddress& addr) {
  if (owns_address(addr)) return;
  addresses_.push_back(addr);
  net_.register_address(addr, *this);
}

std::optional<IpAddress> Host::address(Family family) const {
  for (const IpAddress& a : addresses_) {
    if (a.family() == family) return a;
  }
  return std::nullopt;
}

bool Host::owns_address(const IpAddress& addr) const {
  return std::find(addresses_.begin(), addresses_.end(), addr) !=
         addresses_.end();
}

void Host::udp_bind(std::uint16_t port, UdpHandler handler) {
  udp_ports_[port] = std::move(handler);
}

void Host::udp_unbind(std::uint16_t port) { udp_ports_.erase(port); }

void Host::udp_send(const Endpoint& src, const Endpoint& dst,
                    std::vector<std::uint8_t> payload) {
  Packet p;
  p.proto = Protocol::kUdp;
  p.src = src;
  p.dst = dst;
  p.payload = std::move(payload);
  send_packet(std::move(p));
}

void Host::send_packet(Packet p) {
  if (!owns_address(p.src.addr)) {
    throw std::logic_error(str_format(
        "host %s sending from unowned address %s", name_.c_str(),
        p.src.addr.to_string().c_str()));
  }
  if (p.src.addr.family() != p.dst.addr.family()) {
    throw std::logic_error("source/destination address family mismatch");
  }
  notify_taps(p, TapDirection::kEgress);
  net_.send(*this, std::move(p));
}

void Host::set_protocol_handler(Protocol proto, ProtocolHandler handler) {
  if (handler) {
    protocol_handlers_[proto] = std::move(handler);
  } else {
    protocol_handlers_.erase(proto);
  }
}

std::uint16_t Host::ephemeral_port() {
  const std::uint16_t port = next_ephemeral_;
  next_ephemeral_ = (next_ephemeral_ == 65535) ? 49152 : next_ephemeral_ + 1;
  return port;
}

int Host::add_tap(Tap tap) {
  const int id = next_tap_id_++;
  taps_.emplace_back(id, std::move(tap));
  return id;
}

void Host::remove_tap(int id) {
  std::erase_if(taps_, [id](const auto& pair) { return pair.first == id; });
}

void Host::deliver(const Packet& p) {
  notify_taps(p, TapDirection::kIngress);
  if (p.proto == Protocol::kUdp) {
    if (const auto it = udp_ports_.find(p.dst.port); it != udp_ports_.end()) {
      it->second(p);
      return;
    }
  }
  if (const auto it = protocol_handlers_.find(p.proto);
      it != protocol_handlers_.end()) {
    it->second(p);
    return;
  }
  log_message(LogLevel::kTrace,
              str_format("%s: dropping unhandled packet %s", name_.c_str(),
                         p.summary().c_str()));
}

void Host::notify_taps(const Packet& p, TapDirection dir) {
  for (const auto& [id, tap] : taps_) tap(p, dir);
}

}  // namespace lazyeye::simnet
