#include "simnet/host.h"

#include <algorithm>
#include <stdexcept>

#include "simnet/network.h"
#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::simnet {

Host::Host(Network& net, std::string name)
    : net_{net},
      name_{std::move(name)},
      addresses_{net.memory()},
      udp_ports_{net.memory()},
      pending_udp_ops_{net.memory()},
      taps_{net.memory()} {}

void Host::add_address(const IpAddress& addr) {
  if (owns_address(addr)) return;
  addresses_.push_back(addr);
  net_.register_address(addr, *this);
}

std::optional<IpAddress> Host::address(Family family) const {
  for (const IpAddress& a : addresses_) {
    if (a.family() == family) return a;
  }
  return std::nullopt;
}

bool Host::owns_address(const IpAddress& addr) const {
  return std::find(addresses_.begin(), addresses_.end(), addr) !=
         addresses_.end();
}

Host::UdpBinding* Host::find_udp_binding(std::uint16_t port) {
  const auto it = std::lower_bound(
      udp_ports_.begin(), udp_ports_.end(), port,
      [](const UdpBinding& b, std::uint16_t p) { return b.port < p; });
  if (it == udp_ports_.end() || it->port != port) return nullptr;
  return &*it;
}

void Host::apply_udp_op(std::uint16_t port, UdpHandler handler) {
  const auto it = std::lower_bound(
      udp_ports_.begin(), udp_ports_.end(), port,
      [](const UdpBinding& b, std::uint16_t p) { return b.port < p; });
  if (it != udp_ports_.end() && it->port == port) {
    if (handler) {
      it->handler = std::move(handler);
    } else {
      udp_ports_.erase(it);
    }
    return;
  }
  if (handler) udp_ports_.insert(it, UdpBinding{port, std::move(handler)});
}

void Host::flush_pending_udp_ops() {
  // Applied in arrival order so unbind-then-rebind sequences issued from
  // inside a handler land exactly as they would have outside a dispatch.
  for (auto& [port, handler] : pending_udp_ops_) {
    apply_udp_op(port, std::move(handler));
  }
  pending_udp_ops_.clear();
}

void Host::udp_bind(std::uint16_t port, UdpHandler handler) {
  if (dispatch_depth_ > 0) {
    pending_udp_ops_.emplace_back(port, std::move(handler));
    return;
  }
  apply_udp_op(port, std::move(handler));
}

void Host::udp_unbind(std::uint16_t port) {
  if (dispatch_depth_ > 0) {
    pending_udp_ops_.emplace_back(port, UdpHandler{});
    return;
  }
  apply_udp_op(port, UdpHandler{});
}

void Host::udp_send(const Endpoint& src, const Endpoint& dst,
                    Buffer payload) {
  Packet p;
  p.proto = Protocol::kUdp;
  p.src = src;
  p.dst = dst;
  p.payload = std::move(payload);
  send_packet(std::move(p));
}

void Host::udp_send(const Endpoint& src, const Endpoint& dst,
                    std::vector<std::uint8_t> payload) {
  udp_send(src, dst, Buffer::adopt(std::move(payload)));
}

void Host::send_packet(Packet p) {
  if (!owns_address(p.src.addr)) {
    throw std::logic_error(str_format(
        "host %s sending from unowned address %s", name_.c_str(),
        p.src.addr.to_string().c_str()));
  }
  if (p.src.addr.family() != p.dst.addr.family()) {
    throw std::logic_error("source/destination address family mismatch");
  }
  notify_taps(p, TapDirection::kEgress);
  net_.send(*this, std::move(p));
}

void Host::set_protocol_handler(Protocol proto, ProtocolHandler handler) {
  protocol_handlers_[static_cast<std::size_t>(proto)] = std::move(handler);
}

std::uint16_t Host::ephemeral_port() {
  const std::uint16_t port = next_ephemeral_;
  next_ephemeral_ = (next_ephemeral_ == 65535) ? 49152 : next_ephemeral_ + 1;
  return port;
}

int Host::add_tap(Tap tap) {
  const int id = next_tap_id_++;
  taps_.emplace_back(id, std::move(tap));
  return id;
}

void Host::remove_tap(int id) {
  std::erase_if(taps_, [id](const auto& pair) { return pair.first == id; });
}

void Host::deliver(const Packet& p) {
  notify_taps(p, TapDirection::kIngress);
  ++dispatch_depth_;
  // RAII so a throwing handler still unwinds the depth and flushes —
  // otherwise every later bind/unbind would queue forever.
  struct DispatchGuard {
    Host& host;
    ~DispatchGuard() {
      if (--host.dispatch_depth_ == 0) host.flush_pending_udp_ops();
    }
  } guard{*this};
  // The handler reference stays valid for the whole call: bind/unbind from
  // inside it are deferred (dispatch_depth_ > 0), so the flat table cannot
  // reallocate or erase under the executing handler.
  if (p.proto == Protocol::kUdp) {
    if (UdpBinding* binding = find_udp_binding(p.dst.port)) {
      binding->handler(p);
      return;
    }
  }
  if (ProtocolHandler& handler =
          protocol_handlers_[static_cast<std::size_t>(p.proto)];
      handler) {
    handler(p);
    return;
  }
  log_trace([&] {
    return str_format("%s: dropping unhandled packet %s", name_.c_str(),
                      p.summary().c_str());
  });
}

void Host::notify_taps(const Packet& p, TapDirection dir) {
  for (auto& [id, tap] : taps_) tap(p, dir);
}

}  // namespace lazyeye::simnet
