// Simulated host: addresses, UDP sockets, protocol handlers, egress shaping,
// and capture taps.
//
// A Host owns no threads; all I/O happens through the owning Network's event
// loop. The TCP/QUIC state machines live in the transport module and hook in
// via set_protocol_handler(), so simnet stays transport-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "simnet/netem.h"
#include "simnet/packet.h"

namespace lazyeye::simnet {

class Network;

enum class TapDirection : std::uint8_t { kEgress, kIngress };

class Host {
 public:
  using UdpHandler = std::function<void(const Packet&)>;
  using ProtocolHandler = std::function<void(const Packet&)>;
  using Tap = std::function<void(const Packet&, TapDirection)>;

  Host(Network& net, std::string name);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  Network& network() { return net_; }

  // -- Addressing ----------------------------------------------------------
  /// Registers an address on this host (and in the network's routing table).
  void add_address(const IpAddress& addr);
  const std::vector<IpAddress>& addresses() const { return addresses_; }
  /// First configured address of the family, if any.
  std::optional<IpAddress> address(Family family) const;
  bool owns_address(const IpAddress& addr) const;

  // -- UDP -----------------------------------------------------------------
  /// Binds a handler for datagrams to any local address on `port`.
  void udp_bind(std::uint16_t port, UdpHandler handler);
  void udp_unbind(std::uint16_t port);
  /// Sends a datagram. `src.addr` must be owned by this host.
  void udp_send(const Endpoint& src, const Endpoint& dst,
                std::vector<std::uint8_t> payload);

  // -- Raw packet plumbing (used by transport stacks) -----------------------
  void send_packet(Packet p);
  /// Installs the handler for all inbound packets of `proto` that have no
  /// more specific binding (TCP always lands here).
  void set_protocol_handler(Protocol proto, ProtocolHandler handler);

  /// Allocates an ephemeral source port (49152..65535, round-robin).
  std::uint16_t ephemeral_port();

  // -- Shaping & observation -------------------------------------------------
  /// tc-netem equivalent attached to this host's egress.
  NetemQdisc& egress() { return egress_; }
  const NetemQdisc& egress() const { return egress_; }

  /// Registers a capture tap seeing all egress+ingress packets. Returns an id
  /// for removal.
  int add_tap(Tap tap);
  void remove_tap(int id);

  // Called by Network on packet arrival. Not for external use.
  void deliver(const Packet& p);

 private:
  void notify_taps(const Packet& p, TapDirection dir);

  Network& net_;
  std::string name_;
  std::vector<IpAddress> addresses_;
  std::map<std::uint16_t, UdpHandler> udp_ports_;
  std::map<Protocol, ProtocolHandler> protocol_handlers_;
  std::vector<std::pair<int, Tap>> taps_;
  NetemQdisc egress_;
  std::uint16_t next_ephemeral_ = 49152;
  int next_tap_id_ = 1;
};

}  // namespace lazyeye::simnet
