// Simulated host: addresses, UDP sockets, protocol handlers, egress shaping,
// and capture taps.
//
// A Host owns no threads; all I/O happens through the owning Network's event
// loop. The TCP/QUIC state machines live in the transport module and hook in
// via set_protocol_handler(), so simnet stays transport-agnostic.
//
// Packet dispatch is flat: UDP bindings live in a sorted vector of
// InlineFunction-backed handlers (binary-searched by port, no node-based map
// in the per-packet path) and protocol handlers in a fixed per-protocol
// array. Handlers may bind/unbind freely from inside a dispatch — mutations
// are deferred until the in-flight dispatch returns, so the executing
// handler is never moved or destroyed under its own feet.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "simnet/inline_callback.h"
#include "simnet/netem.h"
#include "simnet/packet.h"

namespace lazyeye::simnet {

class Network;

enum class TapDirection : std::uint8_t { kEgress, kIngress };

class Host {
 public:
  using UdpHandler = InlineFunction<void(const Packet&)>;
  using ProtocolHandler = InlineFunction<void(const Packet&)>;
  /// Inline like every other simnet callable: capture taps fire per packet,
  /// and the capture layer's closures are pointer-sized.
  using Tap = InlineFunction<void(const Packet&, TapDirection)>;

  Host(Network& net, std::string name);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  Network& network() { return net_; }

  // -- Addressing ----------------------------------------------------------
  /// Registers an address on this host (and in the network's routing table).
  void add_address(const IpAddress& addr);
  const std::pmr::vector<IpAddress>& addresses() const { return addresses_; }
  /// First configured address of the family, if any.
  std::optional<IpAddress> address(Family family) const;
  bool owns_address(const IpAddress& addr) const;

  // -- UDP -----------------------------------------------------------------
  /// Binds a handler for datagrams to any local address on `port`.
  void udp_bind(std::uint16_t port, UdpHandler handler);
  void udp_unbind(std::uint16_t port);
  /// Sends a datagram. `src.addr` must be owned by this host.
  void udp_send(const Endpoint& src, const Endpoint& dst, Buffer payload);
  /// Legacy vector entry point: adopts the vector as the payload block
  /// (no copy, but no pooling either — hot paths pass a pooled Buffer).
  void udp_send(const Endpoint& src, const Endpoint& dst,
                std::vector<std::uint8_t> payload);

  // -- Raw packet plumbing (used by transport stacks) -----------------------
  void send_packet(Packet p);
  /// Installs the handler for all inbound packets of `proto` that have no
  /// more specific binding (TCP always lands here).
  void set_protocol_handler(Protocol proto, ProtocolHandler handler);

  /// Allocates an ephemeral source port (49152..65535, round-robin).
  std::uint16_t ephemeral_port();

  // -- Shaping & observation -------------------------------------------------
  /// tc-netem equivalent attached to this host's egress.
  NetemQdisc& egress() { return egress_; }
  const NetemQdisc& egress() const { return egress_; }

  /// Registers a capture tap seeing all egress+ingress packets. Returns an id
  /// for removal.
  int add_tap(Tap tap);
  void remove_tap(int id);

  // Called by Network on packet arrival. Not for external use.
  void deliver(const Packet& p);

 private:
  struct UdpBinding {
    std::uint16_t port = 0;
    UdpHandler handler;
  };

  void notify_taps(const Packet& p, TapDirection dir);
  UdpBinding* find_udp_binding(std::uint16_t port);
  void apply_udp_op(std::uint16_t port, UdpHandler handler);
  void flush_pending_udp_ops();

  Network& net_;
  std::string name_;
  // All growable tables draw from the owning Network's memory resource, so
  // arena-backed worlds build hosts without touching the global heap.
  std::pmr::vector<IpAddress> addresses_;
  /// Sorted by port; handlers stored inline (InlineFunction SBO).
  std::pmr::vector<UdpBinding> udp_ports_;
  /// Indexed by Protocol; empty handler = unset.
  ProtocolHandler protocol_handlers_[2];
  /// Depth of in-flight deliver() calls; >0 defers udp table mutations.
  int dispatch_depth_ = 0;
  /// (port, handler) ops queued during dispatch; empty handler = unbind.
  std::pmr::vector<std::pair<std::uint16_t, UdpHandler>> pending_udp_ops_;
  std::pmr::vector<std::pair<int, Tap>> taps_;
  NetemQdisc egress_;
  std::uint16_t next_ephemeral_ = 49152;
  int next_tap_id_ = 1;
};

}  // namespace lazyeye::simnet
