// Small-buffer-optimised move-only callables for the simnet hot paths.
//
// Every simnet event used to carry a std::function<void()>, and the common
// timer lambdas (DNS timeout, TCP retransmit, HE connection-attempt delay)
// capture a handful of pointers — small enough that the type-erased callable
// can live inline in the heap node instead of in a fresh heap allocation per
// scheduled event. InlineFunction<Sig> stores any callable up to
// kInlineBytes (and nothrow-movable) in place; larger callables fall back to
// a single heap allocation, so no caller ever has to care about capture
// size. The event loop uses InlineCallback = InlineFunction<void()>; Host
// packet dispatch uses InlineFunction<void(const Packet&)> for its flat
// handler tables.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace lazyeye::simnet {

template <typename Signature>
class InlineFunction;  // only the R(Args...) specialisation exists

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// Captures up to this many bytes stay in the node itself. Sized for the
  /// scheduling/dispatch call sites (this + a few pointers/ids with room to
  /// spare); oversized closures take the heap path transparently.
  static constexpr std::size_t kInlineBytes = 64;

  InlineFunction() noexcept = default;

  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT: mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineModel<Fn>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &HeapModel<Fn>::ops;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    // Same defined failure mode as the std::function this type replaced.
    if (ops_ == nullptr) throw std::bad_function_call{};
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when the stored callable lives in the inline buffer (no heap
  /// allocation was made for it). Observability for tests and benches.
  bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->stored_inline;
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    bool stored_inline;
  };

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  struct InlineModel {
    static Fn* at(void* s) { return std::launder(reinterpret_cast<Fn*>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*at(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* from, void* to) noexcept {
      Fn* f = at(from);
      ::new (to) Fn(std::move(*f));
      f->~Fn();
    }
    static void destroy(void* s) noexcept { at(s)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <typename Fn>
  struct HeapModel {
    static Fn** at(void* s) { return std::launder(reinterpret_cast<Fn**>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (**at(s))(std::forward<Args>(args)...);
    }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) Fn*(*at(from));
    }
    static void destroy(void* s) noexcept { delete *at(s); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// The event-loop callback type (kept under its historical name).
using InlineCallback = InlineFunction<void()>;

}  // namespace lazyeye::simnet
