#include "simnet/ip.h"

#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace lazyeye::simnet {

// ---------------------------------------------------------------- IPv4 ----

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  int fields = 0;
  const bool ok = lazyeye::for_each_split(text, '.', [&](std::string_view p) {
    if (++fields > 4 || p.empty() || p.size() > 3) return false;
    const auto v = lazyeye::parse_u64(p);
    if (!v || *v > 255) return false;
    value = (value << 8) | static_cast<std::uint32_t>(*v);
    return true;
  });
  if (!ok || fields != 4) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

// ---------------------------------------------------------------- IPv6 ----

std::uint16_t Ipv6Address::group(int i) const {
  return static_cast<std::uint16_t>((bytes[static_cast<std::size_t>(i) * 2]
                                     << 8) |
                                    bytes[static_cast<std::size_t>(i) * 2 + 1]);
}

void Ipv6Address::set_group(int i, std::uint16_t v) {
  bytes[static_cast<std::size_t>(i) * 2] = static_cast<std::uint8_t>(v >> 8);
  bytes[static_cast<std::size_t>(i) * 2 + 1] = static_cast<std::uint8_t>(v);
}

namespace {

std::optional<std::uint16_t> parse_hextet(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return static_cast<std::uint16_t>(v);
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  // Split on "::" (at most one occurrence).
  std::string_view head = text;
  std::string_view tail;
  bool has_gap = false;
  if (const auto pos = text.find("::"); pos != std::string_view::npos) {
    if (text.find("::", pos + 1) != std::string_view::npos) {
      return std::nullopt;  // second "::"
    }
    has_gap = true;
    head = text.substr(0, pos);
    tail = text.substr(pos + 2);
  }

  // Fixed-size group scratch: a literal has at most 8 hextets per side.
  struct Side {
    std::uint16_t groups[8];
    std::size_t count = 0;
  };
  auto parse_side = [](std::string_view side, Side& out) -> bool {
    if (side.empty()) return true;
    return lazyeye::for_each_split(side, ':', [&](std::string_view part) {
      if (out.count >= 8) return false;
      const auto v = parse_hextet(part);
      if (!v) return false;
      out.groups[out.count++] = *v;
      return true;
    });
  };

  Side front;
  Side back;
  if (!parse_side(head, front) || !parse_side(tail, back)) return std::nullopt;

  const std::size_t total = front.count + back.count;
  if (has_gap) {
    if (total >= 8) return std::nullopt;  // "::" must cover >= 1 group
  } else if (total != 8) {
    return std::nullopt;
  }

  Ipv6Address addr;
  int g = 0;
  for (std::size_t i = 0; i < front.count; ++i) addr.set_group(g++, front.groups[i]);
  g = 8 - static_cast<int>(back.count);
  for (std::size_t i = 0; i < back.count; ++i) addr.set_group(g++, back.groups[i]);
  return addr;
}

std::string Ipv6Address::to_string() const {
  // RFC 5952: compress the longest run of zero groups (>= 2) with "::".
  int best_start = -1;
  int best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(i) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(j) == 0) ++j;
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    std::snprintf(buf, sizeof buf, "%x", group(i));
    out += buf;
    ++i;
  }
  return out;
}

// ----------------------------------------------------------- IpAddress ----

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    if (const auto v6 = Ipv6Address::parse(text)) return IpAddress{*v6};
    return std::nullopt;
  }
  if (const auto v4 = Ipv4Address::parse(text)) return IpAddress{*v4};
  return std::nullopt;
}

IpAddress IpAddress::must_parse(std::string_view text) {
  if (const auto a = parse(text)) return *a;
  throw std::invalid_argument("invalid IP address literal: " +
                              std::string{text});
}

std::string IpAddress::to_string() const {
  return is_v4() ? v4().to_string() : v6().to_string();
}

std::size_t IpAddress::hash() const {
  std::uint64_t h = is_v4() ? 0x9e3779b97f4a7c15ULL : 0xc2b2ae3d27d4eb4fULL;
  if (is_v4()) {
    h ^= v4().value;
    h *= 0x100000001b3ULL;
  } else {
    for (const std::uint8_t b : v6().bytes) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

std::string Endpoint::to_string() const {
  // Append form: gcc 12's -Wrestrict misfires on `"literal" + string`
  // chains (PR 105651), and CI builds -Werror.
  std::string out;
  if (addr.is_v6()) {
    out += '[';
    out += addr.to_string();
    out += "]:";
  } else {
    out += addr.to_string();
    out += ':';
  }
  out += std::to_string(port);
  return out;
}

}  // namespace lazyeye::simnet
