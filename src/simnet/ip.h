// IP address model: IPv4, IPv6, family-erased IpAddress, Endpoint.
//
// Parsing/formatting follow RFC 4291 text forms; IPv6 output uses the RFC 5952
// canonical form (lowercase hex, longest zero run compressed to "::").
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace lazyeye::simnet {

enum class Family : std::uint8_t { kIpv4, kIpv6 };

constexpr const char* family_name(Family f) {
  return f == Family::kIpv4 ? "IPv4" : "IPv6";
}
constexpr Family other_family(Family f) {
  return f == Family::kIpv4 ? Family::kIpv6 : Family::kIpv4;
}

struct Ipv4Address {
  std::uint32_t value = 0;  // host order; 0x01020304 == 1.2.3.4

  static std::optional<Ipv4Address> parse(std::string_view text);
  std::string to_string() const;

  auto operator<=>(const Ipv4Address&) const = default;
};

struct Ipv6Address {
  std::array<std::uint8_t, 16> bytes{};

  static std::optional<Ipv6Address> parse(std::string_view text);
  std::string to_string() const;

  /// Hextet accessors (group i of 8, big-endian).
  std::uint16_t group(int i) const;
  void set_group(int i, std::uint16_t v);

  auto operator<=>(const Ipv6Address&) const = default;
};

/// Family-erased address.
class IpAddress {
 public:
  IpAddress() : addr_{Ipv4Address{}} {}
  IpAddress(Ipv4Address a) : addr_{a} {}  // NOLINT(google-explicit-constructor)
  IpAddress(Ipv6Address a) : addr_{a} {}  // NOLINT(google-explicit-constructor)

  /// Parses either family from text.
  static std::optional<IpAddress> parse(std::string_view text);

  /// Parses or throws std::invalid_argument — for literals in code/tests.
  static IpAddress must_parse(std::string_view text);

  Family family() const {
    return std::holds_alternative<Ipv4Address>(addr_) ? Family::kIpv4
                                                      : Family::kIpv6;
  }
  bool is_v4() const { return family() == Family::kIpv4; }
  bool is_v6() const { return family() == Family::kIpv6; }

  const Ipv4Address& v4() const { return std::get<Ipv4Address>(addr_); }
  const Ipv6Address& v6() const { return std::get<Ipv6Address>(addr_); }

  std::string to_string() const;

  auto operator<=>(const IpAddress&) const = default;

  /// Stable hash for unordered containers.
  std::size_t hash() const;

 private:
  std::variant<Ipv4Address, Ipv6Address> addr_;
};

struct Endpoint {
  IpAddress addr;
  std::uint16_t port = 0;

  std::string to_string() const;  // "1.2.3.4:80" / "[2001:db8::1]:80"
  auto operator<=>(const Endpoint&) const = default;
};

}  // namespace lazyeye::simnet

template <>
struct std::hash<lazyeye::simnet::IpAddress> {
  std::size_t operator()(const lazyeye::simnet::IpAddress& a) const {
    return a.hash();
  }
};

template <>
struct std::hash<lazyeye::simnet::Endpoint> {
  std::size_t operator()(const lazyeye::simnet::Endpoint& e) const {
    return e.addr.hash() * 1000003u ^ e.port;
  }
};
