#include "simnet/netem.h"

#include <algorithm>

namespace lazyeye::simnet {

bool PacketFilter::matches(const Packet& p) const {
  if (family && p.family() != *family) return false;
  if (proto && p.proto != *proto) return false;
  if (src_addr && p.src.addr != *src_addr) return false;
  if (dst_addr && p.dst.addr != *dst_addr) return false;
  if (src_port && p.src.port != *src_port) return false;
  if (dst_port && p.dst.port != *dst_port) return false;
  return true;
}

NetemVerdict NetemQdisc::process(const Packet& p, Rng& rng) const {
  for (const NetemRule& rule : rules_) {
    if (!rule.filter.matches(p)) continue;
    NetemVerdict verdict;
    if (rule.spec.loss > 0.0 && rng.chance(rule.spec.loss)) {
      verdict.dropped = true;
      return verdict;
    }
    SimTime d = rule.spec.delay;
    if (rule.spec.jitter.count() > 0) {
      d += rng.next_duration(-rule.spec.jitter, rule.spec.jitter);
    }
    verdict.extra_delay = std::max(SimTime{0}, d);
    return verdict;
  }
  return {};
}

}  // namespace lazyeye::simnet
