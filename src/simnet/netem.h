// tc-netem-style traffic shaping.
//
// The paper shapes traffic with `tc-netem` on the server host (delaying IPv6
// packets for CAD tests) and per measurement-address pairs (web tool). A
// NetemQdisc holds an ordered rule list; the first matching rule's spec is
// applied (extra delay, jitter, probabilistic loss).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "simnet/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace lazyeye::simnet {

/// What to do with a matching packet.
struct NetemSpec {
  SimTime delay{0};
  SimTime jitter{0};   // uniform in [delay - jitter, delay + jitter], >= 0
  double loss = 0.0;   // drop probability in [0, 1]

  static NetemSpec delay_only(SimTime d) { return NetemSpec{d, SimTime{0}, 0.0}; }
};

/// Packet match criteria; unset fields match anything.
struct PacketFilter {
  std::optional<Family> family;
  std::optional<Protocol> proto;
  std::optional<IpAddress> src_addr;
  std::optional<IpAddress> dst_addr;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;

  bool matches(const Packet& p) const;

  static PacketFilter any() { return {}; }
  static PacketFilter for_family(Family f) {
    PacketFilter pf;
    pf.family = f;
    return pf;
  }
  static PacketFilter to_address(IpAddress a) {
    PacketFilter pf;
    pf.dst_addr = std::move(a);
    return pf;
  }
};

struct NetemRule {
  PacketFilter filter;
  NetemSpec spec;
  std::string label;  // for diagnostics
};

/// Result of passing a packet through a qdisc.
struct NetemVerdict {
  bool dropped = false;
  SimTime extra_delay{0};
};

class NetemQdisc {
 public:
  /// Appends a rule; rules are evaluated in insertion order, first match wins.
  void add_rule(NetemRule rule) { rules_.push_back(std::move(rule)); }
  void add_rule(PacketFilter filter, NetemSpec spec, std::string label = {}) {
    rules_.push_back({std::move(filter), spec, std::move(label)});
  }
  void clear() { rules_.clear(); }
  std::size_t rule_count() const { return rules_.size(); }

  /// Applies the first matching rule. `rng` supplies jitter/loss randomness.
  NetemVerdict process(const Packet& p, Rng& rng) const;

 private:
  std::vector<NetemRule> rules_;
};

}  // namespace lazyeye::simnet
