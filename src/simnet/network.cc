#include "simnet/network.h"

#include <new>

#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::simnet {

Network::Network(std::uint64_t seed)
    : Network{nullptr, std::pmr::get_default_resource(), seed} {}

Network::Network(WorldMemory& world, std::uint64_t seed)
    : Network{&world.buffers, &world.arena, seed} {}

Network::Network(BufferPool* pool, std::pmr::memory_resource* mem,
                 std::uint64_t seed)
    : pool_{pool != nullptr ? pool : &owned_pool_},
      mem_{mem},
      loop_{mem},
      rng_{seed},
      base_delay_{std::chrono::microseconds{200}},
      hosts_{mem},
      hosts_by_name_{mem},
      routes_{mem},
      flight_{mem},
      flight_free_{mem} {}

Network::~Network() {
  // Reverse creation order, exactly like the old vector<unique_ptr<Host>>.
  for (auto it = hosts_.rbegin(); it != hosts_.rend(); ++it) {
    Host* host = *it;
    host->~Host();
    mem_->deallocate(host, sizeof(Host), alignof(Host));
  }
  hosts_.clear();
}

Host& Network::add_host(std::string name) {
  void* storage = mem_->allocate(sizeof(Host), alignof(Host));
  Host* host = ::new (storage) Host(*this, std::move(name));
  hosts_.push_back(host);
  hosts_by_name_.emplace(host->name(), host);  // first name registration wins
  return *host;
}

Host* Network::find_host(const std::string& name) {
  const auto it = hosts_by_name_.find(name);
  return it == hosts_by_name_.end() ? nullptr : it->second;
}

Host* Network::route(const IpAddress& addr) {
  const auto it = routes_.find(addr);
  return it == routes_.end() ? nullptr : it->second;
}

void Network::register_address(const IpAddress& addr, Host& host) {
  routes_[addr] = &host;
}

std::uint32_t Network::acquire_flight_slot() {
  if (!flight_free_.empty()) {
    const std::uint32_t slot = flight_free_.back();
    flight_free_.pop_back();
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(flight_.size());
  flight_.emplace_back();
  flight_free_.reserve(flight_.size());  // release below never reallocates
  return slot;
}

void Network::send(Host& from, Packet p) {
  p.id = next_packet_id_++;
  ++stats_.packets_sent;

  SimTime extra{0};
  const NetemVerdict egress = from.egress().process(p, rng_);
  if (egress.dropped) {
    ++stats_.packets_dropped_netem;
    return;
  }
  extra += egress.extra_delay;

  const NetemVerdict net_verdict = qdisc_.process(p, rng_);
  if (net_verdict.dropped) {
    ++stats_.packets_dropped_netem;
    return;
  }
  extra += net_verdict.extra_delay;

  Host* target = route(p.dst.addr);
  if (target == nullptr) {
    // Unowned destination: silently blackholed (unresponsive address).
    ++stats_.packets_blackholed;
    log_trace([&] { return str_format("blackhole: %s", p.summary().c_str()); });
    return;
  }

  // Park the packet in a recycled slot; the closure captures 20 bytes and
  // stays inside the InlineCallback small-buffer storage, so the hottest
  // callback in the system schedules without touching the heap.
  const std::uint32_t slot = acquire_flight_slot();
  flight_[slot] = std::move(p);

  const SimTime when = loop_.now() + base_delay_ + extra;
  loop_.schedule_at(when, [this, target, slot] {
    // Move to the stack first: the handler may send more packets, which can
    // grow flight_ and would invalidate a reference into it. The slot is
    // free for reuse the moment the packet is out.
    Packet packet = std::move(flight_[slot]);
    flight_free_.push_back(slot);
    ++stats_.packets_delivered;
    target->deliver(packet);
  });
}

}  // namespace lazyeye::simnet
