#include "simnet/network.h"

#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::simnet {

Network::Network(std::uint64_t seed)
    : rng_{seed}, base_delay_{std::chrono::microseconds{200}} {}

Host& Network::add_host(std::string name) {
  hosts_.push_back(std::make_unique<Host>(*this, std::move(name)));
  return *hosts_.back();
}

Host* Network::find_host(const std::string& name) {
  for (const auto& h : hosts_) {
    if (h->name() == name) return h.get();
  }
  return nullptr;
}

Host* Network::route(const IpAddress& addr) {
  const auto it = routes_.find(addr);
  return it == routes_.end() ? nullptr : it->second;
}

void Network::register_address(const IpAddress& addr, Host& host) {
  routes_[addr] = &host;
}

void Network::send(Host& from, Packet p) {
  p.id = next_packet_id_++;
  ++stats_.packets_sent;

  SimTime extra{0};
  const NetemVerdict egress = from.egress().process(p, rng_);
  if (egress.dropped) {
    ++stats_.packets_dropped_netem;
    return;
  }
  extra += egress.extra_delay;

  const NetemVerdict net_verdict = qdisc_.process(p, rng_);
  if (net_verdict.dropped) {
    ++stats_.packets_dropped_netem;
    return;
  }
  extra += net_verdict.extra_delay;

  Host* target = route(p.dst.addr);
  if (target == nullptr) {
    // Unowned destination: silently blackholed (unresponsive address).
    ++stats_.packets_blackholed;
    log_message(LogLevel::kTrace,
                str_format("blackhole: %s", p.summary().c_str()));
    return;
  }

  const SimTime when = loop_.now() + base_delay_ + extra;
  loop_.schedule_at(when, [this, target, packet = std::move(p)] {
    ++stats_.packets_delivered;
    target->deliver(packet);
  });
}

}  // namespace lazyeye::simnet
