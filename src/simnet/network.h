// Network fabric: connects hosts, routes packets by destination address,
// applies link delay + netem shaping.
//
// Packets addressed to an IP no host owns are silently dropped — that is
// exactly the "addresses that do not respond at all" behaviour the paper's
// address-selection test case relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/event_loop.h"
#include "simnet/host.h"
#include "simnet/netem.h"
#include "util/rng.h"

namespace lazyeye::simnet {

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_netem = 0;
  std::uint64_t packets_blackholed = 0;  // no host owns the dst address
};

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop& loop() { return loop_; }
  Rng& rng() { return rng_; }

  /// Creates a host attached to this network. The Network owns it.
  Host& add_host(std::string name);
  Host* find_host(const std::string& name);
  Host* route(const IpAddress& addr);

  /// One-way base propagation delay applied to every packet (default 200 us,
  /// modelling the paper's directly connected testbed hosts).
  void set_base_delay(SimTime d) { base_delay_ = d; }
  SimTime base_delay() const { return base_delay_; }

  /// Network-wide netem rules (evaluated after the sender's egress qdisc).
  NetemQdisc& qdisc() { return qdisc_; }

  /// Ships a packet from `from`; applies egress + network shaping and
  /// schedules delivery. Called by Host::send_packet.
  void send(Host& from, Packet p);

  const NetworkStats& stats() const { return stats_; }

  // Registers an address -> host mapping (called by Host::add_address).
  void register_address(const IpAddress& addr, Host& host);

 private:
  EventLoop loop_;
  Rng rng_;
  SimTime base_delay_;
  NetemQdisc qdisc_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::unordered_map<IpAddress, Host*> routes_;
  NetworkStats stats_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace lazyeye::simnet
