// Network fabric: connects hosts, routes packets by destination address,
// applies link delay + netem shaping.
//
// Packets addressed to an IP no host owns are silently dropped — that is
// exactly the "addresses that do not respond at all" behaviour the paper's
// address-selection test case relies on.
//
// The per-packet path is allocation-free in steady state: payload bytes
// recycle through a per-Network BufferPool, and in-flight packets park in a
// free-listed slot table so the delivery closure captures only
// {network, target, slot} — small enough for the EventLoop's InlineCallback
// small-buffer storage, where it used to be the hottest heap-spilling
// callback in the system.
#pragma once

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/buffer.h"
#include "simnet/event_loop.h"
#include "simnet/host.h"
#include "simnet/netem.h"
#include "simnet/scenario_pool.h"
#include "util/rng.h"

namespace lazyeye::simnet {

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_netem = 0;
  std::uint64_t packets_blackholed = 0;  // no host owns the dst address
};

class Network {
 public:
  /// Standalone world: owns its BufferPool, containers use the global
  /// allocator. The long-lived path for tests and persistent deployments.
  explicit Network(std::uint64_t seed = 1);
  /// World-pooled cell construction: payload blocks recycle through
  /// `world.buffers` and every container (loop tables, host lists, routes,
  /// flight slots) draws from `world.arena` — a warm lease builds the whole
  /// Network without touching the heap, and teardown is the arena reset.
  Network(WorldMemory& world, std::uint64_t seed);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  EventLoop& loop() { return loop_; }
  Rng& rng() { return rng_; }

  /// Pool backing packet payloads in this world. Hosts and protocol stacks
  /// build their send buffers from it so steady-state traffic recycles a
  /// bounded set of blocks.
  BufferPool& buffer_pool() { return *pool_; }

  /// Convenience: an empty pooled payload buffer.
  Buffer make_buffer() { return Buffer{pool_}; }

  /// Memory resource this world's containers draw from (the lease's arena
  /// for pooled worlds, the global resource otherwise). Stacks and other
  /// per-world satellites allocate their tables from it.
  std::pmr::memory_resource* memory() const { return mem_; }

  /// Creates a host attached to this network. The Network owns it.
  Host& add_host(std::string name);
  Host* find_host(const std::string& name);
  Host* route(const IpAddress& addr);

  /// One-way base propagation delay applied to every packet (default 200 us,
  /// modelling the paper's directly connected testbed hosts).
  void set_base_delay(SimTime d) { base_delay_ = d; }
  SimTime base_delay() const { return base_delay_; }

  /// Network-wide netem rules (evaluated after the sender's egress qdisc).
  NetemQdisc& qdisc() { return qdisc_; }

  /// Ships a packet from `from`; applies egress + network shaping and
  /// schedules delivery. Called by Host::send_packet.
  void send(Host& from, Packet p);

  const NetworkStats& stats() const { return stats_; }

  // Registers an address -> host mapping (called by Host::add_address).
  void register_address(const IpAddress& addr, Host& host);

 private:
  Network(BufferPool* pool, std::pmr::memory_resource* mem,
          std::uint64_t seed);

  std::uint32_t acquire_flight_slot();

  // Declared first so it is destroyed LAST: pending loop callbacks and
  // parked flight packets own pool-backed Buffers whose destructors release
  // blocks into the pool during ~Network. (Pooled worlds point pool_ at the
  // lease's BufferPool instead, which outlives the arena by construction.)
  BufferPool owned_pool_;
  BufferPool* pool_;
  std::pmr::memory_resource* mem_;
  EventLoop loop_;
  Rng rng_;
  SimTime base_delay_;
  NetemQdisc qdisc_;
  /// Hosts are constructed in mem_ storage and destroyed (reverse order) by
  /// ~Network, so ownership is identical on both construction paths.
  std::pmr::vector<Host*> hosts_;
  /// Name -> host kept in add_host order (first registration wins,
  /// matching the old linear scan's duplicate-name behaviour).
  std::pmr::unordered_map<std::string, Host*> hosts_by_name_;
  std::pmr::unordered_map<IpAddress, Host*> routes_;
  /// Parking lot for packets between send() and delivery. Slots are
  /// recycled through flight_free_, so steady-state traffic allocates
  /// nothing once the in-flight high-water mark is reached.
  std::pmr::vector<Packet> flight_;
  std::pmr::vector<std::uint32_t> flight_free_;
  NetworkStats stats_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace lazyeye::simnet
