#include "simnet/packet.h"

#include "util/strings.h"

namespace lazyeye::simnet {

std::size_t Packet::wire_size() const {
  const std::size_t l3 = family() == Family::kIpv4 ? 20 : 40;
  const std::size_t l4 = proto == Protocol::kUdp ? 8 : 20;
  return l3 + l4 + payload.size();
}

std::string Packet::summary() const {
  std::string flags;
  if (proto == Protocol::kTcp) {
    std::string letters;
    if (tcp.syn) letters += "S";
    if (tcp.ack) letters += "A";
    if (tcp.rst) letters += "R";
    if (tcp.fin) letters += "F";
    // Append-only forms: gcc 12's -Wrestrict misfires on inlined string
    // assigns/concats of literals (PR 105651), and CI builds -Werror.
    if (letters.empty()) letters += '.';
    flags += " [";
    flags += letters;
    flags += ']';
  }
  return lazyeye::str_format(
      "%s %s -> %s%s len=%zu", protocol_name(proto), src.to_string().c_str(),
      dst.to_string().c_str(), flags.c_str(), payload.size());
}

}  // namespace lazyeye::simnet
