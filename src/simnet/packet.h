// Simulated packet model.
//
// A Packet carries just enough structure for the experiments: address family
// (implied by endpoints), transport protocol, TCP handshake flags, and an
// opaque payload (real DNS wire bytes for UDP port 53 traffic). The payload
// is a pooled simnet::Buffer: tiny payloads (TCP control segments, one-byte
// QUIC frames) live inline in the packet, DNS wire blocks recycle through
// the owning Network's BufferPool, and moving a Packet never copies bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/buffer.h"
#include "simnet/ip.h"

namespace lazyeye::simnet {

enum class Protocol : std::uint8_t { kUdp, kTcp };

constexpr const char* protocol_name(Protocol p) {
  return p == Protocol::kUdp ? "UDP" : "TCP";
}

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool rst = false;
  bool fin = false;

  bool operator==(const TcpFlags&) const = default;
};

struct Packet {
  std::uint64_t id = 0;  // unique per Network, assigned on send
  Protocol proto = Protocol::kUdp;
  Endpoint src;
  Endpoint dst;
  TcpFlags tcp;  // meaningful only for proto == kTcp
  Buffer payload;

  Family family() const { return dst.addr.family(); }

  bool is_syn() const {
    return proto == Protocol::kTcp && tcp.syn && !tcp.ack && !tcp.rst;
  }
  bool is_syn_ack() const {
    return proto == Protocol::kTcp && tcp.syn && tcp.ack && !tcp.rst;
  }
  bool is_rst() const { return proto == Protocol::kTcp && tcp.rst; }

  /// Approximate on-the-wire size (for stats): L3+L4 headers + payload.
  std::size_t wire_size() const;

  std::string summary() const;  // one-line human-readable form
};

}  // namespace lazyeye::simnet
