// ScenarioPool: per-thread reuse of cell-world memory across campaign cells.
//
// A WorldMemory bundles the two retained stores a cell's world draws from:
// the BufferPool packet payloads recycle through, and the Arena everything
// else (Network, Hosts, zones, stacks, client, capture, EventLoop tables)
// is built in. The BufferPool is declared FIRST so it is destroyed LAST:
// when ~Arena runs the world's finalizers, parked packets and captured
// payloads release their pooled blocks into a still-live pool.
//
// The pool is thread-local: the campaign WorkerPool parks persistent
// threads, so consecutive cells claimed by one worker lease the same
// WorldMemory — warm arena chunks, warm payload blocks, warm timer-wheel
// storage — and per-cell setup/teardown stops paying the allocator.
//
// Usage (one cell):
//   simnet::WorldLease lease;                    // acquire thread's memory
//   auto* world = build_world(lease.memory());   // arena-backed construction
//   ... run the cell ...
//   // ~WorldLease: arena.reset() tears the world down in one sweep and
//   // returns the memory (chunks + pooled blocks intact) for the next cell.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "simnet/arena.h"
#include "simnet/buffer.h"

namespace lazyeye::simnet {

/// Everything a cell's world allocates from, retained across cells.
struct WorldMemory {
  // Order matters: buffers must outlive the arena's finalizers (see above).
  BufferPool buffers;
  Arena arena;
};

class ScenarioPool {
 public:
  ScenarioPool() = default;
  ScenarioPool(const ScenarioPool&) = delete;
  ScenarioPool& operator=(const ScenarioPool&) = delete;

  /// The calling thread's pool (each worker thread owns one).
  static ScenarioPool& local() {
    thread_local ScenarioPool pool;
    return pool;
  }

  /// Hands out a WorldMemory, preferring a parked (warm) one.
  WorldMemory& acquire() {
    ++leases_;
    if (!idle_.empty()) {
      ++reuses_;
      WorldMemory* mem = idle_.back().release();
      idle_.pop_back();
      return *mem;
    }
    return *new WorldMemory{};
  }

  /// Resets the arena (destroying the cell's world) and parks the memory.
  void release(WorldMemory& mem) {
    mem.arena.reset();
    idle_.push_back(std::unique_ptr<WorldMemory>{&mem});
  }

  // -- observability ---------------------------------------------------------
  std::size_t idle() const { return idle_.size(); }
  std::uint64_t leases() const { return leases_; }
  std::uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::unique_ptr<WorldMemory>> idle_;
  std::uint64_t leases_ = 0;
  std::uint64_t reuses_ = 0;
};

/// RAII lease of the calling thread's WorldMemory for one cell.
class WorldLease {
 public:
  WorldLease() : WorldLease{ScenarioPool::local()} {}
  explicit WorldLease(ScenarioPool& pool)
      : pool_{&pool}, memory_{&pool.acquire()} {}

  WorldLease(const WorldLease&) = delete;
  WorldLease& operator=(const WorldLease&) = delete;

  ~WorldLease() { pool_->release(*memory_); }

  WorldMemory& memory() { return *memory_; }
  Arena& arena() { return memory_->arena; }
  BufferPool& buffers() { return memory_->buffers; }

 private:
  ScenarioPool* pool_;
  WorldMemory* memory_;
};

}  // namespace lazyeye::simnet
