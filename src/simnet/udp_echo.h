// Deterministic UDP echo workload over one Network.
//
// The shared harness behind the data-path allocation regression test
// (tests/simnet_test.cc), the CI smoke gate (bench_campaign_scaling), and
// the packets/sec micro-benchmark (bench_micro_core): a client/server pair
// bouncing a pooled 64-byte payload back and forth. Keeping one definition
// here means the gates measure exactly the same packet path and cannot
// silently drift apart.
#pragma once

#include <cstdint>

#include "simnet/network.h"

namespace lazyeye::simnet {

class UdpEchoHarness {
 public:
  /// Large enough to need a pooled block (not the Buffer's inline storage),
  /// so every hop exercises the BufferPool recycle path.
  static constexpr std::size_t kPayloadBytes = 64;

  /// Adds the echo client/server host pair to `net` and binds both ports.
  /// The harness must not outlive the network.
  explicit UdpEchoHarness(Network& net)
      : net_{net},
        client_{net.add_host("echo-client")},
        server_{net.add_host("echo-server")} {
    client_.add_address(client_ep_.addr);
    server_.add_address(server_ep_.addr);
    server_.udp_bind(server_ep_.port, [this](const Packet& p) {
      Buffer reply{&net_.buffer_pool()};
      reply.append(p.payload.span());
      server_.udp_send(p.dst, p.src, std::move(reply));
    });
    client_.udp_bind(client_ep_.port, [this](const Packet& p) {
      if (--remaining_ == 0) return;
      Buffer next{&net_.buffer_pool()};
      next.append(p.payload.span());
      client_.udp_send(p.dst, p.src, std::move(next));
    });
  }

  /// Runs `rounds` echo round trips (two delivered packets each) to
  /// completion on the network's event loop.
  void run_rounds(std::uint64_t rounds) {
    if (rounds == 0) return;
    remaining_ = rounds;
    Buffer first{&net_.buffer_pool()};
    for (std::size_t i = 0; i < kPayloadBytes; ++i) {
      first.push_back(static_cast<std::uint8_t>(i));
    }
    client_.udp_send(client_ep_, server_ep_, std::move(first));
    net_.loop().run();
  }

 private:
  Network& net_;
  Host& client_;
  Host& server_;
  Endpoint client_ep_{IpAddress::must_parse("10.0.0.1"), 9000};
  Endpoint server_ep_{IpAddress::must_parse("10.0.0.2"), 7};
  std::uint64_t remaining_ = 0;
};

}  // namespace lazyeye::simnet
