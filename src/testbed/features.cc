#include "testbed/features.h"

#include <algorithm>

namespace lazyeye::testbed {

using simnet::Family;

const char* feature_symbol(FeatureState s) {
  switch (s) {
    case FeatureState::kObserved: return "*";
    case FeatureState::kDeviation: return "~";
    case FeatureState::kNotObserved: return "o";
  }
  return "?";
}

FeatureRow detect_features(const clients::ClientProfile& profile,
                           LocalTestbed& testbed) {
  FeatureRow row;
  row.client = profile.display_name();

  // --- Prefers IPv6: zero-delay run must establish via IPv6. -----------------
  const RunRecord healthy = testbed.run_cad_case(profile, SimTime{0});
  if (healthy.established_family == Family::kIpv6) {
    row.prefers_ipv6 = FeatureState::kObserved;
  }
  if (healthy.aaaa_query_first) row.aaaa_first = FeatureState::kObserved;

  // --- CAD implemented: with IPv6 heavily delayed, the client must fall
  //     back to IPv4 (wget never does). Sample a few delays and remember
  //     the observed CAD values. ---------------------------------------------
  std::vector<SimTime> cads;
  bool fallback_seen = false;
  for (const SimTime delay : {lazyeye::ms(600), lazyeye::ms(2500)}) {
    const RunRecord rec = testbed.run_cad_case(profile, delay);
    if (rec.established_family == Family::kIpv4) fallback_seen = true;
    if (rec.observed_cad && rec.observed_cad->count() > 0) {
      cads.push_back(*rec.observed_cad);
    }
  }
  if (fallback_seen) {
    row.cad_impl = FeatureState::kObserved;
    if (!cads.empty()) {
      std::sort(cads.begin(), cads.end());
      row.measured_cad = cads[cads.size() / 2];
    }
  }

  // --- RD implemented: delay AAAA by 600 ms (well below the resolver
  //     timeout). An RD client starts IPv4 ~50 ms after the A answer; a
  //     non-RD client waits for the AAAA answer and still connects v6. ------
  const RunRecord rd_run =
      testbed.run_rd_case(profile, dns::RrType::kAaaa, lazyeye::ms(600));
  if (rd_run.established_family == Family::kIpv4 && rd_run.observed_rd &&
      *rd_run.observed_rd <= lazyeye::ms(100)) {
    row.rd_impl = FeatureState::kObserved;
  }

  // --- Address selection: 10 + 10 unresponsive addresses. -------------------
  const RunRecord sel = testbed.run_address_selection_case(profile, 10);
  row.ipv4_addrs_used = sel.v4_addresses_used;
  row.ipv6_addrs_used = sel.v6_addresses_used;
  // "Visible address selection behaviour": IPv6 appears again after the
  // first IPv4 attempt (interlacing) rather than a single simple fallback.
  bool v4_seen = false;
  bool v6_after_v4 = false;
  for (const Family f : sel.attempt_sequence) {
    if (f == Family::kIpv4) v4_seen = true;
    if (f == Family::kIpv6 && v4_seen) v6_after_v4 = true;
  }
  if (v6_after_v4) row.addr_selection = FeatureState::kObserved;

  return row;
}

}  // namespace lazyeye::testbed
