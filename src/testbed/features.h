// Table 2 feature detection: drives the black-box test cases against a
// client profile and classifies each HE feature from the measurements.
#pragma once

#include <string>
#include <vector>

#include "testbed/testbed.h"

namespace lazyeye::testbed {

enum class FeatureState {
  kObserved,       // ● observed as defined
  kDeviation,      // ◐ observed with RFC deviation
  kNotObserved,    // ○ not observed
};

const char* feature_symbol(FeatureState s);

struct FeatureRow {
  std::string client;
  FeatureState prefers_ipv6 = FeatureState::kNotObserved;
  FeatureState cad_impl = FeatureState::kNotObserved;
  FeatureState aaaa_first = FeatureState::kNotObserved;
  FeatureState rd_impl = FeatureState::kNotObserved;
  int ipv4_addrs_used = 0;
  int ipv6_addrs_used = 0;
  FeatureState addr_selection = FeatureState::kNotObserved;
  /// Measured CAD (median of fallback runs), if the client implements one.
  std::optional<SimTime> measured_cad;
};

/// Runs the CAD / RD / address-selection cases and fills a Table-2 row.
FeatureRow detect_features(const clients::ClientProfile& profile,
                           LocalTestbed& testbed);

}  // namespace lazyeye::testbed
