#include "testbed/testbed.h"

#include <stdexcept>

#include "dns/auth_server.h"
#include "dns/test_params.h"
#include "util/strings.h"

namespace lazyeye::testbed {

using simnet::Family;
using simnet::IpAddress;

std::vector<SimTime> SweepSpec::values() const {
  std::vector<SimTime> out;
  // Degenerate grids collapse to {from}: a non-positive step would loop
  // forever, and to < from would silently produce an empty sweep.
  if (step.count() <= 0 || to < from) {
    out.push_back(from);
    return out;
  }
  for (SimTime v = from; v <= to; v += step) out.push_back(v);
  return out;
}

LocalTestbed::LocalTestbed(TestbedOptions options)
    : options_{std::move(options)} {}

namespace {

/// One fully assembled scenario: server+dns+client nodes, echo web server,
/// client capture — everything arena-created inside a pooled world lease.
/// Destroying the Scenario releases the lease; the arena runs finalizers in
/// reverse creation order (capture, client, auth, stacks, then the Network
/// itself), then rewinds for the next cell on this worker thread.
struct Scenario {
  simnet::WorldLease lease;
  simnet::Network* net = nullptr;
  simnet::Host* client_host = nullptr;
  simnet::Host* server_host = nullptr;
  transport::TcpStack* server_tcp = nullptr;
  transport::QuicStack* server_quic = nullptr;
  dns::AuthServer* auth = nullptr;
  dns::Zone* zone = nullptr;
  clients::SimulatedClient* client = nullptr;
  capture::PacketCapture* capture = nullptr;
  simnet::Endpoint last_peer;
};

std::unique_ptr<Scenario> build_scenario(
    const clients::ClientProfile& profile,
    const TestbedOptions& options, std::uint64_t run_id) {
  auto sc = std::make_unique<Scenario>();
  simnet::Arena& arena = sc->lease.arena();
  sc->net = arena.create<simnet::Network>(sc->lease.memory(),
                                          options.seed * 7919 + run_id);

  // Fixed world literals parsed once per process, not once per cell.
  static const IpAddress server_v4 = IpAddress::must_parse("10.0.0.80");
  static const IpAddress server_v6 = IpAddress::must_parse("2001:db8::80");
  static const IpAddress client_v4 = IpAddress::must_parse("10.0.0.2");
  static const IpAddress client_v6 = IpAddress::must_parse("2001:db8::2");
  static const dns::DnsName zone_origin =
      dns::DnsName::must_parse("he-test.lab");

  sc->server_host = &sc->net->add_host("server");
  sc->server_host->add_address(server_v4);
  sc->server_host->add_address(server_v6);
  sc->client_host = &sc->net->add_host("client");
  sc->client_host->add_address(client_v4);
  sc->client_host->add_address(client_v6);

  // Web server module: answers with the client's source address.
  sc->server_tcp = arena.create<transport::TcpStack>(*sc->server_host);
  sc->server_tcp->listen(443,
                         [sp = sc.get()](std::uint64_t,
                                         const simnet::Endpoint& peer) {
                           sp->last_peer = peer;
                         });
  sc->server_tcp->set_data_handler(
      [sp = sc.get()](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        const std::string body = sp->last_peer.addr.to_string();
        sp->server_tcp->send_data(
            conn_id, std::vector<std::uint8_t>{body.begin(), body.end()});
      });
  sc->server_quic = arena.create<transport::QuicStack>(*sc->server_host);
  sc->server_quic->listen(443);
  sc->server_quic->set_data_handler(
      [sp = sc.get()](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        const std::string body = "quic";
        sp->server_quic->send_data(
            conn_id, std::vector<std::uint8_t>{body.begin(), body.end()});
      });

  // DNS module: authoritative server on the server node (IPv4 transport so
  // DNS itself is unaffected by the IPv6 shaping).
  sc->auth = arena.create<dns::AuthServer>(*sc->server_host);
  sc->zone = &sc->auth->add_zone(zone_origin);

  static const std::vector<simnet::Endpoint> dns_servers{{server_v4, 53}};
  dns::StubOptions stub_options;
  stub_options.servers = dns_servers;
  clients::ClientProfile run_profile = profile;
  if (options.dns_timeout_override) {
    run_profile.dns_timeout = *options.dns_timeout_override;
  }
  sc->client = arena.create<clients::SimulatedClient>(
      *sc->client_host, std::move(run_profile), stub_options,
      options.seed * 31 + run_id);
  sc->client->reset_state();  // fresh container per run (§4.3)

  // Packet capture module on the client node.
  sc->capture = arena.create<capture::PacketCapture>(*sc->client_host);
  return sc;
}

RunRecord analyze(const clients::ClientProfile& profile, Scenario& sc,
                  SimTime configured_delay, int repetition,
                  const clients::FetchResult& fetch) {
  RunRecord record;
  record.client = profile.display_name();
  record.configured_delay = configured_delay;
  record.repetition = repetition;
  record.fetch_ok = fetch.connection.ok && fetch.response_received;
  record.completion_time = fetch.connection.completed;

  const capture::PacketCapture& cap = *sc.capture;
  record.established_family = capture::established_family(cap);
  record.observed_cad = capture::infer_cad(cap);
  // Decode the capture's DNS packets once and share the exchange list
  // across every DNS-derived metric (it used to be re-parsed per metric).
  const auto exchanges = capture::dns_exchanges(cap);
  record.observed_rd = capture::infer_resolution_delay(cap, exchanges);
  record.a_wait_gap = capture::a_response_to_v6_syn_gap(cap, exchanges);
  for (const auto& ex : exchanges) {
    if (ex.qtype == dns::RrType::kAaaa || ex.qtype == dns::RrType::kA) {
      record.aaaa_query_first = ex.qtype == dns::RrType::kAaaa;
      break;
    }
  }

  const auto attempts = capture::connection_attempts(cap);
  record.v6_addresses_used =
      capture::distinct_destinations(attempts, Family::kIpv6);
  record.v4_addresses_used =
      capture::distinct_destinations(attempts, Family::kIpv4);
  for (const auto& a : attempts) record.attempt_sequence.push_back(a.family());
  return record;
}

}  // namespace

campaign::ScenarioSpec LocalTestbed::base_spec(
    const clients::ClientProfile& profile, int repetition) {
  campaign::ScenarioSpec spec;
  // The run id doubles as the cell's seed input and its DNS nonce: the
  // legacy serial entry points and the sweep generators draw from the same
  // counter, so no two cells of one testbed ever share a world.
  spec.seed = ++run_counter_;
  spec.id = spec.seed - 1;
  spec.repetition = repetition;
  spec.client = profile.display_name();
  return spec;
}

campaign::ScenarioSpec LocalTestbed::cad_spec(
    const clients::ClientProfile& profile, SimTime v6_delay, int repetition) {
  campaign::ScenarioSpec spec = base_spec(profile, repetition);
  spec.payload = campaign::CadCase{v6_delay};
  spec.label = lazyeye::str_format("cad %s %s rep%d", spec.client.c_str(),
                                   format_duration(v6_delay).c_str(),
                                   repetition);
  return spec;
}

campaign::ScenarioSpec LocalTestbed::rd_spec(
    const clients::ClientProfile& profile, dns::RrType delayed_type,
    SimTime dns_delay, int repetition) {
  campaign::ScenarioSpec spec = base_spec(profile, repetition);
  spec.payload = campaign::ResolutionDelayCase{delayed_type, dns_delay};
  spec.label = lazyeye::str_format("rd %s %s rep%d", spec.client.c_str(),
                                   format_duration(dns_delay).c_str(),
                                   repetition);
  return spec;
}

campaign::ScenarioSpec LocalTestbed::address_selection_spec(
    const clients::ClientProfile& profile, int per_family, int repetition) {
  campaign::ScenarioSpec spec = base_spec(profile, repetition);
  spec.payload = campaign::AddressSelectionCase{per_family};
  spec.label = lazyeye::str_format("sel %s %d+%d rep%d", spec.client.c_str(),
                                   per_family, per_family, repetition);
  return spec;
}

namespace {

/// Pure per-index CAD cell builder — the single assembly point shared by
/// the eager generator and the lazy stream factories, so the two can never
/// diverge field by field. Delay-major, repetition-minor, one seed per cell
/// drawn from the counter range the caller reserved.
campaign::ScenarioSpec cad_cell_at(const clients::ClientProfile& profile,
                                   const std::vector<SimTime>& values,
                                   int repetitions, std::uint64_t first_seed,
                                   std::size_t i) {
  campaign::ScenarioSpec spec;
  const std::size_t grid = i / static_cast<std::size_t>(repetitions);
  const int rep = static_cast<int>(i % static_cast<std::size_t>(repetitions));
  const SimTime delay = values[grid];
  spec.seed = first_seed + i;
  spec.id = i;
  spec.repetition = rep;
  spec.grid_index = static_cast<int>(grid);
  spec.client = profile.display_name();
  spec.payload = campaign::CadCase{delay};
  spec.label = lazyeye::str_format("cad %s %s rep%d", spec.client.c_str(),
                                   format_duration(delay).c_str(), rep);
  return spec;
}

}  // namespace

std::vector<campaign::ScenarioSpec> LocalTestbed::cad_sweep_specs(
    const clients::ClientProfile& profile, const SweepSpec& sweep,
    int repetitions) {
  const auto values = sweep.values();
  const std::size_t total =
      values.size() * static_cast<std::size_t>(repetitions);
  // Reserve the counter range the per-cell cad_spec() path would have
  // consumed, then build every cell through the shared builder.
  const std::uint64_t first_seed = run_counter_ + 1;
  run_counter_ += total;
  std::vector<campaign::ScenarioSpec> specs;
  specs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    specs.push_back(cad_cell_at(profile, values, repetitions, first_seed, i));
  }
  return specs;
}

std::vector<campaign::ScenarioSpec> LocalTestbed::multi_client_cad_specs(
    const std::vector<clients::ClientProfile>& profiles, const SweepSpec& sweep,
    int repetitions) {
  std::vector<campaign::ScenarioSpec> specs;
  std::uint64_t cell = 0;
  for (const auto& profile : profiles) {
    // Per-profile generation draws seeds from the shared counter, so the
    // joint matrix reproduces exactly the worlds that generating each
    // profile's sweep back to back would have produced.
    for (campaign::ScenarioSpec& spec :
         cad_sweep_specs(profile, sweep, repetitions)) {
      spec.id = cell++;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

campaign::SpecStream LocalTestbed::cad_sweep_stream(
    const clients::ClientProfile& profile, const SweepSpec& sweep,
    int repetitions) {
  auto values = sweep.values();
  const std::size_t total =
      values.size() * static_cast<std::size_t>(repetitions);
  // Reserve the counter range the eager generator would have consumed, so
  // lazy and materialised sweeps on one testbed stay interchangeable.
  const std::uint64_t first_seed = run_counter_ + 1;
  run_counter_ += total;
  return campaign::SpecStream{
      total, [profile, values = std::move(values), repetitions,
              first_seed](std::size_t i) {
        return cad_cell_at(profile, values, repetitions, first_seed, i);
      }};
}

campaign::SpecStream LocalTestbed::multi_client_cad_stream(
    std::vector<clients::ClientProfile> profiles, const SweepSpec& sweep,
    int repetitions) {
  auto values = sweep.values();
  const std::size_t per_client =
      values.size() * static_cast<std::size_t>(repetitions);
  const std::size_t total = per_client * profiles.size();
  const std::uint64_t first_seed = run_counter_ + 1;
  run_counter_ += total;
  return campaign::SpecStream{
      total, [profiles = std::move(profiles), values = std::move(values),
              repetitions, per_client, first_seed](std::size_t i) {
        // Profile-major, same seed sequence as back-to-back eager sweeps;
        // ids are dense across the joint matrix.
        campaign::ScenarioSpec spec =
            cad_cell_at(profiles[i / per_client], values, repetitions,
                        first_seed + (i / per_client) * per_client,
                        i % per_client);
        spec.id = i;
        return spec;
      }};
}

RunRecord LocalTestbed::run_spec(const clients::ClientProfile& profile,
                                 const campaign::ScenarioSpec& spec) const {
  const std::uint64_t run_id = spec.seed;
  auto sc = build_scenario(profile, options_, run_id);
  const auto nonce =
      lazyeye::str_format("%llu", static_cast<unsigned long long>(run_id));

  // Test-name stems parsed once per process, not once per cell.
  static const dns::DnsName cad_stem = dns::DnsName::must_parse("cad.he-test.lab");
  static const dns::DnsName rd_stem = dns::DnsName::must_parse("rd.he-test.lab");
  static const dns::DnsName sel_stem = dns::DnsName::must_parse("sel.he-test.lab");

  dns::DnsName name;
  SimTime configured_delay{0};
  if (const auto* cad = spec.get_if<campaign::CadCase>()) {
    configured_delay = cad->v6_delay;
    // tc-netem on the server node: delay IPv6 *TCP* traffic (the paper's
    // DNS runs on the same host; delaying all v6 would skew the DNS
    // baseline, and the client's stub points at the v4 address anyway).
    simnet::PacketFilter v6_tcp;
    v6_tcp.family = Family::kIpv6;
    v6_tcp.proto = simnet::Protocol::kTcp;
    sc->server_host->egress().add_rule(
        v6_tcp, simnet::NetemSpec::delay_only(cad->v6_delay), "delay v6");

    // Unique name per run to rule out caching (nonce label).
    name = dns::make_test_name(cad_stem,
                               nonce, {});
    sc->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
    sc->zone->add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));
  } else if (const auto* rd = spec.get_if<campaign::ResolutionDelayCase>()) {
    configured_delay = rd->dns_delay;
    name = dns::make_test_name(rd_stem,
                               nonce, {{rd->delayed_type, rd->dns_delay}});
    sc->zone->add_a(name, *simnet::Ipv4Address::parse("10.0.0.80"));
    sc->zone->add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::80"));
  } else if (const auto* sel = spec.get_if<campaign::AddressSelectionCase>()) {
    name = dns::make_test_name(sel_stem,
                               nonce, {});
    // All records point to unresponsive addresses (no host owns them).
    for (int i = 1; i <= sel->per_family; ++i) {
      sc->zone->add_aaaa(name, *simnet::Ipv6Address::parse(lazyeye::str_format(
                                   "2001:db8:dead::%d", i)));
      sc->zone->add_a(name, *simnet::Ipv4Address::parse(
                                lazyeye::str_format("10.99.0.%d", i)));
    }
  } else {
    throw std::invalid_argument(
        lazyeye::str_format("LocalTestbed::run_spec: unsupported case %s",
                            campaign::case_name(spec.payload)));
  }

  clients::FetchResult fetch;
  sc->client->fetch(name, 443, [&](clients::FetchResult r) {
    fetch = std::move(r);
  });
  sc->net->loop().run();
  return analyze(profile, *sc, configured_delay, spec.repetition, fetch);
}

std::vector<RunRecord> LocalTestbed::run_campaign(
    const clients::ClientProfile& profile,
    const std::vector<campaign::ScenarioSpec>& specs,
    const campaign::CampaignRunner& runner) const {
  return runner.run<RunRecord>(specs, [&](const campaign::ScenarioSpec& spec) {
    return run_spec(profile, spec);
  });
}

RunRecord LocalTestbed::run_cad_case(const clients::ClientProfile& profile,
                                     SimTime v6_delay, int repetition) {
  return run_spec(profile, cad_spec(profile, v6_delay, repetition));
}

RunRecord LocalTestbed::run_rd_case(const clients::ClientProfile& profile,
                                    dns::RrType delayed_type,
                                    SimTime dns_delay, int repetition) {
  return run_spec(profile, rd_spec(profile, delayed_type, dns_delay,
                                   repetition));
}

RunRecord LocalTestbed::run_address_selection_case(
    const clients::ClientProfile& profile, int per_family, int repetition) {
  return run_spec(profile,
                  address_selection_spec(profile, per_family, repetition));
}

std::vector<RunRecord> LocalTestbed::sweep_cad(
    const clients::ClientProfile& profile, const SweepSpec& sweep,
    int repetitions, int workers) {
  campaign::RunnerOptions options;
  options.workers = workers;
  // Lazy fast path: cells are generated as workers claim them, so the sweep
  // never materialises its spec vector. Same cells, same records.
  return campaign::CampaignRunner{options}.run<RunRecord>(
      cad_sweep_stream(profile, sweep, repetitions),
      [this, &profile](const campaign::ScenarioSpec& spec) {
        return run_spec(profile, spec);
      });
}

}  // namespace lazyeye::testbed
