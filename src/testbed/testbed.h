// Local testbed framework (paper §4.3 (i), App. B).
//
// Two directly connected nodes (client and server), tc-netem style shaping
// on the server side, a custom authoritative DNS server with qname-encoded
// test parameters, a web server answering with the client's source address,
// and a packet capture on the client node. Every run starts from a fresh
// network and a fresh client ("drop and create a new container") so no
// caching effects leak between configurations.
//
// Runs are described declaratively as campaign cells (v2 typed payloads:
// CadCase / ResolutionDelayCase / AddressSelectionCase): the spec
// generators below allocate seeds, and run_spec() is a stateless executor
// that builds the cell's isolated world — which is what lets whole delay ×
// repetition × client matrices shard across the CampaignRunner worker pool
// with byte-identical results at any worker count. register_executors()
// plugs the three testbed case types into a campaign::Registry so testbed
// cells can ride in mixed-kind matrices.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/spec_stream.h"
#include "capture/analysis.h"
#include "clients/client.h"
#include "clients/profiles.h"

namespace lazyeye::testbed {

struct SweepSpec {
  SimTime from{0};
  SimTime to{0};
  SimTime step{0};

  /// Grid points from..to inclusive. Degenerate specs (step <= 0, or an
  /// empty to < from range) collapse to the single point `from` instead of
  /// looping forever / yielding nothing.
  std::vector<SimTime> values() const;

  /// The paper's fine-grained CAD sweep: 0..400 ms in 5 ms steps.
  static SweepSpec fine_cad() { return {lazyeye::ms(0), lazyeye::ms(400), lazyeye::ms(5)}; }
  /// Coarse initial run.
  static SweepSpec coarse_cad() { return {lazyeye::ms(0), lazyeye::ms(2400), lazyeye::ms(200)}; }
};

/// One test-run record (one client, one configuration, one repetition).
struct RunRecord {
  std::string client;
  SimTime configured_delay{0};
  int repetition = 0;

  bool fetch_ok = false;
  std::optional<simnet::Family> established_family;
  std::optional<SimTime> observed_cad;       // first v4 SYN - first v6 SYN
  std::optional<SimTime> observed_rd;        // v4 SYN - A response gap
  std::optional<SimTime> a_wait_gap;         // v6 SYN - A response gap
  bool aaaa_query_first = false;
  int v6_addresses_used = 0;                  // distinct destinations
  int v4_addresses_used = 0;
  std::vector<simnet::Family> attempt_sequence;
  SimTime completion_time{0};
};

struct TestbedOptions {
  std::uint64_t seed = 1;
  /// The client's stub resolver timeout ("resolver configuration" §5.2).
  std::optional<SimTime> dns_timeout_override;
};

/// Builds one fresh scenario per run and measures through the client-side
/// capture only (black-box, as in the paper).
class LocalTestbed {
 public:
  explicit LocalTestbed(TestbedOptions options = {});

  /// CAD test case: dual-stack target, IPv6 delayed by `v6_delay` at the
  /// server's egress (tc-netem equivalent).
  RunRecord run_cad_case(const clients::ClientProfile& profile,
                         SimTime v6_delay, int repetition = 0);

  /// RD test case: the authoritative server delays `delayed_type` answers
  /// by `dns_delay` (encoded in the qname like the paper's server).
  RunRecord run_rd_case(const clients::ClientProfile& profile,
                        dns::RrType delayed_type, SimTime dns_delay,
                        int repetition = 0);

  /// Address selection test case: `per_family` unresponsive addresses per
  /// family (paper: 10 + 10).
  RunRecord run_address_selection_case(const clients::ClientProfile& profile,
                                       int per_family, int repetition = 0);

  // ---- Campaign API v2 ---------------------------------------------------
  // Spec generators allocate each cell's run id (nonce + seed) from the
  // testbed's counter, so mixing one-off cases and sweeps never reuses a
  // world seed or a DNS nonce name.

  campaign::ScenarioSpec cad_spec(const clients::ClientProfile& profile,
                                  SimTime v6_delay, int repetition = 0);
  campaign::ScenarioSpec rd_spec(const clients::ClientProfile& profile,
                                 dns::RrType delayed_type, SimTime dns_delay,
                                 int repetition = 0);
  campaign::ScenarioSpec address_selection_spec(
      const clients::ClientProfile& profile, int per_family,
      int repetition = 0);

  /// The full delay × repetition CAD matrix (delay-major, repetition-minor —
  /// the same cell order the serial sweep used).
  std::vector<campaign::ScenarioSpec> cad_sweep_specs(
      const clients::ClientProfile& profile, const SweepSpec& sweep,
      int repetitions = 1);

  /// One CAD matrix batching several client profiles into a single campaign
  /// (profile-major, then delay-major, repetition-minor — the same counter
  /// sequence as generating each profile's sweep back to back). Ids are
  /// dense across the joint matrix.
  std::vector<campaign::ScenarioSpec> multi_client_cad_specs(
      const std::vector<clients::ClientProfile>& profiles,
      const SweepSpec& sweep, int repetitions = 1);

  // ---- Lazy spec streams -------------------------------------------------
  // Cell-for-cell identical to the materialised generators above (same
  // seeds, ids, labels), but generated on demand per claimed cell, so a
  // matrix of any size never sits in memory. Each factory reserves its
  // whole run-counter range up front, keeping the counter sequence exactly
  // what the eager generator would have consumed.

  /// Lazy equivalent of cad_sweep_specs().
  campaign::SpecStream cad_sweep_stream(const clients::ClientProfile& profile,
                                        const SweepSpec& sweep,
                                        int repetitions = 1);

  /// Lazy equivalent of multi_client_cad_specs().
  campaign::SpecStream multi_client_cad_stream(
      std::vector<clients::ClientProfile> profiles, const SweepSpec& sweep,
      int repetitions = 1);

  /// Stateless executor: builds the isolated simnet world described by
  /// `spec` (seeded from spec.seed), runs it, and analyses the capture.
  /// Thread-safe: concurrent calls on different specs never share state.
  RunRecord run_spec(const clients::ClientProfile& profile,
                     const campaign::ScenarioSpec& spec) const;

  /// Shards `specs` across the runner's workers; results are in spec order.
  std::vector<RunRecord> run_campaign(
      const clients::ClientProfile& profile,
      const std::vector<campaign::ScenarioSpec>& specs,
      const campaign::CampaignRunner& runner) const;

  /// Sweeps the CAD case over a delay grid. `workers` feeds the campaign
  /// runner (0 = one per hardware thread); results are identical for any
  /// worker count.
  std::vector<RunRecord> sweep_cad(const clients::ClientProfile& profile,
                                   const SweepSpec& sweep,
                                   int repetitions = 1, int workers = 0);

 private:
  campaign::ScenarioSpec base_spec(const clients::ClientProfile& profile,
                                   int repetition);

  TestbedOptions options_;
  std::uint64_t run_counter_ = 0;
};

/// Plugs the three testbed case types (CAD, RD, address selection) into a
/// campaign registry. Cells carry the client display name in their
/// envelope; it is resolved against `profiles` — the campaign's client pool
/// — so one matrix can batch several client profiles. `bed` must outlive
/// the registry; the pool is copied into the executors.
template <typename Outcome>
void register_executors(campaign::Registry<Outcome>& registry,
                        const LocalTestbed& bed,
                        std::vector<clients::ClientProfile> profiles) {
  auto pool = std::make_shared<const std::vector<clients::ClientProfile>>(
      std::move(profiles));
  auto resolve =
      [pool](const campaign::ScenarioSpec& spec) -> const clients::ClientProfile& {
    return campaign::find_registered(
        *pool, spec.client,
        [](const clients::ClientProfile& p) { return p.display_name(); },
        "testbed");
  };
  // One executor body serves all three case types: run_spec() dispatches on
  // the payload itself.
  auto execute = [&bed, resolve](const campaign::ScenarioSpec& spec,
                                 const auto& /*case payload*/) {
    return bed.run_spec(resolve(spec), spec);
  };
  registry.template add<campaign::CadCase>(execute);
  registry.template add<campaign::ResolutionDelayCase>(execute);
  registry.template add<campaign::AddressSelectionCase>(execute);
}

}  // namespace lazyeye::testbed
