// Common connection-attempt types shared by the TCP and QUIC stacks.
#pragma once

#include <cstdint>
#include <string>

#include "simnet/ip.h"
#include "util/time.h"

namespace lazyeye::transport {

enum class TransportProtocol : std::uint8_t { kTcp, kQuic };

constexpr const char* transport_protocol_name(TransportProtocol p) {
  return p == TransportProtocol::kTcp ? "TCP" : "QUIC";
}

struct ConnectResult {
  bool ok = false;
  std::string error;  // "timeout", "refused", "cancelled" when !ok
  TransportProtocol proto = TransportProtocol::kTcp;
  simnet::Endpoint local;
  simnet::Endpoint remote;
  SimTime started{0};
  SimTime completed{0};
  /// Connection id usable for data transfer (0 when failed).
  std::uint64_t connection_id = 0;

  simnet::Family family() const { return remote.addr.family(); }
  SimTime handshake_time() const { return completed - started; }
};

}  // namespace lazyeye::transport
