// Common connection-attempt types shared by the TCP and QUIC stacks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "simnet/ip.h"
#include "util/time.h"

namespace lazyeye::transport {

/// Classic connection four-tuple from this stack's point of view. Inbound
/// packets carry the mirrored form ({dst, src} of the packet).
struct FourTuple {
  simnet::Endpoint local;
  simnet::Endpoint remote;
  auto operator<=>(const FourTuple&) const = default;
};

/// Hash for TupleIndex probing: mixes the two endpoint hashes so that
/// connections differing only in ephemeral port spread across the table.
inline std::size_t four_tuple_hash(const FourTuple& t) {
  const std::size_t a = std::hash<simnet::Endpoint>{}(t.local);
  const std::size_t b = std::hash<simnet::Endpoint>{}(t.remote);
  return a * 0x9e3779b97f4a7c15ULL ^ (b + 0x517cc1b727220a95ULL);
}

enum class TransportProtocol : std::uint8_t { kTcp, kQuic };

constexpr const char* transport_protocol_name(TransportProtocol p) {
  return p == TransportProtocol::kTcp ? "TCP" : "QUIC";
}

/// What a server-side interposer tells the stack to do with an inbound
/// handshake (conformance fault injection, src/conformance/). kAccept is
/// what an absent interposer implies.
enum class AcceptAction : std::uint8_t {
  kAccept,           // normal handshake
  kReset,            // refuse: answer the opening packet with a reset/close
  kDrop,             // blackhole: swallow the opening packet silently
  kAcceptThenReset,  // complete the handshake, then reset immediately
};

/// Consulted when an inbound handshake reaches a listening port. Both stacks
/// guard the call behind a null check, so unset hooks cost one branch.
using AcceptInterposer = std::function<AcceptAction(
    const simnet::Endpoint& peer, std::uint16_t local_port)>;

struct ConnectResult {
  bool ok = false;
  std::string error;  // "timeout", "refused", "cancelled" when !ok
  TransportProtocol proto = TransportProtocol::kTcp;
  simnet::Endpoint local;
  simnet::Endpoint remote;
  SimTime started{0};
  SimTime completed{0};
  /// Connection id usable for data transfer (0 when failed).
  std::uint64_t connection_id = 0;

  simnet::Family family() const { return remote.addr.family(); }
  SimTime handshake_time() const { return completed - started; }
};

}  // namespace lazyeye::transport
