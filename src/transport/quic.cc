#include "transport/quic.h"

namespace lazyeye::transport {

using simnet::Packet;

namespace {
constexpr char kInitial = 'I';
constexpr char kHandshake = 'H';
constexpr char kData = 'D';
constexpr char kClose = 'C';
}  // namespace

bool is_quic_payload(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return false;
  const char type = static_cast<char>(payload.front());
  return type == 'I' || type == 'H' || type == 'D' || type == 'C';
}

QuicStack::QuicStack(simnet::Host& host)
    : host_{host},
      connections_{host.network().memory()},
      index_{host.network().memory()} {}

QuicStack::~QuicStack() {
  for (const auto& [port, handler] : listeners_) host_.udp_unbind(port);
}

void QuicStack::listen(std::uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
  host_.udp_bind(port, [this, port](const Packet& p) { on_datagram(port, p); });
}

void QuicStack::close_listener(std::uint16_t port) {
  listeners_.erase(port);
  host_.udp_unbind(port);
}

std::uint64_t QuicStack::connect(const simnet::Endpoint& remote,
                                 const QuicOptions& options,
                                 ConnectHandler handler) {
  const auto local_addr = host_.address(remote.addr.family());
  if (!local_addr) {
    ConnectResult result;
    result.error = "no local address for family";
    result.proto = TransportProtocol::kQuic;
    result.remote = remote;
    handler(result);
    return 0;
  }

  const std::uint64_t id = next_id_++;
  ConnectionState conn;
  conn.id = id;
  conn.tuple = FourTuple{{*local_addr, host_.ephemeral_port()}, remote};
  conn.options = options;
  conn.current_rto = options.initial_rto;
  conn.started = host_.network().loop().now();
  conn.on_connect = std::move(handler);
  const std::uint16_t local_port = conn.tuple.local.port;
  auto [it, inserted] = connections_.emplace(id, std::move(conn));
  index_.insert(&it->second);
  host_.udp_bind(local_port, [this, local_port](const Packet& p) {
    on_datagram(local_port, p);
  });
  send_initial(it->second);
  return id;
}

void QuicStack::send_initial(ConnectionState& conn) {
  ++conn.sends;
  send_packet(conn.tuple, kInitial);
  const std::uint64_t id = conn.id;
  conn.rto_timer = host_.network().loop().schedule_after(
      conn.current_rto, [this, id] {
        const auto it = connections_.find(id);
        if (it == connections_.end() ||
            it->second.state != State::kInitialSent) {
          return;
        }
        ConnectionState& c = it->second;
        if (c.sends > c.options.max_retransmits) {
          fail_connect(id, "timeout");
          return;
        }
        c.current_rto = SimTime{static_cast<std::int64_t>(
            static_cast<double>(c.current_rto.count()) *
            c.options.rto_backoff)};
        send_initial(c);
      });
}

void QuicStack::abort(std::uint64_t attempt_id) {
  fail_connect(attempt_id, "cancelled");
}

void QuicStack::fail_connect(std::uint64_t id, const std::string& error) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ConnectionState& conn = it->second;
  host_.network().loop().cancel(conn.rto_timer);
  if (listeners_.find(conn.tuple.local.port) == listeners_.end()) {
    host_.udp_unbind(conn.tuple.local.port);
  }
  ConnectHandler handler = std::move(conn.on_connect);
  ConnectResult result;
  result.error = error;
  result.proto = TransportProtocol::kQuic;
  result.local = conn.tuple.local;
  result.remote = conn.tuple.remote;
  result.started = conn.started;
  result.completed = host_.network().loop().now();
  index_.erase(&conn);
  connections_.erase(it);
  if (handler) handler(result);
}

void QuicStack::remove_connection(ConnectionState& conn) {
  index_.erase(&conn);
  connections_.erase(conn.id);
}

void QuicStack::send_packet(const FourTuple& tuple, char type,
                            simnet::Buffer payload) {
  // Control frames (no payload) are one byte: they stay in the Buffer's
  // inline storage; data frames borrow a pooled block.
  simnet::Buffer framed{&host_.network().buffer_pool()};
  framed.reserve(payload.size() + 1);
  framed.push_back(static_cast<std::uint8_t>(type));
  framed.append(payload.span());
  host_.udp_send(tuple.local, tuple.remote, std::move(framed));
}

QuicStack::ConnectionState* QuicStack::find_by_tuple(const FourTuple& tuple) {
  return index_.find(tuple);
}

void QuicStack::on_datagram(std::uint16_t local_port, const Packet& packet) {
  (void)local_port;
  if (!is_quic_payload(packet.payload)) return;
  const char type = static_cast<char>(packet.payload.front());
  const FourTuple tuple{packet.dst, packet.src};
  ConnectionState* conn = find_by_tuple(tuple);

  if (type == kInitial) {
    const auto listener = listeners_.find(packet.dst.port);
    if (listener == listeners_.end()) return;  // no QUIC service: silent
    AcceptAction action = AcceptAction::kAccept;
    if (accept_interposer_) {
      action = accept_interposer_(packet.src, packet.dst.port);
    }
    if (action == AcceptAction::kDrop) return;
    if (action == AcceptAction::kReset) {
      send_packet(tuple, kClose);
      return;
    }
    if (conn == nullptr) {
      const std::uint64_t id = next_id_++;
      ConnectionState server_conn;
      server_conn.id = id;
      server_conn.state = State::kEstablished;
      server_conn.tuple = tuple;
      server_conn.started = host_.network().loop().now();
      auto [sit, sinserted] = connections_.emplace(id, std::move(server_conn));
      index_.insert(&sit->second);
      if (listener->second) listener->second(id, tuple.remote);
    }
    send_packet(tuple, kHandshake);
    if (action == AcceptAction::kAcceptThenReset) {
      send_packet(tuple, kClose);
      if (ConnectionState* created = find_by_tuple(tuple)) {
        remove_connection(*created);
      }
    }
    return;
  }

  if (conn == nullptr) return;

  if (type == kClose) {
    // Nothing sent Close frames before the accept interposer existed, so
    // handling them changes no pre-fault-layer traffic.
    if (conn->state == State::kInitialSent) {
      fail_connect(conn->id, "refused");
    } else {
      remove_connection(*conn);
    }
    return;
  }

  if (type == kHandshake && conn->state == State::kInitialSent) {
    host_.network().loop().cancel(conn->rto_timer);
    conn->state = State::kEstablished;
    ConnectResult result;
    result.ok = true;
    result.proto = TransportProtocol::kQuic;
    result.local = conn->tuple.local;
    result.remote = conn->tuple.remote;
    result.started = conn->started;
    result.completed = host_.network().loop().now();
    result.connection_id = conn->id;
    if (conn->on_connect) {
      ConnectHandler handler = std::move(conn->on_connect);
      conn->on_connect = nullptr;
      handler(result);
    }
    return;
  }

  if (type == kData && conn->state == State::kEstablished && data_handler_) {
    data_handler_(conn->id, packet.payload.span().subspan(1));
  }
}

void QuicStack::send_data(std::uint64_t conn_id,
                          std::vector<std::uint8_t> payload) {
  send_data(conn_id, simnet::Buffer::adopt(std::move(payload)));
}

void QuicStack::send_data(std::uint64_t conn_id, simnet::Buffer payload) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end() || it->second.state != State::kEstablished) {
    return;
  }
  send_packet(it->second.tuple, kData, std::move(payload));
}

}  // namespace lazyeye::transport
