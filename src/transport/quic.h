// Minimal QUIC-like handshake over UDP, for HEv3's transport racing.
//
// Wire model: UDP datagrams whose payload starts with a one-byte packet type
// ('I' = client Initial, 'H' = server handshake reply, 'D' = app data,
// 'C' = close). One round trip establishes the connection, matching the
// cost model HEv3 cares about (QUIC vs TCP+TLS racing).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory_resource>
#include <span>
#include <vector>

#include "simnet/host.h"
#include "simnet/network.h"
#include "transport/connection.h"
#include "transport/tuple_index.h"

namespace lazyeye::transport {

struct QuicOptions {
  SimTime initial_rto = lazyeye::sec(1);
  int max_retransmits = 2;
  double rto_backoff = 2.0;
};

/// True if a UDP payload looks like one of our QUIC packets.
bool is_quic_payload(std::span<const std::uint8_t> payload);

class QuicStack {
 public:
  using ConnectHandler = std::function<void(const ConnectResult&)>;
  using AcceptHandler =
      std::function<void(std::uint64_t conn_id, const simnet::Endpoint& peer)>;
  /// (connection id, payload bytes) — the view is only valid during the
  /// call (bytes live in the packet's pooled buffer); copy to keep.
  using DataHandler =
      std::function<void(std::uint64_t conn_id, std::span<const std::uint8_t>)>;

  explicit QuicStack(simnet::Host& host);
  ~QuicStack();

  QuicStack(const QuicStack&) = delete;
  QuicStack& operator=(const QuicStack&) = delete;

  void listen(std::uint16_t port, AcceptHandler on_accept = {});
  void close_listener(std::uint16_t port);
  /// Fault-injection hook consulted for every Initial that reaches a
  /// listener (see transport/connection.h). Unset = accept everything.
  void set_accept_interposer(AcceptInterposer hook) {
    accept_interposer_ = std::move(hook);
  }

  std::uint64_t connect(const simnet::Endpoint& remote,
                        const QuicOptions& options, ConnectHandler handler);
  void abort(std::uint64_t attempt_id);

  void send_data(std::uint64_t conn_id, simnet::Buffer payload);
  /// Legacy vector entry point: adopts the vector as the payload block.
  void send_data(std::uint64_t conn_id, std::vector<std::uint8_t> payload);
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }

 private:
  enum class State { kInitialSent, kEstablished };

  struct ConnectionState {
    std::uint64_t id = 0;
    State state = State::kInitialSent;
    FourTuple tuple;
    QuicOptions options;
    int sends = 0;
    SimTime current_rto{0};
    SimTime started{0};
    simnet::TimerId rto_timer;
    ConnectHandler on_connect;
  };

  void on_datagram(std::uint16_t local_port, const simnet::Packet& packet);
  void send_packet(const FourTuple& tuple, char type,
                   simnet::Buffer payload = {});
  void send_initial(ConnectionState& conn);
  void fail_connect(std::uint64_t id, const std::string& error);
  ConnectionState* find_by_tuple(const FourTuple& tuple);
  /// Unlinks the connection from the tuple index and the id map.
  void remove_connection(ConnectionState& conn);

  simnet::Host& host_;
  /// Id-keyed, node-based: entries are pointer-stable, which the tuple
  /// index relies on. Nodes draw from the owning world's memory resource.
  std::pmr::map<std::uint64_t, ConnectionState> connections_;
  /// Four-tuple -> connection demux for the per-datagram path (replaces the
  /// old linear scan; same lowest-id-match semantics).
  TupleIndex<ConnectionState> index_;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  DataHandler data_handler_;
  AcceptInterposer accept_interposer_;
  std::uint64_t next_id_ = 1;
};

}  // namespace lazyeye::transport
