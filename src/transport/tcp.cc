#include "transport/tcp.h"

#include "util/log.h"
#include "util/strings.h"

namespace lazyeye::transport {

using simnet::Packet;
using simnet::Protocol;
using simnet::TcpFlags;

TcpStack::TcpStack(simnet::Host& host)
    : host_{host},
      connections_{host.network().memory()},
      index_{host.network().memory()} {
  host_.set_protocol_handler(Protocol::kTcp,
                             [this](const Packet& p) { on_packet(p); });
}

TcpStack::~TcpStack() { host_.set_protocol_handler(Protocol::kTcp, nullptr); }

void TcpStack::listen(std::uint16_t port, AcceptHandler on_accept) {
  listeners_[port] = std::move(on_accept);
}

void TcpStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

std::uint64_t TcpStack::connect(const simnet::Endpoint& remote,
                                const TcpOptions& options,
                                ConnectHandler handler) {
  const auto local_addr = host_.address(remote.addr.family());
  if (!local_addr) {
    ConnectResult result;
    result.error = "no local address for family";
    result.remote = remote;
    handler(result);
    return 0;
  }

  const std::uint64_t id = next_id_++;
  ConnectionState conn;
  conn.id = id;
  conn.state = State::kSynSent;
  conn.tuple = FourTuple{{*local_addr, host_.ephemeral_port()}, remote};
  conn.options = options;
  conn.current_rto = options.syn_rto;
  conn.started = host_.network().loop().now();
  conn.on_connect = std::move(handler);
  auto [it, inserted] = connections_.emplace(id, std::move(conn));
  index_.insert(&it->second);
  send_syn(it->second);
  return id;
}

void TcpStack::send_syn(ConnectionState& conn) {
  ++conn.syn_sent;
  send_flags(conn.tuple, TcpFlags{.syn = true});
  const std::uint64_t id = conn.id;
  conn.rto_timer = host_.network().loop().schedule_after(
      conn.current_rto, [this, id] {
        const auto it = connections_.find(id);
        if (it == connections_.end() ||
            it->second.state != State::kSynSent) {
          return;
        }
        ConnectionState& c = it->second;
        if (c.syn_sent > c.options.syn_retries) {
          fail_connect(id, "timeout");
          return;
        }
        c.current_rto = SimTime{static_cast<std::int64_t>(
            static_cast<double>(c.current_rto.count()) *
            c.options.rto_backoff)};
        send_syn(c);
      });
}

void TcpStack::abort(std::uint64_t attempt_id) {
  fail_connect(attempt_id, "cancelled");
}

void TcpStack::fail_connect(std::uint64_t id, const std::string& error) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ConnectionState& conn = it->second;
  host_.network().loop().cancel(conn.rto_timer);
  ConnectHandler handler = std::move(conn.on_connect);
  ConnectResult result;
  result.error = error;
  result.proto = TransportProtocol::kTcp;
  result.local = conn.tuple.local;
  result.remote = conn.tuple.remote;
  result.started = conn.started;
  result.completed = host_.network().loop().now();
  index_.erase(&conn);
  connections_.erase(it);
  if (handler) handler(result);
}

void TcpStack::remove_connection(ConnectionState& conn) {
  index_.erase(&conn);
  connections_.erase(conn.id);
}

void TcpStack::send_flags(const FourTuple& tuple, TcpFlags flags,
                          simnet::Buffer payload) {
  Packet p;
  p.proto = Protocol::kTcp;
  p.src = tuple.local;
  p.dst = tuple.remote;
  p.tcp = flags;
  p.payload = std::move(payload);
  host_.send_packet(std::move(p));
}

TcpStack::ConnectionState* TcpStack::find_by_tuple(const FourTuple& tuple) {
  return index_.find(tuple);
}

void TcpStack::on_packet(const Packet& packet) {
  // Our view of the tuple is mirrored relative to the packet.
  const FourTuple tuple{packet.dst, packet.src};
  ConnectionState* conn = find_by_tuple(tuple);

  if (packet.is_syn() && conn == nullptr) {
    // New inbound connection?
    const auto listener = listeners_.find(packet.dst.port);
    if (listener == listeners_.end()) {
      if (rst_on_closed_) {
        send_flags(tuple, TcpFlags{.ack = true, .rst = true});
      }
      return;
    }
    AcceptAction action = AcceptAction::kAccept;
    if (accept_interposer_) {
      action = accept_interposer_(packet.src, packet.dst.port);
    }
    if (action == AcceptAction::kDrop) return;
    if (action == AcceptAction::kReset) {
      send_flags(tuple, TcpFlags{.ack = true, .rst = true});
      return;
    }
    const std::uint64_t id = next_id_++;
    ConnectionState server_conn;
    server_conn.id = id;
    server_conn.state = State::kSynReceived;
    server_conn.tuple = tuple;
    server_conn.started = host_.network().loop().now();
    auto [sit, sinserted] = connections_.emplace(id, std::move(server_conn));
    index_.insert(&sit->second);
    send_flags(tuple, TcpFlags{.syn = true, .ack = true});
    if (action == AcceptAction::kAcceptThenReset) {
      // Mid-handshake reset: the SYN-ACK is on the wire, the RST chases it.
      send_flags(tuple, TcpFlags{.rst = true});
      remove_connection(sit->second);
    }
    return;
  }

  if (conn == nullptr) {
    // Stray segment for an unknown connection: RST unless it is itself RST.
    if (!packet.is_rst() && rst_on_closed_) {
      send_flags(tuple, TcpFlags{.ack = true, .rst = true});
    }
    return;
  }

  if (packet.is_rst()) {
    if (conn->state == State::kSynSent) {
      fail_connect(conn->id, "refused");
    } else {
      remove_connection(*conn);
    }
    return;
  }

  switch (conn->state) {
    case State::kSynSent:
      if (packet.is_syn_ack()) {
        host_.network().loop().cancel(conn->rto_timer);
        conn->state = State::kEstablished;
        send_flags(conn->tuple, TcpFlags{.ack = true});
        ConnectResult result;
        result.ok = true;
        result.proto = TransportProtocol::kTcp;
        result.local = conn->tuple.local;
        result.remote = conn->tuple.remote;
        result.started = conn->started;
        result.completed = host_.network().loop().now();
        result.connection_id = conn->id;
        if (conn->on_connect) {
          // Move the handler out: it must run exactly once.
          ConnectHandler handler = std::move(conn->on_connect);
          conn->on_connect = nullptr;
          handler(result);
        }
      }
      return;
    case State::kSynReceived:
      if (packet.tcp.ack && !packet.tcp.syn) {
        conn->state = State::kEstablished;
        const auto listener = listeners_.find(conn->tuple.local.port);
        if (listener != listeners_.end() && listener->second) {
          listener->second(conn->id, conn->tuple.remote);
        }
        // Data may ride on the ACK.
        if (!packet.payload.empty() && data_handler_) {
          data_handler_(conn->id, packet.payload);
        }
      }
      return;
    case State::kEstablished:
      if (packet.tcp.fin) {
        remove_connection(*conn);
        return;
      }
      if (!packet.payload.empty() && data_handler_) {
        data_handler_(conn->id, packet.payload);
      }
      return;
  }
}

void TcpStack::send_data(std::uint64_t conn_id,
                         std::vector<std::uint8_t> payload) {
  send_data(conn_id, simnet::Buffer::adopt(std::move(payload)));
}

void TcpStack::send_data(std::uint64_t conn_id, simnet::Buffer payload) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end() || it->second.state != State::kEstablished) {
    log_message(LogLevel::kWarn,
                str_format("tcp send_data on unknown/closed conn %llu",
                           static_cast<unsigned long long>(conn_id)));
    return;
  }
  send_flags(it->second.tuple, TcpFlags{.ack = true}, std::move(payload));
}

void TcpStack::close(std::uint64_t conn_id) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  host_.network().loop().cancel(it->second.rto_timer);
  if (it->second.state == State::kEstablished) {
    send_flags(it->second.tuple, TcpFlags{.ack = true, .fin = true});
  }
  index_.erase(&it->second);
  connections_.erase(it);
}

std::size_t TcpStack::established_count() const {
  std::size_t n = 0;
  for (const auto& [id, conn] : connections_) {
    if (conn.state == State::kEstablished) ++n;
  }
  return n;
}

}  // namespace lazyeye::transport
