// Minimal TCP model over simnet: three-way handshake, SYN retransmission
// with exponential backoff, RST on closed ports, and reliable-enough data
// segments for the request/response exchanges the experiments need.
//
// Unresponsive *addresses* are modelled by the Network (packets to unowned
// addresses are blackholed); unresponsive *ports* by disabling RSTs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory_resource>
#include <span>
#include <vector>

#include "simnet/host.h"
#include "simnet/network.h"
#include "transport/connection.h"
#include "transport/tuple_index.h"

namespace lazyeye::transport {

struct TcpOptions {
  /// Initial SYN retransmission timeout (Linux: 1 s).
  SimTime syn_rto = lazyeye::sec(1);
  /// SYN retransmissions after the initial one before giving up
  /// (Linux default tcp_syn_retries=6 => ~127 s; clients override).
  int syn_retries = 6;
  double rto_backoff = 2.0;
};

/// One TCP endpoint (stack) per host. Installs itself as the host's TCP
/// protocol handler.
class TcpStack {
 public:
  using ConnectHandler = std::function<void(const ConnectResult&)>;
  /// (connection id, peer) — invoked on the server when a handshake
  /// completes.
  using AcceptHandler =
      std::function<void(std::uint64_t conn_id, const simnet::Endpoint& peer)>;
  /// (connection id, payload bytes) — invoked on data segment arrival. The
  /// view is only valid for the duration of the call (the bytes live in the
  /// packet's pooled buffer); copy if you need to keep them.
  using DataHandler =
      std::function<void(std::uint64_t conn_id, std::span<const std::uint8_t>)>;

  explicit TcpStack(simnet::Host& host);
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  // ---- Server side ---------------------------------------------------------
  void listen(std::uint16_t port, AcceptHandler on_accept = {});
  void close_listener(std::uint16_t port);
  /// RFC-conforming hosts answer SYNs to closed ports with RST (default).
  /// Disable to emulate firewalled/DROP behaviour.
  void set_rst_on_closed_port(bool enabled) { rst_on_closed_ = enabled; }
  /// Fault-injection hook consulted for every inbound SYN that reaches a
  /// listener (see transport/connection.h). Unset = accept everything.
  void set_accept_interposer(AcceptInterposer hook) {
    accept_interposer_ = std::move(hook);
  }

  // ---- Client side ---------------------------------------------------------
  /// Starts a connection attempt from the host's address matching the
  /// remote family. Returns an attempt id (0 = immediate failure; the
  /// handler is still invoked exactly once).
  std::uint64_t connect(const simnet::Endpoint& remote, const TcpOptions& options,
                        ConnectHandler handler);
  /// Aborts an in-flight attempt; the handler fires with error "cancelled".
  void abort(std::uint64_t attempt_id);

  // ---- Established connections ---------------------------------------------
  void send_data(std::uint64_t conn_id, simnet::Buffer payload);
  /// Legacy vector entry point: adopts the vector as the payload block.
  void send_data(std::uint64_t conn_id, std::vector<std::uint8_t> payload);
  void set_data_handler(DataHandler handler) { data_handler_ = std::move(handler); }
  void close(std::uint64_t conn_id);

  std::size_t established_count() const;

 private:
  enum class State { kSynSent, kSynReceived, kEstablished };

  struct ConnectionState {
    std::uint64_t id = 0;
    State state = State::kSynSent;
    FourTuple tuple;
    TcpOptions options;
    int syn_sent = 0;
    SimTime current_rto{0};
    SimTime started{0};
    simnet::TimerId rto_timer;
    ConnectHandler on_connect;  // client side only
  };

  void on_packet(const simnet::Packet& packet);
  void send_flags(const FourTuple& tuple, simnet::TcpFlags flags,
                  simnet::Buffer payload = {});
  void send_syn(ConnectionState& conn);
  void fail_connect(std::uint64_t id, const std::string& error);
  ConnectionState* find_by_tuple(const FourTuple& tuple);
  /// Unlinks the connection from the tuple index and the id map.
  void remove_connection(ConnectionState& conn);

  simnet::Host& host_;
  /// Id-keyed, node-based: entries are pointer-stable, which the tuple
  /// index relies on. Nodes draw from the owning world's memory resource.
  std::pmr::map<std::uint64_t, ConnectionState> connections_;
  /// Four-tuple -> connection demux for the per-packet path (replaces the
  /// old linear scan; same lowest-id-match semantics).
  TupleIndex<ConnectionState> index_;
  std::map<std::uint16_t, AcceptHandler> listeners_;
  DataHandler data_handler_;
  AcceptInterposer accept_interposer_;
  bool rst_on_closed_ = true;
  std::uint64_t next_id_ = 1;
};

}  // namespace lazyeye::transport
