// Four-tuple -> connection hash index shared by the TCP and QUIC stacks.
//
// Both stacks keep connections in an id-keyed map and used to answer
// "which connection owns this inbound packet?" with a linear scan over every
// live connection — O(n) per packet, which dominated cells with many
// parallel attempts (the paper's address-selection grids open dozens).
//
// TupleIndex is an open-addressing table (power-of-two capacity, linear
// probing, backward-shift deletion — no tombstones) holding raw pointers
// into the stacks' node-based connection maps, whose entries are
// pointer-stable. Semantics intentionally mirror the old scan:
//
//   * find() returns the LOWEST-ID connection matching the tuple, exactly
//     like a linear scan over the id-ordered std::map did, so duplicate
//     tuples (however unlikely) resolve identically.
//   * erase() removes one exact (tuple, pointer) entry; other connections
//     sharing the tuple stay indexed.
//
// `Conn` must expose `.tuple` (a FourTuple) and `.id` (uint64). The table
// draws from a std::pmr::memory_resource so arena-backed worlds index
// without touching the global heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory_resource>
#include <vector>

#include "transport/connection.h"

namespace lazyeye::transport {

template <typename Conn>
class TupleIndex {
 public:
  explicit TupleIndex(
      std::pmr::memory_resource* memory = std::pmr::get_default_resource())
      : slots_{memory} {}

  std::size_t size() const { return size_; }

  void insert(Conn* conn) {
    if (slots_.empty()) rehash(kInitialCapacity);
    // Keep load factor under 3/4 so probe chains stay short.
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
    insert_no_grow(conn);
    ++size_;
  }

  /// Lowest-id connection matching `tuple`, or nullptr.
  Conn* find(const FourTuple& tuple) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    Conn* best = nullptr;
    for (std::size_t i = four_tuple_hash(tuple) & mask; slots_[i] != nullptr;
         i = (i + 1) & mask) {
      Conn* c = slots_[i];
      if (c->tuple == tuple && (best == nullptr || c->id < best->id)) {
        best = c;
      }
    }
    return best;
  }

  /// Removes the entry for exactly `conn` (matched by pointer). No-op if the
  /// connection was never indexed.
  void erase(Conn* conn) {
    if (slots_.empty()) return;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = four_tuple_hash(conn->tuple) & mask;
    while (slots_[i] != conn) {
      if (slots_[i] == nullptr) return;  // not indexed
      i = (i + 1) & mask;
    }
    slots_[i] = nullptr;
    --size_;
    // Backward-shift: close the hole so later probes never stop early.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      Conn* c = slots_[j];
      if (c == nullptr) return;
      const std::size_t home = four_tuple_hash(c->tuple) & mask;
      // Move c into the hole unless its home lies in (i, j] cyclically —
      // i.e. unless the hole sits before c's own probe start.
      const bool home_in_hole_range =
          (i < j) ? (home > i && home <= j) : (home > i || home <= j);
      if (!home_in_hole_range) {
        slots_[i] = c;
        slots_[j] = nullptr;
        i = j;
      }
    }
  }

  void clear() {
    for (auto& s : slots_) s = nullptr;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kInitialCapacity = 16;

  void insert_no_grow(Conn* conn) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = four_tuple_hash(conn->tuple) & mask;
    while (slots_[i] != nullptr) i = (i + 1) & mask;
    slots_[i] = conn;
  }

  void rehash(std::size_t new_capacity) {
    std::pmr::vector<Conn*> old = std::move(slots_);
    slots_ = std::pmr::vector<Conn*>{old.get_allocator()};
    slots_.assign(new_capacity, nullptr);
    for (Conn* c : old) {
      if (c != nullptr) insert_no_grow(c);
    }
  }

  std::pmr::vector<Conn*> slots_;
  std::size_t size_ = 0;
};

}  // namespace lazyeye::transport
