// Pooled byte buffer for the per-packet data path.
//
// A Buffer owns a run of bytes either inline (payloads up to kInlineCapacity
// live in the object itself — TCP control segments and one-byte QUIC frames
// never touch the heap) or in a heap block borrowed from a BufferPool
// free-list, so steady-state packet traffic recycles a bounded set of blocks
// instead of allocating per send. Moves are cheap (block pointer steal +
// small memcpy); copies deep-copy into *unpooled* storage so a copied payload
// (capture taps, test snapshots) can safely outlive the pool that backed the
// original.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace lazyeye {

/// Free-list of heap blocks (capacity-preserving recycled vectors).
/// Single-threaded by design: each simnet::Network owns one, and a Network
/// is only ever driven from one thread (campaign cells are isolated worlds).
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty block, reusing a released one when available.
  std::vector<std::uint8_t> acquire() {
    ++acquires_;
    if (free_.empty()) return {};
    ++reuses_;
    std::vector<std::uint8_t> block = std::move(free_.back());
    free_.pop_back();
    return block;
  }

  /// Returns a block to the free-list (cleared, capacity kept). Excess
  /// blocks beyond kMaxIdle are dropped so a burst cannot pin memory forever.
  void release(std::vector<std::uint8_t>&& block) {
    if (free_.size() >= kMaxIdle || block.capacity() == 0) return;
    block.clear();
    free_.push_back(std::move(block));
  }

  /// Observability: total acquire() calls / how many were free-list hits.
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t reuses() const { return reuses_; }
  std::size_t idle() const { return free_.size(); }

 private:
  static constexpr std::size_t kMaxIdle = 4096;

  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

class Buffer {
 public:
  /// Payloads up to this size are stored inline (no pool, no heap).
  static constexpr std::size_t kInlineCapacity = 24;

  Buffer() noexcept = default;
  /// Empty buffer that borrows blocks from `pool` when it outgrows the
  /// inline storage. The pool must outlive every block-backed Buffer
  /// created against it (in simnet the Network owns both).
  explicit Buffer(BufferPool* pool) noexcept : pool_{pool} {}
  Buffer(BufferPool* pool, std::span<const std::uint8_t> bytes) : pool_{pool} {
    append(bytes);
  }

  /// Wraps an existing heap vector without copying (unpooled block).
  static Buffer adopt(std::vector<std::uint8_t> block) {
    Buffer b;
    b.block_ = std::move(block);
    b.heap_ = true;
    return b;
  }

  // Copies are deep and UNPOOLED: the copy owns plain heap storage and does
  // not reference the source's pool, so captured packets may outlive it.
  Buffer(const Buffer& other) { copy_from(other); }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      release_block();
      heap_ = false;
      inline_size_ = 0;
      pool_ = nullptr;
      copy_from(other);
    }
    return *this;
  }

  Buffer(Buffer&& other) noexcept
      : block_{std::move(other.block_)},
        pool_{other.pool_},
        inline_size_{other.inline_size_},
        heap_{other.heap_} {
    if (!heap_ && inline_size_ > 0) {
      std::memcpy(inline_bytes_, other.inline_bytes_, inline_size_);
    }
    other.heap_ = false;
    other.inline_size_ = 0;
  }

  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release_block();
      block_ = std::move(other.block_);
      pool_ = other.pool_;
      inline_size_ = other.inline_size_;
      heap_ = other.heap_;
      if (!heap_ && inline_size_ > 0) {
        std::memcpy(inline_bytes_, other.inline_bytes_, inline_size_);
      }
      other.heap_ = false;
      other.inline_size_ = 0;
    }
    return *this;
  }

  ~Buffer() { release_block(); }

  // -- read access ----------------------------------------------------------
  const std::uint8_t* data() const {
    return heap_ ? block_.data() : inline_bytes_;
  }
  std::uint8_t* data() { return heap_ ? block_.data() : inline_bytes_; }
  std::size_t size() const { return heap_ ? block_.size() : inline_size_; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + size(); }
  std::uint8_t front() const { return data()[0]; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }
  std::uint8_t& operator[](std::size_t i) { return data()[i]; }

  std::span<const std::uint8_t> span() const { return {data(), size()}; }
  operator std::span<const std::uint8_t>() const {  // NOLINT: deliberate
    return span();
  }

  bool operator==(const Buffer& other) const {
    return size() == other.size() &&
           std::memcmp(data(), other.data(), size()) == 0;
  }

  // -- write access ---------------------------------------------------------
  /// Drops the contents but keeps the storage (block stays attached).
  void clear() {
    if (heap_) {
      block_.clear();
    } else {
      inline_size_ = 0;
    }
  }

  void reserve(std::size_t n) {
    if (!heap_ && n > kInlineCapacity) promote(n);
    if (heap_) block_.reserve(n);
  }

  void resize(std::size_t n) {
    if (heap_) {
      block_.resize(n);
      return;
    }
    if (n <= kInlineCapacity) {
      if (n > inline_size_) {
        std::memset(inline_bytes_ + inline_size_, 0, n - inline_size_);
      }
      inline_size_ = static_cast<std::uint8_t>(n);
      return;
    }
    promote(n);
    block_.resize(n);
  }

  void push_back(std::uint8_t b) {
    if (heap_) {
      block_.push_back(b);
      return;
    }
    if (inline_size_ < kInlineCapacity) {
      inline_bytes_[inline_size_++] = b;
      return;
    }
    promote(inline_size_ + 1);
    block_.push_back(b);
  }

  void append(const void* src, std::size_t n) {
    if (n == 0) return;
    if (!heap_ && inline_size_ + n <= kInlineCapacity) {
      std::memcpy(inline_bytes_ + inline_size_, src, n);
      inline_size_ += static_cast<std::uint8_t>(n);
      return;
    }
    if (!heap_) promote(inline_size_ + n);
    const auto* bytes = static_cast<const std::uint8_t*>(src);
    block_.insert(block_.end(), bytes, bytes + n);
  }
  void append(std::span<const std::uint8_t> bytes) {
    append(bytes.data(), bytes.size());
  }

  void assign(std::span<const std::uint8_t> bytes) {
    clear();
    append(bytes);
  }

  /// Forces block-backed storage (promoting inline contents) and exposes the
  /// backing vector so a ByteWriter can serialise straight into the pooled
  /// block with zero copies. The reference stays valid until the Buffer is
  /// moved, destroyed, or shrunk back via operator=.
  std::vector<std::uint8_t>& heap_storage() {
    if (!heap_) promote(inline_size_);
    return block_;
  }

  // -- observability --------------------------------------------------------
  bool is_inline() const { return !heap_; }
  BufferPool* pool() const { return pool_; }

 private:
  void promote(std::size_t min_capacity) {
    std::vector<std::uint8_t> block =
        pool_ != nullptr ? pool_->acquire() : std::vector<std::uint8_t>{};
    block.clear();
    if (block.capacity() < min_capacity) block.reserve(min_capacity);
    block.insert(block.end(), inline_bytes_, inline_bytes_ + inline_size_);
    block_ = std::move(block);
    inline_size_ = 0;
    heap_ = true;
  }

  void release_block() {
    if (heap_) {
      if (pool_ != nullptr) pool_->release(std::move(block_));
      heap_ = false;
    }
  }

  void copy_from(const Buffer& other) {
    // pool_ stays null: see class comment.
    if (other.size() <= kInlineCapacity) {
      std::memcpy(inline_bytes_, other.data(), other.size());
      inline_size_ = static_cast<std::uint8_t>(other.size());
    } else {
      block_.assign(other.begin(), other.end());
      heap_ = true;
    }
  }

  std::vector<std::uint8_t> block_;  // valid contents iff heap_
  BufferPool* pool_ = nullptr;       // null = unpooled (plain heap blocks)
  std::uint8_t inline_size_ = 0;     // valid iff !heap_
  bool heap_ = false;
  std::uint8_t inline_bytes_[kInlineCapacity];
};

}  // namespace lazyeye
