#include "util/bytes.h"

#include <cstdio>

namespace lazyeye {

void ByteWriter::u16(std::uint16_t v) {
  buf_->push_back(static_cast<std::uint8_t>(v >> 8));
  buf_->push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_->push_back(static_cast<std::uint8_t>(v >> 24));
  buf_->push_back(static_cast<std::uint8_t>(v >> 16));
  buf_->push_back(static_cast<std::uint8_t>(v >> 8));
  buf_->push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_->insert(buf_->end(), data.begin(), data.end());
}

void ByteWriter::bytes(std::string_view data) {
  buf_->insert(buf_->end(), data.begin(), data.end());
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_->at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_->at(offset + 1) = static_cast<std::uint8_t>(v);
}

bool ByteReader::need(std::size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (!need(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                          static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (!need(4)) return 0;
  const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                          (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                          static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::vector<std::uint8_t> ByteReader::bytes(std::size_t n) {
  if (!need(n)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> ByteReader::view(std::size_t n) {
  if (!need(n)) return {};
  const std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string ByteReader::str(std::size_t n) {
  if (!need(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

void ByteReader::skip(std::size_t n) {
  if (need(n)) pos_ += n;
}

void ByteReader::seek(std::size_t pos) {
  if (pos > data_.size()) {
    ok_ = false;
    return;
  }
  pos_ = pos;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 3);
  char buf[4];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%02x", data[i]);
    if (i) out.push_back(' ');
    out += buf;
  }
  return out;
}

}  // namespace lazyeye
