// Big-endian (network byte order) byte buffer reader/writer.
//
// Used by the DNS wire codec and anything else that serialises packets.
// ByteReader reports failure through a sticky error flag plus bounds-checked
// reads, so parsers can check once at the end (RFC 1035 parsing style).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lazyeye {

/// Appends big-endian integers / raw bytes to a growable buffer.
///
/// Owns its storage by default; the external-storage constructor appends
/// into a caller-provided vector instead, so hot paths can serialise into a
/// reused scratch vector or a pooled Buffer block (Buffer::heap_storage())
/// without a copy. In external mode the caller already holds the bytes —
/// do not call take().
class ByteWriter {
 public:
  ByteWriter() : buf_{&own_} {}
  /// Appends into `external` (existing contents are kept — clear it first
  /// for a fresh message). `external` must outlive the writer.
  explicit ByteWriter(std::vector<std::uint8_t>& external) : buf_{&external} {}

  void u8(std::uint8_t v) { buf_->push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);
  void bytes(std::string_view data);

  /// Overwrites a previously written u16 at `offset` (e.g. length prefixes).
  void patch_u16(std::size_t offset, std::uint16_t v);

  std::size_t size() const { return buf_->size(); }
  const std::vector<std::uint8_t>& data() const { return *buf_; }
  /// Owning mode only: moves the bytes out.
  std::vector<std::uint8_t> take() { return std::move(*buf_); }

 private:
  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* buf_;
};

/// Bounds-checked sequential reader over an immutable byte span.
///
/// Any out-of-bounds read sets the sticky error flag and returns zeros; the
/// caller checks ok() once after parsing a unit.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::vector<std::uint8_t> bytes(std::size_t n);
  std::string str(std::size_t n);
  /// Zero-copy view of the next n bytes (empty + error flag when short).
  std::span<const std::uint8_t> view(std::size_t n);
  void skip(std::size_t n);

  bool ok() const { return ok_; }
  void mark_bad() { ok_ = false; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  std::span<const std::uint8_t> whole() const { return data_; }

  /// Repositions the cursor (used for DNS compression pointer chasing).
  void seek(std::size_t pos);

 private:
  bool need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Hex rendering for diagnostics, e.g. "0a 1b 2c".
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace lazyeye
