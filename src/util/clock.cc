#include "util/clock.h"

#include <chrono>
#include <thread>

namespace lazyeye::util {

std::uint64_t monotonic_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void sleep_for_ms(std::uint64_t millis) {
  if (millis == 0) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{millis});
}

}  // namespace lazyeye::util
