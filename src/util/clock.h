// Wall-clock escape hatch for the crash-resilience layer.
//
// Everything *measured* in this repo runs on SimTime, and lazylint bans
// wall clocks across src/ — but the fault-isolation machinery in the
// campaign runner legitimately needs real time: detecting a cell that
// overran its RunnerOptions::cell_timeout and pacing retry backoff are
// statements about the host, not about the simulated world. Those two uses
// are funnelled through this header, which lives in src/util/ exactly
// because util/ is the one directory the nondeterminism lint exempts.
// Nothing here may ever feed a measurement result or a sink.
#pragma once

#include <cstdint>

namespace lazyeye::util {

/// Monotonic wall-clock nanoseconds since an arbitrary epoch. Only valid
/// for measuring intervals on this host (cell timeout accounting).
std::uint64_t monotonic_now_ns();

/// Blocks the calling thread for ~`millis` wall milliseconds (retry
/// backoff). 0 yields the thread.
void sleep_for_ms(std::uint64_t millis);

}  // namespace lazyeye::util
