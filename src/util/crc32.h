// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the journal's
// record-framing checksum.
//
// Header-only and constexpr-table-driven so the campaign journal, the shard
// merge step, and the tests all agree on one implementation. Not a hot
// path: the journal writes one small record per *cell*, not per packet.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lazyeye::util {

namespace crc_detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace crc_detail

/// Incremental form: feed `crc32_init()` through `crc32_update` calls and
/// finish with `crc32_final` (standard init/xorout of ~0).
constexpr std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

constexpr std::uint32_t crc32_update(std::uint32_t state,
                                     const unsigned char* data,
                                     std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    state = crc_detail::kCrc32Table[(state ^ data[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

constexpr std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte string.
inline std::uint32_t crc32(std::string_view data) {
  return crc32_final(crc32_update(
      crc32_init(), reinterpret_cast<const unsigned char*>(data.data()),
      data.size()));
}

}  // namespace lazyeye::util
