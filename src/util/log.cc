#include "util/log.h"

#include <utility>

namespace lazyeye {

namespace {
LogSink g_sink;  // empty == silent
LogLevel g_threshold = LogLevel::kInfo;
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

LogSink set_log_sink(LogSink sink) {
  LogSink old = std::move(g_sink);
  g_sink = std::move(sink);
  return old;
}

void set_log_level(LogLevel level) { g_threshold = level; }

LogLevel log_threshold() { return g_threshold; }

bool log_enabled(LogLevel level) { return g_sink && level >= g_threshold; }

void log_message(LogLevel level, std::string_view message) {
  if (g_sink && level >= g_threshold) g_sink(level, message);
}

}  // namespace lazyeye
