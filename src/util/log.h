// Lightweight leveled logger with pluggable sink.
//
// Default sink is silent; tests/examples can install a stderr sink that
// prefixes messages with the current simulated time.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace lazyeye {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

const char* log_level_name(LogLevel level);

using LogSink = std::function<void(LogLevel, std::string_view message)>;

/// Installs the process-wide sink; pass nullptr to silence.  Returns the
/// previous sink so callers can restore it.
LogSink set_log_sink(LogSink sink);

/// Sets the minimum level delivered to the sink (default kInfo).
void set_log_level(LogLevel level);
LogLevel log_threshold();

/// True when a message at `level` would actually reach a sink. Hot paths
/// guard expensive message formatting (str_format + summary()) behind this.
bool log_enabled(LogLevel level);

void log_message(LogLevel level, std::string_view message);

/// Lazy trace logging: `fn` builds the message (returning anything
/// convertible to std::string_view) and runs only when trace is enabled —
/// the default-silent hot path pays one branch, not a formatted string.
template <typename Fn>
void log_trace(Fn&& fn) {
  if (log_enabled(LogLevel::kTrace)) {
    log_message(LogLevel::kTrace, std::forward<Fn>(fn)());
  }
}

}  // namespace lazyeye
