// Annotated synchronisation primitives: util::Mutex, util::MutexLock, and
// util::CondVar.
//
// Thin wrappers over std::mutex / std::condition_variable_any that carry
// clang thread-safety capability attributes (thread_annotations.h), so
// GUARDED_BY / REQUIRES declarations across the campaign engine are
// *checked* under clang -Wthread-safety -Werror instead of being comments.
// Under GCC the attributes vanish and the wrappers compile down to the
// std types with zero overhead.
//
// Condition waits use CondVar (condition_variable_any) directly on the
// annotated Mutex — Mutex is BasicLockable — with an explicit while-loop
// predicate at the call site:
//
//     util::MutexLock lock{mutex_};
//     while (!ready_) cv_.wait(mutex_);
//
// rather than the lambda-predicate std overloads: the analysis cannot see
// into a predicate lambda's lock state, but it checks a plain while loop
// against the GUARDED_BY declarations just fine.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace lazyeye::util {

/// std::mutex with a capability attribute. Satisfies BasicLockable, so
/// CondVar (condition_variable_any) can wait on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (the std::lock_guard shape, visible to the analysis).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on an annotated Mutex. wait() REQUIRES the
/// mutex: it is held on entry and on return (the internal unlock/relock is
/// invisible to the analysis, which matches the caller-facing contract).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace lazyeye::util
