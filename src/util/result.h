// Minimal expected-style result type (C++20; std::expected is C++23).
//
// Used for operations whose failure is an ordinary outcome (wire parsing,
// lookups); exceptions remain reserved for programming errors per the Core
// Guidelines.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lazyeye {

template <typename T>
class Result {
 public:
  Result(T value) : value_{std::move(value)} {}  // NOLINT(google-explicit-constructor)

  static Result failure(std::string error) {
    Result r{};
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_;
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Result() = default;

  std::optional<T> value_;
  std::string error_;
};

/// Result for operations with no payload.
class Status {
 public:
  Status() = default;
  static Status failure(std::string error) {
    Status s;
    s.error_ = std::move(error);
    return s;
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const std::string& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<std::string> error_;
};

}  // namespace lazyeye
