#include "util/rng.h"

#include <cassert>

namespace lazyeye {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo (Lemire-style rejection kept simple).
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return next_double() < probability;
}

std::int64_t Rng::next_in_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

SimTime Rng::next_duration(SimTime lo, SimTime hi) {
  return SimTime{next_in_range(lo.count(), hi.count())};
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace lazyeye
