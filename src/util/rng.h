// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (netem jitter/loss, resolver IPv6
// choices, the Safari dynamic-CAD model, web-condition noise) draws from these
// generators, seeded explicitly by the caller, so every experiment is
// reproducible.
#pragma once

#include <cstdint>
#include <limits>

#include "util/time.h"

namespace lazyeye {

/// SplitMix64 — used for seeding and for cheap independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Current internal state. Re-seeding another SplitMix64 with this value
  /// continues the stream exactly — the property checkpoint/resume code
  /// (conformance fault hunt snapshots) relies on.
  constexpr std::uint64_t state() const { return state_; }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the main generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool chance(double probability);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi);

  /// Uniform duration in [lo, hi] inclusive.
  SimTime next_duration(SimTime lo, SimTime hi);

  /// Split off an independently-seeded child stream.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace lazyeye
