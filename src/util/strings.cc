#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace lazyeye {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    v = v * 10 + digit;
  }
  return v;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace lazyeye
