// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lazyeye {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Allocation-free split: invokes `fn(field)` for each (possibly empty)
/// string_view field, in order. `fn` returning false stops the walk and
/// makes for_each_split return false. Hot parsers use this instead of
/// split() to avoid materialising a vector of std::string temporaries.
template <typename Fn>
bool for_each_split(std::string_view s, char sep, Fn&& fn) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    const std::string_view field =
        pos == std::string_view::npos ? s.substr(start)
                                      : s.substr(start, pos - start);
    if (!fn(field)) return false;
    if (pos == std::string_view::npos) return true;
    start = pos + 1;
  }
}

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Strict non-negative integer parse (rejects empty / trailing junk).
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace lazyeye
