// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lazyeye {

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Strict non-negative integer parse (rejects empty / trailing junk).
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// printf-style formatting into std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace lazyeye
