#include "util/table.h"

#include <algorithm>

namespace lazyeye {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_{std::move(headers)}, aligns_(headers_.size(), Align::kLeft) {}

void TextTable::set_align(std::size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto pad = [&](const std::string& s, std::size_t c) {
    std::string out;
    const std::size_t fill = widths[c] - std::min(widths[c], s.size());
    if (aligns_[c] == Align::kRight) out.append(fill, ' ');
    out += s;
    if (aligns_[c] == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  auto rule = [&] {
    std::string out = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += std::string(widths[c] + 2, '-');
      out += "|";
    }
    out += "\n";
    return out;
  };

  // Append-only string building: gcc 12's -Wrestrict misfires on inlined
  // `"literal" + std::string` chains (PR 105651), and CI builds -Werror.
  std::string out = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    out += pad(headers_[c], c);
    out += " |";
  }
  out += '\n';
  out += rule();
  for (const Row& row : rows_) {
    if (row.separator_before) out += rule();
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += ' ';
      out += pad(row.cells[c], c);
      out += " |";
    }
    out += '\n';
  }
  return out;
}

}  // namespace lazyeye
