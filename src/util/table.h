// ASCII table renderer for bench outputs (paper table/figure reproductions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lazyeye {

/// Builds monospace tables:
///
///   | Service  | AAAA Query | IPv6 Share |
///   |----------|------------|------------|
///   | BIND     | after A    |    100.0 % |
///
/// Columns are sized to fit; alignment is per-column.
class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::vector<std::string> headers);

  /// Sets alignment of a column (default left).
  void set_align(std::size_t column, Align align);

  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator before the next added row.
  void add_separator();

  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace lazyeye
