// Portable clang thread-safety annotation macros.
//
// Wraps the attributes behind __has_attribute so the same headers compile
// under GCC (which ignores the analysis) and clang with -Wthread-safety
// (which enforces it — the CI static-analysis job builds with
// -Wthread-safety -Werror). Apply them through the util::Mutex /
// util::MutexLock / util::CondVar wrappers in util/mutex.h rather than on
// raw std::mutex, which carries no capability attribute.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define LAZYEYE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LAZYEYE_THREAD_ANNOTATION(x)
#endif

/// Declares a class to be a capability (lockable resource).
#define CAPABILITY(x) LAZYEYE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY LAZYEYE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define GUARDED_BY(x) LAZYEYE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) LAZYEYE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and keeps it held).
#define REQUIRES(...) \
  LAZYEYE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) LAZYEYE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define ACQUIRE(...) \
  LAZYEYE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define RELEASE(...) \
  LAZYEYE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  LAZYEYE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability (for accessors).
#define RETURN_CAPABILITY(x) LAZYEYE_THREAD_ANNOTATION(lock_returned(x))

/// Capabilities that must be acquired *before* this one (ordering).
#define ACQUIRED_BEFORE(...) \
  LAZYEYE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Capabilities that must be acquired *after* this one (ordering).
#define ACQUIRED_AFTER(...) \
  LAZYEYE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch: the function's locking is correct but inexpressible.
/// Every use needs a comment saying why the analysis cannot follow it.
#define NO_THREAD_SAFETY_ANALYSIS \
  LAZYEYE_THREAD_ANNOTATION(no_thread_safety_analysis)
