#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace lazyeye {

namespace {

std::string trim_zeros(double v, const char* unit) {
  char buf[64];
  // Up to 3 fractional digits, then strip trailing zeros / dot.
  std::snprintf(buf, sizeof buf, "%.3f", v);
  std::string s{buf};
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s + unit;
}

}  // namespace

std::string format_duration(SimTime t) {
  const std::int64_t n = t.count();
  if (n == 0) return "0ms";
  if (n < 0) {
    // Append form: gcc 12's -Wrestrict misfires on `"literal" + string`
    // (PR 105651), and CI builds -Werror.
    std::string out{"-"};
    out += format_duration(-t);
    return out;
  }
  if (n % 1'000'000'000 == 0 || n >= 10'000'000'000) {
    return trim_zeros(to_sec(t), "s");
  }
  if (n >= 1'000'000) return trim_zeros(to_ms(t), "ms");
  if (n >= 1'000) {
    return trim_zeros(std::chrono::duration<double, std::micro>(t).count(),
                      "us");
  }
  return std::to_string(n) + "ns";
}

}  // namespace lazyeye
