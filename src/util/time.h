// Simulated-time primitives.
//
// The entire library runs on virtual time: SimTime is a duration since the
// simulation epoch (t = 0 at EventLoop construction).  No component may read
// a wall clock; this keeps every run bit-for-bit reproducible and gives the
// measurement pipeline exact timestamps (the paper's physical testbed relies
// on <1 ms capture accuracy; we have exact virtual stamps).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace lazyeye {

/// Duration/instant type used across the simulator (ns granularity).
using SimTime = std::chrono::nanoseconds;

/// Convenience literals-ish constructors.
constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
constexpr SimTime us(std::int64_t v) { return std::chrono::microseconds{v}; }
constexpr SimTime ms(std::int64_t v) { return std::chrono::milliseconds{v}; }
constexpr SimTime sec(std::int64_t v) { return std::chrono::seconds{v}; }
constexpr SimTime minutes(std::int64_t v) { return std::chrono::minutes{v}; }

/// Fractional milliseconds, exact to 1 us.
constexpr SimTime ms_f(double v) {
  return us(static_cast<std::int64_t>(v * 1000.0));
}

/// Duration expressed in (possibly fractional) milliseconds.
constexpr double to_ms(SimTime t) {
  return std::chrono::duration<double, std::milli>(t).count();
}

/// Duration expressed in (possibly fractional) seconds.
constexpr double to_sec(SimTime t) {
  return std::chrono::duration<double>(t).count();
}

/// Human-readable rendering, e.g. "250ms", "1.75s", "50us".
std::string format_duration(SimTime t);

}  // namespace lazyeye
