#include "webtool/webtool.h"

#include "campaign/runner.h"
#include "campaign/sink.h"
#include "dns/auth_server.h"
#include "dns/test_params.h"
#include "util/strings.h"

namespace lazyeye::webtool {

using simnet::Family;
using simnet::IpAddress;

WebToolConfig WebToolConfig::paper_default() {
  WebToolConfig config;
  // 18 delays between 0 and 5 s (Fig. 4a granularity: fine around the RFC
  // recommendations, coarse toward the tail).
  for (const int delay_ms : {0, 10, 25, 50, 100, 150, 200, 250, 300, 350, 400,
                             500, 750, 1000, 1500, 2000, 3000, 5000}) {
    config.delays.push_back(lazyeye::ms(delay_ms));
  }
  return config;
}

WebTool::WebTool(WebToolConfig config) : config_{std::move(config)} {}

WebToolReport WebTool::run_cad_test(const clients::ClientProfile& profile,
                                    const std::string& os_name,
                                    const std::string& os_version) {
  return run_campaign(profile, os_name, os_version, /*rd_mode=*/false,
                      dns::RrType::kAaaa);
}

WebToolReport WebTool::run_rd_test(const clients::ClientProfile& profile,
                                   dns::RrType delayed_type,
                                   const std::string& os_name,
                                   const std::string& os_version) {
  return run_campaign(profile, os_name, os_version, /*rd_mode=*/true,
                      delayed_type);
}

namespace {

campaign::ScenarioSpec repetition_cell(const std::string& client,
                                       std::uint64_t config_seed, bool rd_mode,
                                       dns::RrType delayed_type, int rep) {
  campaign::ScenarioSpec spec;
  spec.id = static_cast<std::uint64_t>(rep);
  spec.repetition = rep;
  // One seed per repetition cell: the whole deployment (netem noise,
  // client behaviour) for that repetition derives from it.
  spec.seed = config_seed * 1000003ULL + static_cast<std::uint64_t>(rep) + 1;
  spec.client = client;
  spec.payload = campaign::WebRepetitionCase{rd_mode, delayed_type};
  spec.label = lazyeye::str_format("webtool %s rep%d", client.c_str(), rep);
  return spec;
}

}  // namespace

std::vector<campaign::ScenarioSpec> WebTool::campaign_specs(
    const clients::ClientProfile& profile, bool rd_mode,
    dns::RrType delayed_type) const {
  std::vector<campaign::ScenarioSpec> specs;
  specs.reserve(config_.repetitions);
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    specs.push_back(repetition_cell(profile.display_name(), config_.seed,
                                    rd_mode, delayed_type, rep));
  }
  return specs;
}

campaign::SpecStream WebTool::campaign_spec_stream(
    const clients::ClientProfile& profile, bool rd_mode,
    dns::RrType delayed_type) const {
  return campaign::SpecStream{
      static_cast<std::size_t>(config_.repetitions),
      [client = profile.display_name(), seed = config_.seed, rd_mode,
       delayed_type](std::size_t i) {
        return repetition_cell(client, seed, rd_mode, delayed_type,
                               static_cast<int>(i));
      }};
}

RepetitionOutcome WebTool::run_repetition(const clients::ClientProfile& profile,
                                          const campaign::ScenarioSpec& spec) const {
  // Throws bad_variant_access on a non-web cell: routing a foreign case
  // here is a programming error, not a measurement outcome.
  const auto& rep_case = std::get<campaign::WebRepetitionCase>(spec.payload);
  const bool rd_mode = rep_case.rd_mode;
  const dns::RrType delayed_type = rep_case.delayed_type;
  const std::size_t buckets = config_.delays.size();

  // ---- Persistent deployment (one world for the whole repetition). --------
  // Leased, arena-backed world: consecutive repetitions on this worker
  // thread rebuild into the same warm chunks.
  simnet::WorldLease lease;
  simnet::Network net{lease.memory(), spec.world_seed()};
  simnet::Host& server = net.add_host("webtool-server");
  simnet::Host& client_host = net.add_host("client");
  client_host.add_address(IpAddress::must_parse("10.0.0.2"));
  client_host.add_address(IpAddress::must_parse("2001:db8::2"));

  // Dedicated address pair per delay bucket.
  std::vector<IpAddress> v4_addrs;
  std::vector<IpAddress> v6_addrs;
  for (std::size_t i = 0; i < buckets; ++i) {
    v4_addrs.push_back(IpAddress::must_parse(
        lazyeye::str_format("192.0.2.%zu", i + 1)));
    v6_addrs.push_back(IpAddress::must_parse(
        lazyeye::str_format("2001:db8:100::%zu", i + 1)));
    server.add_address(v4_addrs.back());
    server.add_address(v6_addrs.back());
  }
  // DNS lives on its own address so shaping never touches it.
  const auto dns_addr = IpAddress::must_parse("10.0.0.53");
  server.add_address(dns_addr);

  // Shaping: CAD mode delays the per-bucket IPv6 address on the wire.
  if (!rd_mode) {
    for (std::size_t i = 0; i < buckets; ++i) {
      if (config_.delays[i].count() == 0) continue;
      net.qdisc().add_rule(simnet::PacketFilter::to_address(v6_addrs[i]),
                           simnet::NetemSpec::delay_only(config_.delays[i]),
                           lazyeye::str_format("bucket %zu", i));
    }
  }
  // Real-world noise on everything else.
  if (config_.network_noise) {
    net.qdisc().add_rule(simnet::PacketFilter::any(),
                         simnet::NetemSpec{lazyeye::ms(4), lazyeye::ms(3), 0.0},
                         "web noise");
  }

  // Web server: echoes the client's source address (client-side evaluation).
  transport::TcpStack server_tcp{server};
  simnet::Endpoint last_peer;
  server_tcp.listen(443, [&](std::uint64_t, const simnet::Endpoint& peer) {
    last_peer = peer;
  });
  server_tcp.set_data_handler(
      [&](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        const std::string body = last_peer.addr.to_string();
        server_tcp.send_data(conn_id,
                             std::vector<std::uint8_t>{body.begin(), body.end()});
      });

  // DNS: one dedicated domain per bucket (cache busting).
  dns::AuthServer auth{server, 53};
  dns::Zone& zone = auth.add_zone(dns::DnsName::must_parse("he-test.net"));
  std::vector<dns::DnsName> domains;
  for (std::size_t i = 0; i < buckets; ++i) {
    dns::DnsName name;
    if (rd_mode) {
      // RD bucket: both records resolve to the same healthy pair; the DNS
      // answer of `delayed_type` is delayed via qname-encoded parameters.
      name = dns::make_test_name(
          dns::DnsName::must_parse(
              lazyeye::str_format("rd%zu.he-test.net", i)),
          lazyeye::str_format("w%zu", i),
          {{delayed_type, config_.delays[i]}});
      zone.add_a(name, *simnet::Ipv4Address::parse("192.0.2.1"));
      zone.add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8:100::1"));
    } else {
      name = dns::DnsName::must_parse(
          lazyeye::str_format("d%zu.cad.he-test.net", i));
      zone.add_a(name, *simnet::Ipv4Address::parse(
                           v4_addrs[i].v4().to_string()));
      zone.add_aaaa(name, *simnet::Ipv6Address::parse(
                              v6_addrs[i].v6().to_string()));
    }
    domains.push_back(name);
  }

  // ---- Client (state persists across the repetition's buckets). -----------
  dns::StubOptions stub_options;
  stub_options.servers = {{dns_addr, 53}};
  clients::SimulatedClient client{client_host, profile, stub_options,
                                  spec.client_seed()};
  client.set_web_conditions(true);

  RepetitionOutcome outcome;
  outcome.families.resize(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    clients::FetchResult fetch;
    bool done = false;
    client.fetch(domains[i], 443, [&](clients::FetchResult r) {
      fetch = std::move(r);
      done = true;
    });
    net.loop().run();
    if (!done || !fetch.connection.ok || !fetch.response_received) continue;
    // Client-side family determination from the echoed source address.
    outcome.families[i] = fetch.response_text() == "2001:db8::2"
                              ? Family::kIpv6
                              : Family::kIpv4;
  }

  // Inconsistency: IPv4 at a smaller delay than a later IPv6 use.
  bool v4_seen = false;
  for (std::size_t i = 0; i < buckets; ++i) {
    if (!outcome.families[i]) continue;
    if (*outcome.families[i] == Family::kIpv4) v4_seen = true;
    if (*outcome.families[i] == Family::kIpv6 && v4_seen) {
      outcome.inconsistent = true;
    }
  }
  return outcome;
}

WebToolReport WebTool::run_campaign(const clients::ClientProfile& profile,
                                    const std::string& os_name,
                                    const std::string& os_version,
                                    bool rd_mode, dns::RrType delayed_type) {
  const std::size_t buckets = config_.delays.size();

  WebToolReport report;
  report.client = profile.display_name();
  report.user_agent = clients::make_user_agent(profile.name, profile.version,
                                               os_name, os_version);
  report.parsed_agent = clients::parse_user_agent(report.user_agent);
  report.per_delay.resize(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    report.per_delay[i].delay = config_.delays[i];
  }
  report.total_repetitions = config_.repetitions;

  // Shard the repetition cells across the worker pool and fold each outcome
  // into the report as it streams in. Delivery is in repetition order (the
  // sink contract), so aggregation is worker-count independent — and no
  // outcome vector is ever materialised.
  campaign::RunnerOptions runner_options;
  runner_options.workers = config_.workers;
  campaign::CampaignRunner runner{runner_options};
  campaign::CallbackSink<RepetitionOutcome> sink{
      [&](const campaign::ScenarioSpec&, RepetitionOutcome outcome) {
        for (std::size_t i = 0; i < buckets; ++i) {
          if (!outcome.families[i]) {
            ++report.per_delay[i].failures;
          } else if (*outcome.families[i] == Family::kIpv6) {
            ++report.per_delay[i].v6_used;
          } else {
            ++report.per_delay[i].v4_used;
          }
        }
        if (outcome.inconsistent) ++report.inconsistent_repetitions;
      }};
  runner.run_streaming<RepetitionOutcome>(
      campaign_spec_stream(profile, rd_mode, delayed_type),
      [&](const campaign::ScenarioSpec& spec) {
        return run_repetition(profile, spec);
      },
      sink);

  // Interval estimate from per-bucket majorities.
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto& obs = report.per_delay[i];
    if (obs.v6_used + obs.v4_used == 0) continue;
    if (obs.majority() == Family::kIpv6) {
      if (!report.interval_low || obs.delay > *report.interval_low) {
        report.interval_low = obs.delay;
      }
    }
  }
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto& obs = report.per_delay[i];
    if (obs.v6_used + obs.v4_used == 0) continue;
    if (obs.majority() == Family::kIpv4 &&
        (!report.interval_low || obs.delay > *report.interval_low)) {
      if (!report.interval_high || obs.delay < *report.interval_high) {
        report.interval_high = obs.delay;
      }
    }
  }
  return report;
}

}  // namespace lazyeye::webtool
