// Web-based testing tool emulation (paper §4.3 (ii), happy-eyeballs.net).
//
// A persistent deployment: 18 fixed delay buckets between 0 and 5 s, each
// with a dedicated IPv4/IPv6 address pair and a dedicated domain (caching
// avoidance). The server echoes the client's source address; everything is
// evaluated client-side from that echo. Client and server state persist
// across the buckets of a repetition (no per-fetch reset — unlike the local
// testbed), and the network carries "real-world" noise.
//
// A campaign shards the bucket × repetition grid at repetition granularity:
// each repetition is one campaign::ScenarioSpec cell owning a full isolated
// deployment (all 18 buckets, persistent client), so repetitions run in
// parallel while the within-repetition ordering the inconsistency metric
// depends on stays sequential.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "campaign/scenario.h"
#include "campaign/spec_stream.h"
#include "clients/client.h"
#include "clients/profiles.h"
#include "clients/user_agent.h"

namespace lazyeye::webtool {

struct WebToolConfig {
  /// Delay buckets (paper: 18 values between 0 and 5 s).
  std::vector<SimTime> delays;
  int repetitions = 10;
  std::uint64_t seed = 1;
  /// Real-world network conditions (jitter on every path).
  bool network_noise = true;
  /// Campaign worker threads (0 = one per hardware thread). Results are
  /// identical for any worker count.
  int workers = 0;

  static WebToolConfig paper_default();
};

struct DelayObservation {
  SimTime delay{0};
  int v6_used = 0;
  int v4_used = 0;
  int failures = 0;

  simnet::Family majority() const {
    return v6_used >= v4_used ? simnet::Family::kIpv6 : simnet::Family::kIpv4;
  }
};

/// What one repetition (one pass over all buckets) observed. This is the
/// campaign cell outcome the aggregation consumes.
struct RepetitionOutcome {
  /// Established family per bucket; nullopt = fetch failed.
  std::vector<std::optional<simnet::Family>> families;
  /// Repetition-local inconsistency: IPv4 appeared at a smaller delay than
  /// a later IPv6 use (the Safari signature, §5.1).
  bool inconsistent = false;
};

struct WebToolReport {
  std::string client;
  std::string user_agent;
  clients::UserAgentInfo parsed_agent;
  std::vector<DelayObservation> per_delay;
  /// CAD interval estimate: CAD ∈ (interval_low, interval_high].
  std::optional<SimTime> interval_low;   // largest delay still using IPv6
  std::optional<SimTime> interval_high;  // smallest delay using IPv4
  /// Repetitions where IPv4 appeared at a smaller delay than a later IPv6
  /// use (the Safari inconsistency signature, §5.1).
  int inconsistent_repetitions = 0;
  int total_repetitions = 0;
};

class WebTool {
 public:
  explicit WebTool(WebToolConfig config = WebToolConfig::paper_default());

  /// CAD test: per-bucket IPv6 path delay, dedicated address pair + domain.
  WebToolReport run_cad_test(const clients::ClientProfile& profile,
                             const std::string& os_name = "Linux",
                             const std::string& os_version = "");

  /// RD test: per-bucket DNS answer delay for `delayed_type` (AAAA by
  /// default; pass kA for the §5.2 slow-A experiment).
  WebToolReport run_rd_test(const clients::ClientProfile& profile,
                            dns::RrType delayed_type = dns::RrType::kAaaa,
                            const std::string& os_name = "Linux",
                            const std::string& os_version = "");

  /// One spec per repetition (the campaign cells run_cad_test/run_rd_test
  /// shard across workers). `rd_mode` and `delayed_type` are recorded in
  /// each cell's WebRepetitionCase payload, which is the single source of
  /// truth the executor reads.
  std::vector<campaign::ScenarioSpec> campaign_specs(
      const clients::ClientProfile& profile, bool rd_mode,
      dns::RrType delayed_type) const;

  /// Lazy equivalent of campaign_specs(): cell-for-cell identical specs,
  /// generated per claimed repetition instead of materialised up front.
  campaign::SpecStream campaign_spec_stream(
      const clients::ClientProfile& profile, bool rd_mode,
      dns::RrType delayed_type) const;

  /// Stateless executor for one repetition cell: builds the full deployment
  /// (all buckets) in an isolated world seeded from the spec and walks the
  /// buckets with a persistent client. Thread-safe across distinct specs.
  RepetitionOutcome run_repetition(const clients::ClientProfile& profile,
                                   const campaign::ScenarioSpec& spec) const;

  const WebToolConfig& config() const { return config_; }

 private:
  WebToolReport run_campaign(const clients::ClientProfile& profile,
                             const std::string& os_name,
                             const std::string& os_version,
                             bool rd_mode, dns::RrType delayed_type);

  WebToolConfig config_;
};

/// Plugs the web-tool repetition case into a campaign registry. Cells carry
/// the client display name; it is resolved against `profiles` so one matrix
/// can batch several client profiles. `tool` must outlive the registry.
template <typename Outcome>
void register_executor(campaign::Registry<Outcome>& registry,
                       const WebTool& tool,
                       std::vector<clients::ClientProfile> profiles) {
  auto pool = std::make_shared<const std::vector<clients::ClientProfile>>(
      std::move(profiles));
  registry.template add<campaign::WebRepetitionCase>(
      [&tool, pool](const campaign::ScenarioSpec& spec,
                    const campaign::WebRepetitionCase&) {
        return tool.run_repetition(
            campaign::find_registered(
                *pool, spec.client,
                [](const clients::ClientProfile& p) { return p.display_name(); },
                "webtool"),
            spec);
      });
}

}  // namespace lazyeye::webtool
