// Campaign engine tests: runner sharding semantics, and the core
// determinism contract — the same spec matrix with the same seeds produces
// byte-identical aggregated results for 1 worker and 4 workers, across all
// three measurement layers (testbed, webtool, resolverlab).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "campaign/result.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "clients/profiles.h"
#include "resolverlab/lab.h"
#include "testbed/testbed.h"
#include "util/strings.h"
#include "webtool/webtool.h"

namespace lazyeye::campaign {
namespace {

std::vector<ScenarioSpec> numbered_specs(std::size_t n) {
  std::vector<ScenarioSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].id = i;
    specs[i].seed = 100 + i;
  }
  return specs;
}

CampaignRunner runner_with(int workers) {
  RunnerOptions options;
  options.workers = workers;
  return CampaignRunner{options};
}

// ------------------------------------------------------------- runner ----

TEST(CampaignRunnerTest, ResultsComeBackInSpecOrder) {
  const auto specs = numbered_specs(64);
  const auto results = runner_with(4).run<std::uint64_t>(
      specs, [](const ScenarioSpec& s) { return s.seed * 3; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], (100 + i) * 3);
  }
}

TEST(CampaignRunnerTest, EveryCellRunsExactlyOnce) {
  const auto specs = numbered_specs(50);
  std::atomic<int> calls{0};
  runner_with(4).run<int>(specs, [&](const ScenarioSpec& s) {
    calls.fetch_add(1);
    return static_cast<int>(s.id);
  });
  EXPECT_EQ(calls.load(), 50);
}

TEST(CampaignRunnerTest, ResolvedWorkersClampsToJobAndHardware) {
  EXPECT_EQ(runner_with(8).resolved_workers(3), 3);
  EXPECT_EQ(runner_with(2).resolved_workers(100), 2);
  EXPECT_GE(runner_with(0).resolved_workers(100), 1);  // auto
  EXPECT_EQ(runner_with(4).resolved_workers(0), 1);
}

TEST(CampaignRunnerTest, ProgressCoversEveryCell) {
  RunnerOptions options;
  options.workers = 4;
  std::set<std::size_t> seen;
  std::size_t last_total = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    seen.insert(done);
    last_total = total;
  };
  CampaignRunner runner{options};
  runner.run<int>(numbered_specs(20),
                  [](const ScenarioSpec& s) { return static_cast<int>(s.id); });
  EXPECT_EQ(seen.size(), 20u);  // 1..20, serialised, no duplicates
  EXPECT_EQ(*seen.rbegin(), 20u);
  EXPECT_EQ(last_total, 20u);
}

TEST(CampaignRunnerTest, ExecutorExceptionPropagates) {
  const auto specs = numbered_specs(16);
  EXPECT_THROW(
      runner_with(4).run<int>(specs,
                              [](const ScenarioSpec& s) {
                                if (s.id == 7) {
                                  throw std::runtime_error("cell 7 boom");
                                }
                                return 0;
                              }),
      std::runtime_error);
}

TEST(ScenarioSpecTest, DerivedStreamsAreStableAndDistinct) {
  ScenarioSpec a;
  a.seed = 42;
  ScenarioSpec b = a;
  EXPECT_EQ(a.world_seed(), b.world_seed());
  EXPECT_EQ(a.client_seed(), b.client_seed());
  EXPECT_NE(a.world_seed(), a.client_seed());
  b.seed = 43;
  EXPECT_NE(a.world_seed(), b.world_seed());
}

// ------------------------------------------------------------- result ----

TEST(CampaignResultTest, TableRendersOneRowPerCell) {
  CampaignResult<int> result;
  result.specs = numbered_specs(3);
  for (auto& spec : result.specs) spec.label = "cell";
  result.outcomes = {7, 8, 9};
  const auto table = to_table<int>(
      result, {{"Cell", TextTable::Align::kLeft,
                [](const ScenarioSpec& s, const int&) { return s.label; }},
               {"Value", TextTable::Align::kRight,
                [](const ScenarioSpec&, const int& v) {
                  return std::to_string(v);
                }}});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Cell"), std::string::npos);
  EXPECT_NE(rendered.find("7"), std::string::npos);
  EXPECT_NE(rendered.find("9"), std::string::npos);
}

TEST(CampaignResultTest, GroupByKeepsFirstSeenOrder) {
  CampaignResult<int> result;
  result.specs = numbered_specs(6);
  for (std::size_t i = 0; i < 6; ++i) {
    result.specs[i].grid_index = static_cast<int>(i % 2);
  }
  result.outcomes = {0, 1, 2, 3, 4, 5};
  const auto groups = result.group_by<int>(
      [](const ScenarioSpec& s) { return s.grid_index; });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, 0);
  EXPECT_EQ(groups[0].second, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(groups[1].second, (std::vector<std::size_t>{1, 3, 5}));
}

// -------------------------------------------------------- determinism ----

std::string serialize(const testbed::RunRecord& r) {
  std::string out = r.client;
  out += lazyeye::str_format(
      "|%lld|%d|%d|%d|", static_cast<long long>(r.configured_delay.count()),
      r.repetition, r.fetch_ok ? 1 : 0,
      r.established_family ? static_cast<int>(*r.established_family) : -1);
  out += r.observed_cad ? std::to_string(r.observed_cad->count()) : "-";
  out += "|";
  out += r.observed_rd ? std::to_string(r.observed_rd->count()) : "-";
  out += lazyeye::str_format("|%d|%d|%d|", r.aaaa_query_first ? 1 : 0,
                             r.v6_addresses_used, r.v4_addresses_used);
  for (const auto family : r.attempt_sequence) {
    out += std::to_string(static_cast<int>(family));
  }
  out += "|" + std::to_string(r.completion_time.count());
  return out;
}

std::string serialize(const std::vector<testbed::RunRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += serialize(r);
    out += "\n";
  }
  return out;
}

TEST(CampaignDeterminismTest, TestbedSweepIdenticalForOneAndFourWorkers) {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(400), ms(50)};

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, /*repetitions=*/2);
  ASSERT_EQ(specs.size(), 18u);  // 9 delays x 2 reps

  const auto serial = bed.run_campaign(profile, specs, runner_with(1));
  const auto parallel = bed.run_campaign(profile, specs, runner_with(4));
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, SweepCadMatchesSerialRunCadCaseSequence) {
  // The sharded sweep must reproduce the exact records the legacy serial
  // entry point produces from the same counter state.
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(300), ms(100)};

  testbed::LocalTestbed serial_bed;
  std::vector<testbed::RunRecord> serial;
  for (const SimTime delay : sweep.values()) {
    serial.push_back(serial_bed.run_cad_case(profile, delay, 0));
  }

  testbed::LocalTestbed campaign_bed;
  const auto sharded = campaign_bed.sweep_cad(profile, sweep, 1, 4);
  EXPECT_EQ(serialize(serial), serialize(sharded));
}

std::string serialize(const resolverlab::ServiceMetrics& m) {
  std::string out = m.service;
  out += lazyeye::str_format("|%d|%d|%.9f|", static_cast<int>(m.aaaa_order),
                             m.aaaa_order_known ? 1 : 0, m.ipv6_share);
  out += m.max_ipv6_delay ? std::to_string(m.max_ipv6_delay->count()) : "-";
  out += lazyeye::str_format("|%d|%d\n", m.max_ipv6_packets,
                             m.delay_unmeasurable ? 1 : 0);
  for (const auto& run : m.runs) {
    out += lazyeye::str_format(
        "%lld|%d|%d|%lld|%d|%d|%d|%d|%d|%d|%d|%d\n",
        static_cast<long long>(run.configured_delay.count()), run.repetition,
        run.resolved ? 1 : 0, static_cast<long long>(run.completed.count()),
        run.v6_main_queries, run.v4_main_queries, run.first_query_v6 ? 1 : 0,
        run.answer_via_v6 ? 1 : 0, run.aaaa_ns_seen ? 1 : 0,
        run.a_ns_seen ? 1 : 0, run.aaaa_before_a ? 1 : 0,
        run.ns_queries_parallel ? 1 : 0);
  }
  return out;
}

TEST(CampaignDeterminismTest, ResolverLabIdenticalForOneAndFourWorkers) {
  const auto service = resolvers::find_service_profile("Unbound");
  ASSERT_TRUE(service);
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(199), ms(375), ms(799)};
  config.repetitions = 6;
  config.seed = 31;

  config.workers = 1;
  const auto serial = resolverlab::measure_service(*service, config);
  config.workers = 4;
  const auto parallel = resolverlab::measure_service(*service, config);
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

std::string serialize(const webtool::WebToolReport& r) {
  std::string out = r.client + "|" + r.user_agent;
  out += lazyeye::str_format("|%d|%d|", r.inconsistent_repetitions,
                             r.total_repetitions);
  out += r.interval_low ? std::to_string(r.interval_low->count()) : "-";
  out += "|";
  out += r.interval_high ? std::to_string(r.interval_high->count()) : "-";
  out += "\n";
  for (const auto& obs : r.per_delay) {
    out += lazyeye::str_format("%lld|%d|%d|%d\n",
                               static_cast<long long>(obs.delay.count()),
                               obs.v6_used, obs.v4_used, obs.failures);
  }
  return out;
}

TEST(CampaignDeterminismTest, WebToolIdenticalForOneAndFourWorkers) {
  webtool::WebToolConfig config = webtool::WebToolConfig::paper_default();
  config.repetitions = 4;
  config.seed = 5;

  config.workers = 1;
  const auto serial = webtool::WebTool{config}.run_cad_test(
      clients::safari_profile("17.6"));
  config.workers = 4;
  const auto parallel = webtool::WebTool{config}.run_cad_test(
      clients::safari_profile("17.6"));
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, ResolverCellSpecsUseTheSerialSeedSequence) {
  const auto service = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(service);
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(100)};
  config.repetitions = 3;
  config.seed = 1000;
  const auto specs = resolverlab::cell_specs(*service, config);
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].seed, 1000 + i + 1);
    EXPECT_EQ(specs[i].id, i);
  }
  EXPECT_EQ(specs[0].delay, ms(0));
  EXPECT_EQ(specs[3].delay, ms(100));
  EXPECT_EQ(specs[4].repetition, 1);
}

}  // namespace
}  // namespace lazyeye::campaign
