// Campaign engine tests (API v2): typed payload dispatch through the
// executor registry, streaming sink delivery order, runner sharding edge
// semantics, and the core determinism contract — the same spec matrix with
// the same seeds produces byte-identical aggregated results for 1 worker
// and 4 workers, across all three measurement layers and for mixed-kind
// matrices that batch several layers into one worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <variant>

#include "campaign/registry.h"
#include "campaign/result.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "clients/profiles.h"
#include "resolverlab/lab.h"
#include "testbed/testbed.h"
#include "util/strings.h"
#include "webtool/webtool.h"

namespace lazyeye::campaign {
namespace {

std::vector<ScenarioSpec> numbered_specs(std::size_t n) {
  std::vector<ScenarioSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].id = i;
    specs[i].seed = 100 + i;
  }
  return specs;
}

CampaignRunner runner_with(int workers) {
  RunnerOptions options;
  options.workers = workers;
  return CampaignRunner{options};
}

// ------------------------------------------------------------- payload ----

TEST(CasePayloadTest, KindTracksAlternative) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.kind(), CaseKind::kCad);  // default payload
  spec.payload = ResolverCellCase{"Unbound", ms(100)};
  EXPECT_EQ(spec.kind(), CaseKind::kResolverCell);
  ASSERT_NE(spec.get_if<ResolverCellCase>(), nullptr);
  EXPECT_EQ(spec.get_if<ResolverCellCase>()->service, "Unbound");
  EXPECT_EQ(spec.get_if<CadCase>(), nullptr);
}

TEST(CasePayloadTest, NamesAreStableAndExhaustive) {
  EXPECT_STREQ(case_name(CadCase{}), "cad");
  EXPECT_STREQ(case_name(ResolutionDelayCase{}), "rd");
  EXPECT_STREQ(case_name(AddressSelectionCase{}), "addr-selection");
  EXPECT_STREQ(case_name(WebRepetitionCase{}), "webtool-rep");
  EXPECT_STREQ(case_name(ResolverCellCase{}), "resolver-cell");
  // The payload-typed and discriminator-typed name functions must agree for
  // every kind (both are tied to CasePayload at compile time).
  EXPECT_STREQ(case_kind_name(CaseKind::kCad), case_name(CadCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kResolutionDelay),
               case_name(ResolutionDelayCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kAddressSelection),
               case_name(AddressSelectionCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kWebRepetition),
               case_name(WebRepetitionCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kResolverCell),
               case_name(ResolverCellCase{}));
}

// ------------------------------------------------------------- runner ----

TEST(CampaignRunnerTest, ResultsComeBackInSpecOrder) {
  const auto specs = numbered_specs(64);
  const auto results = runner_with(4).run<std::uint64_t>(
      specs, [](const ScenarioSpec& s) { return s.seed * 3; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], (100 + i) * 3);
  }
}

TEST(CampaignRunnerTest, EveryCellRunsExactlyOnce) {
  const auto specs = numbered_specs(50);
  std::atomic<int> calls{0};
  runner_with(4).run<int>(specs, [&](const ScenarioSpec& s) {
    calls.fetch_add(1);
    return static_cast<int>(s.id);
  });
  EXPECT_EQ(calls.load(), 50);
}

TEST(CampaignRunnerTest, ResolvedWorkersClampsToJobAndHardware) {
  EXPECT_EQ(runner_with(8).resolved_workers(3), 3);
  EXPECT_EQ(runner_with(2).resolved_workers(100), 2);
  EXPECT_GE(runner_with(0).resolved_workers(100), 1);  // auto
  EXPECT_EQ(runner_with(4).resolved_workers(0), 1);
}

TEST(CampaignRunnerTest, ProgressCoversEveryCell) {
  RunnerOptions options;
  options.workers = 4;
  std::set<std::size_t> seen;
  std::size_t last_total = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    seen.insert(done);
    last_total = total;
  };
  CampaignRunner runner{options};
  runner.run<int>(numbered_specs(20),
                  [](const ScenarioSpec& s) { return static_cast<int>(s.id); });
  EXPECT_EQ(seen.size(), 20u);  // 1..20, serialised, no duplicates
  EXPECT_EQ(*seen.rbegin(), 20u);
  EXPECT_EQ(last_total, 20u);
}

TEST(CampaignRunnerTest, ProgressFiresExactlyCellsTotalTimesMonotonically) {
  RunnerOptions options;
  options.workers = 4;
  std::vector<std::size_t> counts;
  std::size_t total_seen = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    counts.push_back(done);  // calls are serialised by the runner
    total_seen = total;
  };
  CampaignRunner runner{options};
  const std::size_t cells_total = 33;
  runner.run<int>(numbered_specs(cells_total),
                  [](const ScenarioSpec& s) { return static_cast<int>(s.id); });
  ASSERT_EQ(counts.size(), cells_total);  // exactly once per cell
  EXPECT_EQ(total_seen, cells_total);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]);  // monotonically non-decreasing
  }
  EXPECT_EQ(counts.back(), cells_total);
}

TEST(CampaignRunnerTest, ExecutorExceptionPropagates) {
  const auto specs = numbered_specs(16);
  EXPECT_THROW(
      runner_with(4).run<int>(specs,
                              [](const ScenarioSpec& s) {
                                if (s.id == 7) {
                                  throw std::runtime_error("cell 7 boom");
                                }
                                return 0;
                              }),
      std::runtime_error);
}

TEST(CampaignRunnerTest, FirstExecutorExceptionRethrownOnCallingThread) {
  const auto specs = numbered_specs(32);
  const std::thread::id caller = std::this_thread::get_id();
  std::string caught;
  std::thread::id catcher;
  try {
    runner_with(4).run<int>(specs, [](const ScenarioSpec& s) -> int {
      throw std::runtime_error(
          lazyeye::str_format("cell %llu boom",
                              static_cast<unsigned long long>(s.id)));
    });
  } catch (const std::runtime_error& e) {
    caught = e.what();
    catcher = std::this_thread::get_id();
  }
  // The pool drains and the *first* stored exception surfaces on the thread
  // that called run(), not on a worker.
  EXPECT_EQ(catcher, caller);
  EXPECT_NE(caught.find("boom"), std::string::npos);
}

TEST(ScenarioSpecTest, DerivedStreamsAreStableAndDistinct) {
  ScenarioSpec a;
  a.seed = 42;
  ScenarioSpec b = a;
  EXPECT_EQ(a.world_seed(), b.world_seed());
  EXPECT_EQ(a.client_seed(), b.client_seed());
  EXPECT_NE(a.world_seed(), a.client_seed());
  b.seed = 43;
  EXPECT_NE(a.world_seed(), b.world_seed());
}

// --------------------------------------------------------------- sinks ----

TEST(ResultSinkTest, StreamingDeliveryIsInSpecOrderWithBeginAndEnd) {
  const auto specs = numbered_specs(40);
  std::vector<std::uint64_t> delivered;
  int begins = 0;
  int ends = 0;
  std::size_t announced = 0;

  struct OrderSink final : ResultSink<std::uint64_t> {
    std::vector<std::uint64_t>* delivered;
    int* begins;
    int* ends;
    std::size_t* announced;
    void begin(std::size_t n) override {
      ++*begins;
      *announced = n;
    }
    void cell(const ScenarioSpec& spec, std::uint64_t outcome) override {
      EXPECT_EQ(spec.id * 7, outcome);
      delivered->push_back(spec.id);
    }
    void end() override { ++*ends; }
  } sink;
  sink.delivered = &delivered;
  sink.begins = &begins;
  sink.ends = &ends;
  sink.announced = &announced;

  const std::function<std::uint64_t(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return s.id * 7; };
  runner_with(4).run_streaming<std::uint64_t>(specs, executor, sink);

  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(announced, 40u);
  ASSERT_EQ(delivered.size(), 40u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], i);  // strictly spec order despite 4 workers
  }
}

TEST(ResultSinkTest, EndSkippedWhenAnExecutorThrows) {
  const auto specs = numbered_specs(16);
  bool ended = false;
  struct EndSink final : ResultSink<int> {
    bool* ended;
    void cell(const ScenarioSpec&, int) override {}
    void end() override { *ended = true; }
  } sink;
  sink.ended = &ended;
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) -> int {
    if (s.id == 3) throw std::runtime_error("boom");
    return 0;
  };
  EXPECT_THROW(runner_with(4).run_streaming<int>(specs, executor, sink),
               std::runtime_error);
  EXPECT_FALSE(ended);
}

TEST(ResultSinkTest, SinkExceptionStopsDeliveryAndPropagates) {
  const auto specs = numbered_specs(24);
  std::vector<std::uint64_t> delivered;
  CallbackSink<int> sink{[&](const ScenarioSpec& spec, int) {
    if (spec.id == 5) throw std::runtime_error("sink boom");
    delivered.push_back(spec.id);
  }};
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return static_cast<int>(s.id); };
  EXPECT_THROW(runner_with(4).run_streaming<int>(specs, executor, sink),
               std::runtime_error);
  // Cells before the failing one were delivered exactly once, in order;
  // nothing was re-delivered or delivered after the sink threw.
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ResultSinkTest, StreamingAndCollectingSinksRenderIdenticalTables) {
  auto specs = numbered_specs(12);
  for (auto& spec : specs) {
    spec.label = lazyeye::str_format(
        "cell%llu", static_cast<unsigned long long>(spec.id));
  }
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return static_cast<int>(s.seed % 7); };
  const std::vector<TableColumn<int>> columns{
      {"Cell", TextTable::Align::kLeft,
       [](const ScenarioSpec& s, const int&) { return s.label; }},
      {"Value", TextTable::Align::kRight,
       [](const ScenarioSpec&, const int& v) { return std::to_string(v); }}};

  // Collecting path: materialise, then render.
  CollectingSink<int> collecting;
  runner_with(4).run_streaming<int>(specs, executor, collecting);
  const std::string collected_table =
      to_table<int>(collecting.result(), columns).render();

  // Streaming path: build the same table row by row as cells arrive.
  std::vector<std::string> headers;
  for (const auto& c : columns) headers.push_back(c.header);
  TextTable streamed{std::move(headers)};
  for (std::size_t c = 0; c < columns.size(); ++c) {
    streamed.set_align(c, columns[c].align);
  }
  CallbackSink<int> streaming{[&](const ScenarioSpec& spec, int outcome) {
    std::vector<std::string> row;
    for (const auto& c : columns) row.push_back(c.cell(spec, outcome));
    streamed.add_row(std::move(row));
  }};
  runner_with(4).run_streaming<int>(specs, executor, streaming);

  EXPECT_EQ(streamed.render(), collected_table);  // byte-identical
}

// ------------------------------------------------------------ registry ----

TEST(RegistryTest, DispatchesOnPayloadType) {
  Registry<int> registry;
  registry.add<CadCase>([](const ScenarioSpec&, const CadCase& c) {
    return static_cast<int>(to_ms(c.v6_delay));
  });
  registry.add<AddressSelectionCase>(
      [](const ScenarioSpec&, const AddressSelectionCase& c) {
        return 1000 + c.per_family;
      });
  EXPECT_TRUE(registry.has(CaseKind::kCad));
  EXPECT_TRUE(registry.has(CaseKind::kAddressSelection));
  EXPECT_FALSE(registry.has(CaseKind::kResolverCell));

  std::vector<ScenarioSpec> specs = numbered_specs(4);
  specs[0].payload = CadCase{ms(250)};
  specs[1].payload = AddressSelectionCase{10};
  specs[2].payload = CadCase{ms(50)};
  specs[3].payload = AddressSelectionCase{3};

  const auto result = registry.run_collect(runner_with(2), specs);
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result.outcomes, (std::vector<int>{250, 1010, 50, 1003}));
}

TEST(RegistryTest, RejectsUnregisteredKindBeforeLaunchingThePool) {
  Registry<int> registry;
  registry.add<CadCase>([](const ScenarioSpec&, const CadCase&) { return 0; });

  std::vector<ScenarioSpec> specs = numbered_specs(2);
  specs[1].payload = ResolverCellCase{"Unbound", ms(0)};

  std::atomic<int> executed{0};
  Registry<int> counting;
  counting.add<CadCase>([&](const ScenarioSpec&, const CadCase&) {
    return executed.fetch_add(1);
  });
  CollectingSink<int> sink;
  EXPECT_THROW(counting.run(runner_with(2), specs, sink),
               std::invalid_argument);
  EXPECT_EQ(executed.load(), 0);  // validation failed fast, no cell ran

  EXPECT_THROW(registry.execute(specs[1]), std::invalid_argument);
}

// -------------------------------------------------------- determinism ----

std::string serialize(const testbed::RunRecord& r) {
  std::string out = r.client;
  out += lazyeye::str_format(
      "|%lld|%d|%d|%d|", static_cast<long long>(r.configured_delay.count()),
      r.repetition, r.fetch_ok ? 1 : 0,
      r.established_family ? static_cast<int>(*r.established_family) : -1);
  out += r.observed_cad ? std::to_string(r.observed_cad->count()) : "-";
  out += "|";
  out += r.observed_rd ? std::to_string(r.observed_rd->count()) : "-";
  out += lazyeye::str_format("|%d|%d|%d|", r.aaaa_query_first ? 1 : 0,
                             r.v6_addresses_used, r.v4_addresses_used);
  for (const auto family : r.attempt_sequence) {
    out += std::to_string(static_cast<int>(family));
  }
  out += "|" + std::to_string(r.completion_time.count());
  return out;
}

std::string serialize(const std::vector<testbed::RunRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += serialize(r);
    out += "\n";
  }
  return out;
}

TEST(CampaignDeterminismTest, TestbedSweepIdenticalForOneAndFourWorkers) {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(400), ms(50)};

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, /*repetitions=*/2);
  ASSERT_EQ(specs.size(), 18u);  // 9 delays x 2 reps

  const auto serial = bed.run_campaign(profile, specs, runner_with(1));
  const auto parallel = bed.run_campaign(profile, specs, runner_with(4));
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, SweepCadMatchesSerialRunCadCaseSequence) {
  // The sharded sweep must reproduce the exact records the legacy serial
  // entry point produces from the same counter state.
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(300), ms(100)};

  testbed::LocalTestbed serial_bed;
  std::vector<testbed::RunRecord> serial;
  for (const SimTime delay : sweep.values()) {
    serial.push_back(serial_bed.run_cad_case(profile, delay, 0));
  }

  testbed::LocalTestbed campaign_bed;
  const auto sharded = campaign_bed.sweep_cad(profile, sweep, 1, 4);
  EXPECT_EQ(serialize(serial), serialize(sharded));
}

TEST(CampaignDeterminismTest, MultiClientBatchMatchesPerClientSweeps) {
  // One campaign batching two client profiles must reproduce, per client,
  // the records of consecutive single-client sweeps on one testbed.
  const std::vector<clients::ClientProfile> profiles{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::firefox_profile("132.0", "10-2024"),
  };
  const testbed::SweepSpec sweep{ms(0), ms(300), ms(150)};

  testbed::LocalTestbed serial_bed;
  std::vector<testbed::RunRecord> serial;
  for (const auto& profile : profiles) {
    for (const auto& rec : serial_bed.run_campaign(
             profile, serial_bed.cad_sweep_specs(profile, sweep),
             runner_with(1))) {
      serial.push_back(rec);
    }
  }

  testbed::LocalTestbed batch_bed;
  const auto specs = batch_bed.multi_client_cad_specs(profiles, sweep);
  ASSERT_EQ(specs.size(), serial.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].id, i);  // dense ids across the joint matrix
  }

  Registry<testbed::RunRecord> registry;
  testbed::register_executors(registry, batch_bed, profiles);
  const auto batched = registry.run_collect(runner_with(4), specs);
  EXPECT_EQ(serialize(serial), serialize(batched.outcomes));
}

std::string serialize(const resolverlab::RunObservation& run) {
  return lazyeye::str_format(
      "%lld|%d|%d|%lld|%d|%d|%d|%d|%d|%d|%d|%d\n",
      static_cast<long long>(run.configured_delay.count()), run.repetition,
      run.resolved ? 1 : 0, static_cast<long long>(run.completed.count()),
      run.v6_main_queries, run.v4_main_queries, run.first_query_v6 ? 1 : 0,
      run.answer_via_v6 ? 1 : 0, run.aaaa_ns_seen ? 1 : 0,
      run.a_ns_seen ? 1 : 0, run.aaaa_before_a ? 1 : 0,
      run.ns_queries_parallel ? 1 : 0);
}

std::string serialize(const resolverlab::ServiceMetrics& m) {
  std::string out = m.service;
  out += lazyeye::str_format("|%d|%d|%.9f|", static_cast<int>(m.aaaa_order),
                             m.aaaa_order_known ? 1 : 0, m.ipv6_share);
  out += m.max_ipv6_delay ? std::to_string(m.max_ipv6_delay->count()) : "-";
  out += lazyeye::str_format("|%d|%d\n", m.max_ipv6_packets,
                             m.delay_unmeasurable ? 1 : 0);
  for (const auto& run : m.runs) out += serialize(run);
  return out;
}

TEST(CampaignDeterminismTest, ResolverLabIdenticalForOneAndFourWorkers) {
  const auto service = resolvers::find_service_profile("Unbound");
  ASSERT_TRUE(service);
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(199), ms(375), ms(799)};
  config.repetitions = 6;
  config.seed = 31;

  config.workers = 1;
  const auto serial = resolverlab::measure_service(*service, config);
  config.workers = 4;
  const auto parallel = resolverlab::measure_service(*service, config);
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, CrossServiceCampaignMatchesSoloCampaigns) {
  // All Table 3 rows in one pool: the joint matrix must reproduce every
  // solo campaign's row byte-for-byte, at any worker count.
  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(unbound);
  ASSERT_TRUE(bind);
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};

  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(199), ms(799)};
  config.repetitions = 4;
  config.seed = 77;

  config.workers = 1;
  std::string solo;
  for (const auto& service : services) {
    solo += serialize(resolverlab::measure_service(service, config));
  }

  config.workers = 4;
  std::string joint;
  for (const auto& row : resolverlab::measure_services(services, config)) {
    joint += serialize(row);
  }
  EXPECT_EQ(solo, joint);
}

TEST(CampaignDeterminismTest, MixedKindMatrixIdenticalForOneAndFourWorkers) {
  // One CampaignRunner pool executing testbed CAD cells for two client
  // profiles *and* resolver-lab cells for two services, via one registry —
  // the mixed-kind matrix the v1 per-layer run loops could not express.
  using MixedOutcome =
      std::variant<testbed::RunRecord, resolverlab::RunObservation>;

  const std::vector<clients::ClientProfile> profiles{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::curl_profile(),
  };
  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(unbound);
  ASSERT_TRUE(bind);
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};

  resolverlab::LabConfig lab_config;
  lab_config.delay_grid = {ms(0), ms(375)};
  lab_config.repetitions = 2;
  lab_config.seed = 9;

  auto run_matrix = [&](int workers) {
    testbed::LocalTestbed bed;
    std::vector<ScenarioSpec> specs = bed.multi_client_cad_specs(
        profiles, testbed::SweepSpec{ms(0), ms(300), ms(150)});
    for (ScenarioSpec& spec :
         resolverlab::cross_service_cell_specs(services, lab_config)) {
      specs.push_back(std::move(spec));
    }
    for (std::size_t i = 0; i < specs.size(); ++i) specs[i].id = i;

    Registry<MixedOutcome> registry;
    testbed::register_executors(registry, bed, profiles);
    resolverlab::register_executor(registry, services);

    std::string bytes;
    CallbackSink<MixedOutcome> sink{
        [&bytes](const ScenarioSpec& spec, MixedOutcome outcome) {
          bytes += spec.label;
          bytes += ':';
          std::visit([&bytes](const auto& o) { bytes += serialize(o); },
                     outcome);
          bytes += '\n';
        }};
    registry.run(runner_with(workers), specs, sink);
    return bytes;
  };

  const std::string serial = run_matrix(1);
  const std::string parallel = run_matrix(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

std::string serialize(const webtool::WebToolReport& r) {
  std::string out = r.client + "|" + r.user_agent;
  out += lazyeye::str_format("|%d|%d|", r.inconsistent_repetitions,
                             r.total_repetitions);
  out += r.interval_low ? std::to_string(r.interval_low->count()) : "-";
  out += "|";
  out += r.interval_high ? std::to_string(r.interval_high->count()) : "-";
  out += "\n";
  for (const auto& obs : r.per_delay) {
    out += lazyeye::str_format("%lld|%d|%d|%d\n",
                               static_cast<long long>(obs.delay.count()),
                               obs.v6_used, obs.v4_used, obs.failures);
  }
  return out;
}

TEST(CampaignDeterminismTest, WebToolIdenticalForOneAndFourWorkers) {
  webtool::WebToolConfig config = webtool::WebToolConfig::paper_default();
  config.repetitions = 4;
  config.seed = 5;

  config.workers = 1;
  const auto serial = webtool::WebTool{config}.run_cad_test(
      clients::safari_profile("17.6"));
  config.workers = 4;
  const auto parallel = webtool::WebTool{config}.run_cad_test(
      clients::safari_profile("17.6"));
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, ResolverCellSpecsUseTheSerialSeedSequence) {
  const auto service = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(service);
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(100)};
  config.repetitions = 3;
  config.seed = 1000;
  const auto specs = resolverlab::cell_specs(*service, config);
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].seed, 1000 + i + 1);
    EXPECT_EQ(specs[i].id, i);
    ASSERT_NE(specs[i].get_if<ResolverCellCase>(), nullptr);
    EXPECT_EQ(specs[i].get_if<ResolverCellCase>()->service, "BIND");
  }
  EXPECT_EQ(specs[0].get_if<ResolverCellCase>()->v6_delay, ms(0));
  EXPECT_EQ(specs[3].get_if<ResolverCellCase>()->v6_delay, ms(100));
  EXPECT_EQ(specs[4].repetition, 1);
}

// ------------------------------------------------------------- result ----

TEST(CampaignResultTest, TableRendersOneRowPerCell) {
  CampaignResult<int> result;
  result.specs = numbered_specs(3);
  for (auto& spec : result.specs) spec.label = "cell";
  result.outcomes = {7, 8, 9};
  const auto table = to_table<int>(
      result, {{"Cell", TextTable::Align::kLeft,
                [](const ScenarioSpec& s, const int&) { return s.label; }},
               {"Value", TextTable::Align::kRight,
                [](const ScenarioSpec&, const int& v) {
                  return std::to_string(v);
                }}});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Cell"), std::string::npos);
  EXPECT_NE(rendered.find("7"), std::string::npos);
  EXPECT_NE(rendered.find("9"), std::string::npos);
}

TEST(CampaignResultTest, GroupByKeepsFirstSeenOrder) {
  CampaignResult<int> result;
  result.specs = numbered_specs(6);
  for (std::size_t i = 0; i < 6; ++i) {
    result.specs[i].grid_index = static_cast<int>(i % 2);
  }
  result.outcomes = {0, 1, 2, 3, 4, 5};
  const auto groups = result.group_by<int>(
      [](const ScenarioSpec& s) { return s.grid_index; });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, 0);
  EXPECT_EQ(groups[0].second, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(groups[1].second, (std::vector<std::size_t>{1, 3, 5}));
}

}  // namespace
}  // namespace lazyeye::campaign
