// Campaign engine tests (API v2): typed payload dispatch through the
// executor registry, streaming sink delivery order, runner sharding edge
// semantics, and the core determinism contract — the same spec matrix with
// the same seeds produces byte-identical aggregated results for 1 worker
// and 4 workers, across all three measurement layers and for mixed-kind
// matrices that batch several layers into one worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <set>
#include <stdexcept>
#include <thread>
#include <variant>

#include "campaign/registry.h"
#include "campaign/result.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "campaign/sink.h"
#include "campaign/spec_stream.h"
#include "campaign/worker_pool.h"
#include "clients/profiles.h"
#include "resolverlab/lab.h"
#include "testbed/testbed.h"
#include "util/strings.h"
#include "webtool/webtool.h"

namespace lazyeye::campaign {
namespace {

std::vector<ScenarioSpec> numbered_specs(std::size_t n) {
  std::vector<ScenarioSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].id = i;
    specs[i].seed = 100 + i;
  }
  return specs;
}

CampaignRunner runner_with(int workers) {
  RunnerOptions options;
  options.workers = workers;
  return CampaignRunner{options};
}

// ------------------------------------------------------------- payload ----

TEST(CasePayloadTest, KindTracksAlternative) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.kind(), CaseKind::kCad);  // default payload
  spec.payload = ResolverCellCase{"Unbound", ms(100)};
  EXPECT_EQ(spec.kind(), CaseKind::kResolverCell);
  ASSERT_NE(spec.get_if<ResolverCellCase>(), nullptr);
  EXPECT_EQ(spec.get_if<ResolverCellCase>()->service, "Unbound");
  EXPECT_EQ(spec.get_if<CadCase>(), nullptr);
}

TEST(CasePayloadTest, NamesAreStableAndExhaustive) {
  EXPECT_STREQ(case_name(CadCase{}), "cad");
  EXPECT_STREQ(case_name(ResolutionDelayCase{}), "rd");
  EXPECT_STREQ(case_name(AddressSelectionCase{}), "addr-selection");
  EXPECT_STREQ(case_name(WebRepetitionCase{}), "webtool-rep");
  EXPECT_STREQ(case_name(ResolverCellCase{}), "resolver-cell");
  // The payload-typed and discriminator-typed name functions must agree for
  // every kind (both are tied to CasePayload at compile time).
  EXPECT_STREQ(case_kind_name(CaseKind::kCad), case_name(CadCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kResolutionDelay),
               case_name(ResolutionDelayCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kAddressSelection),
               case_name(AddressSelectionCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kWebRepetition),
               case_name(WebRepetitionCase{}));
  EXPECT_STREQ(case_kind_name(CaseKind::kResolverCell),
               case_name(ResolverCellCase{}));
}

// ------------------------------------------------------------- runner ----

TEST(CampaignRunnerTest, ResultsComeBackInSpecOrder) {
  const auto specs = numbered_specs(64);
  const auto results = runner_with(4).run<std::uint64_t>(
      specs, [](const ScenarioSpec& s) { return s.seed * 3; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], (100 + i) * 3);
  }
}

TEST(CampaignRunnerTest, EveryCellRunsExactlyOnce) {
  const auto specs = numbered_specs(50);
  std::atomic<int> calls{0};
  runner_with(4).run<int>(specs, [&](const ScenarioSpec& s) {
    calls.fetch_add(1);
    return static_cast<int>(s.id);
  });
  EXPECT_EQ(calls.load(), 50);
}

TEST(CampaignRunnerTest, ResolvedWorkersClampsToJobAndHardware) {
  EXPECT_EQ(runner_with(8).resolved_workers(3), 3);
  EXPECT_EQ(runner_with(2).resolved_workers(100), 2);
  EXPECT_GE(runner_with(0).resolved_workers(100), 1);  // auto
  EXPECT_EQ(runner_with(4).resolved_workers(0), 1);
}

TEST(CampaignRunnerTest, ProgressCoversEveryCell) {
  RunnerOptions options;
  options.workers = 4;
  std::set<std::size_t> seen;
  std::size_t last_total = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    seen.insert(done);
    last_total = total;
  };
  CampaignRunner runner{options};
  runner.run<int>(numbered_specs(20),
                  [](const ScenarioSpec& s) { return static_cast<int>(s.id); });
  EXPECT_EQ(seen.size(), 20u);  // 1..20, serialised, no duplicates
  EXPECT_EQ(*seen.rbegin(), 20u);
  EXPECT_EQ(last_total, 20u);
}

TEST(CampaignRunnerTest, ProgressFiresExactlyCellsTotalTimesMonotonically) {
  RunnerOptions options;
  options.workers = 4;
  std::vector<std::size_t> counts;
  std::size_t total_seen = 0;
  options.progress = [&](std::size_t done, std::size_t total) {
    counts.push_back(done);  // calls are serialised by the runner
    total_seen = total;
  };
  CampaignRunner runner{options};
  const std::size_t cells_total = 33;
  runner.run<int>(numbered_specs(cells_total),
                  [](const ScenarioSpec& s) { return static_cast<int>(s.id); });
  ASSERT_EQ(counts.size(), cells_total);  // exactly once per cell
  EXPECT_EQ(total_seen, cells_total);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]);  // monotonically non-decreasing
  }
  EXPECT_EQ(counts.back(), cells_total);
}

TEST(CampaignRunnerTest, ExecutorExceptionPropagates) {
  const auto specs = numbered_specs(16);
  EXPECT_THROW(
      runner_with(4).run<int>(specs,
                              [](const ScenarioSpec& s) {
                                if (s.id == 7) {
                                  throw std::runtime_error("cell 7 boom");
                                }
                                return 0;
                              }),
      std::runtime_error);
}

TEST(CampaignRunnerTest, FirstExecutorExceptionRethrownOnCallingThread) {
  const auto specs = numbered_specs(32);
  const std::thread::id caller = std::this_thread::get_id();
  std::string caught;
  std::thread::id catcher;
  try {
    runner_with(4).run<int>(specs, [](const ScenarioSpec& s) -> int {
      throw std::runtime_error(
          lazyeye::str_format("cell %llu boom",
                              static_cast<unsigned long long>(s.id)));
    });
  } catch (const std::runtime_error& e) {
    caught = e.what();
    catcher = std::this_thread::get_id();
  }
  // The pool drains and the *first* stored exception surfaces on the thread
  // that called run(), not on a worker.
  EXPECT_EQ(catcher, caller);
  EXPECT_NE(caught.find("boom"), std::string::npos);
}

TEST(CampaignRunnerTest, ResultsIdenticalForEveryReorderCap) {
  // The backpressure cap is a scheduling knob only: 8 workers with
  // max_reorder_ahead 1, 4, and unbounded must all reproduce the serial
  // delivery byte-for-byte (order and content).
  const auto specs = numbered_specs(48);
  const std::function<std::uint64_t(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return s.seed * 31 + s.id; };

  auto run_with = [&](int workers, std::size_t cap) {
    RunnerOptions options;
    options.workers = workers;
    options.max_reorder_ahead = cap;
    CampaignRunner runner{options};
    std::vector<std::uint64_t> delivered;
    CallbackSink<std::uint64_t> sink{
        [&delivered](const ScenarioSpec&, std::uint64_t v) {
          delivered.push_back(v);
        }};
    runner.run_streaming<std::uint64_t>(specs, executor, sink);
    return delivered;
  };

  const auto serial = run_with(1, 0);
  // SIZE_MAX guards the gate's saturating window arithmetic: a huge cap
  // must behave as unbounded, not wrap and park every claimer forever.
  for (const std::size_t cap :
       {std::size_t{1}, std::size_t{4}, std::size_t{0},
        std::numeric_limits<std::size_t>::max()}) {
    EXPECT_EQ(run_with(8, cap), serial) << "cap=" << cap;
  }
}

TEST(CampaignRunnerTest, SlowHeadCellNeverOverflowsTheReorderCap) {
  // Adversarial workload from the runner.h pathology note: cell 0 is
  // pathologically slow while every other cell completes instantly. Without
  // backpressure the whole matrix parks behind cell 0; with
  // max_reorder_ahead the claim cursor stalls instead, so the pending
  // buffer high-water must stay at or under the cap.
  const auto specs = numbered_specs(64);
  for (const std::size_t cap : {std::size_t{1}, std::size_t{4}}) {
    RunnerOptions options;
    options.workers = 8;
    options.max_reorder_ahead = cap;
    CampaignRunner runner{options};
    const std::function<int(const ScenarioSpec&)> executor =
        [](const ScenarioSpec& s) {
          if (s.id == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
          return static_cast<int>(s.id);
        };
    std::vector<int> delivered;
    CallbackSink<int> sink{[&delivered](const ScenarioSpec&, int v) {
      delivered.push_back(v);
    }};
    runner.run_streaming<int>(specs, executor, sink);

    ASSERT_EQ(delivered.size(), 64u);
    for (std::size_t i = 0; i < delivered.size(); ++i) {
      EXPECT_EQ(delivered[i], static_cast<int>(i));
    }
    EXPECT_LE(runner.last_run_stats().reorder_high_water, cap) << "cap=" << cap;
    EXPECT_EQ(runner.last_run_stats().cells, 64u);
  }
}

TEST(CampaignRunnerTest, GatedRunStillPropagatesExecutorExceptions) {
  // A failing executor must not leave gated claimers parked forever: the
  // claim gate is released and the first exception surfaces on the caller.
  const auto specs = numbered_specs(40);
  RunnerOptions options;
  options.workers = 8;
  options.max_reorder_ahead = 2;
  CampaignRunner runner{options};
  EXPECT_THROW(
      runner.run<int>(specs,
                      [](const ScenarioSpec& s) -> int {
                        if (s.id == 5) throw std::runtime_error("head boom");
                        return 0;
                      }),
      std::runtime_error);
}

TEST(CampaignRunnerTest, ThrowingProgressHookFailsTheCampaign) {
  // A hook exception must surface like an executor exception (and must not
  // unwind through the pool while workers still run the campaign's locals).
  for (const int workers : {1, 4}) {
    RunnerOptions options;
    options.workers = workers;
    options.progress = [](std::size_t done, std::size_t) {
      if (done == 3) throw std::runtime_error("hook boom");
    };
    CampaignRunner runner{options};
    EXPECT_THROW(
        runner.run<int>(numbered_specs(16),
                        [](const ScenarioSpec& s) {
                          return static_cast<int>(s.id);
                        }),
        std::runtime_error)
        << "workers=" << workers;
  }
}

// --------------------------------------------------------- worker pool ----

TEST(WorkerPoolTest, NestedCampaignOnTheSamePoolDoesNotDeadlock) {
  // An executor that itself runs a multi-worker campaign re-enters the
  // pool's run_job from inside a job body; the pool must detect this and
  // run the inner campaign on transient threads instead of queueing behind
  // the (still running) outer campaign.
  WorkerPool pool;
  RunnerOptions outer_options;
  outer_options.workers = 3;
  outer_options.pool = &pool;
  CampaignRunner outer{outer_options};

  const auto outer_totals = outer.run<std::uint64_t>(
      numbered_specs(6), [&pool](const ScenarioSpec& outer_spec) {
        RunnerOptions inner_options;
        inner_options.workers = 2;
        inner_options.pool = &pool;
        const auto inner = CampaignRunner{inner_options}.run<std::uint64_t>(
            numbered_specs(8),
            [](const ScenarioSpec& s) { return s.seed; });
        std::uint64_t total = outer_spec.seed;
        for (const std::uint64_t v : inner) total += v;
        return total;
      });

  const auto serial_inner = runner_with(1).run<std::uint64_t>(
      numbered_specs(8), [](const ScenarioSpec& s) { return s.seed; });
  std::uint64_t inner_sum = 0;
  for (const std::uint64_t v : serial_inner) inner_sum += v;
  for (std::size_t i = 0; i < outer_totals.size(); ++i) {
    EXPECT_EQ(outer_totals[i], numbered_specs(6)[i].seed + inner_sum);
  }
}

TEST(WorkerPoolTest, CrossPoolNestedCampaignDoesNotDeadlock) {
  // A -> B -> A: an executor on pool A campaigns on pool B, whose workers
  // campaign back on pool A while A's outer campaign still holds its job
  // slot. The running-pool set travels with the job into every worker, so
  // the innermost run detects the recursion and uses transient threads.
  WorkerPool pool_a;
  WorkerPool pool_b;
  auto runner_on = [](WorkerPool& pool) {
    RunnerOptions options;
    options.workers = 2;
    options.pool = &pool;
    return CampaignRunner{options};
  };

  const auto totals = runner_on(pool_a).run<std::uint64_t>(
      numbered_specs(4), [&](const ScenarioSpec& outer_spec) {
        const auto mids = runner_on(pool_b).run<std::uint64_t>(
            numbered_specs(3), [&](const ScenarioSpec& mid_spec) {
              const auto inner = runner_on(pool_a).run<std::uint64_t>(
                  numbered_specs(2),
                  [](const ScenarioSpec& s) { return s.seed; });
              std::uint64_t total = mid_spec.seed;
              for (const std::uint64_t v : inner) total += v;
              return total;
            });
        std::uint64_t total = outer_spec.seed;
        for (const std::uint64_t v : mids) total += v;
        return total;
      });

  const std::uint64_t inner_sum = 100 + 101;
  const std::uint64_t mid_sum = 3 * inner_sum + 100 + 101 + 102;
  ASSERT_EQ(totals.size(), 4u);
  for (std::size_t i = 0; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], 100 + i + mid_sum);
  }
}

TEST(WorkerPoolTest, ThreadsPersistAcrossCampaigns) {
  WorkerPool pool;
  RunnerOptions options;
  options.workers = 4;
  options.pool = &pool;
  CampaignRunner runner{options};

  const auto specs = numbered_specs(32);
  const std::function<std::uint64_t(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return s.seed; };

  const auto first = runner.run<std::uint64_t>(specs, executor);
  const int threads_after_first = pool.threads_started();
  EXPECT_EQ(threads_after_first, 3);  // workers - 1 helpers, lazily started

  const auto second = runner.run<std::uint64_t>(specs, executor);
  EXPECT_EQ(pool.threads_started(), threads_after_first);  // reused, not respawned
  EXPECT_EQ(first, second);
  EXPECT_EQ(pool.jobs_run(), 2u);
}

TEST(WorkerPoolTest, GrowsLazilyToTheWidestCampaign) {
  WorkerPool pool;
  EXPECT_EQ(pool.threads_started(), 0);  // nothing spawned until needed

  const auto specs = numbered_specs(16);
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return static_cast<int>(s.id); };

  for (const int workers : {2, 6, 4}) {
    RunnerOptions options;
    options.workers = workers;
    options.pool = &pool;
    CampaignRunner{options}.run<int>(specs, executor);
  }
  EXPECT_EQ(pool.threads_started(), 5);  // widest campaign needed 5 helpers
  EXPECT_EQ(pool.jobs_run(), 3u);
}

TEST(WorkerPoolTest, SharedPoolServesMixedLayersDeterministically) {
  // Two different campaigns back to back on the process-wide pool must be
  // unaffected by the pool being warm.
  const auto specs = numbered_specs(24);
  const std::function<std::uint64_t(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return s.seed * 7; };
  const auto cold = runner_with(4).run<std::uint64_t>(specs, executor);
  const auto warm = runner_with(4).run<std::uint64_t>(specs, executor);
  EXPECT_EQ(cold, warm);
  EXPECT_GE(WorkerPool::shared().threads_started(), 3);
}

// --------------------------------------------------------- spec streams ----

std::string envelope(const ScenarioSpec& spec) {
  return lazyeye::str_format(
      "%llu|%llu|%d|%d|%s|%s|%s",
      static_cast<unsigned long long>(spec.id),
      static_cast<unsigned long long>(spec.seed), spec.repetition,
      spec.grid_index, spec.label.c_str(), spec.client.c_str(),
      case_name(spec.payload));
}

TEST(SpecStreamTest, ViewAndOwningAdaptersMatchTheVector) {
  auto specs = numbered_specs(9);
  for (auto& spec : specs) spec.label = "x" + std::to_string(spec.id);
  const SpecStream view = SpecStream::view(specs);
  ASSERT_EQ(view.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(envelope(view.at(i)), envelope(specs[i]));
  }
  const SpecStream owned = SpecStream::of(specs);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(envelope(owned.at(i)), envelope(specs[i]));
  }
}

TEST(SpecStreamTest, TestbedSweepStreamMatchesMaterialisedSpecs) {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(200), ms(50)};

  testbed::LocalTestbed eager_bed;
  const auto eager = eager_bed.cad_sweep_specs(profile, sweep, 3);
  testbed::LocalTestbed lazy_bed;
  const auto lazy = lazy_bed.cad_sweep_stream(profile, sweep, 3);

  ASSERT_EQ(lazy.size(), eager.size());
  for (std::size_t i = 0; i < eager.size(); ++i) {
    EXPECT_EQ(envelope(lazy.at(i)), envelope(eager[i])) << "cell " << i;
    EXPECT_EQ(lazy.at(i).get_if<CadCase>()->v6_delay,
              eager[i].get_if<CadCase>()->v6_delay);
  }
  // The stream reserved its whole counter range: the next cell allocated on
  // the lazy testbed continues where the eager one does.
  EXPECT_EQ(lazy_bed.cad_spec(profile, ms(0)).seed,
            eager_bed.cad_spec(profile, ms(0)).seed);
}

TEST(SpecStreamTest, TestbedMultiClientStreamMatchesMaterialisedSpecs) {
  const std::vector<clients::ClientProfile> profiles{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::firefox_profile("132.0", "10-2024"),
  };
  const testbed::SweepSpec sweep{ms(0), ms(300), ms(150)};

  testbed::LocalTestbed eager_bed;
  const auto eager = eager_bed.multi_client_cad_specs(profiles, sweep, 2);
  testbed::LocalTestbed lazy_bed;
  const auto lazy = lazy_bed.multi_client_cad_stream(profiles, sweep, 2);

  ASSERT_EQ(lazy.size(), eager.size());
  for (std::size_t i = 0; i < eager.size(); ++i) {
    EXPECT_EQ(envelope(lazy.at(i)), envelope(eager[i])) << "cell " << i;
  }
}

TEST(SpecStreamTest, WebtoolAndResolverStreamsMatchMaterialisedSpecs) {
  webtool::WebToolConfig web_config = webtool::WebToolConfig::paper_default();
  web_config.repetitions = 5;
  web_config.seed = 11;
  const webtool::WebTool tool{web_config};
  const auto web_profile = clients::safari_profile("17.6");
  const auto web_eager =
      tool.campaign_specs(web_profile, true, dns::RrType::kA);
  const auto web_lazy =
      tool.campaign_spec_stream(web_profile, true, dns::RrType::kA);
  ASSERT_EQ(web_lazy.size(), web_eager.size());
  for (std::size_t i = 0; i < web_eager.size(); ++i) {
    EXPECT_EQ(envelope(web_lazy.at(i)), envelope(web_eager[i]));
  }

  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(unbound);
  ASSERT_TRUE(bind);
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(199), ms(799)};
  config.repetitions = 3;
  config.seed = 77;
  const auto lab_eager = resolverlab::cross_service_cell_specs(services, config);
  const auto lab_lazy =
      resolverlab::cross_service_cell_spec_stream(services, config);
  ASSERT_EQ(lab_lazy.size(), lab_eager.size());
  for (std::size_t i = 0; i < lab_eager.size(); ++i) {
    EXPECT_EQ(envelope(lab_lazy.at(i)), envelope(lab_eager[i]));
    EXPECT_EQ(lab_lazy.at(i).get_if<ResolverCellCase>()->service,
              lab_eager[i].get_if<ResolverCellCase>()->service);
  }
}

TEST(SpecStreamTest, StreamingRunMatchesVectorRunAtEveryWorkerCount) {
  // The lazy path through run_streaming(SpecStream, ...) must deliver the
  // same outcomes in the same order as the materialised path.
  const auto specs = numbered_specs(30);
  const std::function<std::uint64_t(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return s.seed * 13 + s.id; };

  std::vector<std::uint64_t> from_vector;
  CallbackSink<std::uint64_t> vector_sink{
      [&from_vector](const ScenarioSpec&, std::uint64_t v) {
        from_vector.push_back(v);
      }};
  runner_with(1).run_streaming<std::uint64_t>(specs, executor, vector_sink);

  for (const int workers : {1, 4, 8}) {
    const SpecStream stream{specs.size(), [](std::size_t i) {
                              ScenarioSpec spec;
                              spec.id = i;
                              spec.seed = 100 + i;
                              return spec;
                            }};
    std::vector<std::uint64_t> from_stream;
    CallbackSink<std::uint64_t> stream_sink{
        [&from_stream](const ScenarioSpec&, std::uint64_t v) {
          from_stream.push_back(v);
        }};
    runner_with(workers).run_streaming<std::uint64_t>(stream, executor,
                                                      stream_sink);
    EXPECT_EQ(from_stream, from_vector) << "workers=" << workers;
  }
}

TEST(ScenarioSpecTest, DerivedStreamsAreStableAndDistinct) {
  ScenarioSpec a;
  a.seed = 42;
  ScenarioSpec b = a;
  EXPECT_EQ(a.world_seed(), b.world_seed());
  EXPECT_EQ(a.client_seed(), b.client_seed());
  EXPECT_NE(a.world_seed(), a.client_seed());
  b.seed = 43;
  EXPECT_NE(a.world_seed(), b.world_seed());
}

// --------------------------------------------------------------- sinks ----

TEST(ResultSinkTest, StreamingDeliveryIsInSpecOrderWithBeginAndEnd) {
  const auto specs = numbered_specs(40);
  std::vector<std::uint64_t> delivered;
  int begins = 0;
  int ends = 0;
  std::size_t announced = 0;

  struct OrderSink final : ResultSink<std::uint64_t> {
    std::vector<std::uint64_t>* delivered;
    int* begins;
    int* ends;
    std::size_t* announced;
    void begin(std::size_t n) override {
      ++*begins;
      *announced = n;
    }
    void cell(const ScenarioSpec& spec, std::uint64_t outcome) override {
      EXPECT_EQ(spec.id * 7, outcome);
      delivered->push_back(spec.id);
    }
    void end() override { ++*ends; }
  } sink;
  sink.delivered = &delivered;
  sink.begins = &begins;
  sink.ends = &ends;
  sink.announced = &announced;

  const std::function<std::uint64_t(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return s.id * 7; };
  runner_with(4).run_streaming<std::uint64_t>(specs, executor, sink);

  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(announced, 40u);
  ASSERT_EQ(delivered.size(), 40u);
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], i);  // strictly spec order despite 4 workers
  }
}

TEST(ResultSinkTest, EndSkippedWhenAnExecutorThrows) {
  const auto specs = numbered_specs(16);
  bool ended = false;
  struct EndSink final : ResultSink<int> {
    bool* ended;
    void cell(const ScenarioSpec&, int) override {}
    void end() override { *ended = true; }
  } sink;
  sink.ended = &ended;
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) -> int {
    if (s.id == 3) throw std::runtime_error("boom");
    return 0;
  };
  EXPECT_THROW(runner_with(4).run_streaming<int>(specs, executor, sink),
               std::runtime_error);
  EXPECT_FALSE(ended);
}

TEST(ResultSinkTest, SinkExceptionStopsDeliveryAndPropagates) {
  const auto specs = numbered_specs(24);
  std::vector<std::uint64_t> delivered;
  CallbackSink<int> sink{[&](const ScenarioSpec& spec, int) {
    if (spec.id == 5) throw std::runtime_error("sink boom");
    delivered.push_back(spec.id);
  }};
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return static_cast<int>(s.id); };
  EXPECT_THROW(runner_with(4).run_streaming<int>(specs, executor, sink),
               std::runtime_error);
  // Cells before the failing one were delivered exactly once, in order;
  // nothing was re-delivered or delivered after the sink threw.
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ResultSinkTest, StreamingAndCollectingSinksRenderIdenticalTables) {
  auto specs = numbered_specs(12);
  for (auto& spec : specs) {
    spec.label = lazyeye::str_format(
        "cell%llu", static_cast<unsigned long long>(spec.id));
  }
  const std::function<int(const ScenarioSpec&)> executor =
      [](const ScenarioSpec& s) { return static_cast<int>(s.seed % 7); };
  const std::vector<TableColumn<int>> columns{
      {"Cell", TextTable::Align::kLeft,
       [](const ScenarioSpec& s, const int&) { return s.label; }},
      {"Value", TextTable::Align::kRight,
       [](const ScenarioSpec&, const int& v) { return std::to_string(v); }}};

  // Collecting path: materialise, then render.
  CollectingSink<int> collecting;
  runner_with(4).run_streaming<int>(specs, executor, collecting);
  const std::string collected_table =
      to_table<int>(collecting.result(), columns).render();

  // Streaming path: build the same table row by row as cells arrive.
  std::vector<std::string> headers;
  for (const auto& c : columns) headers.push_back(c.header);
  TextTable streamed{std::move(headers)};
  for (std::size_t c = 0; c < columns.size(); ++c) {
    streamed.set_align(c, columns[c].align);
  }
  CallbackSink<int> streaming{[&](const ScenarioSpec& spec, int outcome) {
    std::vector<std::string> row;
    for (const auto& c : columns) row.push_back(c.cell(spec, outcome));
    streamed.add_row(std::move(row));
  }};
  runner_with(4).run_streaming<int>(specs, executor, streaming);

  EXPECT_EQ(streamed.render(), collected_table);  // byte-identical
}

// ------------------------------------------------------------ registry ----

TEST(RegistryTest, DispatchesOnPayloadType) {
  Registry<int> registry;
  registry.add<CadCase>([](const ScenarioSpec&, const CadCase& c) {
    return static_cast<int>(to_ms(c.v6_delay));
  });
  registry.add<AddressSelectionCase>(
      [](const ScenarioSpec&, const AddressSelectionCase& c) {
        return 1000 + c.per_family;
      });
  EXPECT_TRUE(registry.has(CaseKind::kCad));
  EXPECT_TRUE(registry.has(CaseKind::kAddressSelection));
  EXPECT_FALSE(registry.has(CaseKind::kResolverCell));

  std::vector<ScenarioSpec> specs = numbered_specs(4);
  specs[0].payload = CadCase{ms(250)};
  specs[1].payload = AddressSelectionCase{10};
  specs[2].payload = CadCase{ms(50)};
  specs[3].payload = AddressSelectionCase{3};

  const auto result = registry.run_collect(runner_with(2), specs);
  ASSERT_EQ(result.size(), 4u);
  EXPECT_EQ(result.outcomes, (std::vector<int>{250, 1010, 50, 1003}));
}

TEST(RegistryTest, RejectsUnregisteredKindBeforeLaunchingThePool) {
  Registry<int> registry;
  registry.add<CadCase>([](const ScenarioSpec&, const CadCase&) { return 0; });

  std::vector<ScenarioSpec> specs = numbered_specs(2);
  specs[1].payload = ResolverCellCase{"Unbound", ms(0)};

  std::atomic<int> executed{0};
  Registry<int> counting;
  counting.add<CadCase>([&](const ScenarioSpec&, const CadCase&) {
    return executed.fetch_add(1);
  });
  CollectingSink<int> sink;
  EXPECT_THROW(counting.run(runner_with(2), specs, sink),
               std::invalid_argument);
  EXPECT_EQ(executed.load(), 0);  // validation failed fast, no cell ran

  EXPECT_THROW(registry.execute(specs[1]), std::invalid_argument);
}

// -------------------------------------------------------- determinism ----

std::string serialize(const testbed::RunRecord& r) {
  std::string out = r.client;
  out += lazyeye::str_format(
      "|%lld|%d|%d|%d|", static_cast<long long>(r.configured_delay.count()),
      r.repetition, r.fetch_ok ? 1 : 0,
      r.established_family ? static_cast<int>(*r.established_family) : -1);
  out += r.observed_cad ? std::to_string(r.observed_cad->count()) : "-";
  out += "|";
  out += r.observed_rd ? std::to_string(r.observed_rd->count()) : "-";
  out += lazyeye::str_format("|%d|%d|%d|", r.aaaa_query_first ? 1 : 0,
                             r.v6_addresses_used, r.v4_addresses_used);
  for (const auto family : r.attempt_sequence) {
    out += std::to_string(static_cast<int>(family));
  }
  out += "|" + std::to_string(r.completion_time.count());
  return out;
}

std::string serialize(const std::vector<testbed::RunRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += serialize(r);
    out += "\n";
  }
  return out;
}

TEST(CampaignDeterminismTest, TestbedSweepIdenticalForOneAndFourWorkers) {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(400), ms(50)};

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, /*repetitions=*/2);
  ASSERT_EQ(specs.size(), 18u);  // 9 delays x 2 reps

  const auto serial = bed.run_campaign(profile, specs, runner_with(1));
  const auto parallel = bed.run_campaign(profile, specs, runner_with(4));
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, TestbedSweepIdenticalAtEightWorkersForEveryCap) {
  // Backpressure on a real measurement matrix: 8 workers with a reorder cap
  // of 1, 4, and unbounded all reproduce the serial records byte-for-byte.
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(400), ms(100)};

  testbed::LocalTestbed bed;
  const auto specs = bed.cad_sweep_specs(profile, sweep, /*repetitions=*/2);
  const auto serial = bed.run_campaign(profile, specs, runner_with(1));
  for (const std::size_t cap : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
    RunnerOptions options;
    options.workers = 8;
    options.max_reorder_ahead = cap;
    const auto parallel =
        bed.run_campaign(profile, specs, CampaignRunner{options});
    EXPECT_EQ(serialize(serial), serialize(parallel)) << "cap=" << cap;
  }
}

TEST(CampaignDeterminismTest, SweepCadMatchesSerialRunCadCaseSequence) {
  // The sharded sweep must reproduce the exact records the legacy serial
  // entry point produces from the same counter state.
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  const testbed::SweepSpec sweep{ms(0), ms(300), ms(100)};

  testbed::LocalTestbed serial_bed;
  std::vector<testbed::RunRecord> serial;
  for (const SimTime delay : sweep.values()) {
    serial.push_back(serial_bed.run_cad_case(profile, delay, 0));
  }

  testbed::LocalTestbed campaign_bed;
  const auto sharded = campaign_bed.sweep_cad(profile, sweep, 1, 4);
  EXPECT_EQ(serialize(serial), serialize(sharded));
}

TEST(CampaignDeterminismTest, MultiClientBatchMatchesPerClientSweeps) {
  // One campaign batching two client profiles must reproduce, per client,
  // the records of consecutive single-client sweeps on one testbed.
  const std::vector<clients::ClientProfile> profiles{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::firefox_profile("132.0", "10-2024"),
  };
  const testbed::SweepSpec sweep{ms(0), ms(300), ms(150)};

  testbed::LocalTestbed serial_bed;
  std::vector<testbed::RunRecord> serial;
  for (const auto& profile : profiles) {
    for (const auto& rec : serial_bed.run_campaign(
             profile, serial_bed.cad_sweep_specs(profile, sweep),
             runner_with(1))) {
      serial.push_back(rec);
    }
  }

  testbed::LocalTestbed batch_bed;
  const auto specs = batch_bed.multi_client_cad_specs(profiles, sweep);
  ASSERT_EQ(specs.size(), serial.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].id, i);  // dense ids across the joint matrix
  }

  Registry<testbed::RunRecord> registry;
  testbed::register_executors(registry, batch_bed, profiles);
  const auto batched = registry.run_collect(runner_with(4), specs);
  EXPECT_EQ(serialize(serial), serialize(batched.outcomes));
}

std::string serialize(const resolverlab::RunObservation& run) {
  return lazyeye::str_format(
      "%lld|%d|%d|%lld|%d|%d|%d|%d|%d|%d|%d|%d\n",
      static_cast<long long>(run.configured_delay.count()), run.repetition,
      run.resolved ? 1 : 0, static_cast<long long>(run.completed.count()),
      run.v6_main_queries, run.v4_main_queries, run.first_query_v6 ? 1 : 0,
      run.answer_via_v6 ? 1 : 0, run.aaaa_ns_seen ? 1 : 0,
      run.a_ns_seen ? 1 : 0, run.aaaa_before_a ? 1 : 0,
      run.ns_queries_parallel ? 1 : 0);
}

std::string serialize(const resolverlab::ServiceMetrics& m) {
  std::string out = m.service;
  out += lazyeye::str_format("|%d|%d|%.9f|", static_cast<int>(m.aaaa_order),
                             m.aaaa_order_known ? 1 : 0, m.ipv6_share);
  out += m.max_ipv6_delay ? std::to_string(m.max_ipv6_delay->count()) : "-";
  out += lazyeye::str_format("|%d|%d\n", m.max_ipv6_packets,
                             m.delay_unmeasurable ? 1 : 0);
  for (const auto& run : m.runs) out += serialize(run);
  return out;
}

TEST(CampaignDeterminismTest, ResolverLabIdenticalForOneAndFourWorkers) {
  const auto service = resolvers::find_service_profile("Unbound");
  ASSERT_TRUE(service);
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(199), ms(375), ms(799)};
  config.repetitions = 6;
  config.seed = 31;

  config.workers = 1;
  const auto serial = resolverlab::measure_service(*service, config);
  config.workers = 4;
  const auto parallel = resolverlab::measure_service(*service, config);
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, CrossServiceCampaignMatchesSoloCampaigns) {
  // All Table 3 rows in one pool: the joint matrix must reproduce every
  // solo campaign's row byte-for-byte, at any worker count.
  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(unbound);
  ASSERT_TRUE(bind);
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};

  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(199), ms(799)};
  config.repetitions = 4;
  config.seed = 77;

  config.workers = 1;
  std::string solo;
  for (const auto& service : services) {
    solo += serialize(resolverlab::measure_service(service, config));
  }

  config.workers = 4;
  std::string joint;
  for (const auto& row : resolverlab::measure_services(services, config)) {
    joint += serialize(row);
  }
  EXPECT_EQ(solo, joint);
}

TEST(CampaignDeterminismTest, MixedKindMatrixIdenticalForOneAndFourWorkers) {
  // One CampaignRunner pool executing testbed CAD cells for two client
  // profiles *and* resolver-lab cells for two services, via one registry —
  // the mixed-kind matrix the v1 per-layer run loops could not express.
  using MixedOutcome =
      std::variant<testbed::RunRecord, resolverlab::RunObservation>;

  const std::vector<clients::ClientProfile> profiles{
      clients::chromium_profile("Chrome", "130.0", "10-2024"),
      clients::curl_profile(),
  };
  const auto unbound = resolvers::find_service_profile("Unbound");
  const auto bind = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(unbound);
  ASSERT_TRUE(bind);
  const std::vector<resolvers::ServiceProfile> services{*unbound, *bind};

  resolverlab::LabConfig lab_config;
  lab_config.delay_grid = {ms(0), ms(375)};
  lab_config.repetitions = 2;
  lab_config.seed = 9;

  auto run_matrix = [&](int workers) {
    testbed::LocalTestbed bed;
    std::vector<ScenarioSpec> specs = bed.multi_client_cad_specs(
        profiles, testbed::SweepSpec{ms(0), ms(300), ms(150)});
    for (ScenarioSpec& spec :
         resolverlab::cross_service_cell_specs(services, lab_config)) {
      specs.push_back(std::move(spec));
    }
    for (std::size_t i = 0; i < specs.size(); ++i) specs[i].id = i;

    Registry<MixedOutcome> registry;
    testbed::register_executors(registry, bed, profiles);
    resolverlab::register_executor(registry, services);

    std::string bytes;
    CallbackSink<MixedOutcome> sink{
        [&bytes](const ScenarioSpec& spec, MixedOutcome outcome) {
          bytes += spec.label;
          bytes += ':';
          std::visit([&bytes](const auto& o) { bytes += serialize(o); },
                     outcome);
          bytes += '\n';
        }};
    registry.run(runner_with(workers), specs, sink);
    return bytes;
  };

  const std::string serial = run_matrix(1);
  const std::string parallel = run_matrix(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

std::string serialize(const webtool::WebToolReport& r) {
  std::string out = r.client + "|" + r.user_agent;
  out += lazyeye::str_format("|%d|%d|", r.inconsistent_repetitions,
                             r.total_repetitions);
  out += r.interval_low ? std::to_string(r.interval_low->count()) : "-";
  out += "|";
  out += r.interval_high ? std::to_string(r.interval_high->count()) : "-";
  out += "\n";
  for (const auto& obs : r.per_delay) {
    out += lazyeye::str_format("%lld|%d|%d|%d\n",
                               static_cast<long long>(obs.delay.count()),
                               obs.v6_used, obs.v4_used, obs.failures);
  }
  return out;
}

TEST(CampaignDeterminismTest, WebToolIdenticalForOneAndFourWorkers) {
  webtool::WebToolConfig config = webtool::WebToolConfig::paper_default();
  config.repetitions = 4;
  config.seed = 5;

  config.workers = 1;
  const auto serial = webtool::WebTool{config}.run_cad_test(
      clients::safari_profile("17.6"));
  config.workers = 4;
  const auto parallel = webtool::WebTool{config}.run_cad_test(
      clients::safari_profile("17.6"));
  EXPECT_EQ(serialize(serial), serialize(parallel));
}

TEST(CampaignDeterminismTest, ResolverCellSpecsUseTheSerialSeedSequence) {
  const auto service = resolvers::find_service_profile("BIND");
  ASSERT_TRUE(service);
  resolverlab::LabConfig config;
  config.delay_grid = {ms(0), ms(100)};
  config.repetitions = 3;
  config.seed = 1000;
  const auto specs = resolverlab::cell_specs(*service, config);
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].seed, 1000 + i + 1);
    EXPECT_EQ(specs[i].id, i);
    ASSERT_NE(specs[i].get_if<ResolverCellCase>(), nullptr);
    EXPECT_EQ(specs[i].get_if<ResolverCellCase>()->service, "BIND");
  }
  EXPECT_EQ(specs[0].get_if<ResolverCellCase>()->v6_delay, ms(0));
  EXPECT_EQ(specs[3].get_if<ResolverCellCase>()->v6_delay, ms(100));
  EXPECT_EQ(specs[4].repetition, 1);
}

// ------------------------------------------------------------- result ----

TEST(CampaignResultTest, TableRendersOneRowPerCell) {
  CampaignResult<int> result;
  result.specs = numbered_specs(3);
  for (auto& spec : result.specs) spec.label = "cell";
  result.outcomes = {7, 8, 9};
  const auto table = to_table<int>(
      result, {{"Cell", TextTable::Align::kLeft,
                [](const ScenarioSpec& s, const int&) { return s.label; }},
               {"Value", TextTable::Align::kRight,
                [](const ScenarioSpec&, const int& v) {
                  return std::to_string(v);
                }}});
  const std::string rendered = table.render();
  EXPECT_NE(rendered.find("Cell"), std::string::npos);
  EXPECT_NE(rendered.find("7"), std::string::npos);
  EXPECT_NE(rendered.find("9"), std::string::npos);
}

TEST(CampaignResultTest, GroupByKeepsFirstSeenOrder) {
  CampaignResult<int> result;
  result.specs = numbered_specs(6);
  for (std::size_t i = 0; i < 6; ++i) {
    result.specs[i].grid_index = static_cast<int>(i % 2);
  }
  result.outcomes = {0, 1, 2, 3, 4, 5};
  const auto groups = result.group_by<int>(
      [](const ScenarioSpec& s) { return s.grid_index; });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, 0);
  EXPECT_EQ(groups[0].second, (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(groups[1].second, (std::vector<std::size_t>{1, 3, 5}));
}

}  // namespace
}  // namespace lazyeye::campaign
