// Packet capture + analysis tests: the paper's inference rules (CAD from
// first-SYN gap, established family, attempt sequences, DNS timings).
#include <gtest/gtest.h>

#include "capture/analysis.h"
#include "capture/capture.h"
#include "dns/auth_server.h"
#include "dns/stub_resolver.h"
#include "simnet/network.h"
#include "transport/tcp.h"

namespace lazyeye::capture {
namespace {

using simnet::Family;
using simnet::IpAddress;

struct CaptureFixture : ::testing::Test {
  CaptureFixture()
      : net{5}, client_host{net.add_host("client")},
        server_host{net.add_host("server")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.1"));
    client_host.add_address(IpAddress::must_parse("2001:db8::1"));
    server_host.add_address(IpAddress::must_parse("10.0.0.2"));
    server_host.add_address(IpAddress::must_parse("2001:db8::2"));
    client_tcp = std::make_unique<transport::TcpStack>(client_host);
    server_tcp = std::make_unique<transport::TcpStack>(server_host);
    server_tcp->listen(443);
    cap = std::make_unique<PacketCapture>(client_host);
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  std::unique_ptr<transport::TcpStack> client_tcp;
  std::unique_ptr<transport::TcpStack> server_tcp;
  std::unique_ptr<PacketCapture> cap;
};

TEST_F(CaptureFixture, RecordsTimestampsAndDirections) {
  client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  // SYN out, SYN-ACK in, ACK out.
  ASSERT_EQ(cap->size(), 3u);
  EXPECT_TRUE(cap->packets()[0].egress());
  EXPECT_FALSE(cap->packets()[1].egress());
  EXPECT_TRUE(cap->packets()[2].egress());
  EXPECT_EQ(cap->packets()[0].time, SimTime{0});
  EXPECT_EQ(cap->packets()[1].time, 2 * net.base_delay());
}

TEST_F(CaptureFixture, StopAndClearControlRecording) {
  cap->stop();
  client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  EXPECT_EQ(cap->size(), 0u);
  cap->start();
  client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  EXPECT_GT(cap->size(), 0u);
  cap->clear();
  EXPECT_EQ(cap->size(), 0u);
}

TEST_F(CaptureFixture, InferCadFromSynGap) {
  // v6 SYN at t=0, v4 SYN at t=250ms: the paper's CAD inference.
  client_tcp->connect({IpAddress::must_parse("2001:db8::2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().schedule_at(ms(250), [&] {
    client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                        [](const transport::ConnectResult&) {});
  });
  net.loop().run();
  const auto cad = infer_cad(*cap);
  ASSERT_TRUE(cad);
  EXPECT_EQ(*cad, ms(250));
}

TEST_F(CaptureFixture, InferCadRequiresBothFamilies) {
  client_tcp->connect({IpAddress::must_parse("2001:db8::2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  EXPECT_FALSE(infer_cad(*cap));
  EXPECT_TRUE(first_syn_time(*cap, Family::kIpv6));
  EXPECT_FALSE(first_syn_time(*cap, Family::kIpv4));
}

TEST_F(CaptureFixture, EstablishedFamilyFromSynAck) {
  client_tcp->connect({IpAddress::must_parse("2001:db8::2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  const auto family = established_family(*cap);
  ASSERT_TRUE(family);
  EXPECT_EQ(*family, Family::kIpv6);
}

TEST_F(CaptureFixture, NoEstablishmentToUnresponsive) {
  transport::TcpOptions options;
  options.syn_retries = 1;
  options.syn_rto = ms(200);
  client_tcp->connect({IpAddress::must_parse("10.0.0.99"), 443}, options,
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  EXPECT_FALSE(established_family(*cap));
  const auto attempts = connection_attempts(*cap);
  ASSERT_EQ(attempts.size(), 1u);
  EXPECT_EQ(attempts[0].syn_count, 2);  // initial + 1 retransmission
  EXPECT_FALSE(attempts[0].established);
}

TEST_F(CaptureFixture, AttemptSequenceOrderAndFamilies) {
  // Three staggered attempts: v6, v6, v4 (Safari-style prefix).
  transport::TcpOptions options;
  options.syn_retries = 0;
  options.syn_rto = sec(5);
  client_tcp->connect({IpAddress::must_parse("2001:db8::9"), 443}, options,
                      [](const transport::ConnectResult&) {});
  net.loop().schedule_at(ms(100), [&] {
    client_tcp->connect({IpAddress::must_parse("2001:db8::8"), 443}, options,
                        [](const transport::ConnectResult&) {});
  });
  net.loop().schedule_at(ms(200), [&] {
    client_tcp->connect({IpAddress::must_parse("10.0.0.9"), 443}, options,
                        [](const transport::ConnectResult&) {});
  });
  net.loop().run();
  const auto attempts = connection_attempts(*cap);
  ASSERT_EQ(attempts.size(), 3u);
  EXPECT_EQ(attempts[0].family(), Family::kIpv6);
  EXPECT_EQ(attempts[1].family(), Family::kIpv6);
  EXPECT_EQ(attempts[2].family(), Family::kIpv4);
  EXPECT_EQ(attempts[1].first_syn, ms(100));
  EXPECT_EQ(attempts[2].first_syn, ms(200));
  EXPECT_EQ(distinct_destinations(attempts, Family::kIpv6), 2);
  EXPECT_EQ(distinct_destinations(attempts, Family::kIpv4), 1);
}

TEST_F(CaptureFixture, RefusedAttemptFlagged) {
  client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 81}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  const auto attempts = connection_attempts(*cap);
  ASSERT_EQ(attempts.size(), 1u);
  EXPECT_TRUE(attempts[0].refused);
  EXPECT_FALSE(attempts[0].established);
}

// ------------------------------------------------------ DNS-layer views ----

struct DnsCaptureFixture : CaptureFixture {
  DnsCaptureFixture() {
    auth = std::make_unique<dns::AuthServer>(server_host);
    dns::Zone& zone = auth->add_zone(dns::DnsName::must_parse("he.lab"));
    const auto name = dns::DnsName::must_parse("www.he.lab");
    zone.add_a(name, *simnet::Ipv4Address::parse("10.0.0.2"));
    zone.add_aaaa(name, *simnet::Ipv6Address::parse("2001:db8::2"));
    // A variant whose AAAA answer is delayed by 120 ms.
    const auto delayed = dns::DnsName::must_parse("d120-aaaa.www.he.lab");
    zone.add_a(delayed, *simnet::Ipv4Address::parse("10.0.0.2"));
    zone.add_aaaa(delayed, *simnet::Ipv6Address::parse("2001:db8::2"));

    dns::StubOptions options;
    options.servers = {{IpAddress::must_parse("10.0.0.2"), 53}};
    stub = std::make_unique<dns::StubResolver>(client_host, options);
  }
  std::unique_ptr<dns::AuthServer> auth;
  std::unique_ptr<dns::StubResolver> stub;
};

TEST_F(DnsCaptureFixture, DnsExchangesMatchedByIdAndType) {
  dns::StubResolver::DualHandlers handlers;
  stub->resolve_dual(dns::DnsName::must_parse("www.he.lab"), handlers);
  net.loop().run();
  const auto exchanges = dns_exchanges(*cap);
  ASSERT_EQ(exchanges.size(), 2u);
  EXPECT_EQ(exchanges[0].qtype, dns::RrType::kAaaa);  // sent first
  EXPECT_EQ(exchanges[1].qtype, dns::RrType::kA);
  ASSERT_TRUE(exchanges[0].latency());
  EXPECT_EQ(*exchanges[0].latency(), 2 * net.base_delay());
  EXPECT_EQ(exchanges[0].answer_count, 1u);
}

TEST_F(DnsCaptureFixture, UnansweredQueryHasNoResponseTime) {
  auth->set_unresponsive(true);
  dns::StubOptions options;
  options.servers = {{IpAddress::must_parse("10.0.0.2"), 53}};
  options.timeout = ms(300);
  options.attempts_per_server = 1;
  dns::StubResolver fast_stub{client_host, options};
  fast_stub.resolve(dns::DnsName::must_parse("www.he.lab"), dns::RrType::kA,
                    [](const dns::QueryOutcome&) {});
  net.loop().run();
  const auto exchanges = dns_exchanges(*cap);
  ASSERT_EQ(exchanges.size(), 1u);
  EXPECT_FALSE(exchanges[0].response_time);
}

TEST_F(DnsCaptureFixture, ResolutionDelayInference) {
  // Client behaviour: A answer arrives, client waits 50 ms for AAAA, then
  // connects over IPv4. We emulate with explicit steps.
  dns::StubResolver::DualHandlers handlers;
  handlers.on_records = [&](dns::RrType type,
                            const std::vector<IpAddress>& addrs, SimTime) {
    if (type == dns::RrType::kA && !addrs.empty()) {
      net.loop().schedule_after(ms(50), [this] {
        client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                            [](const transport::ConnectResult&) {});
      });
    }
  };
  stub->resolve_dual(dns::DnsName::must_parse("d120-aaaa.www.he.lab"),
                     handlers);
  net.loop().run();
  const auto rd = infer_resolution_delay(*cap);
  ASSERT_TRUE(rd);
  EXPECT_EQ(*rd, ms(50));
}

TEST_F(DnsCaptureFixture, WaitForAGapInference) {
  // Client waits for the A response before the v6 SYN (the §5.2 deviation).
  dns::StubResolver::DualHandlers handlers;
  handlers.on_records = [&](dns::RrType type,
                            const std::vector<IpAddress>& addrs, SimTime) {
    if (type == dns::RrType::kA && !addrs.empty()) {
      client_tcp->connect({IpAddress::must_parse("2001:db8::2"), 443}, {},
                          [](const transport::ConnectResult&) {});
    }
  };
  stub->resolve_dual(dns::DnsName::must_parse("www.he.lab"), handlers);
  net.loop().run();
  const auto gap = a_response_to_v6_syn_gap(*cap);
  ASSERT_TRUE(gap);
  EXPECT_EQ(*gap, SimTime{0});
}

TEST_F(CaptureFixture, FilterPredicate) {
  client_tcp->connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                      [](const transport::ConnectResult&) {});
  net.loop().run();
  const auto syns = cap->filter(
      [](const CapturedPacket& p) { return p.packet.is_syn(); });
  EXPECT_EQ(syns.size(), 1u);
}

}  // namespace
}  // namespace lazyeye::capture
