// Per-cell setup/teardown allocation regression test.
//
// The arena/pool cell-lifecycle overhaul brought one warm small-cell CAD run
// (build world, one fetch, tear down) from ~406 heap allocations to ~80.
// This test holds that win with a count-based gate, the same approach as the
// PR 5 zero-alloc data-path check: global operator new counting, a warm-up
// phase that fills the thread's scenario pool / buffer pools / DNS message
// pools to their high-water marks, then a measured run of cells. Counting
// (not timing) keeps the gate deterministic on 1-core CI runners and under
// sanitizers.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "clients/profiles.h"
#include "testbed/testbed.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lazyeye {
namespace {

// 5x under the ~406-allocation baseline the overhaul started from. A warm
// cell measures ~80 today; the budget leaves a little slack for library
// variation without letting a per-cell cost creep back in.
constexpr std::uint64_t kPerCellBudget = 81;

TEST(CellAllocTest, WarmSmallCellStaysUnderBudget) {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  testbed::LocalTestbed bed;

  // Warm-up: first cells grow the pooled arenas, buffer pools and
  // thread-local DNS message pools to this workload's high-water marks.
  for (int i = 0; i < 16; ++i) {
    bed.run_cad_case(profile, ms(50), i);
  }

  // Measure a batch (not a single cell) so one-off lazy initialisations
  // hiding in libraries average out instead of failing the gate flakily.
  constexpr std::uint64_t kCells = 32;
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < kCells; ++i) {
    bed.run_cad_case(profile, ms(50), static_cast<int>(16 + i));
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  const std::uint64_t per_cell = (after - before) / kCells;
  EXPECT_LE(per_cell, kPerCellBudget)
      << "warm per-cell allocations regressed: " << per_cell << " > budget "
      << kPerCellBudget << " (total " << (after - before) << " over "
      << kCells << " cells)";
}

// The run itself must still mean something: a cell that silently stopped
// doing work would pass any allocation gate.
TEST(CellAllocTest, MeasuredCellsProduceRealRuns) {
  const auto profile = clients::chromium_profile("Chrome", "130.0", "10-2024");
  testbed::LocalTestbed bed;
  const auto record = bed.run_cad_case(profile, ms(50), 0);
  EXPECT_TRUE(record.fetch_ok);
  EXPECT_TRUE(record.established_family.has_value());
}

}  // namespace
}  // namespace lazyeye
