// Client profile registry, user-agent handling, and end-to-end fetches
// through SimulatedClient.
#include <gtest/gtest.h>

#include "capture/analysis.h"
#include "capture/capture.h"
#include "clients/client.h"
#include "clients/profiles.h"
#include "clients/user_agent.h"
#include "dns/auth_server.h"
#include "simnet/network.h"

namespace lazyeye::clients {
namespace {

using simnet::Family;
using simnet::IpAddress;

// ------------------------------------------------------------- profiles ----

TEST(ProfilesTest, LocalTestbedRosterMatchesFigure2) {
  const auto profiles = local_testbed_profiles();
  // 5 Chrome + 1 Chromium + 5 Edge + 4 Firefox + curl + wget = 17 rows.
  EXPECT_EQ(profiles.size(), 17u);
}

TEST(ProfilesTest, ChromiumGroundTruth) {
  const auto p = chromium_profile("Chrome", "130.0", "10-2024");
  EXPECT_EQ(p.options.connection_attempt_delay, ms(300));
  EXPECT_TRUE(p.options.wait_for_a_record);
  EXPECT_TRUE(p.options.fail_on_a_timeout);
  EXPECT_FALSE(p.options.resolution_delay);
  EXPECT_EQ(p.options.max_addresses_per_family, 1);
}

TEST(ProfilesTest, ChromiumHev3FlagChangesBehaviour) {
  const auto p = chromium_profile("Chrome", "130.0", "10-2024", true);
  ASSERT_TRUE(p.options.resolution_delay);
  EXPECT_EQ(*p.options.resolution_delay, ms(50));
  EXPECT_FALSE(p.options.wait_for_a_record);
  EXPECT_FALSE(p.options.fail_on_a_timeout);
}

TEST(ProfilesTest, FirefoxUsesRfcRecommendation) {
  const auto p = firefox_profile("132.0", "10-2024");
  EXPECT_EQ(p.options.connection_attempt_delay, ms(250));
  EXPECT_GT(p.cad_outlier_prob, 0.0);
}

TEST(ProfilesTest, CurlSmallestCad) {
  const auto p = curl_profile();
  EXPECT_EQ(p.options.connection_attempt_delay, ms(200));
  EXPECT_FALSE(p.options.fail_on_a_timeout);
}

TEST(ProfilesTest, WgetHasNoHappyEyeballs) {
  const auto p = wget_profile();
  EXPECT_EQ(p.options.version, he::HeVersion::kNone);
  EXPECT_FALSE(p.options.fallback_enabled);
}

TEST(ProfilesTest, SafariIsTheOnlyHev2Client) {
  int hev2_count = 0;
  for (const auto& p : all_client_profiles()) {
    if (p.options.version == he::HeVersion::kV2) ++hev2_count;
  }
  // Safari + Mobile Safari (same engine).
  EXPECT_EQ(hev2_count, 2);
  const auto safari = safari_profile("17.6");
  EXPECT_TRUE(safari.options.dynamic_cad.enabled);
  EXPECT_EQ(safari.options.dynamic_cad.no_history_default, sec(2));
  EXPECT_EQ(safari.options.first_address_family_count, 2);
  EXPECT_EQ(safari.options.max_addresses_per_family, 10);
  ASSERT_TRUE(safari.options.resolution_delay);
  EXPECT_EQ(*safari.options.resolution_delay, ms(50));
}

TEST(ProfilesTest, MobileSafariCapsCadAtOneSecond) {
  const auto p = mobile_safari_profile("17.6");
  EXPECT_EQ(p.options.dynamic_cad.maximum, sec(1));
}

TEST(ProfilesTest, IcprEgressOperatorValues) {
  const auto akamai = icpr_egress_profile("Akamai");
  EXPECT_EQ(akamai.options.connection_attempt_delay, ms(150));
  EXPECT_EQ(akamai.dns_timeout, ms(400));
  const auto cloudflare = icpr_egress_profile("Cloudflare");
  EXPECT_EQ(cloudflare.options.connection_attempt_delay, ms(200));
  EXPECT_EQ(cloudflare.dns_timeout, ms(1750));
}

TEST(ProfilesTest, FindByDisplayName) {
  const auto p = find_client_profile("Chrome 130.0");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->options.connection_attempt_delay, ms(300));
  EXPECT_FALSE(find_client_profile("Netscape 4.0"));
}

TEST(ProfilesTest, FigureLabels) {
  EXPECT_EQ(curl_profile().figure_label(), "curl (7.88.1 02-2023)");
  EXPECT_EQ(safari_profile("17.5").figure_label(), "Safari (17.5)");
}

// ----------------------------------------------------------- user agent ----

TEST(UserAgentTest, ChromeWindowsRoundTrip) {
  const auto ua = make_user_agent("Chrome", "127.0.0", "Windows 10", "");
  const auto info = parse_user_agent(ua);
  EXPECT_EQ(info.browser, "Chrome");
  EXPECT_EQ(info.browser_version, "127.0.0");
  EXPECT_EQ(info.os_name, "Windows");
  EXPECT_EQ(info.os_version, "10");
}

TEST(UserAgentTest, SafariMacRoundTrip) {
  const auto ua = make_user_agent("Safari", "17.5", "Mac OS X", "10.15.7");
  const auto info = parse_user_agent(ua);
  EXPECT_EQ(info.browser, "Safari");
  EXPECT_EQ(info.browser_version, "17.5");
  EXPECT_EQ(info.os_name, "Mac OS X");
  EXPECT_EQ(info.os_version, "10.15.7");
}

TEST(UserAgentTest, MobileSafariIos) {
  const auto ua = make_user_agent("Mobile Safari", "17.6", "iOS", "17.6.1");
  const auto info = parse_user_agent(ua);
  EXPECT_EQ(info.browser, "Mobile Safari");
  EXPECT_EQ(info.os_name, "iOS");
  EXPECT_EQ(info.os_version, "17.6.1");
}

TEST(UserAgentTest, EdgeDetectedBeforeChrome) {
  const auto ua = make_user_agent("Edge", "130.0.0", "Windows 10", "");
  const auto info = parse_user_agent(ua);
  EXPECT_EQ(info.browser, "Edge");
}

TEST(UserAgentTest, LinuxCarriesNoOsVersion) {
  const auto ua = make_user_agent("Firefox", "131.0", "Linux", "");
  const auto info = parse_user_agent(ua);
  EXPECT_EQ(info.os_name, "Linux");
  EXPECT_TRUE(info.os_version.empty());
  const auto ubuntu = parse_user_agent(
      make_user_agent("Firefox", "128.0", "Ubuntu", ""));
  EXPECT_EQ(ubuntu.os_name, "Ubuntu");
  EXPECT_TRUE(ubuntu.os_version.empty());
}

TEST(UserAgentTest, AndroidVariants) {
  const auto chrome = parse_user_agent(
      make_user_agent("Chrome Mobile", "130.0.0", "Android", "10"));
  EXPECT_EQ(chrome.browser, "Chrome Mobile");
  EXPECT_EQ(chrome.os_name, "Android");
  EXPECT_EQ(chrome.os_version, "10");
  const auto firefox = parse_user_agent(
      make_user_agent("Firefox Mobile", "131.0", "Android", "14"));
  EXPECT_EQ(firefox.browser, "Firefox Mobile");
  const auto samsung = parse_user_agent(
      make_user_agent("Samsung Internet", "26.0", "Android", "10"));
  EXPECT_EQ(samsung.browser, "Samsung Internet");
}

TEST(UserAgentTest, ChromeOsAndOpera) {
  const auto cros = parse_user_agent(
      make_user_agent("Chrome", "129.0.0", "Chrome OS", "14541.0.0"));
  EXPECT_EQ(cros.os_name, "Chrome OS");
  EXPECT_EQ(cros.os_version, "14541.0.0");
  const auto opera = parse_user_agent(
      make_user_agent("Opera", "114.0.0", "Mac OS X", "10.15.7"));
  EXPECT_EQ(opera.browser, "Opera");
}

// ------------------------------------------------------ simulated client ----

struct ClientFixture : ::testing::Test {
  ClientFixture()
      : net{21}, client_host{net.add_host("client")},
        server_host{net.add_host("server")},
        dns_host{net.add_host("dns")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.2"));
    client_host.add_address(IpAddress::must_parse("2001:db8::2"));
    server_host.add_address(IpAddress::must_parse("10.0.0.80"));
    server_host.add_address(IpAddress::must_parse("2001:db8::80"));
    dns_host.add_address(IpAddress::must_parse("10.0.0.53"));

    // Echo server: answers with the client's source address (the web tool's
    // server behaviour).
    server_tcp = std::make_unique<transport::TcpStack>(server_host);
    server_tcp->listen(443);
    server_tcp->set_data_handler(
        [this](std::uint64_t conn_id, std::span<const std::uint8_t>) {
          const std::string body = last_peer.addr.to_string();
          server_tcp->send_data(conn_id,
                                std::vector<std::uint8_t>{body.begin(),
                                                          body.end()});
        });
    server_tcp->listen(443, [this](std::uint64_t, const simnet::Endpoint& p) {
      last_peer = p;
    });

    auth = std::make_unique<dns::AuthServer>(dns_host);
    dns::Zone& zone = auth->add_zone(dns::DnsName::must_parse("he.lab"));
    zone.add_a(dns::DnsName::must_parse("www.he.lab"),
               *simnet::Ipv4Address::parse("10.0.0.80"));
    zone.add_aaaa(dns::DnsName::must_parse("www.he.lab"),
                  *simnet::Ipv6Address::parse("2001:db8::80"));
  }

  dns::StubOptions stub_options() {
    dns::StubOptions o;
    o.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
    return o;
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  simnet::Host& dns_host;
  std::unique_ptr<transport::TcpStack> server_tcp;
  std::unique_ptr<dns::AuthServer> auth;
  simnet::Endpoint last_peer;
};

TEST_F(ClientFixture, FetchReturnsSourceAddressEcho) {
  SimulatedClient client{client_host, chromium_profile("Chrome", "130.0", ""),
                         stub_options()};
  FetchResult result;
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.connection.ok) << result.connection.error;
  ASSERT_TRUE(result.response_received);
  // Chromium prefers IPv6 -> the echoed source address is the v6 one.
  EXPECT_EQ(result.response_text(), "2001:db8::2");
}

TEST_F(ClientFixture, ChromeFallsBackAtConfiguredCad) {
  server_host.egress().add_rule(
      simnet::PacketFilter::for_family(Family::kIpv6),
      simnet::NetemSpec::delay_only(ms(500)));
  SimulatedClient client{client_host, chromium_profile("Chrome", "130.0", ""),
                         stub_options()};
  capture::PacketCapture cap{client_host};
  FetchResult result;
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.connection.ok);
  EXPECT_EQ(result.response_text(), "10.0.0.2");  // IPv4 source
  const auto cad = capture::infer_cad(cap);
  ASSERT_TRUE(cad);
  EXPECT_EQ(*cad, ms(300));  // Chromium's 300 ms
}

TEST_F(ClientFixture, WgetFailsWithoutTouchingV4) {
  // IPv6 connectivity fully broken (drop SYNs over v6).
  net.qdisc().add_rule(simnet::PacketFilter::for_family(Family::kIpv6),
                       simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0});
  SimulatedClient client{client_host, wget_profile(), stub_options()};
  capture::PacketCapture cap{client_host};
  FetchResult result;
  bool finished = false;
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) {
                 result = r;
                 finished = true;
               });
  net.loop().run();
  ASSERT_TRUE(finished);
  EXPECT_FALSE(result.connection.ok);
  EXPECT_FALSE(capture::first_syn_time(cap, Family::kIpv4));
}

TEST_F(ClientFixture, ResetStateClearsOutcomeCache) {
  SimulatedClient client{client_host, safari_profile("17.6"), stub_options()};
  FetchResult result;
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.connection.ok);
  const auto queries_after_first = auth->query_log().size();

  client.reset_state();
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.connection.ok);
  // Fresh container state: DNS was queried again.
  EXPECT_GT(auth->query_log().size(), queries_after_first);
}

TEST_F(ClientFixture, Hev3ClientFetchesOverQuic) {
  // Server side: QUIC service + an HTTPS record advertising h3.
  transport::QuicStack server_quic{server_host};
  server_quic.listen(443);
  server_quic.set_data_handler(
      [&](std::uint64_t conn_id, std::span<const std::uint8_t>) {
        const std::string body = "h3-echo";
        server_quic.send_data(conn_id, std::vector<std::uint8_t>{body.begin(),
                                                                 body.end()});
      });
  ClientProfile profile = chromium_profile("Chrome", "131.0", "");
  profile.options = he::HeOptions::v3_draft();
  // No HTTPS record in this zone: race QUIC unconditionally instead of
  // gating on an h3 advertisement.
  profile.options.use_svcb = false;

  SimulatedClient client{client_host, profile, stub_options()};
  FetchResult result;
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.connection.ok) << result.connection.error;
  EXPECT_EQ(result.connection.proto, transport::TransportProtocol::kQuic);
  ASSERT_TRUE(result.response_received);
  EXPECT_EQ(result.response_text(), "h3-echo");
}

TEST_F(ClientFixture, SafariLabCadIsTwoSeconds) {
  server_host.egress().add_rule(
      simnet::PacketFilter::for_family(Family::kIpv6),
      simnet::NetemSpec::delay_only(ms(2500)));
  SimulatedClient client{client_host, safari_profile("17.6"), stub_options()};
  client.reset_state();  // no RTT history: lab conditions
  capture::PacketCapture cap{client_host};
  FetchResult result;
  client.fetch(dns::DnsName::must_parse("www.he.lab"), 443,
               [&](const FetchResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.connection.ok);
  EXPECT_EQ(result.connection.family(), Family::kIpv4);
  const auto cad = capture::infer_cad(cap);
  ASSERT_TRUE(cad);
  EXPECT_EQ(*cad, sec(2));
}

}  // namespace
}  // namespace lazyeye::clients
