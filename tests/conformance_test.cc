// Conformance layer tests: seeded fault plans, the interposing hooks on the
// transport/DNS stacks, the RFC 8305 rule evaluations, and the differential
// harness (worker-count determinism + one-line replay).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "campaign/registry.h"
#include "campaign/runner.h"
#include "clients/profiles.h"
#include "conformance/checker.h"
#include "conformance/fault.h"
#include "conformance/injector.h"
#include "conformance/rules.h"
#include "dns/auth_server.h"
#include "dns/client.h"
#include "simnet/network.h"
#include "transport/quic.h"
#include "transport/tcp.h"

namespace lazyeye::conformance {
namespace {

using simnet::Family;
using simnet::IpAddress;

// ------------------------------------------------------------ fault plans ----

TEST(FaultPlanTest, SeedIsDeterministicAndSensitiveToEveryTripleField) {
  const FaultPlan base{FaultKind::kTcpReset, 5, 2, 9};
  EXPECT_EQ(base.rng_seed(), FaultPlan(base).rng_seed());

  std::set<std::uint64_t> seeds;
  seeds.insert(base.rng_seed());
  for (FaultPlan p : {FaultPlan{FaultKind::kTcpBlackhole, 5, 2, 9},
                      FaultPlan{FaultKind::kTcpReset, 6, 2, 9},
                      FaultPlan{FaultKind::kTcpReset, 5, 3, 9},
                      FaultPlan{FaultKind::kTcpReset, 5, 2, 10}}) {
    EXPECT_TRUE(seeds.insert(p.rng_seed()).second) << p.repro();
  }
}

TEST(FaultPlanTest, ReproLineAndNameRoundTrip) {
  const FaultPlan plan{FaultKind::kDnsSpoof, 42, 3, 17};
  EXPECT_EQ(plan.repro(), "fault=dns-spoof seed=42 stream=3 index=17");
  for (const FaultKind kind : all_fault_kinds()) {
    EXPECT_EQ(fault_kind_from_name(fault_kind_name(kind)), kind);
  }
  EXPECT_FALSE(fault_kind_from_name("no-such-fault"));
}

// ------------------------------------------------- transport interposers ----

struct TransportHookFixture : ::testing::Test {
  TransportHookFixture()
      : net{3}, client_host{net.add_host("client")},
        server_host{net.add_host("server")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.1"));
    client_host.add_address(IpAddress::must_parse("2001:db8::1"));
    server_host.add_address(IpAddress::must_parse("10.0.0.2"));
    server_host.add_address(IpAddress::must_parse("2001:db8::2"));
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
};

TEST_F(TransportHookFixture, TcpResetActionRefusesHandshake) {
  transport::TcpStack client{client_host};
  transport::TcpStack server{server_host};
  server.listen(443);
  server.set_accept_interposer([](const simnet::Endpoint&, std::uint16_t) {
    return transport::AcceptAction::kReset;
  });
  transport::ConnectResult result;
  client.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                 [&](const transport::ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  // The RST answer makes this a fast refusal, not a retry-until-timeout.
  EXPECT_EQ(net.loop().now(), 2 * net.base_delay());
}

TEST_F(TransportHookFixture, TcpDropActionBlackholesTheSyn) {
  transport::TcpStack client{client_host};
  transport::TcpStack server{server_host};
  server.listen(443);
  int calls = 0;
  server.set_accept_interposer([&](const simnet::Endpoint&, std::uint16_t) {
    ++calls;
    return transport::AcceptAction::kDrop;
  });
  transport::ConnectResult result;
  client.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                 [&](const transport::ConnectResult& r) { result = r; });
  net.loop().run();
  EXPECT_FALSE(result.ok);
  // Every SYN retransmission hit the interposer and was swallowed.
  EXPECT_GT(calls, 1);
}

TEST_F(TransportHookFixture, TcpAcceptThenResetCompletesThenKills) {
  transport::TcpStack client{client_host};
  transport::TcpStack server{server_host};
  server.listen(443);
  server.set_accept_interposer([](const simnet::Endpoint&, std::uint16_t) {
    return transport::AcceptAction::kAcceptThenReset;
  });
  transport::ConnectResult result;
  bool data_delivered = false;
  client.set_data_handler(
      [&](std::uint64_t, std::span<const std::uint8_t>) {
        data_delivered = true;
      });
  client.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                 [&](const transport::ConnectResult& r) {
                   result = r;
                   // The handshake looked fine from the client; data sent
                   // into the chasing RST must go nowhere (conn torn down).
                   client.send_data(r.connection_id, {1, 2, 3});
                 });
  net.loop().run();
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(data_delivered);
}

TEST_F(TransportHookFixture, QuicDropAndResetActions) {
  for (const auto action : {transport::AcceptAction::kDrop,
                            transport::AcceptAction::kReset}) {
    transport::QuicStack client{client_host};
    transport::QuicStack server{server_host};
    server.listen(443);
    server.set_accept_interposer(
        [action](const simnet::Endpoint&, std::uint16_t) { return action; });
    transport::ConnectResult result;
    bool done = false;
    client.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                   [&](const transport::ConnectResult& r) {
                     result = r;
                     done = true;
                   });
    net.loop().run();
    EXPECT_TRUE(done);
    EXPECT_FALSE(result.ok);
  }
}

TEST_F(TransportHookFixture, InterposerReturningAcceptIsTransparent) {
  transport::TcpStack client{client_host};
  transport::TcpStack server{server_host};
  server.listen(443);
  server.set_accept_interposer([](const simnet::Endpoint&, std::uint16_t) {
    return transport::AcceptAction::kAccept;
  });
  transport::ConnectResult result;
  client.connect({IpAddress::must_parse("10.0.0.2"), 443}, {},
                 [&](const transport::ConnectResult& r) { result = r; });
  net.loop().run();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.handshake_time(), 2 * net.base_delay());
}

// ------------------------------------------------------ DNS interposer ----

struct DnsHookFixture : ::testing::Test {
  DnsHookFixture()
      : net{7}, client_host{net.add_host("client")},
        server_host{net.add_host("server")} {
    client_host.add_address(IpAddress::must_parse("10.0.0.1"));
    server_host.add_address(IpAddress::must_parse("10.0.0.2"));
    auth = std::make_unique<dns::AuthServer>(server_host);
    dns::Zone& zone = auth->add_zone(dns::DnsName::must_parse("conf.lab"));
    name = dns::DnsName::must_parse("www.conf.lab");
    zone.add_a(name, *simnet::Ipv4Address::parse("10.0.0.2"));
    client = std::make_unique<dns::DnsClient>(client_host);
  }

  dns::QueryOutcome ask(SimTime timeout = sec(2)) {
    dns::QueryOutcome out;
    dns::DnsClientOptions options;
    options.timeout = timeout;
    client->query({IpAddress::must_parse("10.0.0.2"), 53}, name,
                  dns::RrType::kA, options,
                  [&](const dns::QueryOutcome& o) { out = o; });
    net.loop().run();
    return out;
  }

  simnet::Network net;
  simnet::Host& client_host;
  simnet::Host& server_host;
  std::unique_ptr<dns::AuthServer> auth;
  std::unique_ptr<dns::DnsClient> client;
  dns::DnsName name;
};

TEST_F(DnsHookFixture, DropDirectiveSuppressesTheResponse) {
  auth->set_response_interposer([](const dns::DnsMessage&, dns::DnsMessage&,
                                   SimTime&, dns::ResponseDirectives& out) {
    out.drop = true;
  });
  const auto outcome = ask();
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.error, "timeout");
}

TEST_F(DnsHookFixture, MutateWireTruncationIsIgnoredByTheClient) {
  FaultPlan plan{FaultKind::kDnsTruncate};
  auto rng = std::make_shared<SplitMix64>(plan.rng_seed());
  auth->set_response_interposer(
      [rng](const dns::DnsMessage&, dns::DnsMessage&, SimTime&,
            dns::ResponseDirectives& out) {
        out.mutate_wire = [rng](std::vector<std::uint8_t>& wire) {
          truncate_wire(wire, *rng);
        };
      });
  const auto outcome = ask();
  // The truncated datagram fails to decode (or decodes to a non-matching
  // message); either way the client never treats it as the answer.
  EXPECT_FALSE(outcome.ok);
}

TEST_F(DnsHookFixture, SpoofedExtraDatagramLosesToTheRealAnswer) {
  bool spoofed = false;
  auth->set_response_interposer(
      [&](const dns::DnsMessage& query, dns::DnsMessage& response, SimTime&,
          dns::ResponseDirectives& out) {
        dns::DnsMessage spoof = response;
        spoof.header.id = static_cast<std::uint16_t>(query.header.id ^ 0x5a5a);
        spoof.answers.clear();
        spoof.answers.push_back(dns::ResourceRecord::a(
            query.questions.front().name,
            *simnet::Ipv4Address::parse("192.0.2.66")));
        out.extra.push_back({spoof.encode(), SimTime{0}});
        spoofed = true;
      });
  const auto outcome = ask();
  ASSERT_TRUE(spoofed);
  ASSERT_TRUE(outcome.ok);
  // The wrong-id spoof was ignored; the genuine answer won.
  const auto addrs = outcome.response.addresses_for(name, dns::RrType::kA);
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "10.0.0.2");
}

TEST_F(DnsHookFixture, DelayDirectivePostponesTheAnswer) {
  auth->set_response_interposer([](const dns::DnsMessage&, dns::DnsMessage&,
                                   SimTime& delay,
                                   dns::ResponseDirectives&) {
    delay = delay + ms(150);
  });
  const auto outcome = ask();
  ASSERT_TRUE(outcome.ok);
  EXPECT_GE(outcome.rtt, ms(150));
}

TEST_F(DnsHookFixture, InjectorLeavesHooksUnsetForTransportKinds) {
  FaultInjector injector{FaultPlan{FaultKind::kTcpReset}};
  injector.attach(*auth);  // TCP kind: the DNS fast path must stay hook-free
  const auto outcome = ask();
  EXPECT_TRUE(outcome.ok);
}

// ------------------------------------------------------------ rule units ----

capture::ConnectionAttempt attempt(SimTime at, const char* addr,
                                   bool refused = false) {
  capture::ConnectionAttempt a;
  a.first_syn = at;
  a.last_syn = at;
  a.remote = {IpAddress::must_parse(addr), 443};
  a.refused = refused;
  return a;
}

capture::DnsExchange exchange(SimTime at, dns::RrType qtype,
                              std::optional<SimTime> response,
                              std::size_t answers = 1) {
  capture::DnsExchange ex;
  ex.query_time = at;
  ex.qtype = qtype;
  ex.response_time = response;
  ex.answer_count = answers;
  return ex;
}

Verdict verdict_for(const RuleContext& ctx, const std::string& rule) {
  for (const Verdict& v : evaluate_rules(ctx)) {
    if (v.rule == rule) return v;
  }
  ADD_FAILURE() << "no rule named " << rule;
  return {};
}

RuleOutcome verdict_for_record(const ConformanceRecord& record,
                               const std::string& rule) {
  for (const Verdict& v : record.verdicts) {
    if (v.rule == rule) return v.outcome;
  }
  ADD_FAILURE() << "no rule named " << rule;
  return RuleOutcome::kInapplicable;
}

TEST(RuleTest, ResolutionDelayViolatedWhenV4RacesAheadOfAaaa) {
  RuleContext ctx;
  ctx.first_a_response = ms(10);
  ctx.first_v4_syn = ms(20);  // only 10 ms after A, AAAA still outstanding
  EXPECT_EQ(verdict_for(ctx, "resolution-delay").outcome,
            RuleOutcome::kViolate);

  ctx.first_v4_syn = ms(70);  // waited the full 50 ms reference RD
  EXPECT_EQ(verdict_for(ctx, "resolution-delay").outcome, RuleOutcome::kPass);

  ctx.first_aaaa_response = ms(5);  // AAAA answered first: nothing to wait for
  EXPECT_EQ(verdict_for(ctx, "resolution-delay").outcome,
            RuleOutcome::kInapplicable);
}

TEST(RuleTest, AttemptSpacingSkipsGapsAfterRefusedAttempts) {
  RuleContext ctx;
  // 2 ms gap, but the first attempt was refused — RFC 8305 allows moving on
  // immediately, so the gap is exempt and the rule is inapplicable (no
  // racing gap remains to judge).
  ctx.attempts.push_back(attempt(ms(0), "2001:db8::10", /*refused=*/true));
  ctx.attempts.push_back(attempt(ms(2), "10.0.0.10"));
  EXPECT_EQ(verdict_for(ctx, "attempt-spacing").outcome,
            RuleOutcome::kInapplicable);

  // The same 2 ms gap while the first attempt is still pending: violation.
  ctx.attempts[0].refused = false;
  EXPECT_EQ(verdict_for(ctx, "attempt-spacing").outcome,
            RuleOutcome::kViolate);

  // 100 ms gap within [10ms, 2s]: pass.
  ctx.attempts[1].first_syn = ms(100);
  EXPECT_EQ(verdict_for(ctx, "attempt-spacing").outcome, RuleOutcome::kPass);

  // 15 s gap (wget-style serial retry): violation on the maximum bound.
  ctx.attempts[1].first_syn = sec(15);
  EXPECT_EQ(verdict_for(ctx, "attempt-spacing").outcome,
            RuleOutcome::kViolate);
}

TEST(RuleTest, FamilyInterleaveFlagsSameFamilyRuns) {
  RuleContext ctx;
  ctx.v4_candidates = 2;
  ctx.v6_candidates = 2;
  ctx.attempts.push_back(attempt(ms(0), "2001:db8::10"));
  ctx.attempts.push_back(attempt(ms(50), "2001:db8::11"));  // v6 again
  EXPECT_EQ(verdict_for(ctx, "family-interleave").outcome,
            RuleOutcome::kViolate);

  // Alternating families passes.
  ctx.attempts[1] = attempt(ms(50), "10.0.0.10");
  EXPECT_EQ(verdict_for(ctx, "family-interleave").outcome, RuleOutcome::kPass);

  // A same-family run is fine once the other family is exhausted.
  ctx.v4_candidates = 1;
  ctx.attempts.push_back(attempt(ms(100), "2001:db8::11"));
  ctx.attempts.push_back(attempt(ms(150), "2001:db8::12"));
  EXPECT_EQ(verdict_for(ctx, "family-interleave").outcome, RuleOutcome::kPass);
}

TEST(RuleTest, LosingFamilyRequiresBothFamiliesTriedBeforeGivingUp) {
  RuleContext ctx;
  ctx.dns.push_back(exchange(ms(0), dns::RrType::kA, ms(5)));
  ctx.dns.push_back(exchange(ms(0), dns::RrType::kAaaa, ms(5)));
  ctx.attempts.push_back(attempt(ms(10), "2001:db8::10"));
  // Failed overall, only v6 ever tried: premature abandonment of v4.
  EXPECT_EQ(verdict_for(ctx, "losing-family").outcome, RuleOutcome::kViolate);

  ctx.attempts.push_back(attempt(ms(260), "10.0.0.10"));
  EXPECT_EQ(verdict_for(ctx, "losing-family").outcome, RuleOutcome::kPass);

  // An established connection ends the situation.
  ctx.established = Family::kIpv6;
  EXPECT_EQ(verdict_for(ctx, "losing-family").outcome,
            RuleOutcome::kInapplicable);
}

TEST(RuleTest, RestartCacheFlagsRequeriesAfterTheFirstFetch) {
  RuleContext ctx;
  ctx.fetches = 2;
  ctx.first_fetch_ok = true;
  ctx.first_fetch_completed = ms(100);
  ctx.dns.push_back(exchange(ms(0), dns::RrType::kA, ms(5)));
  ctx.dns.push_back(exchange(ms(0), dns::RrType::kAaaa, ms(5)));
  EXPECT_EQ(verdict_for(ctx, "restart-cache").outcome, RuleOutcome::kPass);

  ctx.dns.push_back(exchange(ms(120), dns::RrType::kA, ms(125)));
  EXPECT_EQ(verdict_for(ctx, "restart-cache").outcome, RuleOutcome::kViolate);

  ctx.fetches = 1;
  EXPECT_EQ(verdict_for(ctx, "restart-cache").outcome,
            RuleOutcome::kInapplicable);
}

TEST(RuleTest, AbortOnWinnerFlagsRetransmitsAfterEstablishment) {
  RuleContext ctx;
  ctx.established = Family::kIpv6;
  ctx.established_time = ms(100);
  ctx.attempts.push_back(attempt(ms(0), "2001:db8::10"));
  ctx.attempts[0].established = true;
  ctx.attempts.push_back(attempt(ms(50), "10.0.0.10"));
  // Loser went silent before the winner established: pass.
  EXPECT_EQ(verdict_for(ctx, "abort-on-winner").outcome, RuleOutcome::kPass);

  // Loser retransmitted its SYN 400 ms after the winner completed: the
  // attempt was never aborted.
  ctx.attempts[1].last_syn = ms(500);
  ctx.attempts[1].syn_count = 2;
  EXPECT_EQ(verdict_for(ctx, "abort-on-winner").outcome,
            RuleOutcome::kViolate);
}

TEST(RuleTest, AbortOnWinnerFlagsAttemptsStartedAfterEstablishment) {
  RuleContext ctx;
  ctx.established = Family::kIpv4;
  ctx.established_time = ms(60);
  ctx.attempts.push_back(attempt(ms(0), "10.0.0.10"));
  ctx.attempts[0].established = true;
  // A brand-new attempt opened after the winner: violation.
  ctx.attempts.push_back(attempt(ms(90), "2001:db8::10"));
  EXPECT_EQ(verdict_for(ctx, "abort-on-winner").outcome,
            RuleOutcome::kViolate);
}

TEST(RuleTest, AbortOnWinnerInapplicableWithoutWinnerOrRivals) {
  RuleContext ctx;
  // Never established: the clause never triggers.
  ctx.attempts.push_back(attempt(ms(0), "2001:db8::10"));
  ctx.attempts.push_back(attempt(ms(50), "10.0.0.10"));
  EXPECT_EQ(verdict_for(ctx, "abort-on-winner").outcome,
            RuleOutcome::kInapplicable);

  // Single attempt that won: nothing pending to abort.
  ctx.attempts.clear();
  ctx.attempts.push_back(attempt(ms(0), "2001:db8::10"));
  ctx.attempts[0].established = true;
  ctx.established = Family::kIpv6;
  ctx.established_time = ms(30);
  EXPECT_EQ(verdict_for(ctx, "abort-on-winner").outcome,
            RuleOutcome::kInapplicable);
}

// ------------------------------------------------------------- harness ----

clients::ClientProfile profile_named(const std::string& display) {
  const auto p = clients::find_client_profile(display);
  EXPECT_TRUE(p) << display;
  return *p;
}

TEST(HarnessTest, ControlCellIsCleanForAnHappyEyeballsClient) {
  const ConformanceHarness harness;
  const auto record = harness.replay(profile_named("Chrome 130.0"),
                                     FaultPlan{FaultKind::kNone});
  EXPECT_TRUE(record.fetch_ok);
  EXPECT_EQ(record.violations(), 0) << record.symbols();
  ASSERT_EQ(record.verdicts.size(), rfc8305_rules().size());
}

TEST(HarnessTest, WgetViolatesRestartCacheAndLosingFamily) {
  const ConformanceHarness harness;
  const auto profile = profile_named("wget 1.21.3");

  // No-fault restart: wget re-resolves on the second fetch (no HE winner
  // cache), so the restart-cache rule flags it even in the control cell.
  const auto control = harness.replay(profile, FaultPlan{FaultKind::kNone});
  EXPECT_TRUE(control.fetch_ok);
  EXPECT_EQ(verdict_for_record(control, "restart-cache"),
            RuleOutcome::kViolate);

  // v6 SYNs answered with RSTs: wget retries serially and gives up without
  // ever touching its resolved v4 addresses.
  const auto reset = harness.replay(profile, FaultPlan{FaultKind::kTcpReset});
  EXPECT_FALSE(reset.fetch_ok);
  EXPECT_EQ(verdict_for_record(reset, "losing-family"), RuleOutcome::kViolate);
}

TEST(HarnessTest, ReplayReproducesTheCampaignCell) {
  const ConformanceHarness harness{{.seed = 1}};
  const std::vector<clients::ClientProfile> profiles{
      profile_named("Chrome 130.0"), profile_named("wget 1.21.3")};
  const auto specs = harness.differential_specs(profiles);

  campaign::Registry<ConformanceRecord> registry;
  register_conformance_executor(registry, harness, profiles);
  const auto result =
      registry.run_collect(campaign::CampaignRunner{{.workers = 1}}, specs);

  // Every campaign cell replays bit-for-bit from its (seed, stream, index)
  // triple — the property the verdict table's repro lines rely on.
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const ConformanceRecord& cell = result.outcomes[i];
    const auto replayed = harness.replay(profile_named(cell.client),
                                         cell.fault, cell.fetches);
    EXPECT_EQ(replayed.symbols(), cell.symbols()) << cell.fault.repro();
    EXPECT_EQ(replayed.fetch_ok, cell.fetch_ok) << cell.fault.repro();
    for (std::size_t r = 0; r < cell.verdicts.size(); ++r) {
      EXPECT_EQ(replayed.verdicts[r].evidence, cell.verdicts[r].evidence)
          << cell.fault.repro();
    }
  }
}

TEST(HarnessTest, VerdictTableIsByteIdenticalAcrossWorkerCounts) {
  const ConformanceHarness harness{{.seed = 1}};
  const std::vector<clients::ClientProfile> profiles{
      profile_named("Chrome 130.0"), profile_named("Firefox 132.0"),
      profile_named("wget 1.21.3")};
  const auto specs = harness.differential_specs(profiles);

  campaign::Registry<ConformanceRecord> registry;
  register_conformance_executor(registry, harness, profiles);

  std::string baseline;
  for (const int workers : {1, 2, 4, 8}) {
    VerdictTableSink sink;
    registry.run(campaign::CampaignRunner{{.workers = workers}}, specs, sink);
    EXPECT_EQ(sink.cells(), specs.size());
    if (workers == 1) {
      baseline = sink.text();
      EXPECT_GT(sink.total_violations(), 0);  // wget guarantees material
    } else {
      EXPECT_EQ(sink.text(), baseline) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace lazyeye::conformance
