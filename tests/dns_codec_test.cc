// DNS wire-format tests: names (incl. compression), rdata, full messages,
// randomised round-trip property tests, and garbage rejection.
#include <gtest/gtest.h>

#include <algorithm>

#include "conformance/fault.h"
#include "dns/message.h"
#include "dns/name.h"
#include "dns/rr.h"
#include "dns/test_params.h"
#include "util/rng.h"

namespace lazyeye::dns {
namespace {

using simnet::IpAddress;
using simnet::Ipv4Address;
using simnet::Ipv6Address;

// ---------------------------------------------------------------- names ----

TEST(DnsNameTest, FromStringBasics) {
  const auto name = DnsName::must_parse("www.Example.COM");
  EXPECT_EQ(name.to_string(), "www.example.com");
  EXPECT_EQ(name.label_count(), 3u);
  EXPECT_EQ(name.label(0), "www");
}

TEST(DnsNameTest, RootForms) {
  EXPECT_TRUE(DnsName::must_parse("").is_root());
  EXPECT_TRUE(DnsName::must_parse(".").is_root());
  EXPECT_EQ(DnsName{}.to_string(), ".");
  EXPECT_EQ(DnsName{}.wire_length(), 1u);
}

TEST(DnsNameTest, TrailingDotOptional) {
  EXPECT_EQ(DnsName::must_parse("a.b."), DnsName::must_parse("a.b"));
}

TEST(DnsNameTest, RejectsBadLabels) {
  EXPECT_FALSE(DnsName::from_string("a..b").ok());
  EXPECT_FALSE(DnsName::from_string(std::string(64, 'x') + ".com").ok());
  // > 255 octets total.
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcde.";
  long_name += "com";
  EXPECT_FALSE(DnsName::from_string(long_name).ok());
}

TEST(DnsNameTest, SubdomainRelation) {
  const auto com = DnsName::must_parse("com");
  const auto example = DnsName::must_parse("example.com");
  const auto www = DnsName::must_parse("www.example.com");
  EXPECT_TRUE(www.is_subdomain_of(example));
  EXPECT_TRUE(www.is_subdomain_of(com));
  EXPECT_TRUE(www.is_subdomain_of(DnsName{}));  // everything under root
  EXPECT_TRUE(example.is_subdomain_of(example));
  EXPECT_FALSE(example.is_subdomain_of(www));
  EXPECT_FALSE(DnsName::must_parse("example.org").is_subdomain_of(com));
  // Label-boundary check: notexample.com is NOT under example.com.
  EXPECT_FALSE(
      DnsName::must_parse("notexample.com").is_subdomain_of(example));
}

TEST(DnsNameTest, ParentAndPrepend) {
  const auto www = DnsName::must_parse("www.example.com");
  EXPECT_EQ(www.parent().to_string(), "example.com");
  EXPECT_EQ(DnsName::must_parse("com").parent(), DnsName{});
  EXPECT_EQ(DnsName{}.parent(), DnsName{});
  EXPECT_EQ(www.parent().prepend("api").to_string(), "api.example.com");
  EXPECT_EQ(DnsName::must_parse("a").concat(DnsName::must_parse("b.c")),
            DnsName::must_parse("a.b.c"));
}

TEST(DnsNameTest, WireRoundTripNoCompression) {
  const auto name = DnsName::must_parse("ns1.z250.lab");
  ByteWriter w;
  name.encode(w, nullptr);
  EXPECT_EQ(w.size(), name.wire_length());
  ByteReader r{w.data()};
  EXPECT_EQ(DnsName::decode(r), name);
  EXPECT_TRUE(r.ok());
}

TEST(DnsNameTest, CompressionProducesPointer) {
  NameCompressor map;
  ByteWriter w;
  const auto a = DnsName::must_parse("www.example.com");
  const auto b = DnsName::must_parse("mail.example.com");
  a.encode(w, &map);
  const std::size_t first_len = w.size();
  b.encode(w, &map);
  // "mail" label (5 bytes) + 2-byte pointer to "example.com".
  EXPECT_EQ(w.size(), first_len + 5 + 2);

  // Both decode correctly from the shared buffer.
  ByteReader r{w.data()};
  EXPECT_EQ(DnsName::decode(r), a);
  EXPECT_EQ(DnsName::decode(r), b);
  EXPECT_TRUE(r.ok());
}

TEST(DnsNameTest, DecodeRejectsPointerLoop) {
  // A name that points to itself: 0xC000 at offset 0.
  const std::vector<std::uint8_t> wire{0xC0, 0x00};
  ByteReader r{wire};
  DnsName::decode(r);
  EXPECT_FALSE(r.ok());
}

TEST(DnsNameTest, DecodeRejectsTruncated) {
  const std::vector<std::uint8_t> wire{0x05, 'a', 'b'};
  ByteReader r{wire};
  DnsName::decode(r);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------- rdata ----

TEST(RrTest, TypeNames) {
  EXPECT_STREQ(rr_type_name(RrType::kAaaa), "AAAA");
  EXPECT_EQ(rr_type_from_name("aaaa"), RrType::kAaaa);
  EXPECT_EQ(rr_type_from_name("HTTPS"), RrType::kHttps);
  EXPECT_FALSE(rr_type_from_name("bogus"));
}

TEST(RrTest, AddressAccessor) {
  const auto a =
      ResourceRecord::a(DnsName::must_parse("x.lab"), *Ipv4Address::parse("10.0.0.1"));
  ASSERT_TRUE(a.address());
  EXPECT_EQ(a.address()->to_string(), "10.0.0.1");
  const auto ns = ResourceRecord::ns(DnsName::must_parse("x.lab"),
                                     DnsName::must_parse("ns.x.lab"));
  EXPECT_FALSE(ns.address());
}

TEST(RrTest, SvcbParamHelpers) {
  SvcbRdata svcb;
  svcb.set_alpn({"h3", "h2"});
  EXPECT_EQ(svcb.alpn(), (std::vector<std::string>{"h3", "h2"}));
  svcb.set_port(8443);
  EXPECT_EQ(svcb.port(), 8443);
  svcb.set_ipv4_hints({*Ipv4Address::parse("192.0.2.1")});
  ASSERT_EQ(svcb.ipv4_hints().size(), 1u);
  EXPECT_EQ(svcb.ipv4_hints()[0].to_string(), "192.0.2.1");
  svcb.set_ipv6_hints({*Ipv6Address::parse("2001:db8::1")});
  ASSERT_EQ(svcb.ipv6_hints().size(), 1u);
  EXPECT_EQ(svcb.ipv6_hints()[0].to_string(), "2001:db8::1");
  EXPECT_FALSE(svcb.has_ech());
  svcb.set_ech({1, 2, 3});
  EXPECT_TRUE(svcb.has_ech());
}

// -------------------------------------------------------------- message ----

DnsMessage sample_message() {
  DnsMessage msg;
  msg.header.id = 0x1234;
  msg.header.qr = true;
  msg.header.aa = true;
  msg.header.rd = true;
  msg.header.ra = true;
  msg.header.rcode = Rcode::kNoError;
  const auto qname = DnsName::must_parse("www.he-test.lab");
  msg.questions.push_back({qname, RrType::kAaaa});
  msg.answers.push_back(
      ResourceRecord::aaaa(qname, *Ipv6Address::parse("2001:db8::10"), 300));
  msg.answers.push_back(
      ResourceRecord::cname(DnsName::must_parse("alias.he-test.lab"), qname));
  msg.authorities.push_back(ResourceRecord::ns(
      DnsName::must_parse("he-test.lab"), DnsName::must_parse("ns1.he-test.lab")));
  msg.additionals.push_back(ResourceRecord::a(
      DnsName::must_parse("ns1.he-test.lab"), *Ipv4Address::parse("10.1.1.1")));
  return msg;
}

TEST(DnsMessageTest, EncodeDecodeRoundTrip) {
  const DnsMessage msg = sample_message();
  const auto wire = msg.encode();
  const auto decoded = DnsMessage::decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value(), msg);
}

TEST(DnsMessageTest, HeaderFlagsRoundTrip) {
  DnsMessage msg;
  msg.header.id = 77;
  msg.header.qr = true;
  msg.header.opcode = 2;
  msg.header.tc = true;
  msg.header.rcode = Rcode::kNxDomain;
  const auto decoded = DnsMessage::decode(msg.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().header, msg.header);
}

TEST(DnsMessageTest, CompressionShrinksMessage) {
  DnsMessage msg = sample_message();
  const auto wire = msg.encode();
  // Upper bound if no compression: sum of full name encodings.
  std::size_t uncompressed = 12;  // header
  uncompressed += msg.questions[0].name.wire_length() + 4;
  for (const auto* section : {&msg.answers, &msg.authorities, &msg.additionals}) {
    for (const auto& rr : *section) {
      uncompressed += rr.name.wire_length() + 10 + 64;  // generous rdata bound
    }
  }
  EXPECT_LT(wire.size(), uncompressed);
  // And the qname suffix should appear exactly once.
  const std::string needle = "he-test";
  std::size_t occurrences = 0;
  for (std::size_t i = 0; i + needle.size() <= wire.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), wire.begin() + static_cast<std::ptrdiff_t>(i))) {
      ++occurrences;
    }
  }
  EXPECT_EQ(occurrences, 1u);
}

TEST(DnsMessageTest, MakeQueryAndResponse) {
  const auto q =
      DnsMessage::make_query(9, DnsName::must_parse("a.lab"), RrType::kA, true);
  EXPECT_FALSE(q.header.qr);
  EXPECT_TRUE(q.header.rd);
  const auto r = DnsMessage::make_response(q, Rcode::kNxDomain);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 9);
  EXPECT_EQ(r.header.rcode, Rcode::kNxDomain);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0].name.to_string(), "a.lab");
}

TEST(DnsMessageTest, AddressesForFollowsCname) {
  DnsMessage msg;
  const auto alias = DnsName::must_parse("alias.lab");
  const auto target = DnsName::must_parse("real.lab");
  msg.answers.push_back(ResourceRecord::cname(alias, target));
  msg.answers.push_back(
      ResourceRecord::a(target, *Ipv4Address::parse("10.0.0.5")));
  const auto addrs = msg.addresses_for(alias, RrType::kA);
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "10.0.0.5");
}

TEST(DnsMessageTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DnsMessage::decode({}).ok());
  const std::vector<std::uint8_t> short_wire{0x00, 0x01, 0x02};
  EXPECT_FALSE(DnsMessage::decode(short_wire).ok());
  // Valid header claiming one question but no question bytes.
  std::vector<std::uint8_t> lying(12, 0);
  lying[5] = 1;  // qdcount = 1
  EXPECT_FALSE(DnsMessage::decode(lying).ok());
}

TEST(DnsMessageTest, DecodeToleratesUnknownRrType) {
  // Hand-craft a message with an unknown type 99 record.
  ByteWriter w;
  w.u16(1);       // id
  w.u16(0x8000);  // qr
  w.u16(0);       // qd
  w.u16(1);       // an
  w.u16(0);
  w.u16(0);
  DnsName::must_parse("x.lab").encode(w, nullptr);
  w.u16(99);  // type
  w.u16(1);   // class
  w.u32(60);  // ttl
  w.u16(3);   // rdlength
  w.u8(0xaa);
  w.u8(0xbb);
  w.u8(0xcc);
  const auto decoded = DnsMessage::decode(w.data());
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  const auto* raw = std::get_if<RawRdata>(&decoded.value().answers[0].rdata);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->data.size(), 3u);
}

// Property test: randomized messages round-trip bit-exact (structurally).
TEST(DnsMessageTest, RandomisedRoundTripProperty) {
  Rng rng{2024};
  const std::vector<std::string> label_pool{"a",  "bb",   "ccc", "www",
                                            "ns1", "zone", "lab", "x9"};
  auto random_name = [&] {
    DnsName name;
    const int n = static_cast<int>(rng.next_in_range(1, 4));
    for (int i = 0; i < n; ++i) {
      name = name.prepend(label_pool[rng.next_below(label_pool.size())]);
    }
    return name;
  };
  auto random_record = [&](const DnsName& name) -> ResourceRecord {
    switch (rng.next_below(6)) {
      case 0:
        return ResourceRecord::a(
            name, simnet::Ipv4Address{static_cast<std::uint32_t>(rng.next_u64())},
            static_cast<std::uint32_t>(rng.next_below(86400)));
      case 1: {
        simnet::Ipv6Address v6;
        for (auto& b : v6.bytes) b = static_cast<std::uint8_t>(rng.next_u64());
        return ResourceRecord::aaaa(name, v6);
      }
      case 2:
        return ResourceRecord::ns(name, random_name());
      case 3:
        return ResourceRecord::cname(name, random_name());
      case 4: {
        TxtRdata txt;
        txt.strings.push_back("p=" + std::to_string(rng.next_below(1000)));
        return ResourceRecord::txt(name, txt.strings);
      }
      default: {
        SvcbRdata svcb;
        svcb.priority = static_cast<std::uint16_t>(rng.next_in_range(0, 3));
        svcb.target = random_name();
        if (rng.chance(0.5)) svcb.set_alpn({"h3"});
        if (rng.chance(0.5)) svcb.set_port(static_cast<std::uint16_t>(
            rng.next_in_range(1, 65535)));
        return ResourceRecord::svcb(name, svcb, rng.chance(0.5));
      }
    }
  };

  for (int iteration = 0; iteration < 200; ++iteration) {
    DnsMessage msg;
    msg.header.id = static_cast<std::uint16_t>(rng.next_u64());
    msg.header.qr = rng.chance(0.5);
    msg.header.aa = rng.chance(0.5);
    msg.header.rd = rng.chance(0.5);
    msg.header.ra = rng.chance(0.5);
    msg.header.rcode = static_cast<Rcode>(rng.next_below(6));
    const auto qname = random_name();
    msg.questions.push_back(
        {qname, rng.chance(0.5) ? RrType::kA : RrType::kAaaa});
    const int answers = static_cast<int>(rng.next_below(4));
    for (int i = 0; i < answers; ++i) {
      msg.answers.push_back(random_record(rng.chance(0.7) ? qname : random_name()));
    }
    const int extra = static_cast<int>(rng.next_below(3));
    for (int i = 0; i < extra; ++i) {
      msg.additionals.push_back(random_record(random_name()));
    }

    const auto wire = msg.encode();
    const auto decoded = DnsMessage::decode(wire);
    ASSERT_TRUE(decoded.ok()) << "iteration " << iteration << ": "
                              << decoded.error();
    EXPECT_EQ(decoded.value(), msg) << "iteration " << iteration;
  }
}

// Property: decoding arbitrary random bytes never crashes (it may fail).
TEST(DnsMessageTest, FuzzDecodeNeverCrashes) {
  Rng rng{7};
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::vector<std::uint8_t> junk(rng.next_below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)DnsMessage::decode(junk);  // must not crash/UB
  }
}

// ---------------------------------------------------------- test params ----

TEST(TestParamsTest, ParseDelayLabels) {
  const auto name = DnsName::must_parse("n42x.d250-aaaa.test.lab");
  const auto params = parse_test_params(name);
  ASSERT_TRUE(params);
  EXPECT_EQ(params->nonce, "42x");
  EXPECT_EQ(params->delay_for(RrType::kAaaa), ms(250));
  EXPECT_EQ(params->delay_for(RrType::kA), ms(0));
}

TEST(TestParamsTest, AllTypesDelay) {
  const auto params =
      parse_test_params(DnsName::must_parse("d100-all.d50-a.t.lab"));
  ASSERT_TRUE(params);
  EXPECT_EQ(params->delay_for(RrType::kA), ms(150));
  EXPECT_EQ(params->delay_for(RrType::kAaaa), ms(100));
}

TEST(TestParamsTest, NoParamsReturnsNullopt) {
  EXPECT_FALSE(parse_test_params(DnsName::must_parse("www.example.com")));
  // "dns" starts with d but is not a delay label; "news" is not a nonce.
  EXPECT_FALSE(parse_test_params(DnsName::must_parse("dns.news-x.example")));
}

TEST(TestParamsTest, MakeTestNameRoundTrip) {
  const auto base = DnsName::must_parse("cad.he.lab");
  const auto name =
      make_test_name(base, "7f3", {{RrType::kAaaa, ms(300)}}, ms(0));
  EXPECT_TRUE(name.is_subdomain_of(base));
  const auto params = parse_test_params(name);
  ASSERT_TRUE(params);
  EXPECT_EQ(params->nonce, "7f3");
  EXPECT_EQ(params->delay_for(RrType::kAaaa), ms(300));
}

TEST(TestParamsTest, NonceMakesNamesUnique) {
  const auto base = DnsName::must_parse("t.lab");
  const auto n1 = make_test_name(base, "1", {});
  const auto n2 = make_test_name(base, "2", {});
  EXPECT_NE(n1, n2);
}

// ------------------------------------------- reuse-friendly entry points ----

// A compression-heavy message: shared suffixes across all sections.
DnsMessage sample_referral() {
  DnsMessage msg;
  msg.header.id = 0x1234;
  msg.header.qr = true;
  const auto qname = DnsName::must_parse("www.example.lab");
  const auto zone = DnsName::must_parse("example.lab");
  const auto ns1 = DnsName::must_parse("ns1.example.lab");
  const auto ns2 = DnsName::must_parse("ns2.example.lab");
  msg.questions.push_back({qname, RrType::kA});
  msg.authorities.push_back(ResourceRecord::ns(zone, ns1));
  msg.authorities.push_back(ResourceRecord::ns(zone, ns2));
  msg.additionals.push_back(
      ResourceRecord::a(ns1, *Ipv4Address::parse("10.0.0.1")));
  msg.additionals.push_back(
      ResourceRecord::a(ns2, *Ipv4Address::parse("10.0.0.2")));
  return msg;
}

TEST(DnsMessageTest, EncodeIntoBufferMatchesLegacyEncode) {
  const DnsMessage msg = sample_referral();
  const std::vector<std::uint8_t> legacy = msg.encode();

  lazyeye::BufferPool pool;
  lazyeye::Buffer buffer{&pool};
  NameCompressor compressor;
  msg.encode_into(buffer, compressor);
  ASSERT_EQ(buffer.size(), legacy.size());
  EXPECT_TRUE(std::equal(buffer.begin(), buffer.end(), legacy.begin()));

  // Reusing the same buffer + compressor for a different message must give
  // exactly what a fresh encode gives (scratch state fully resets).
  const DnsMessage query =
      DnsMessage::make_query(7, DnsName::must_parse("other.zone.lab"),
                             RrType::kAaaa, true);
  msg.encode_into(buffer, compressor);  // dirty the scratch
  query.encode_into(buffer, compressor);
  const std::vector<std::uint8_t> fresh = query.encode();
  ASSERT_EQ(buffer.size(), fresh.size());
  EXPECT_TRUE(std::equal(buffer.begin(), buffer.end(), fresh.begin()));
}

TEST(DnsMessageTest, DecodeIntoReusesTheScratchMessage) {
  const DnsMessage first = sample_referral();
  const DnsMessage second =
      DnsMessage::make_query(42, DnsName::must_parse("q.lab"), RrType::kAaaa);

  DnsMessage scratch;
  ASSERT_TRUE(DnsMessage::decode_into(first.encode(), scratch));
  EXPECT_EQ(scratch, DnsMessage::decode(first.encode()).value());
  // Decoding a smaller message into the same scratch leaves no residue.
  ASSERT_TRUE(DnsMessage::decode_into(second.encode(), scratch));
  EXPECT_EQ(scratch, DnsMessage::decode(second.encode()).value());
  EXPECT_TRUE(scratch.answers.empty());
  EXPECT_TRUE(scratch.authorities.empty());

  // Failure still reports false through the reuse path.
  const std::vector<std::uint8_t> garbage{0x01, 0x02, 0x03};
  EXPECT_FALSE(DnsMessage::decode_into(garbage, scratch));
}

TEST(DnsMessageTest, BufferRoundTripThroughWireAndBack) {
  const DnsMessage msg = sample_referral();
  lazyeye::BufferPool pool;
  lazyeye::Buffer wire{&pool};
  NameCompressor compressor;
  msg.encode_into(wire, compressor);

  DnsMessage decoded;
  ASSERT_TRUE(DnsMessage::decode_into(wire, decoded));  // Buffer -> span
  EXPECT_EQ(decoded, msg);
}

// ------------------------------------- fault-injection shared corpus ----
// The same seeded mutators the conformance layer's injector applies to live
// responses (conformance/fault.h): decode_into must reject or survive every
// corpus member without crashing, and the scratch message must stay reusable
// for pristine wires afterwards.

TEST(DnsMessageTest, DecodeIntoSurvivesTruncationCorpus) {
  const std::vector<std::uint8_t> pristine = sample_referral().encode();
  SplitMix64 rng{conformance::FaultPlan{
      conformance::FaultKind::kDnsTruncate}.rng_seed()};
  DnsMessage scratch;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> wire = pristine;
    conformance::truncate_wire(wire, rng);
    ASSERT_LT(wire.size(), pristine.size()) << "iteration " << i;
    (void)DnsMessage::decode_into(wire, scratch);  // must not crash/UB
    // The scratch stays usable for the next (pristine) decode.
    ASSERT_TRUE(DnsMessage::decode_into(pristine, scratch)) << "iteration " << i;
    EXPECT_EQ(scratch, sample_referral());
  }
}

TEST(DnsMessageTest, DecodeIntoSurvivesCorruptionCorpus) {
  const std::vector<std::uint8_t> pristine = sample_referral().encode();
  SplitMix64 rng{conformance::FaultPlan{
      conformance::FaultKind::kDnsCorrupt}.rng_seed()};
  DnsMessage scratch;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> wire = pristine;
    conformance::corrupt_wire(wire, rng);
    ASSERT_EQ(wire.size(), pristine.size());
    if (DnsMessage::decode_into(wire, scratch)) {
      // A surviving decode must be internally consistent enough to re-encode.
      (void)scratch.encode();
    }
    ASSERT_TRUE(DnsMessage::decode_into(pristine, scratch)) << "iteration " << i;
  }
}

TEST(DnsMessageTest, DecodeIntoSurvivesGarbageCorpus) {
  SplitMix64 rng{12345};
  DnsMessage scratch;
  for (int i = 0; i < 500; ++i) {
    const std::vector<std::uint8_t> junk = conformance::garbage_wire(rng);
    (void)DnsMessage::decode_into(junk, scratch);  // must not crash/UB
  }
  ASSERT_TRUE(DnsMessage::decode_into(sample_referral().encode(), scratch));
  EXPECT_EQ(scratch, sample_referral());
}

TEST(DnsMessageTest, MutatorsAreSeedDeterministic) {
  const std::vector<std::uint8_t> pristine = sample_message().encode();
  for (const auto kind : {conformance::FaultKind::kDnsTruncate,
                          conformance::FaultKind::kDnsCorrupt}) {
    conformance::FaultPlan plan{kind, /*seed=*/9, /*stream=*/3, /*index=*/7};
    SplitMix64 a{plan.rng_seed()};
    SplitMix64 b{plan.rng_seed()};
    std::vector<std::uint8_t> wa = pristine;
    std::vector<std::uint8_t> wb = pristine;
    if (kind == conformance::FaultKind::kDnsTruncate) {
      conformance::truncate_wire(wa, a);
      conformance::truncate_wire(wb, b);
    } else {
      conformance::corrupt_wire(wa, a);
      conformance::corrupt_wire(wb, b);
    }
    EXPECT_EQ(wa, wb) << conformance::fault_kind_name(kind);
    EXPECT_NE(wa, pristine) << conformance::fault_kind_name(kind);
  }
}

TEST(DnsNameTest, DecodePreservesCaseInsensitivity) {
  // Mixed-case labels on the wire land lowercased (in-place decode path).
  ByteWriter w;
  w.u8(3);
  w.bytes(std::string_view{"WwW"});
  w.u8(7);
  w.bytes(std::string_view{"ExAmPlE"});
  w.u8(3);
  w.bytes(std::string_view{"LaB"});
  w.u8(0);
  ByteReader r{w.data()};
  EXPECT_EQ(DnsName::decode(r), DnsName::must_parse("www.example.lab"));
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace lazyeye::dns
