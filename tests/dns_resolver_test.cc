// Recursive resolver engine tests against a small delegation tree:
//   . (root)  ->  lab (TLD)  ->  z1.lab (measurement zone)
// Covers the NS-query strategies, family preference/fallback/backoff, and
// the failure modes Table 3/4 of the paper rely on.
#include <gtest/gtest.h>

#include "dns/auth_server.h"
#include "dns/recursive_resolver.h"
#include "dns/stub_resolver.h"
#include "simnet/network.h"

namespace lazyeye::dns {
namespace {

using simnet::Family;
using simnet::IpAddress;
using simnet::Ipv4Address;
using simnet::Ipv6Address;

DnsName N(const char* s) { return DnsName::must_parse(s); }
Ipv4Address V4(const char* s) { return *Ipv4Address::parse(s); }
Ipv6Address V6(const char* s) { return *Ipv6Address::parse(s); }

struct LabFixture : ::testing::Test {
  // auth_v6: whether the measurement auth host answers on IPv6.
  explicit LabFixture(bool auth_v6 = true)
      : net{7},
        root_host{net.add_host("root")},
        tld_host{net.add_host("tld")},
        auth_host{net.add_host("auth")},
        resolver_host{net.add_host("resolver")} {
    root_host.add_address(IpAddress::must_parse("10.0.0.1"));
    root_host.add_address(IpAddress::must_parse("2001:db8::1"));
    tld_host.add_address(IpAddress::must_parse("10.0.0.2"));
    tld_host.add_address(IpAddress::must_parse("2001:db8::2"));
    auth_host.add_address(IpAddress::must_parse("10.0.1.1"));
    if (auth_v6) {
      auth_host.add_address(IpAddress::must_parse("2001:db8:1::1"));
    }
    resolver_host.add_address(IpAddress::must_parse("10.0.0.10"));
    resolver_host.add_address(IpAddress::must_parse("2001:db8::10"));

    root = std::make_unique<AuthServer>(root_host);
    Zone& root_zone = root->add_zone(DnsName{});
    root_zone.add_ns(N("lab"), N("ns.lab"));
    root_zone.add(ResourceRecord::a(N("ns.lab"), V4("10.0.0.2")));
    root_zone.add(ResourceRecord::aaaa(N("ns.lab"), V6("2001:db8::2")));

    tld = std::make_unique<AuthServer>(tld_host);
    Zone& lab_zone = tld->add_zone(N("lab"));
    lab_zone.add_ns(N("lab"), N("ns.lab"));
    lab_zone.add_a(N("ns.lab"), V4("10.0.0.2"));
    lab_zone.add_aaaa(N("ns.lab"), V6("2001:db8::2"));
    lab_zone.add_ns(N("z1.lab"), N("ns1.z1.lab"));
    lab_zone.add(ResourceRecord::a(N("ns1.z1.lab"), V4("10.0.1.1")));
    lab_zone.add(ResourceRecord::aaaa(N("ns1.z1.lab"), V6("2001:db8:1::1")));

    auth = std::make_unique<AuthServer>(auth_host);
    Zone& z1 = auth->add_zone(N("z1.lab"));
    z1.add_ns(N("z1.lab"), N("ns1.z1.lab"));
    z1.add_a(N("ns1.z1.lab"), V4("10.0.1.1"));
    z1.add_aaaa(N("ns1.z1.lab"), V6("2001:db8:1::1"));
    z1.add_a(N("www.z1.lab"), V4("10.0.1.80"));
    z1.add_aaaa(N("www.z1.lab"), V6("2001:db8:1::80"));
  }

  RecursiveResolver make_resolver(ResolverProfile profile) {
    return RecursiveResolver{
        resolver_host, std::move(profile),
        {IpAddress::must_parse("10.0.0.1"),
         IpAddress::must_parse("2001:db8::1")}};
  }

  /// Runs one query to completion; returns the outcome.
  QueryOutcome run_query(RecursiveResolver& resolver, const DnsName& qname,
                         RrType qtype = RrType::kA) {
    QueryOutcome result;
    bool finished = false;
    resolver.resolve(qname, qtype, [&](const QueryOutcome& out) {
      result = out;
      finished = true;
    });
    net.loop().run();
    EXPECT_TRUE(finished);
    return result;
  }

  simnet::Network net;
  simnet::Host& root_host;
  simnet::Host& tld_host;
  simnet::Host& auth_host;
  simnet::Host& resolver_host;
  std::unique_ptr<AuthServer> root;
  std::unique_ptr<AuthServer> tld;
  std::unique_ptr<AuthServer> auth;
};

ResolverProfile v4_only_profile() {
  ResolverProfile p;
  p.name = "test-v4";
  p.ipv6_probability = 0.0;
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  return p;
}

TEST_F(LabFixture, ResolvesThroughDelegationChain) {
  auto resolver = make_resolver(v4_only_profile());
  const auto out = run_query(resolver, N("www.z1.lab"));
  ASSERT_TRUE(out.ok) << out.error;
  const auto addrs = out.response.addresses_for(N("www.z1.lab"), RrType::kA);
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "10.0.1.80");
  // Root, TLD and auth each saw exactly one (main) query.
  EXPECT_EQ(root->query_log().size(), 1u);
  EXPECT_EQ(tld->query_log().size(), 1u);
  EXPECT_EQ(auth->query_log().size(), 1u);
}

TEST_F(LabFixture, AaaaQueryType) {
  auto resolver = make_resolver(v4_only_profile());
  const auto out = run_query(resolver, N("www.z1.lab"), RrType::kAaaa);
  ASSERT_TRUE(out.ok);
  const auto addrs =
      out.response.addresses_for(N("www.z1.lab"), RrType::kAaaa);
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "2001:db8:1::80");
}

TEST_F(LabFixture, NxDomainPropagates) {
  auto resolver = make_resolver(v4_only_profile());
  const auto out = run_query(resolver, N("missing.z1.lab"));
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.rcode, Rcode::kNxDomain);
}

TEST_F(LabFixture, AaaaThenAStrategyOrderAtAuth) {
  ResolverProfile p;
  p.name = "unbound-ish";
  p.ns_query_strategy = NsQueryStrategy::kAaaaThenA;
  p.ipv6_probability = 0.0;  // main queries over v4 for determinism
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z1.lab"));
  ASSERT_TRUE(out.ok) << out.error;

  // Auth log: AAAA ns1, A ns1 (NS acquisition), then A www (main query).
  const auto& log = auth->query_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].qtype, RrType::kAaaa);
  EXPECT_EQ(log[0].qname, N("ns1.z1.lab"));
  EXPECT_EQ(log[1].qtype, RrType::kA);
  EXPECT_EQ(log[1].qname, N("ns1.z1.lab"));
  EXPECT_EQ(log[2].qname, N("www.z1.lab"));
  // AAAA was requested before the main query reached the auth server.
  EXPECT_LT(log[0].time, log[2].time);
}

TEST_F(LabFixture, AThenAaaaStrategyOrderAtAuth) {
  ResolverProfile p;
  p.name = "bind-ish";
  p.ns_query_strategy = NsQueryStrategy::kAThenAaaa;
  p.ipv6_probability = 0.0;
  auto resolver = make_resolver(p);
  ASSERT_TRUE(run_query(resolver, N("www.z1.lab")).ok);
  const auto& log = auth->query_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].qtype, RrType::kA);
  EXPECT_EQ(log[1].qtype, RrType::kAaaa);
}

TEST_F(LabFixture, EitherOrStrategySendsOneTypeOnly) {
  ResolverProfile p;
  p.name = "knot-ish";
  p.ns_query_strategy = NsQueryStrategy::kEitherOr;
  p.ipv6_probability = 0.0;
  auto resolver = make_resolver(p);
  ASSERT_TRUE(run_query(resolver, N("www.z1.lab")).ok);
  const auto& log = auth->query_log();
  // One NS-name query + the main query.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].qname, N("ns1.z1.lab"));
  EXPECT_EQ(log[1].qname, N("www.z1.lab"));
}

TEST_F(LabFixture, DeferredAaaaAfterFirstUse) {
  ResolverProfile p;
  p.name = "google-ish";
  p.ns_query_strategy = NsQueryStrategy::kAaaaAfterFirstUse;
  p.ipv6_probability = 0.0;
  auto resolver = make_resolver(p);
  ASSERT_TRUE(run_query(resolver, N("www.z1.lab")).ok);
  const auto& log = auth->query_log();
  ASSERT_EQ(log.size(), 2u);
  // Main query first, AAAA for the NS name afterwards.
  EXPECT_EQ(log[0].qname, N("www.z1.lab"));
  EXPECT_EQ(log[1].qname, N("ns1.z1.lab"));
  EXPECT_EQ(log[1].qtype, RrType::kAaaa);
  EXPECT_LT(log[0].time, log[1].time);
}

TEST_F(LabFixture, StrictIpv6PreferenceUsesV6Transport) {
  ResolverProfile p;
  p.name = "bind-pref";
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_probability = 1.0;
  auto resolver = make_resolver(p);
  ASSERT_TRUE(run_query(resolver, N("www.z1.lab")).ok);
  ASSERT_EQ(auth->query_log().size(), 1u);
  EXPECT_EQ(auth->query_log()[0].family, Family::kIpv6);
}

TEST_F(LabFixture, FallsBackToV4WhenV6TimesOut) {
  // Drop all IPv6 traffic to the auth server.
  net.qdisc().add_rule(
      simnet::PacketFilter::to_address(IpAddress::must_parse("2001:db8:1::1")),
      simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0}, "drop v6 to auth");

  ResolverProfile p;
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_probability = 1.0;
  p.attempt_timeout = ms(800);
  p.max_packets_per_family = 1;
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z1.lab"));
  ASSERT_TRUE(out.ok) << out.error;
  // One v4 query eventually reached the auth server.
  ASSERT_EQ(auth->query_log().size(), 1u);
  EXPECT_EQ(auth->query_log()[0].family, Family::kIpv4);
  // The switch happened only after the 800 ms attempt timeout.
  EXPECT_GE(net.loop().now(), ms(800));
  // And the engine noted the family switch.
  bool switched = false;
  for (const auto& step : resolver.steps()) {
    if (step.kind == ResolveStep::Kind::kFamilySwitch) switched = true;
  }
  EXPECT_TRUE(switched);
}

TEST_F(LabFixture, RetriesSameFamilyWithBackoff) {
  net.qdisc().add_rule(
      simnet::PacketFilter::to_address(IpAddress::must_parse("2001:db8:1::1")),
      simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0}, "drop v6 to auth");

  ResolverProfile p;  // Unbound-style
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_probability = 1.0;
  p.attempt_timeout = ms(376);
  p.max_packets_per_family = 2;
  p.retry_same_family_prob = 1.0;  // force the retry path
  p.backoff_factor = 3.0;
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z1.lab"));
  ASSERT_TRUE(out.ok) << out.error;

  // Two v6 attempts towards the auth server: 376 ms + 1128 ms, then the v4
  // fallback. (Filter by target address: the same qname is also sent to the
  // root/TLD servers on the way down.)
  int v6_sends = 0;
  for (const auto& step : resolver.steps()) {
    if (step.kind == ResolveStep::Kind::kQuerySent &&
        step.note.find("2001:db8:1::1") != std::string::npos) {
      ++v6_sends;
    }
  }
  EXPECT_EQ(v6_sends, 2);
  EXPECT_GE(net.loop().now(), ms(376) + ms(1128));
}

TEST_F(LabFixture, StickToFamilyFailsWithoutSwitching) {
  net.qdisc().add_rule(
      simnet::PacketFilter::to_address(IpAddress::must_parse("2001:db8:1::1")),
      simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0}, "drop v6 to auth");

  ResolverProfile p;  // DNS0.EU-style
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_probability = 1.0;
  p.attempt_timeout = ms(200);
  p.stick_to_family = true;
  p.max_total_attempts = 3;
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z1.lab"));
  EXPECT_FALSE(out.ok);
  // It never reached the auth server over IPv4.
  for (const auto& entry : auth->query_log()) {
    EXPECT_NE(entry.family, Family::kIpv4);
  }
}

TEST_F(LabFixture, MultiplePacketsPerFamilyBeforeSwitch) {
  net.qdisc().add_rule(
      simnet::PacketFilter::to_address(IpAddress::must_parse("2001:db8:1::1")),
      simnet::NetemSpec{SimTime{0}, SimTime{0}, 1.0}, "drop v6 to auth");

  ResolverProfile p;  // Yandex-style
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_probability = 1.0;
  p.attempt_timeout = ms(300);
  p.max_packets_per_family = 6;
  p.retry_same_family_prob = 1.0;
  p.max_total_attempts = 8;
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z1.lab"));
  ASSERT_TRUE(out.ok) << out.error;

  int v6_sends = 0;
  for (const auto& step : resolver.steps()) {
    if (step.kind == ResolveStep::Kind::kQuerySent &&
        step.note.find("2001:db8:1::1") != std::string::npos) {
      ++v6_sends;
    }
  }
  EXPECT_EQ(v6_sends, 6);
}

struct V6OnlyLabFixture : LabFixture {
  V6OnlyLabFixture() : LabFixture() {
    // Rebuild the z1 delegation as IPv6-only: replace glue and zone data.
    // (Destroy first: the old server must release port 53 before the new
    // one binds it.)
    tld.reset();
    auth.reset();
    tld = std::make_unique<AuthServer>(tld_host);
    Zone& lab_zone = tld->add_zone(N("lab"));
    lab_zone.add_ns(N("lab"), N("ns.lab"));
    lab_zone.add_a(N("ns.lab"), V4("10.0.0.2"));
    lab_zone.add_ns(N("z6.lab"), N("ns1.z6.lab"));
    lab_zone.add(ResourceRecord::aaaa(N("ns1.z6.lab"), V6("2001:db8:1::1")));

    auth = std::make_unique<AuthServer>(auth_host);
    Zone& z6 = auth->add_zone(N("z6.lab"));
    z6.add_ns(N("z6.lab"), N("ns1.z6.lab"));
    z6.add_aaaa(N("ns1.z6.lab"), V6("2001:db8:1::1"));
    z6.add_a(N("www.z6.lab"), V4("10.0.1.80"));
  }
};

TEST_F(V6OnlyLabFixture, Ipv6CapableResolvesV6OnlyDelegation) {
  ResolverProfile p;
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_probability = 0.5;
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z6.lab"));
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_EQ(auth->query_log().size(), 1u);
  EXPECT_EQ(auth->query_log()[0].family, Family::kIpv6);
}

TEST_F(V6OnlyLabFixture, NonCapableResolverFailsV6OnlyDelegation) {
  // Hurricane Electric / Lumen / Dyn / G-Core behaviour (Table 4).
  ResolverProfile p;
  p.ns_query_strategy = NsQueryStrategy::kGlueOnly;
  p.ipv6_transport_capable = false;
  p.max_total_attempts = 2;
  p.overall_timeout = lazyeye::sec(5);
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z6.lab"));
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(auth->query_log().empty());
}

TEST_F(LabFixture, ServesStubClients) {
  auto resolver = make_resolver(v4_only_profile());
  resolver.serve(53);

  simnet::Host& client = net.add_host("client");
  client.add_address(IpAddress::must_parse("10.0.0.20"));
  StubOptions options;
  options.servers = {{IpAddress::must_parse("10.0.0.10"), 53}};
  StubResolver stub{client, options};

  std::vector<IpAddress> got;
  stub.resolve(N("www.z1.lab"), RrType::kA, [&](const QueryOutcome& out) {
    ASSERT_TRUE(out.ok) << out.error;
    got = out.response.addresses_for(N("www.z1.lab"), RrType::kA);
  });
  net.loop().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].to_string(), "10.0.1.80");
}

TEST_F(LabFixture, DelegationCacheSkipsUpperTree) {
  auto resolver = make_resolver(v4_only_profile());
  resolver.set_delegation_cache_enabled(true);
  ASSERT_TRUE(run_query(resolver, N("www.z1.lab")).ok);
  const auto root_queries = root->query_log().size();
  ASSERT_TRUE(run_query(resolver, N("ns1.z1.lab")).ok);
  // Second query should not revisit the root.
  EXPECT_EQ(root->query_log().size(), root_queries);
}

TEST_F(LabFixture, OverallTimeoutFires) {
  // Black-hole everything towards the root: the resolver can never start.
  root->set_unresponsive(true);
  ResolverProfile p = v4_only_profile();
  p.attempt_timeout = lazyeye::sec(2);
  p.max_total_attempts = 100;
  p.stick_to_family = true;
  p.overall_timeout = lazyeye::sec(5);
  auto resolver = make_resolver(p);
  const auto out = run_query(resolver, N("www.z1.lab"));
  EXPECT_FALSE(out.ok);
  // resolve() started at t = 0, so the budget expires at exactly 5 s.
  EXPECT_EQ(net.loop().now(), lazyeye::sec(5));
}

}  // namespace
}  // namespace lazyeye::dns
