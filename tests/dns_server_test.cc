// Zone lookup semantics, authoritative server behaviour (delays, logs,
// referrals), and stub resolver behaviour (dual queries, failover, timeout).
#include <gtest/gtest.h>

#include "dns/auth_server.h"
#include "dns/stub_resolver.h"
#include "dns/zone.h"
#include "simnet/network.h"

namespace lazyeye::dns {
namespace {

using simnet::Family;
using simnet::IpAddress;
using simnet::Ipv4Address;
using simnet::Ipv6Address;

DnsName N(const char* s) { return DnsName::must_parse(s); }
Ipv4Address V4(const char* s) { return *Ipv4Address::parse(s); }
Ipv6Address V6(const char* s) { return *Ipv6Address::parse(s); }

// ----------------------------------------------------------------- zone ----

class ZoneTest : public ::testing::Test {
 protected:
  ZoneTest() : zone_{N("he.lab")} {
    zone_.add_a(N("www.he.lab"), V4("10.0.0.10"));
    zone_.add_a(N("www.he.lab"), V4("10.0.0.11"));
    zone_.add_aaaa(N("www.he.lab"), V6("2001:db8::10"));
    zone_.add_cname(N("alias.he.lab"), N("www.he.lab"));
    zone_.add_ns(N("sub.he.lab"), N("ns1.sub.he.lab"));
    zone_.add(ResourceRecord::a(N("ns1.sub.he.lab"), V4("10.0.9.1")));
    zone_.add(ResourceRecord::aaaa(N("ns1.sub.he.lab"), V6("2001:db8:9::1")));
  }
  Zone zone_;
};

TEST_F(ZoneTest, AnswerReturnsAllRecordsOfType) {
  const auto r = zone_.lookup(N("www.he.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kAnswer);
  EXPECT_EQ(r.records.size(), 2u);
}

TEST_F(ZoneTest, NoDataForExistingNameWrongType) {
  const auto r = zone_.lookup(N("www.he.lab"), RrType::kTxt);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kNoData);
  ASSERT_TRUE(r.soa);
  EXPECT_EQ(r.soa->type, RrType::kSoa);
}

TEST_F(ZoneTest, NxDomainForMissingName) {
  const auto r = zone_.lookup(N("missing.he.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kNxDomain);
  ASSERT_TRUE(r.soa);
}

TEST_F(ZoneTest, EmptyNonTerminalIsNoData) {
  // "sub.he.lab" has NS; "he.lab" apex exists. A name that only exists as a
  // path component: add a deep record and query the middle.
  Zone z{N("he.lab")};
  z.add_a(N("a.b.he.lab"), V4("10.0.0.1"));
  const auto r = z.lookup(N("b.he.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kNoData);
}

TEST_F(ZoneTest, CnameReturned) {
  const auto r = zone_.lookup(N("alias.he.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kCname);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].type, RrType::kCname);
}

TEST_F(ZoneTest, CnameQueryForCnameTypeIsAnswer) {
  const auto r = zone_.lookup(N("alias.he.lab"), RrType::kCname);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kAnswer);
}

TEST_F(ZoneTest, DelegationWithGlue) {
  const auto r = zone_.lookup(N("www.sub.he.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kDelegation);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].type, RrType::kNs);
  // Glue: both A and AAAA of ns1.sub.he.lab.
  EXPECT_EQ(r.additional.size(), 2u);
}

TEST_F(ZoneTest, DelegationAppliesToApexOfCut) {
  const auto r = zone_.lookup(N("sub.he.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kDelegation);
}

TEST_F(ZoneTest, NotInZone) {
  const auto r = zone_.lookup(N("www.other.lab"), RrType::kA);
  EXPECT_EQ(r.kind, Zone::RcodeKind::kNotInZone);
}

TEST_F(ZoneTest, ApexNsIsNotDelegation) {
  Zone z{N("he.lab")};
  z.add_ns(N("he.lab"), N("ns1.he.lab"));
  z.add_a(N("www.he.lab"), V4("10.0.0.1"));
  EXPECT_EQ(z.lookup(N("www.he.lab"), RrType::kA).kind,
            Zone::RcodeKind::kAnswer);
  EXPECT_EQ(z.lookup(N("he.lab"), RrType::kNs).kind, Zone::RcodeKind::kAnswer);
}

TEST_F(ZoneTest, AddOutsideZoneThrows) {
  EXPECT_THROW(zone_.add_a(N("www.other.lab"), V4("10.0.0.1")),
               std::invalid_argument);
}

// ---------------------------------------------------------- auth server ----

struct AuthFixture : ::testing::Test {
  AuthFixture() : net{1}, server_host{net.add_host("auth")},
                  client_host{net.add_host("client")} {
    server_host.add_address(IpAddress::must_parse("10.0.0.53"));
    server_host.add_address(IpAddress::must_parse("2001:db8::53"));
    client_host.add_address(IpAddress::must_parse("10.0.0.2"));
    client_host.add_address(IpAddress::must_parse("2001:db8::2"));
    auth = std::make_unique<AuthServer>(server_host);
    Zone& zone = auth->add_zone(N("he.lab"));
    zone.add_a(N("www.he.lab"), V4("10.0.0.80"));
    zone.add_aaaa(N("www.he.lab"), V6("2001:db8::80"));
    // A wildcard-ish record used by delay tests (params are labels on top).
    zone.add_a(N("d250-aaaa.rd.he.lab"), V4("10.0.0.81"));
    zone.add_aaaa(N("d250-aaaa.rd.he.lab"), V6("2001:db8::81"));
  }

  /// Sends a raw query and records responses with timestamps.
  void send_query(const DnsName& qname, RrType type,
                  Family family = Family::kIpv4) {
    const std::uint16_t port = client_host.ephemeral_port();
    const auto src = *client_host.address(family);
    const auto dst = family == Family::kIpv4
                         ? IpAddress::must_parse("10.0.0.53")
                         : IpAddress::must_parse("2001:db8::53");
    client_host.udp_bind(port, [this](const simnet::Packet& p) {
      auto decoded = DnsMessage::decode(p.payload);
      ASSERT_TRUE(decoded.ok());
      responses.emplace_back(net.loop().now(), std::move(decoded).value());
    });
    const auto query = DnsMessage::make_query(next_id++, qname, type);
    client_host.udp_send({src, port}, {dst, 53}, query.encode());
  }

  simnet::Network net;
  simnet::Host& server_host;
  simnet::Host& client_host;
  std::unique_ptr<AuthServer> auth;
  std::vector<std::pair<SimTime, DnsMessage>> responses;
  std::uint16_t next_id = 100;
};

TEST_F(AuthFixture, AnswersAuthoritatively) {
  send_query(N("www.he.lab"), RrType::kA);
  net.loop().run();
  ASSERT_EQ(responses.size(), 1u);
  const DnsMessage& r = responses[0].second;
  EXPECT_TRUE(r.header.aa);
  EXPECT_EQ(r.header.rcode, Rcode::kNoError);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].address()->to_string(), "10.0.0.80");
}

TEST_F(AuthFixture, RefusesOutOfZone) {
  send_query(N("www.elsewhere.example"), RrType::kA);
  net.loop().run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].second.header.rcode, Rcode::kRefused);
}

TEST_F(AuthFixture, QnameEncodedDelayAppliesPerType) {
  send_query(N("d250-aaaa.rd.he.lab"), RrType::kAaaa);
  send_query(N("d250-aaaa.rd.he.lab"), RrType::kA);
  net.loop().run();
  ASSERT_EQ(responses.size(), 2u);
  // A response (no delay) arrives first; AAAA 250 ms later.
  EXPECT_EQ(responses[0].second.questions[0].type, RrType::kA);
  EXPECT_EQ(responses[1].second.questions[0].type, RrType::kAaaa);
  const SimTime delta = responses[1].first - responses[0].first;
  EXPECT_EQ(delta, ms(250));
}

TEST_F(AuthFixture, StaticDelayRuleAndQueryLog) {
  auth->add_delay_rule({RrType::kA, std::nullopt, ms(100)});
  send_query(N("www.he.lab"), RrType::kA, Family::kIpv6);
  net.loop().run();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].first, ms(100) + 2 * net.base_delay());
  ASSERT_EQ(auth->query_log().size(), 1u);
  EXPECT_EQ(auth->query_log()[0].family, Family::kIpv6);
  EXPECT_EQ(auth->query_log()[0].qtype, RrType::kA);
}

TEST_F(AuthFixture, UnresponsiveDropsButLogs) {
  auth->set_unresponsive(true);
  send_query(N("www.he.lab"), RrType::kA);
  net.loop().run();
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(auth->query_log().size(), 1u);
}

TEST_F(AuthFixture, GarbagePayloadIgnored) {
  const auto src = *client_host.address(Family::kIpv4);
  client_host.udp_send({src, 4444}, {IpAddress::must_parse("10.0.0.53"), 53},
                       {0xde, 0xad});
  net.loop().run();
  EXPECT_TRUE(responses.empty());
  EXPECT_EQ(auth->queries_received(), 1u);
  EXPECT_TRUE(auth->query_log().empty());
}

TEST_F(AuthFixture, CnameChasedWithinZone) {
  Zone& zone = auth->add_zone(N("alias.lab"));
  zone.add_cname(N("www.alias.lab"), N("target.alias.lab"));
  zone.add_a(N("target.alias.lab"), V4("10.0.0.90"));
  send_query(N("www.alias.lab"), RrType::kA);
  net.loop().run();
  ASSERT_EQ(responses.size(), 1u);
  const auto& r = responses[0].second;
  EXPECT_EQ(r.answers.size(), 2u);  // CNAME + A
  const auto addrs = r.addresses_for(N("www.alias.lab"), RrType::kA);
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "10.0.0.90");
}

TEST_F(AuthFixture, ReferralForDelegatedChild) {
  Zone& parent = auth->add_zone(N("parent.lab"));
  parent.add_ns(N("child.parent.lab"), N("ns1.child.parent.lab"));
  parent.add(ResourceRecord::a(N("ns1.child.parent.lab"), V4("10.0.7.1")));
  send_query(N("www.child.parent.lab"), RrType::kA);
  net.loop().run();
  ASSERT_EQ(responses.size(), 1u);
  const auto& r = responses[0].second;
  EXPECT_FALSE(r.header.aa);
  ASSERT_EQ(r.authorities.size(), 1u);
  EXPECT_EQ(r.authorities[0].type, RrType::kNs);
  ASSERT_EQ(r.additionals.size(), 1u);  // glue
}

TEST_F(AuthFixture, MostSpecificZoneWins) {
  Zone& child = auth->add_zone(N("sub.he.lab"));
  child.add_a(N("www.sub.he.lab"), V4("10.0.8.8"));
  send_query(N("www.sub.he.lab"), RrType::kA);
  net.loop().run();
  ASSERT_EQ(responses.size(), 1u);
  const auto addrs =
      responses[0].second.addresses_for(N("www.sub.he.lab"), RrType::kA);
  ASSERT_EQ(addrs.size(), 1u);
  EXPECT_EQ(addrs[0].to_string(), "10.0.8.8");
}

// ---------------------------------------------------------- stub resolver --

struct StubFixture : AuthFixture {
  StubFixture() {
    StubOptions options;
    options.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
    options.timeout = lazyeye::sec(5);
    stub = std::make_unique<StubResolver>(client_host, options);
  }
  std::unique_ptr<StubResolver> stub;
};

TEST_F(StubFixture, ResolveSingleType) {
  std::vector<IpAddress> got;
  stub->resolve(N("www.he.lab"), RrType::kA, [&](const QueryOutcome& out) {
    ASSERT_TRUE(out.ok);
    got = out.response.addresses_for(N("www.he.lab"), RrType::kA);
  });
  net.loop().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].to_string(), "10.0.0.80");
}

TEST_F(StubFixture, DualEmitsPerTypeInArrivalOrder) {
  std::vector<RrType> arrival_order;
  StubResolver::DualHandlers handlers;
  handlers.on_records = [&](RrType type, const std::vector<IpAddress>& addrs,
                            SimTime) {
    arrival_order.push_back(type);
    EXPECT_FALSE(addrs.empty());
  };
  stub->resolve_dual(N("www.he.lab"), handlers);
  net.loop().run();
  ASSERT_EQ(arrival_order.size(), 2u);
  // No delays: AAAA was sent first, so it arrives first.
  EXPECT_EQ(arrival_order[0], RrType::kAaaa);
  EXPECT_EQ(arrival_order[1], RrType::kA);
}

TEST_F(StubFixture, DelayedAaaaArrivesSecond) {
  std::vector<std::pair<RrType, SimTime>> arrivals;
  StubResolver::DualHandlers handlers;
  handlers.on_records = [&](RrType type, const std::vector<IpAddress>&,
                            SimTime) {
    arrivals.emplace_back(type, net.loop().now());
  };
  stub->resolve_dual(N("d250-aaaa.rd.he.lab"), handlers);
  net.loop().run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0].first, RrType::kA);
  EXPECT_EQ(arrivals[1].first, RrType::kAaaa);
  EXPECT_EQ(arrivals[1].second - arrivals[0].second, ms(250));
}

TEST_F(StubFixture, TimeoutReportedPerType) {
  auth->set_unresponsive(true);
  StubOptions options;
  options.servers = {{IpAddress::must_parse("10.0.0.53"), 53}};
  options.timeout = ms(500);
  options.attempts_per_server = 1;
  StubResolver fast_stub{client_host, options};

  int errors = 0;
  StubResolver::DualHandlers handlers;
  handlers.on_error = [&](RrType, const std::string& error) {
    EXPECT_EQ(error, "all servers failed");
    ++errors;
  };
  fast_stub.resolve_dual(N("www.he.lab"), handlers);
  net.loop().run();
  EXPECT_EQ(errors, 2);
}

TEST_F(StubFixture, FailoverToSecondServer) {
  // First server does not exist (blackhole), second is the real one.
  StubOptions options;
  options.servers = {{IpAddress::must_parse("10.0.0.99"), 53},
                     {IpAddress::must_parse("10.0.0.53"), 53}};
  options.timeout = ms(300);
  options.attempts_per_server = 1;
  StubResolver failover_stub{client_host, options};

  bool answered = false;
  failover_stub.resolve(N("www.he.lab"), RrType::kA,
                        [&](const QueryOutcome& out) {
                          answered = out.ok;
                          EXPECT_GE(out.rtt, SimTime{0});
                        });
  net.loop().run();
  EXPECT_TRUE(answered);
  // The failed first attempt should put us past 300 ms.
  EXPECT_GE(net.loop().now(), ms(300));
}

TEST_F(StubFixture, CancelSuppressesCallbacks) {
  int calls = 0;
  StubResolver::DualHandlers handlers;
  handlers.on_records = [&](RrType, const std::vector<IpAddress>&, SimTime) {
    ++calls;
  };
  handlers.on_error = [&](RrType, const std::string&) { ++calls; };
  const auto handle = stub->resolve_dual(N("www.he.lab"), handlers);
  stub->cancel(handle);
  net.loop().run();
  EXPECT_EQ(calls, 0);
}

TEST_F(StubFixture, NxdomainYieldsEmptyRecords) {
  std::vector<std::size_t> sizes;
  StubResolver::DualHandlers handlers;
  handlers.on_records = [&](RrType, const std::vector<IpAddress>& addrs,
                            SimTime) {
    sizes.push_back(addrs.size());
  };
  stub->resolve_dual(N("missing.he.lab"), handlers);
  net.loop().run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 0u);
  EXPECT_EQ(sizes[1], 0u);
}

}  // namespace
}  // namespace lazyeye::dns
