// Coverage-guided fault hunt: crash safety, determinism, and the schedule
// codec.
//
// The kill(SIGKILL) tests run FIRST in this binary: they fork, and fork()
// is only safe while no WorkerPool threads exist yet (hunts in both the
// child and the parent reference run use workers=1, which executes inline).
// The multi-worker determinism tests at the bottom are what spin up pool
// threads, after all forking is done.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "campaign/journal.h"
#include "campaign/runner.h"
#include "campaign/scenario.h"
#include "clients/profiles.h"
#include "conformance/checker.h"
#include "conformance/schedule.h"
#include "conformance/search.h"
#include "util/time.h"

namespace lazyeye::conformance {
namespace {

std::string tmp_path(const std::string& name) {
  std::string path = ::testing::TempDir();
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path.append("lazyeye_");
  path.append(name);
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<clients::ClientProfile> hunt_profiles() {
  std::vector<clients::ClientProfile> profiles =
      clients::local_testbed_profiles();
  profiles.resize(2);
  return profiles;
}

HuntOptions hunt_options(const std::string& journal_path) {
  HuntOptions options;
  options.seed = 11;
  options.budget = 16;
  options.snapshot_every = 4;
  options.workers = 1;
  options.journal_path = journal_path;
  return options;
}

// ----------------------------------------------------- kill -9 + resume ----
// Must stay the first tests in this file (see the header comment).

#if defined(__unix__) || defined(__APPLE__)

/// Forks a child that runs a journaled hunt and SIGKILLs itself right after
/// candidate `kill_after`'s cell record is appended — BEFORE any snapshot
/// due at that index, so kill points on a snapshot boundary land in the
/// cell/snapshot gap the resume path must repair. The parent then resumes
/// the journal to completion and byte-compares journal and corpus against
/// `reference` (an uninterrupted run of the same options).
void kill_resume_round(int kill_after, const std::string& reference_journal,
                       const std::string& reference_corpus) {
  const std::string path =
      tmp_path("hunt_kill" + std::to_string(kill_after) + ".journal");

  std::fflush(nullptr);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    HuntOptions options = hunt_options(path);
    options.after_cell = [kill_after](int index) {
      if (index == kill_after) {
        std::fflush(nullptr);
        raise(SIGKILL);
      }
    };
    FaultHunt hunt{options, hunt_profiles()};
    hunt.run();
    _exit(7);  // not reached: the hunt must die before finishing
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Partial journal: exactly the candidates up to the kill point.
  const campaign::JournalLoad load = campaign::load_journal(path);
  ASSERT_TRUE(load.exists);
  EXPECT_EQ(load.cells.size(), static_cast<std::size_t>(kill_after) + 1);
  EXPECT_FALSE(load.complete);

  // Resume: snapshot restore + tail replay + the remaining candidates.
  FaultHunt resumed{hunt_options(path), hunt_profiles()};
  const HuntResult result = resumed.run();
  EXPECT_TRUE(result.resumed);
  EXPECT_EQ(result.candidates, 16);

  EXPECT_EQ(read_file(path), reference_journal)
      << "journal after kill at candidate " << kill_after
      << " + resume is not byte-identical to the uninterrupted run";
  EXPECT_EQ(FaultHunt::corpus_text(result.corpus), reference_corpus)
      << "corpus after kill at candidate " << kill_after
      << " diverged from the uninterrupted run";
}

TEST(FaultSearchCrashTest, KillNineMidHuntThenResumeIsByteIdentical) {
  // Uninterrupted reference (workers=1: inline, still fork-safe after).
  const std::string reference_path = tmp_path("hunt_reference.journal");
  FaultHunt reference{hunt_options(reference_path), hunt_profiles()};
  const HuntResult expected = reference.run();
  EXPECT_FALSE(expected.resumed);
  EXPECT_EQ(expected.candidates, 16);
  EXPECT_FALSE(expected.corpus.empty());
  const std::string reference_journal = read_file(reference_path);
  const std::string reference_corpus = FaultHunt::corpus_text(expected.corpus);
  ASSERT_FALSE(reference_journal.empty());

  // Kill points: mid-cadence (5), and on a snapshot boundary (7, 11) where
  // the cell record lands but its snapshot does not — resume must re-emit
  // the missing snapshot for the journals to stay byte-identical.
  kill_resume_round(5, reference_journal, reference_corpus);
  kill_resume_round(7, reference_journal, reference_corpus);
  kill_resume_round(11, reference_journal, reference_corpus);
}

TEST(FaultSearchCrashTest, CompletedJournalReloadsWithoutRerun) {
  const std::string path = tmp_path("hunt_complete.journal");
  FaultHunt first{hunt_options(path), hunt_profiles()};
  const HuntResult fresh = first.run();
  EXPECT_FALSE(fresh.resumed);

  // Second run with equal options: pure journal replay, identical corpus.
  FaultHunt second{hunt_options(path), hunt_profiles()};
  const HuntResult replayed = second.run();
  EXPECT_TRUE(replayed.resumed);
  EXPECT_EQ(replayed.corpus, fresh.corpus);
  EXPECT_EQ(replayed.coverage, fresh.coverage);
  EXPECT_EQ(replayed.violating_candidates, fresh.violating_candidates);
}

TEST(FaultSearchCrashTest, JournalIdentityMismatchRefused) {
  const std::string path = tmp_path("hunt_identity.journal");
  FaultHunt first{hunt_options(path), hunt_profiles()};
  first.run();

  HuntOptions different = hunt_options(path);
  different.budget = 32;  // different identity: refuse, never mix corpora
  FaultHunt second{different, hunt_profiles()};
  EXPECT_THROW(second.run(), campaign::JournalError);
}

#endif  // unix

// -------------------------------------------------------- schedule codec ----

TEST(ScheduleCodecTest, GeneratedSchedulesRoundTrip) {
  for (std::uint32_t index = 0; index < 24; ++index) {
    const FaultSchedule schedule = FaultSchedule::generate(11, 3, index);
    ASSERT_FALSE(schedule.entries.empty());
    ASSERT_LE(schedule.entries.size(), 3u);

    const auto decoded = decode_schedule(encode_schedule(schedule));
    ASSERT_TRUE(decoded.has_value()) << "index " << index;
    EXPECT_EQ(*decoded, schedule);

    const auto from_hex = schedule_from_hex(schedule_to_hex(schedule));
    ASSERT_TRUE(from_hex.has_value()) << "index " << index;
    EXPECT_EQ(*from_hex, schedule);
  }
}

TEST(ScheduleCodecTest, MutatedScheduleRoundTripsAndRunsDistinctWorld) {
  const FaultSchedule parent = FaultSchedule::generate(11, 3, 0);
  FaultSchedule mutant = parent;
  mutant.entries[0].start = lazyeye::ms(5);
  mutant.entries[0].duration = lazyeye::ms(90);
  mutant.entries[0].trigger = TriggerKind::kAfterFirstDnsResponse;

  // Content is folded into the world seed: a retimed mutant runs a
  // different world than its parent even though the triple is unchanged.
  EXPECT_NE(mutant.rng_seed(), parent.rng_seed());

  const auto decoded = schedule_from_hex(schedule_to_hex(mutant));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, mutant);
  EXPECT_EQ(decoded->rng_seed(), mutant.rng_seed());
}

TEST(ScheduleCodecTest, MalformedBytesRejected) {
  const FaultSchedule schedule = FaultSchedule::generate(11, 3, 1);
  const std::string bytes = encode_schedule(schedule);

  EXPECT_FALSE(decode_schedule("").has_value());
  EXPECT_FALSE(decode_schedule(bytes.substr(0, bytes.size() - 1)).has_value());
  EXPECT_FALSE(decode_schedule(bytes + "x").has_value());

  std::string bad_kind = bytes;
  bad_kind[20] = static_cast<char>(0x7F);  // entry 0 kind out of range
  EXPECT_FALSE(decode_schedule(bad_kind).has_value());

  EXPECT_FALSE(schedule_from_hex("0123zz").has_value());
  EXPECT_FALSE(schedule_from_hex("abc").has_value());  // odd length
}

TEST(ScheduleCodecTest, CorpusFileRoundTripsAndRefusesDamage) {
  std::vector<CorpusEntry> corpus;
  for (std::uint32_t i = 0; i < 3; ++i) {
    CorpusEntry entry;
    entry.schedule = FaultSchedule::generate(11, 3, i);
    entry.violations = static_cast<int>(i);
    entry.minimized = i == 2;
    corpus.push_back(entry);
  }
  const std::string path = tmp_path("corpus.txt");
  FaultHunt::write_corpus(path, corpus);

  const std::vector<CorpusEntry> loaded = FaultHunt::load_corpus(path);
  ASSERT_EQ(loaded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(loaded[i].schedule, corpus[i].schedule);
    EXPECT_EQ(loaded[i].violations, corpus[i].violations);
    EXPECT_EQ(loaded[i].minimized, corpus[i].minimized);
  }

  std::ofstream out{path, std::ios::app};
  out << "entry violations=1 minimized=0 nothex!!\n";
  out.close();
  EXPECT_THROW(FaultHunt::load_corpus(path), std::runtime_error);
}

// ----------------------------------------------- coverage signature units ----

TEST(CoverageSignatureTest, EvidenceBucketCollapsesDigitRuns) {
  EXPECT_EQ(evidence_bucket("waited 43 ms (< 250 ms)"),
            evidence_bucket("waited 187 ms (< 250 ms)"));
  EXPECT_EQ(evidence_bucket("waited 43 ms"), "waited # ms");
  EXPECT_NE(evidence_bucket("attempt 2 aborted"), evidence_bucket("no winner"));
  EXPECT_EQ(evidence_bucket(""), "");
}

TEST(CoverageSignatureTest, SignatureSeparatesVerdictChangesAndClientSplits) {
  ConformanceRecord a;
  a.client = "A";
  a.verdicts = {{"rule-x", RuleOutcome::kPass, "ok 1"}};
  ConformanceRecord b = a;
  b.client = "B";

  const auto agree = coverage_signature({a, b});
  b.verdicts[0].outcome = RuleOutcome::kViolate;
  const auto split = coverage_signature({a, b});

  // The per-rule diff element changes when clients stop agreeing.
  EXPECT_NE(agree, split);
  bool found_diff = false;
  for (const std::string& element : split) {
    if (element == "diff|rule-x|PV") found_diff = true;
  }
  EXPECT_TRUE(found_diff);
}

// ------------------------------------------- schedule cells & determinism ----

TEST(ScheduleCellTest, WindowGatingControlsInjection) {
  const auto profiles = hunt_profiles();
  ConformanceOptions options;
  options.seed = 11;
  const ConformanceHarness harness{options};

  // One DNS-starving entry, open window from t=0: the fault must bite.
  FaultSchedule active;
  active.seed = 11;
  active.entries.resize(1);
  active.entries[0].plan.kind = FaultKind::kDnsStarveFamily;
  active.entries[0].plan.seed = 11;
  active.entries[0].plan.target_family = simnet::Family::kIpv6;

  // Same entry, window opening minutes after the session is over: inert.
  FaultSchedule inert = active;
  inert.entries[0].start = lazyeye::ms(600000);
  inert.entries[0].duration = lazyeye::ms(50);

  const ConformanceRecord hit =
      harness.replay_schedule(profiles[0], active, 2);
  const ConformanceRecord miss =
      harness.replay_schedule(profiles[0], inert, 2);
  ASSERT_FALSE(hit.verdicts.empty());
  ASSERT_TRUE(hit.schedule.has_value());

  // The starved world loses its AAAA answers; the inert window leaves the
  // dual-stack session intact, so the two records cannot agree.
  EXPECT_NE(coverage_signature({hit}), coverage_signature({miss}));
  bool starved_evidence = false;
  for (const Verdict& v : hit.verdicts) {
    if (v.evidence.find("both families") != std::string::npos) {
      starved_evidence = true;
    }
  }
  EXPECT_TRUE(starved_evidence);
}

TEST(ScheduleCellTest, CampaignVerdictsAreWorkerCountInvariant) {
  const auto profiles = hunt_profiles();
  ConformanceOptions conformance_options;
  conformance_options.seed = 11;
  const ConformanceHarness harness{conformance_options};

  std::vector<campaign::ScenarioSpec> specs;
  for (std::uint32_t index = 0; index < 6; ++index) {
    const FaultSchedule schedule = FaultSchedule::generate(11, 9, index);
    for (const auto& profile : profiles) {
      specs.push_back(harness.schedule_spec(profile, schedule, 2));
      specs.back().id = specs.size() - 1;
    }
  }
  const std::function<ConformanceRecord(const campaign::ScenarioSpec&)>
      executor = [&](const campaign::ScenarioSpec& spec) {
        for (const auto& profile : profiles) {
          if (profile.display_name() == spec.client) {
            return harness.run_spec(profile, spec);
          }
        }
        throw std::runtime_error("unknown client " + spec.client);
      };

  std::string reference;
  for (const int workers : {1, 2, 4, 8}) {
    campaign::RunnerOptions runner_options;
    runner_options.workers = workers;
    const campaign::CampaignRunner runner{runner_options};
    VerdictTableSink sink;
    runner.run_streaming<ConformanceRecord>(specs, executor, sink);
    if (reference.empty()) {
      reference = sink.text();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(sink.text(), reference) << "workers=" << workers;
    }
  }
}

TEST(ScheduleCellTest, HuntIsWorkerCountInvariant) {
  std::string reference;
  for (const int workers : {1, 4}) {
    HuntOptions options = hunt_options("");
    options.workers = workers;
    FaultHunt hunt{options, hunt_profiles()};
    const HuntResult result = hunt.run();
    const std::string corpus = FaultHunt::corpus_text(result.corpus);
    if (reference.empty()) {
      reference = corpus;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(corpus, reference) << "workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace lazyeye::conformance
